GO ?= go
FUZZTIME ?= 10s
BENCHCOUNT ?= 7

.PHONY: build test bench bench-monitor bench-json bench-jobs bench-prune bench-snapshot bench-rerank bench-cluster bench-drift telemetry-overhead verify fuzz-smoke cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick benchmark smoke pass; full numbers come from `go test -bench . .`
# and cmd/fairbench.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Streaming-monitor benchmarks: per-event delta maintenance vs the
# from-scratch recompute baseline, across group counts.
bench-monitor:
	$(GO) test -run '^$$' -bench 'BenchmarkMonitor' -benchmem ./internal/monitor/

# bench-json emits BENCH_4.json: the telemetry-overhead benchmark parsed
# into JSON plus the engine's full telemetry snapshot from an
# instrumented reference audit. Format documented in EXPERIMENTS.md.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead' -benchmem -benchtime 2000x -count 3 ./internal/core/ \
		| $(GO) run ./cmd/benchjson -out BENCH_4.json

# bench-jobs emits BENCH_5.json: job-scheduler throughput (memory vs
# durable store, 1 vs 4 workers) and the dedup fast path, parsed into the
# same JSON artifact format as bench-json. Format in EXPERIMENTS.md.
bench-jobs:
	$(GO) test -run '^$$' -bench 'BenchmarkJobs' -benchmem -benchtime 200x -count 3 ./internal/jobs/ \
		| $(GO) run ./cmd/benchjson -out BENCH_5.json

# bench-prune is the CI gate for the branch-and-bound pruning cascade
# (core.Config.Prune, DESIGN.md §9) and emits BENCH_6.json. BENCHCOUNT
# single-shot rounds of the prune suite plus the untouched BenchmarkTable2
# cells accumulate in one file (per-round pairing rationale as in
# telemetry-overhead below), then three benchdiff gates run:
#   1. speedup: the greedy worst-attribute-scan cells (unbalanced and
#      r-unbalanced, the cascade's target) must be >=5x faster pruned
#      (overhead <= -80%). The balanced family and all-attributes sit at
#      their bit-identity floor — the winner of every round must still be
#      evaluated exactly — so they are measured and recorded but not held
#      to 5x; EXPERIMENTS.md works through the floor argument.
#   2. no harm: over the full suite, pruning on must never lose to off.
#   3. control: prune=off must match BenchmarkTable2 cell for cell — the
#      default unpruned path is untouched by the cascade. The control runs
#      prune=off cells in their own process (same cell sequence as
#      BenchmarkTable2) because interleaved prune=on cells shrink the live
#      heap and reshape GC pacing for the cell after them — a benchmark
#      artifact, not an engine cost — and into a separate file so the
#      off-lines of the full-suite rounds don't pollute the pool.
bench-prune:
	@rm -f /tmp/prune-bench.txt /tmp/prune-ctrl.txt
	@for i in $$(seq $(BENCHCOUNT)); do \
		$(GO) test -run '^$$' -bench 'BenchmarkPruneTable2$$' -benchtime 1x -count 1 . >> /tmp/prune-bench.txt || exit 1; \
		$(GO) test -run '^$$' -bench 'BenchmarkTable2$$' -benchtime 1x -count 1 . >> /tmp/prune-ctrl.txt || exit 1; \
		$(GO) test -run '^$$' -bench 'BenchmarkPruneTable2$$/./prune=off$$' -benchtime 1x -count 1 . >> /tmp/prune-ctrl.txt || exit 1; \
	done
	@grep ns/op /tmp/prune-bench.txt
	grep -E 'a=(r-)?unbalanced/' /tmp/prune-bench.txt | $(GO) run ./cmd/benchdiff -baseline 'prune=off' -candidate 'prune=on' -max-overhead -80
	$(GO) run ./cmd/benchdiff -baseline 'prune=off' -candidate 'prune=on' -max-overhead 0 < /tmp/prune-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'BenchmarkTable2/' -candidate 'prune=off' -max-overhead 10 < /tmp/prune-ctrl.txt
	$(GO) run ./cmd/benchjson -prune -algo balanced -workers 7300 -out BENCH_6.json < /tmp/prune-bench.txt

# bench-snapshot is the CI gate for the mmap snapshot engine (DESIGN.md
# §10) and emits BENCH_7.json. Each of the BENCHCOUNT rounds emits every
# workload over both backings as adjacent src=mem / src=mmap lines — a
# million-worker raw column scan plus the Table 2 audit cells — and one
# benchdiff gate holds the memory-mapped view to within 10% of the
# heap-resident dataset across all of them (per-round pairing rationale
# as in telemetry-overhead below). Zero-copy means there is no
# per-element decode to pay for; anything past noise is a regression.
bench-snapshot:
	@rm -f /tmp/snapshot-bench.txt
	@for i in $$(seq $(BENCHCOUNT)); do \
		$(GO) test -run '^$$' -bench 'BenchmarkSnapshot(Scan|Table2)$$' -benchtime 1x -count 1 -timeout 30m . >> /tmp/snapshot-bench.txt || exit 1; \
	done
	@grep ns/op /tmp/snapshot-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'src=mem' -candidate 'src=mmap' -max-overhead 10 < /tmp/snapshot-bench.txt
	$(GO) run ./cmd/benchjson -algo balanced -workers 7300 -out BENCH_7.json < /tmp/snapshot-bench.txt

# bench-rerank is the CI gate for the serving-time re-ranking suite
# (DESIGN.md §11) and emits BENCH_8.json. Two checks run:
#   1. latency budget: TestRerankP99Budget load-generates 480 requests per
#      registered re-ranker over a 5000-candidate pool and holds each
#      algorithm's fairrank_rerank_seconds p99 under 0.25s.
#   2. registry overhead: serving exposure-parity through the registry
#      (Lookup + nil-registry telemetry, the POST /v1/rank path) must stay
#      within 5% of calling ExposureParity directly. BENCHCOUNT separate
#      short rounds, per-round pairing rationale as in telemetry-overhead.
bench-rerank:
	@rm -f /tmp/rerank-bench.txt
	$(GO) test -run '^TestRerankP99Budget$$' -v ./internal/rerank/
	@for i in $$(seq $(BENCHCOUNT)); do \
		$(GO) test -run '^$$' -bench 'BenchmarkRerankServe$$' -benchtime 100x -count 1 ./internal/rerank/ >> /tmp/rerank-bench.txt || exit 1; \
	done
	@grep ns/op /tmp/rerank-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'path=direct' -candidate 'algo=exposure-parity/path=registry' -max-overhead 5 < /tmp/rerank-bench.txt
	$(GO) run ./cmd/benchjson -algo balanced -out BENCH_8.json < /tmp/rerank-bench.txt

# bench-cluster is the CI gate for the cluster subsystem (DESIGN.md §12)
# and emits BENCH_9.json. Three cells per round: cluster=off (the
# pre-cluster single-node submit+drain path), cluster=solo (identical
# workload with the cluster layer enabled but zero peers — heartbeat
# loop, ring of one, placement checks all live), and cluster=three (a
# 3-node in-process cluster draining a backlog pinned to one node via
# work-stealing; reports the steal-latency histogram). The benchdiff
# gate holds cluster=solo within 5% of cluster=off: clustering compiled
# in but not in use must be (nearly) free. BENCHCOUNT separate short
# rounds, per-round pairing rationale as in telemetry-overhead below.
bench-cluster:
	@rm -f /tmp/cluster-bench.txt
	@for i in $$(seq $(BENCHCOUNT)); do \
		$(GO) test -run '^$$' -bench 'BenchmarkClusterJobs$$' -benchtime 100x -count 1 ./internal/server/ >> /tmp/cluster-bench.txt || exit 1; \
	done
	@grep ns/op /tmp/cluster-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'cluster=off' -candidate 'cluster=solo' -max-overhead 5 < /tmp/cluster-bench.txt
	$(GO) run ./cmd/benchjson -algo balanced -out BENCH_9.json < /tmp/cluster-bench.txt

# bench-drift is the CI gate for the continuous-audit subsystem
# (DESIGN.md §13) and emits BENCH_10.json. Three checks run:
#   1. zero-alloc steady state: TestWindowSteadyStateAllocs holds the
#      sliding window's per-event path at 0 allocs over a stable
#      join/rescore/leave mix.
#   2. window cost: the sliding-window estimator must stay within 2x of
#      the unbounded monitor per event (the window pays a ring write and
#      an occasional retraction on top of the same delta machinery).
#   3. alarm overhead: evaluating the standard 3-rule set after every
#      event must stay within 5% of running the same watch with no rules.
# BENCHCOUNT separate short rounds, per-round pairing rationale as in
# telemetry-overhead below.
bench-drift:
	@rm -f /tmp/drift-bench.txt
	$(GO) test -run '^TestWindowSteadyStateAllocs$$' -v ./internal/drift/
	@for i in $$(seq $(BENCHCOUNT)); do \
		$(GO) test -run '^$$' -bench 'BenchmarkDrift(PerEvent|Alarm)$$' -benchtime 50000x -count 1 ./internal/drift/ >> /tmp/drift-bench.txt || exit 1; \
	done
	@grep ns/op /tmp/drift-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'estimator=unbounded' -candidate 'estimator=window' -max-overhead 100 < /tmp/drift-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'alarms=off' -candidate 'alarms=on' -max-overhead 5 < /tmp/drift-bench.txt
	$(GO) run ./cmd/benchjson -algo balanced -out BENCH_10.json < /tmp/drift-bench.txt

# telemetry-overhead is the CI gate for the observability layer: the
# always-on metrics path (what fairserve enables per request) must stay
# within 5% of the uninstrumented baseline, and the opt-in span-tracing
# path within a loose 30% tripwire (its fixed per-span cost is magnified
# by the deliberately tiny benchmark audit). BENCHCOUNT separate short
# `go test` rounds — each emitting all three variants back to back —
# rather than one -count run, because benchdiff pairs same-round lines
# and takes the median of per-round ratios; grouped repetition would
# reintroduce the host-load drift the pairing exists to cancel.
telemetry-overhead:
	@rm -f /tmp/telemetry-bench.txt
	@for i in $$(seq $(BENCHCOUNT)); do \
		$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead' -benchtime 2000x -count 1 ./internal/core/ >> /tmp/telemetry-bench.txt || exit 1; \
	done
	@grep ns/op /tmp/telemetry-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'telemetry=off' -candidate 'telemetry=metrics' -max-overhead 5 < /tmp/telemetry-bench.txt
	$(GO) run ./cmd/benchdiff -baseline 'telemetry=off' -candidate 'telemetry=trace' -max-overhead 30 < /tmp/telemetry-bench.txt

# verify is the gate for changes to the evaluation engine: static checks
# plus the race detector over the whole module. Every package rides along —
# the differential/metamorphic suites added with internal/testkit made the
# leaf packages cheap enough that excluding them buys nothing.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# fuzz-smoke runs each fuzz target for FUZZTIME (default 10s), sequentially
# — `go test -fuzz` accepts only one target per invocation. The committed
# corpora under testdata/fuzz/ are replayed by plain `go test` as well; this
# target additionally explores new inputs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPMFDistance$$' -fuzztime $(FUZZTIME) ./internal/emd/
	$(GO) test -run '^$$' -fuzz '^FuzzExactEMD$$' -fuzztime $(FUZZTIME) ./internal/emd/
	$(GO) test -run '^$$' -fuzz '^FuzzFixedQuant$$' -fuzztime $(FUZZTIME) ./internal/emd/
	$(GO) test -run '^$$' -fuzz '^FuzzHistogram$$' -fuzztime $(FUZZTIME) ./internal/histogram/
	$(GO) test -run '^$$' -fuzz '^FuzzEnumerate$$' -fuzztime $(FUZZTIME) ./internal/partition/
	$(GO) test -run '^$$' -fuzz '^FuzzEvaluatorOracle$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/query/
	$(GO) test -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/dataset/
	$(GO) test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/dataset/
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZTIME) ./internal/dataset/
	$(GO) test -run '^$$' -fuzz '^FuzzPrometheus$$' -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -run '^$$' -fuzz '^FuzzJobSpecJSON$$' -fuzztime $(FUZZTIME) ./internal/jobs/
	$(GO) test -run '^$$' -fuzz '^FuzzRankRequest$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzClusterMessage$$' -fuzztime $(FUZZTIME) ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzMonitorSpecJSON$$' -fuzztime $(FUZZTIME) ./internal/drift/

# cover writes a module-wide coverage profile (uploaded as a CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
