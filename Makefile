GO ?= go

.PHONY: build test bench bench-monitor verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick benchmark smoke pass; full numbers come from `go test -bench . .`
# and cmd/fairbench.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Streaming-monitor benchmarks: per-event delta maintenance vs the
# from-scratch recompute baseline, across group counts.
bench-monitor:
	$(GO) test -run '^$$' -bench 'BenchmarkMonitor' -benchmem ./internal/monitor/

# verify is the gate for changes to the evaluation engine: static checks
# plus the race detector over the packages the session layer spans — the
# engine, the enumeration space, the streaming monitor, and the HTTP
# surface that routes request contexts into them.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/partition/... ./internal/monitor/... ./internal/server/...
