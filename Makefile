GO ?= go
FUZZTIME ?= 10s

.PHONY: build test bench bench-monitor verify fuzz-smoke cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick benchmark smoke pass; full numbers come from `go test -bench . .`
# and cmd/fairbench.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Streaming-monitor benchmarks: per-event delta maintenance vs the
# from-scratch recompute baseline, across group counts.
bench-monitor:
	$(GO) test -run '^$$' -bench 'BenchmarkMonitor' -benchmem ./internal/monitor/

# verify is the gate for changes to the evaluation engine: static checks
# plus the race detector over the whole module. Every package rides along —
# the differential/metamorphic suites added with internal/testkit made the
# leaf packages cheap enough that excluding them buys nothing.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# fuzz-smoke runs each fuzz target for FUZZTIME (default 10s), sequentially
# — `go test -fuzz` accepts only one target per invocation. The committed
# corpora under testdata/fuzz/ are replayed by plain `go test` as well; this
# target additionally explores new inputs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPMFDistance$$' -fuzztime $(FUZZTIME) ./internal/emd/
	$(GO) test -run '^$$' -fuzz '^FuzzExactEMD$$' -fuzztime $(FUZZTIME) ./internal/emd/
	$(GO) test -run '^$$' -fuzz '^FuzzHistogram$$' -fuzztime $(FUZZTIME) ./internal/histogram/
	$(GO) test -run '^$$' -fuzz '^FuzzEnumerate$$' -fuzztime $(FUZZTIME) ./internal/partition/
	$(GO) test -run '^$$' -fuzz '^FuzzEvaluatorOracle$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/query/
	$(GO) test -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/dataset/
	$(GO) test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/dataset/

# cover writes a module-wide coverage profile (uploaded as a CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
