GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick benchmark smoke pass; full numbers come from `go test -bench . .`
# and cmd/fairbench.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# verify is the gate for changes to the evaluation engine: static checks
# plus the race detector over the packages the incremental engine spans.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/partition/...
