module fairrank

go 1.22
