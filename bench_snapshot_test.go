// Snapshot-engine benchmarks: the memory-mapped columnar snapshot views
// (DESIGN.md §10) against equivalent heap-resident datasets. Every
// benchmark runs each workload over both sources as adjacent src=mem /
// src=mmap sub-runs so `make bench-snapshot` can gate the mmap overhead
// with cmd/benchdiff's per-round pairing — the k-th mem line of a round
// pairs with the k-th mmap line of the same round, cancelling host-load
// drift between rounds.
package fairrank_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fairrank"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// snapshotScanWorkers is the population for the raw column-scan benchmark:
// the million-worker regime the snapshot engine exists for. The audit-level
// benchmark stays at paper scale (Table 2's 7300) where whole audits are
// tractable per iteration.
const snapshotScanWorkers = 1_000_000

// snapshotOf round-trips ds through the columnar snapshot format and
// returns the memory-mapped view, unmapped when the benchmark finishes.
func snapshotOf(b *testing.B, ds *dataset.Dataset) *dataset.Dataset {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.snap")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.WriteSnapshot(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	mapped, err := dataset.OpenSnapshot(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := mapped.Close(); err != nil {
			b.Error(err)
		}
	})
	return mapped
}

type snapshotSource struct {
	name string
	ds   *dataset.Dataset
}

// snapshotSources builds the two views of one generated population. Order
// is fixed mem-then-mmap: benchdiff's pairing depends on the baseline and
// candidate lines alternating in emission order.
func snapshotSources(b *testing.B, n int) []snapshotSource {
	b.Helper()
	ds, err := simulate.PaperWorkers(n, 42)
	if err != nil {
		b.Fatal(err)
	}
	return []snapshotSource{
		{name: "mem", ds: ds},
		{name: "mmap", ds: snapshotOf(b, ds)},
	}
}

// BenchmarkSnapshotScan measures the raw column-scan substrate every audit
// sits on — materializing the full score column (two observed float64
// columns fused by scoring.Scores) plus one protected code-column sweep —
// at million-worker scale, heap-resident versus memory-mapped. This is the
// pure zero-copy comparison: no engine caches or EMD math to hide a
// per-element decode penalty behind.
func BenchmarkSnapshotScan(b *testing.B) {
	n := snapshotScanWorkers
	if testing.Short() {
		n = 100_000
	}
	f, err := fairrank.NewLinearFunc("scan", map[string]float64{
		"LanguageTest": 0.5, "ApprovalRate": 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for _, src := range snapshotSources(b, n) {
		b.Run(fmt.Sprintf("n=%d/src=%s", n, src.name), func(b *testing.B) {
			// Two float64 observed columns and one uint16 code column
			// per worker and iteration.
			b.SetBytes(int64(n) * 18)
			for i := 0; i < b.N; i++ {
				scores := scoring.Scores(src.ds, f)
				sink += scores[len(scores)-1]
				for _, c := range src.ds.CodeColumn(0) {
					sink += float64(c)
				}
			}
		})
	}
	if sink < 0 {
		b.Fatal("impossible") // keep the scans from being optimized away
	}
}

// BenchmarkSnapshotTable2 runs the Table 2 audit cells (the two
// qualitatively distinct columns, as in BenchmarkTable2) over both sources.
// It is the no-harm gate at audit granularity: once the evaluator's
// histograms are built the engine touches columns the same way regardless
// of backing, so src=mmap must stay within noise of src=mem.
func BenchmarkSnapshotTable2(b *testing.B) {
	funcs, err := simulate.RandomFunctions()
	if err != nil {
		b.Fatal(err)
	}
	sources := snapshotSources(b, population(b, simulate.LargePopulation))
	for _, f := range []scoring.Func{funcs[0], funcs[3]} {
		for _, algo := range simulate.AllAlgorithms {
			for _, src := range sources {
				b.Run(fmt.Sprintf("f=%s,a=%s/src=%s", f.Name(), algo, src.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e, err := core.NewEvaluator(src.ds, f, core.Config{Bins: 10})
						if err != nil {
							b.Fatal(err)
						}
						res := runAlgo(b, e, algo, 42)
						if res.Partitioning == nil {
							b.Fatal("no partitioning")
						}
					}
				})
			}
		}
	}
}
