package fairrank

import (
	"fairrank/internal/marketplace"
	"fairrank/internal/rng"
)

// Marketplace simulates an online job marketplace: a worker population plus
// posted tasks, each ranking candidates by a task-qualification function.
type Marketplace = marketplace.Marketplace

// Task is a job posted on the platform; its weights over observed worker
// attributes define the ranking function.
type Task = marketplace.Task

// RankedWorker is one entry of a platform ranking.
type RankedWorker = marketplace.RankedWorker

// HiringStats summarizes a simulated sequence of hiring decisions.
type HiringStats = marketplace.HiringStats

// AssignmentPolicy selects how arriving tasks are assigned to ranked
// workers in income simulations.
type AssignmentPolicy = marketplace.AssignmentPolicy

// Assignment policies for Marketplace.SimulateIncome.
const (
	// PolicyTopRanked always assigns the best-scored candidate.
	PolicyTopRanked = marketplace.PolicyTopRanked
	// PolicyExposureWeighted assigns proportionally to position bias.
	PolicyExposureWeighted = marketplace.PolicyExposureWeighted
	// PolicyRoundRobin rotates assignments through the top-k.
	PolicyRoundRobin = marketplace.PolicyRoundRobin
)

// IncomeReport summarizes a long-run assignment simulation: the Gini
// coefficient of per-worker income and per-group mean incomes.
type IncomeReport = marketplace.IncomeReport

// RNG is fairrank's deterministic pseudo-random number generator
// (xoshiro256++), used wherever reproducible randomness is needed.
type RNG = rng.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewMarketplace creates a simulated platform over a worker population.
func NewMarketplace(workers *Dataset) (*Marketplace, error) {
	return marketplace.New(workers)
}

// RankWorkers ranks a dataset's workers under a scoring function, returning
// the top k (all when k <= 0) in descending score order.
func RankWorkers(ds *Dataset, f ScoringFunc, k int) []RankedWorker {
	return marketplace.RankBy(ds, f, k)
}

// Ranking/exposure helpers (fairness-of-exposure, Singh & Joachims 2018,
// cited by the paper as related work).
var (
	// PositionBias is the logarithmic attention weight of a 1-based rank.
	PositionBias = marketplace.PositionBias
	// GroupExposure computes mean position-bias exposure per group of a
	// protected attribute.
	GroupExposure = marketplace.GroupExposure
	// ExposureDisparity summarizes a group-exposure map as a max/min ratio.
	ExposureDisparity = marketplace.ExposureDisparity
	// NDCG measures a ranking's utility against per-worker relevance,
	// e.g. to quantify what a fairness repair costs in ranking quality.
	NDCG = marketplace.NDCG
	// TopKOverlap is the Jaccard overlap of two rankings' top-k sets.
	TopKOverlap = marketplace.TopKOverlap
	// KendallTau is the rank correlation between two rankings.
	KendallTau = marketplace.KendallTau
)
