package fairrank_test

import (
	"fmt"
	"strings"

	"fairrank"
)

// ExampleGroupBy audits a pre-defined grouping — the setting of prior work
// the paper generalizes away from.
func ExampleGroupBy() {
	ds, _ := fairrank.GenerateWorkers(400, 7)
	f, _ := fairrank.NewRuleFunc("biased", 7, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	byGender, _ := fairrank.GroupBy(ds, "Gender")
	u, _ := fairrank.NewAuditor().Unfairness(ds, f, byGender)
	fmt.Printf("gender unfairness ≈ 0.8: %v\n", u > 0.75 && u < 0.85)
	// Output: gender unfairness ≈ 0.8: true
}

// ExampleCompileQuery selects a sub-population before auditing — the
// requester's view of the marketplace.
func ExampleCompileQuery() {
	ds, _ := fairrank.GenerateWorkers(1000, 11)
	q, _ := fairrank.CompileQuery("YearsExperience >= 10 AND Country = 'America'", ds.Schema())
	sub, _ := q.Select(ds)
	fmt.Println(sub.N() > 0 && sub.N() < ds.N())
	// Output: true
}

// ExampleRunCampaign audits a catalog of scoring functions with
// false-discovery-rate control.
func ExampleRunCampaign() {
	ds, _ := fairrank.GenerateWorkers(400, 13)
	fair, _ := fairrank.NewLinearFunc("fair", map[string]float64{
		"LanguageTest": 0.5, "ApprovalRate": 0.5,
	})
	biased, _ := fairrank.NewRuleFunc("biased", 13, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	audits, _ := fairrank.RunCampaign(ds,
		[]fairrank.ScoringFunc{fair, biased},
		fairrank.CampaignOptions{Rounds: 100, Seed: 13})
	var flagged []string
	for _, a := range audits {
		if a.Significant {
			flagged = append(flagged, a.Function)
		}
	}
	fmt.Println(strings.Join(flagged, ","))
	// Output: biased
}

// ExampleAuditor_Explain names the attribute a designed-bias function
// discriminates on.
func ExampleAuditor_Explain() {
	ds, _ := fairrank.GenerateWorkers(400, 17)
	f, _ := fairrank.NewRuleFunc("biased", 17, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	imps, _ := fairrank.NewAuditor().Explain(ds, f)
	fmt.Println(imps[0].Attribute)
	// Output: Gender
}
