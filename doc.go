// Package fairrank is a Go library for exploring fairness of ranking in
// online job marketplaces, implementing Elbassuoni, Amer-Yahia, Ghizzawi
// and El Atie, "Exploring Fairness of Ranking in Online Job Marketplaces"
// (EDBT 2019).
//
// Given a population of workers with protected attributes (gender, country,
// age, ...) and observed attributes (skills), and a scoring function that
// ranks workers for jobs, fairrank searches for the *most unfair
// partitioning*: the grouping of workers on any combination of protected
// attributes whose score distributions differ the most, measured by the
// average pairwise Earth Mover's Distance between per-group score
// histograms. Unlike audits over pre-defined groups, this surfaces subgroup
// discrimination — a function may treat men and women equally overall yet
// discriminate against, say, older Asian-American women.
//
// # Quick start
//
//	ds, _ := fairrank.GenerateWorkers(500, 42)       // or load your own CSV
//	f, _ := fairrank.NewLinearFunc("f", map[string]float64{
//		"LanguageTest": 0.7, "ApprovalRate": 0.3,
//	})
//	auditor := fairrank.NewAuditor()
//	res, _ := auditor.Audit(ds, f, fairrank.AlgoBalanced)
//	fmt.Printf("unfairness %.3f across %d groups\n",
//		res.Unfairness, res.Partitioning.Size())
//
// # Architecture
//
// The library layers as follows (each layer usable on its own):
//
//   - histograms and Earth Mover's Distance (plus alternative metrics and a
//     general min-cost-flow transportation solver);
//   - a columnar worker/dataset model with CSV/JSON codecs;
//   - scoring functions: linear weighted functions and rule-based ones;
//   - the partitioning machinery and the paper's five algorithms
//     (balanced, unbalanced, r-balanced, r-unbalanced, all-attributes)
//     plus a budget-guarded exhaustive solver;
//   - a marketplace simulator (ranking, exposure, hiring) and a
//     quantile-matching bias repairer.
//
// See DESIGN.md for the full inventory and EXPERIMENTS.md for the
// reproduction of the paper's Tables 1–3 and Figure 1.
package fairrank
