package fairrank

import (
	"fmt"

	"fairrank/internal/monitor"
	"fairrank/internal/rerank"
)

// FairnessMonitor tracks the unfairness of a fixed demographic grouping
// under a stream of worker arrivals, departures and re-scores, re-evaluable
// after every event without rescanning the population.
type FairnessMonitor = monitor.Monitor

// NewMonitor creates a FairnessMonitor over the partitioning induced by the
// named protected attributes of the schema. Alert fires when unfairness
// exceeds threshold; bins defaults to 10 when <= 0.
func NewMonitor(schema *Schema, attrs []string, bins int, threshold float64) (*FairnessMonitor, error) {
	return monitor.New(schema, attrs, bins, threshold)
}

// RerankOptions configures exposure-parity re-ranking.
type RerankOptions = rerank.Options

// RerankExposureParity re-orders a ranked candidate list so each group of
// the named protected attribute receives position-bias exposure close to
// its share of the candidate pool, sacrificing at most Epsilon score per
// position. Combine with Auditor.RepairedScores: repair fixes scores,
// re-ranking fixes the result page.
func RerankExposureParity(ds *Dataset, attrName string, ranked []RankedWorker, opts RerankOptions) ([]RankedWorker, error) {
	attr := ds.Schema().ProtectedIndex(attrName)
	if attr < 0 {
		return nil, fmt.Errorf("fairrank: %q is not a protected attribute", attrName)
	}
	return rerank.ExposureParity(ds, attr, ranked, opts)
}
