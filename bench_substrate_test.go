// Substrate micro-benchmarks: the storage engine, query engine, streaming
// monitor and re-ranker that the audit pipeline runs on.
package fairrank_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"fairrank"

	"fairrank/internal/dataset"
	"fairrank/internal/monitor"
	"fairrank/internal/query"
	"fairrank/internal/rerank"
	"fairrank/internal/simulate"
	"fairrank/internal/store"
)

// BenchmarkQueryFilter measures filtering the paper's large population with
// a three-clause query.
func BenchmarkQueryFilter(b *testing.B) {
	ds := benchWorkers(b, population(b, simulate.LargePopulation))
	q := query.MustCompile(
		"Gender = 'Female' AND YearsExperience >= 5 AND Country IN ('America', 'India')",
		ds.Schema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(q.Filter(ds)) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkQueryParse measures parse+compile of a representative query.
func BenchmarkQueryParse(b *testing.B) {
	schema := simulate.PaperSchema()
	const text = "Gender = 'Female' AND (YearsExperience >= 5 OR NOT Country IN ('Other')) AND LanguageTest > 60"
	for i := 0; i < b.N; i++ {
		e, err := query.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := query.Compile(e, schema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePut measures appending 1 KiB values to the log.
func BenchmarkStorePut(b *testing.B) {
	db, err := store.Open(filepath.Join(b.TempDir(), "bench.db"), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("x"), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put("bench", fmt.Sprintf("k%d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReplay measures reopening a 10k-record log.
func BenchmarkStoreReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "replay.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 10000; i++ {
		if err := db.Put("bench", fmt.Sprintf("k%d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := store.Open(path, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if db.Len("bench") != 10000 {
			b.Fatal("bad replay")
		}
		db.Close()
	}
}

// BenchmarkDatasetBinaryCodec measures snapshotting the large population.
func BenchmarkDatasetBinaryCodec(b *testing.B) {
	ds := benchWorkers(b, population(b, simulate.LargePopulation))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := ds.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := dataset.ReadBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorEvent measures one join + unfairness re-evaluation on a
// populated monitor — the per-event cost of continuous auditing.
func BenchmarkMonitorEvent(b *testing.B) {
	m, err := monitor.New(simulate.PaperSchema(), []string{"Gender", "Country"}, 10, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	attrs := map[string]any{
		"Gender": "Male", "Country": "America", "YearOfBirth": 1980,
		"Language": "English", "Ethnicity": "White", "YearsExperience": 5,
	}
	for i := 0; i < 5000; i++ {
		if err := m.Join(fmt.Sprintf("seed%d", i), attrs, float64(i%100)/100); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("w%d", i)
		if err := m.Join(id, attrs, 0.5); err != nil {
			b.Fatal(err)
		}
		_ = m.Unfairness()
		if err := m.Leave(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRerank measures exposure-parity re-ranking of a 1000-candidate
// pool.
func BenchmarkRerank(b *testing.B) {
	ds := benchWorkers(b, 1000)
	f, err := fairrank.NewRuleFunc("f6", 42, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		b.Fatal(err)
	}
	ranked := fairrank.RankWorkers(ds, f, 0)
	gender := ds.Schema().ProtectedIndex("Gender")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rerank.ExposureParity(ds, gender, ranked, rerank.Options{Epsilon: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepairScores measures quantile-matching repair at paper scale.
func BenchmarkRepairScores(b *testing.B) {
	ds := benchWorkers(b, population(b, simulate.LargePopulation))
	f, err := fairrank.NewRuleFunc("f6", 42, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		b.Fatal(err)
	}
	a := fairrank.NewAuditor()
	pt, err := fairrank.GroupBy(ds, "Gender")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.RepairedScores(ds, f, pt, 1); err != nil {
			b.Fatal(err)
		}
	}
}
