package main

import (
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/telemetry"
)

func TestRunTablesReducedScale(t *testing.T) {
	var b strings.Builder
	if err := runTables(&b, nil, "1", 100, 7, 10, false, "", "", "", 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"table1: 100 workers", "unbalanced", "balanced", "all-attributes", "f5 EMD"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunTablesAllWithCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	if err := runTables(&b, nil, "all", 60, 7, 10, false, path, "", "", 2, 1, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"table1", "table2", "table3", "f6 EMD"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Tables 1-2: 5 algos × 5 funcs each; table 3: 5 × 4; plus 3 headers.
	want := 3 + 25 + 25 + 20
	if len(recs) != want {
		t.Fatalf("%d csv rows, want %d", len(recs), want)
	}
}

func TestRunTablesMarkdownAndJSON(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "out.md")
	js := filepath.Join(dir, "out.json")
	var b strings.Builder
	if err := runTables(&b, nil, "1", 60, 7, 10, false, "", md, js, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	mdData, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mdData), "| algorithm |") {
		t.Errorf("markdown output:\n%s", mdData)
	}
	jsData, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsData), "\"experiment\": \"table1\"") {
		t.Errorf("json output:\n%s", jsData)
	}
}

func TestRunTablesUnknown(t *testing.T) {
	var b strings.Builder
	if err := runTables(&b, nil, "9", 50, 1, 10, false, "", "", "", 1, 1, nil); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestRunTablesBadCSVPath(t *testing.T) {
	var b strings.Builder
	if err := runTables(&b, nil, "1", 50, 1, 10, false, "/nonexistent/dir/out.csv", "", "", 1, 1, nil); err == nil {
		t.Error("bad csv path accepted")
	}
}

func TestRunFigure1(t *testing.T) {
	var b strings.Builder
	if err := runFigure1(&b, 10, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 1 toy example",
		"Gender=Male ∧ Language=English",
		"exhaustive optimum: 0.500 — unbalanced matches it (0.500)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunExhaustiveDemo(t *testing.T) {
	var b strings.Builder
	if err := runExhaustiveDemo(&b, 7, 10, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "budget exceeded") {
		t.Errorf("six-attribute exhaustive did not blow the budget:\n%s", out)
	}
	if !strings.Contains(out, "restricted to 2 attributes: optimum") {
		t.Errorf("two-attribute exhaustive missing:\n%s", out)
	}
}

func TestVerdict(t *testing.T) {
	if verdict(0.5, 0.5) != "matches" {
		t.Error("equal should match")
	}
	if verdict(0.4, 0.5) != "is below" {
		t.Error("lower should be below")
	}
}

func TestRunTablesMultiSeed(t *testing.T) {
	var b strings.Builder
	if err := runTables(&b, nil, "1", 60, 7, 10, false, "", "", "", 2, 3, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "3 seeds") || !strings.Contains(out, "±") {
		t.Errorf("multi-seed output missing aggregation markers:\n%s", out)
	}
}

func TestRunSweepUShape(t *testing.T) {
	var b strings.Builder
	if err := runSweep(&b, nil, 300, 7, 10, 5, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "unfairness vs α") {
		t.Fatalf("sweep output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+5 {
		t.Fatalf("%d lines, want 7", len(lines))
	}
	// Parse the unfairness column and check the U shape: extremes above
	// the middle.
	var vals []float64
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%f", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		vals = append(vals, v)
	}
	mid := vals[len(vals)/2]
	if !(vals[0] > mid && vals[len(vals)-1] > mid) {
		t.Fatalf("no U shape: %v", vals)
	}
}

func TestRunSweepValidation(t *testing.T) {
	var b strings.Builder
	if err := runSweep(&b, nil, 50, 1, 10, 1, nil); err == nil {
		t.Error("points=1 accepted")
	}
}

func TestBenchTelemetry(t *testing.T) {
	ctx, tracer := telemetry.WithTracer(context.Background(), "fairbench")
	bt := &benchTelemetry{ctx: ctx, reg: telemetry.NewRegistry()}
	var b strings.Builder
	if err := runSweep(&b, nil, 60, 7, 10, 3, bt); err != nil {
		t.Fatal(err)
	}
	if err := runTables(&b, nil, "1", 50, 7, 10, false, "", "", "", 1, 1, bt); err != nil {
		t.Fatal(err)
	}
	snap := bt.reg.Snapshot()
	if snap.Counters[core.MetricEMDEvaluations] <= 0 {
		t.Errorf("registry missing %s after sweep+table", core.MetricEMDEvaluations)
	}
	tree := tracer.Finish()
	if tree == nil || tree.Name != "fairbench" {
		t.Fatalf("span tree root = %+v, want fairbench", tree)
	}
	phases := map[string]bool{}
	tree.Walk(func(st *telemetry.SpanTree) { phases[st.Name] = true })
	for _, want := range []string{"run", "scan", "emd"} {
		if !phases[want] {
			t.Errorf("span tree missing phase %q", want)
		}
	}
}

func TestBenchTelemetryNilSafe(t *testing.T) {
	var b strings.Builder
	if err := runFigure1(&b, 10, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 1") {
		t.Errorf("figure output:\n%s", b.String())
	}
}
