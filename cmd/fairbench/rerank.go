package main

import (
	"fmt"
	"io"
	"math"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/rerank"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// runRerank evaluates every registered serving-time re-ranker over a
// gender-biased ranking and prints the fairness/utility trade-off table:
// the core engine's audit of each served page (restricted to the
// mitigated attribute), its NDCG against the score-optimal page, and the
// page-level exposure disparity. The biasing score function overlaps the
// two groups' ranges so the disadvantaged group appears inside the page
// at its bottom — the regime where the within-page audit is informative
// (see rerank.AuditPage).
func runRerank(w io.Writer, ds *dataset.Dataset, workers int, seed uint64, k int, bt *benchTelemetry) error {
	if ds == nil {
		var err error
		if ds, err = simulate.PaperWorkers(workers, seed); err != nil {
			return err
		}
	} else {
		workers = ds.N()
	}
	f, err := scoring.NewRuleFunc("biased", seed, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.3, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.7},
	})
	if err != nil {
		return err
	}
	attr := ds.Schema().ProtectedIndex("Gender")
	ranked := marketplace.RankBy(ds, f, 0)
	base, outcomes, err := rerank.Evaluate(bt.context(), ds, attr, ranked, k, rerank.Params{Epsilon: 1}, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serving-time re-ranking, %d workers, page size %d, attribute Gender\n", workers, k)
	fmt.Fprintf(w, "%-16s  %10s  %8s  %9s\n", "algorithm", "unfairness", "ndcg", "disparity")
	row := func(o rerank.Outcome) {
		name := o.Algorithm
		if name == "" {
			name = "(unmitigated)"
		}
		disp := fmt.Sprintf("%9.3f", o.Disparity)
		if math.IsInf(o.Disparity, 0) || math.IsNaN(o.Disparity) { // a group got zero exposure
			disp = " shut-out"
		}
		fmt.Fprintf(w, "%-16s  %10.4f  %8.4f  %s\n", name, o.Unfairness, o.NDCG, disp)
	}
	row(base)
	for _, o := range outcomes {
		row(o)
	}
	return nil
}
