package main

import (
	"fmt"
	"io"
	"strings"

	"fairrank/internal/simulate/driftsim"
)

// runDriftScenario runs the population-shift drift scenario and prints
// the mitigation comparison: windowed-unfairness trajectories side by
// side, then per-mitigation detection latency. The default shift (0.25)
// with spread 0.5 is the regime where both mitigations keep the drifted
// group visible; -drift-shift 0.5 demonstrates the shut-out regime where
// the proxy-free re-ranker drops the group from the page entirely and
// the drift becomes undetectable to a page-observing monitor.
func runDriftScenario(w io.Writer, workers, steps int, seed uint64, shift, spread float64) error {
	res, err := driftsim.RunDrift(driftsim.Spec{
		Population: workers,
		Seed:       seed,
		Steps:      steps,
		Shift:      shift,
		Spread:     spread,
	})
	if err != nil {
		return err
	}
	spec := res.Spec
	fmt.Fprintf(w, "population-shift drift scenario: %d workers, %d steps, page %d\n",
		spec.Population, spec.Steps, spec.K)
	fmt.Fprintf(w, "%s scores of %s=%s shift by %.2f from step %d; jitter spread %.2f\n\n",
		spec.Attribute, spec.Attribute, spec.Minority, spec.Shift, spec.ShiftAt, spec.Spread)

	fmt.Fprintf(w, "windowed unfairness (window %d events):\n", spec.Monitor.Window)
	fmt.Fprintf(w, "%6s", "step")
	for _, run := range res.Runs {
		fmt.Fprintf(w, "  %12s", run.Mitigation)
	}
	fmt.Fprintln(w)
	every := spec.Steps / 12
	if every < 1 {
		every = 1
	}
	for step := 0; step < spec.Steps; step++ {
		if (step+1)%every != 0 && step != spec.Steps-1 && step != spec.ShiftAt {
			continue
		}
		mark := " "
		if step == spec.ShiftAt {
			mark = "*" // shift begins
		}
		fmt.Fprintf(w, "%5d%s", step, mark)
		for _, run := range res.Runs {
			fmt.Fprintf(w, "  %12.4f", run.Trajectory[step])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(* = shift begins; baseline sealed on the step before)\n\n")

	fmt.Fprintf(w, "%-12s  %9s  %9s  %9s  %s\n", "mitigation", "baseline", "final", "detected", "latency")
	for _, run := range res.Runs {
		detected, latency := "never", "—"
		if run.DetectionStep >= 0 {
			detected = fmt.Sprintf("step %d", run.DetectionStep)
			latency = fmt.Sprintf("%d steps", run.DetectionLatency)
		}
		fmt.Fprintf(w, "%-12s  %9.4f  %9.4f  %9s  %s\n",
			run.Mitigation, run.Baseline, run.Final, detected, latency)
	}
	undetected := false
	for _, run := range res.Runs {
		if run.DetectionStep < 0 {
			undetected = true
		}
	}
	if undetected {
		fmt.Fprintf(w, "\n%s\n", strings.TrimSpace(`
a "never" row means the drifted group vanished from the served pages:
the monitor's window holds one group, reads unfairness 0, and the drift
is invisible — the cost of proxy-free mitigation in the shut-out regime.`))
	}
	return nil
}
