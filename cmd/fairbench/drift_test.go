package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDriftScenarioMildRegime(t *testing.T) {
	var b bytes.Buffer
	if err := runDriftScenario(&b, 300, 45, 1, 0.25, 0.5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"population-shift drift scenario: 300 workers, 45 steps",
		"randomized", "det-greedy", "mitigation", "latency",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Both mitigations detect in this regime: no "never" row.
	if strings.Contains(out, "never") {
		t.Fatalf("mild regime reported an undetected run:\n%s", out)
	}
}

func TestRunDriftScenarioShutOutRegime(t *testing.T) {
	var b bytes.Buffer
	if err := runDriftScenario(&b, 300, 45, 1, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "never") || !strings.Contains(out, "shut-out regime") {
		t.Fatalf("shut-out regime not reported:\n%s", out)
	}
}

func TestRunDriftScenarioValidation(t *testing.T) {
	var b bytes.Buffer
	if err := runDriftScenario(&b, 300, 1, 1, 0.25, 0.5); err == nil {
		t.Fatal("single-step scenario accepted")
	}
}
