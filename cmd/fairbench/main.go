// Command fairbench regenerates the paper's evaluation artifacts: Tables
// 1–3 (average pairwise EMD and runtime per algorithm and scoring
// function), the Figure 1 toy example, and the exhaustive-search hardness
// demonstration.
//
// Regenerate every table at full paper scale:
//
//	fairbench -table all
//
// Quick pass at reduced scale, with CSV output:
//
//	fairbench -table 1 -workers 200 -csv table1.csv
//
// Figure 1 and the hardness demo:
//
//	fairbench -figure1
//	fairbench -exhaustive-demo
//
// The serving-time re-ranker fairness/utility trade-off table:
//
//	fairbench -rerank -workers 500
//
// The population-shift drift scenario (proxy-free randomized vs
// det-greedy under a continuous audit):
//
//	fairbench -drift
//	fairbench -drift -drift-shift 0.5   # the shut-out regime
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/report"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
	"fairrank/internal/telemetry"
)

// benchTelemetry carries the optional -telemetry-json state through the
// subcommands: a traced context for span capture and a registry the audit
// evaluators record into. A nil *benchTelemetry disables both.
type benchTelemetry struct {
	ctx context.Context
	reg *telemetry.Registry
}

func (bt *benchTelemetry) context() context.Context {
	if bt == nil || bt.ctx == nil {
		return context.Background()
	}
	return bt.ctx
}

func (bt *benchTelemetry) registry() *telemetry.Registry {
	if bt == nil {
		return nil
	}
	return bt.reg
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairbench: ")
	var (
		table   = flag.String("table", "", "table to regenerate: 1, 2, 3 or all")
		workers = flag.Int("workers", 0, "override the population size (0 = paper scale)")
		snap    = flag.String("snapshot", "", "audit this columnar snapshot (mmap, zero-copy) instead of generating workers")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		bins    = flag.Int("bins", 10, "histogram bins")
		prune   = flag.Bool("prune", false, "enable the branch-and-bound pruning cascade (bit-identical results, see DESIGN.md §9)")
		csvOut  = flag.String("csv", "", "also write results as CSV to this file")
		mdOut   = flag.String("md", "", "also write results as Markdown to this file")
		jsonOut = flag.String("json", "", "also write results as JSON to this file")
		par     = flag.Int("parallel", 1, "run (function, algorithm) cells on this many goroutines (timings become contention-affected)")
		nSeeds  = flag.Int("seeds", 1, "repeat each table over this many seeds and report mean ± stddev")
		figure1 = flag.Bool("figure1", false, "reproduce the Figure 1 toy example")
		sweep   = flag.Bool("sweep", false, "sweep α over [0,1] and report unfairness per mixing weight")
		points  = flag.Int("points", 11, "number of α values for -sweep")
		exDemo  = flag.Bool("exhaustive-demo", false, "demonstrate the exhaustive-search budget blow-up")
		rerankF = flag.Bool("rerank", false, "evaluate every serving-time re-ranker's fairness/utility trade-off")
		rerankK = flag.Int("rerank-k", 125, "page size for -rerank")
		driftF  = flag.Bool("drift", false, "run the population-shift drift scenario: proxy-free randomized vs det-greedy under a continuous audit")
		driftSh = flag.Float64("drift-shift", 0.25, "total minority score depression injected by -drift")
		driftSp = flag.Float64("drift-spread", 0.5, "randomized re-ranker jitter width for -drift")
		driftSt = flag.Int("drift-steps", 60, "serving steps for -drift")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
		telJSON = flag.String("telemetry-json", "", "write engine metrics and span trees as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()
	if !*figure1 && !*exDemo && !*sweep && !*rerankF && !*driftF && *table == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	var (
		bt     *benchTelemetry
		tracer *telemetry.Tracer
	)
	if *telJSON != "" {
		ctx, tr := telemetry.WithTracer(context.Background(), "fairbench")
		tracer = tr
		bt = &benchTelemetry{ctx: ctx, reg: telemetry.NewRegistry()}
	}
	var snapDS *dataset.Dataset
	if *snap != "" {
		var err error
		if snapDS, err = dataset.OpenSnapshot(*snap); err != nil {
			log.Fatal(err)
		}
		defer snapDS.Close()
	}
	if *sweep {
		n := *workers
		if n == 0 {
			n = simulate.SmallPopulation
		}
		if err := runSweep(os.Stdout, snapDS, n, *seed, *bins, *points, bt); err != nil {
			log.Fatal(err)
		}
	}
	if *rerankF {
		n := *workers
		if n == 0 {
			n = simulate.SmallPopulation
		}
		if err := runRerank(os.Stdout, snapDS, n, *seed, *rerankK, bt); err != nil {
			log.Fatal(err)
		}
	}
	if *driftF {
		n := *workers
		if n == 0 {
			n = simulate.SmallPopulation
		}
		if err := runDriftScenario(os.Stdout, n, *driftSt, *seed, *driftSh, *driftSp); err != nil {
			log.Fatal(err)
		}
	}
	if *figure1 {
		if err := runFigure1(os.Stdout, *bins, bt); err != nil {
			log.Fatal(err)
		}
	}
	if *exDemo {
		if err := runExhaustiveDemo(os.Stdout, *seed, *bins, bt); err != nil {
			log.Fatal(err)
		}
	}
	if *table != "" {
		if err := runTables(os.Stdout, snapDS, *table, *workers, *seed, *bins, *prune, *csvOut, *mdOut, *jsonOut, *par, *nSeeds, bt); err != nil {
			log.Fatal(err)
		}
	}
	if *telJSON != "" {
		if err := telemetry.WriteReportFile(*telJSON, tracer, bt.reg); err != nil {
			log.Fatal(err)
		}
	}
}

func runTables(w io.Writer, ds *dataset.Dataset, table string, workers int, seed uint64, bins int, prune bool, csvOut, mdOut, jsonOut string, parallel, nSeeds int, bt *benchTelemetry) error {
	var specs []simulate.Spec
	add := func(s simulate.Spec, err error) error {
		if err != nil {
			return err
		}
		if workers > 0 {
			s.Workers = workers
		}
		s.Dataset = ds // nil = generate s.Workers synthetic workers
		s.Config = core.Config{Bins: bins, Prune: prune, Metrics: bt.registry()}
		specs = append(specs, s)
		return nil
	}
	switch table {
	case "1":
		if err := add(simulate.Table1Spec(seed)); err != nil {
			return err
		}
	case "2":
		if err := add(simulate.Table2Spec(seed)); err != nil {
			return err
		}
	case "3":
		if err := add(simulate.Table3Spec(seed)); err != nil {
			return err
		}
	case "all":
		if err := add(simulate.Table1Spec(seed)); err != nil {
			return err
		}
		if err := add(simulate.Table2Spec(seed)); err != nil {
			return err
		}
		if err := add(simulate.Table3Spec(seed)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown table %q (want 1, 2, 3 or all)", table)
	}

	open := func(path string) (*os.File, error) {
		if path == "" {
			return nil, nil
		}
		return os.Create(path)
	}
	csvFile, err := open(csvOut)
	if err != nil {
		return err
	}
	if csvFile != nil {
		defer csvFile.Close()
	}
	mdFile, err := open(mdOut)
	if err != nil {
		return err
	}
	if mdFile != nil {
		defer mdFile.Close()
	}
	jsonFile, err := open(jsonOut)
	if err != nil {
		return err
	}
	if jsonFile != nil {
		defer jsonFile.Close()
	}
	for i, spec := range specs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if nSeeds > 1 {
			seeds := make([]uint64, nSeeds)
			for k := range seeds {
				seeds[k] = spec.Seed + uint64(k)
			}
			agg, err := simulate.RunSeeds(spec, seeds, parallel)
			if err != nil {
				return err
			}
			if err := report.AggregateTable(w, agg); err != nil {
				return err
			}
			continue
		}
		res, err := simulate.RunParallel(spec, parallel)
		if err != nil {
			return err
		}
		if err := report.Table(w, res); err != nil {
			return err
		}
		if csvFile != nil {
			if err := report.CSV(csvFile, res); err != nil {
				return err
			}
		}
		if mdFile != nil {
			if err := report.Markdown(mdFile, res); err != nil {
				return err
			}
		}
		if jsonFile != nil {
			if err := report.JSON(jsonFile, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// runSweep measures unfairness as a function of the mixing weight α in
// f = α·LanguageTest + (1-α)·ApprovalRate. The paper's f1–f5 are five
// samples of this curve; the sweep shows its full shape — highest at the
// single-attribute extremes (α = 0 and 1), lowest for balanced mixes,
// which is the paper's central Table-1/2 finding as a curve.
func runSweep(w io.Writer, ds *dataset.Dataset, workers int, seed uint64, bins, points int, bt *benchTelemetry) error {
	if points < 2 {
		return fmt.Errorf("sweep needs at least 2 points")
	}
	if ds == nil {
		var err error
		if ds, err = simulate.PaperWorkers(workers, seed); err != nil {
			return err
		}
	} else {
		workers = ds.N()
	}
	fmt.Fprintf(w, "unfairness vs α (%d workers, balanced algorithm)\n", workers)
	fmt.Fprintf(w, "%8s  %10s  %s\n", "α", "unfairness", "")
	maxU := 0.0
	values := make([]float64, points)
	for i := 0; i < points; i++ {
		alpha := float64(i) / float64(points-1)
		f, err := scoring.NewLinear(fmt.Sprintf("f(α=%.2f)", alpha), map[string]float64{
			"LanguageTest": alpha,
			"ApprovalRate": 1 - alpha,
		})
		if err != nil {
			return err
		}
		e, err := core.NewEvaluator(ds, f, core.Config{Bins: bins, Metrics: bt.registry()})
		if err != nil {
			return err
		}
		res, err := core.Run(bt.context(), core.Spec{Evaluator: e})
		if err != nil {
			return err
		}
		values[i] = res.Unfairness
		if values[i] > maxU {
			maxU = values[i]
		}
	}
	for i, u := range values {
		alpha := float64(i) / float64(points-1)
		bar := int(u / maxU * 40)
		fmt.Fprintf(w, "%8.2f  %10.4f  %s\n", alpha, u, strings.Repeat("#", bar))
	}
	return nil
}

func runFigure1(w io.Writer, bins int, bt *benchTelemetry) error {
	ds, err := simulate.Figure1Workers()
	if err != nil {
		return err
	}
	e, err := core.NewEvaluator(ds, simulate.Figure1Func(), core.Config{Bins: bins, Metrics: bt.registry()})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1 toy example: 10 workers, attributes Gender and Language")
	fmt.Fprintln(w)
	res, err := core.Run(bt.context(), core.Spec{Algorithm: "unbalanced", Evaluator: e})
	if err != nil {
		return err
	}
	if err := report.Tree(w, e, res); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Partitioning(w, e, res.Partitioning); err != nil {
		return err
	}
	ex, err := core.Run(bt.context(), core.Spec{Algorithm: "exhaustive", Evaluator: e, Budget: 10000})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "exhaustive optimum: %.3f — unbalanced %s it (%.3f)\n",
		ex.Unfairness, verdict(res.Unfairness, ex.Unfairness), res.Unfairness)
	return nil
}

func verdict(heuristic, exact float64) string {
	if heuristic >= exact-1e-9 {
		return "matches"
	}
	return "is below"
}

func runExhaustiveDemo(w io.Writer, seed uint64, bins int, bt *benchTelemetry) error {
	ds, err := simulate.PaperWorkers(100, seed)
	if err != nil {
		return err
	}
	cards := make([]int, len(ds.Schema().Protected))
	for i, a := range ds.Schema().Protected {
		cards[i] = a.Cardinality()
	}
	fmt.Fprintf(w, "partitioning-space size for the paper's 6 attributes: %g\n",
		partition.CountTrees(cards))
	funcs, err := simulate.RandomFunctions()
	if err != nil {
		return err
	}
	e, err := core.NewEvaluator(ds, funcs[0], core.Config{Bins: bins, Metrics: bt.registry()})
	if err != nil {
		return err
	}
	if _, err := core.Run(bt.context(), core.Spec{
		Algorithm: "exhaustive", Evaluator: e, Budget: 1_000_000,
	}); err != nil {
		fmt.Fprintf(w, "exhaustive over all 6 attributes: %v (as in the paper, which\n"+
			"reports the brute-force solver failed to terminate in two days)\n", err)
	} else {
		fmt.Fprintln(w, "exhaustive unexpectedly finished — budget too generous?")
	}
	res, err := core.Run(bt.context(), core.Spec{
		Algorithm: "exhaustive", Evaluator: e, Attrs: []int{0, 1}, Budget: 1_000_000,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "exhaustive restricted to 2 attributes: optimum %.3f in %s\n",
		res.Unfairness, res.Elapsed)
	return nil
}
