package main

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"fairrank/internal/server"
	"fairrank/internal/store"
)

func TestBootstrapDemo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "boot.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := bootstrapDemo(db, 50, 1); err != nil {
		t.Fatal(err)
	}
	// The server must reload the snapshot and expose it.
	srv, err := server.New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/datasets/demo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("demo dataset = %d", resp.StatusCode)
	}
}

func TestBootstrapDemoValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "boot.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := bootstrapDemo(db, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}
