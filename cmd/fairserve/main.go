// Command fairserve runs the fairrank platform server: an HTTP API for
// dataset upload, task posting, filtered ranking and fairness audits,
// backed by the embedded append-only store.
//
// Usage:
//
//	fairserve -addr :8080 -db fairrank.db
//	fairserve -addr :8080 -db fairrank.db -bootstrap 500   # preload a demo population
//
// Clustered (every node lists every other node; see TUTORIAL.md §14):
//
//	fairserve -addr :8080 -db a.db -node-id node-a -advertise http://127.0.0.1:8080 \
//	    -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/tasks -d '{"id":"gig","dataset":"demo","weights":{"LanguageTest":1}}'
//	curl 'localhost:8080/v1/rank?task=gig&k=5&q=Gender%20%3D%20%27Female%27'
//	curl -X POST localhost:8080/v1/audits -d '{"dataset":"demo","algorithm":"balanced","weights":{"LanguageTest":1}}'
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fairrank/internal/cluster"
	"fairrank/internal/server"
	"fairrank/internal/simulate"
	"fairrank/internal/store"
	"fairrank/internal/telemetry"
)

// bootstrapDemo generates a synthetic population and stores it under the
// dataset name "demo", so a fresh server has something to rank and audit.
func bootstrapDemo(db *store.DB, n int, seed uint64) error {
	ds, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		return err
	}
	var snap bytes.Buffer
	if err := ds.WriteBinary(&snap); err != nil {
		return err
	}
	return db.Put("datasets", "demo", snap.Bytes())
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairserve: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dbPath     = flag.String("db", "fairrank.db", "path to the embedded store")
		sync       = flag.Bool("sync", false, "fsync after every write")
		bootstrap  = flag.Int("bootstrap", 0, "preload a synthetic population of this size as dataset \"demo\"")
		seed       = flag.Uint64("seed", 42, "bootstrap generation seed")
		auditLimit = flag.Int("audit-limit", 4, "maximum concurrent audit requests (excess get 503)")
		pprofOn    = flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
		jobWorkers = flag.Int("job-workers", 2, "async audit job worker pool size")
		jobQueue   = flag.Int("job-queue", 64, "maximum queued+running async jobs (excess get 429)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests and jobs")
		nodeID     = flag.String("node-id", "", "stable cluster node name (required with -peers)")
		advertise  = flag.String("advertise", "", "base URL peers reach this node at, e.g. http://10.0.0.1:8080 (required with -peers)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs; enables cluster mode")
	)
	flag.Parse()

	// One registry aggregates the store's, the HTTP layer's and the audit
	// engine's series into a single GET /metrics exposition; it is also
	// published under expvar for plain-JSON debugging.
	metrics := telemetry.NewRegistry()
	metrics.PublishExpvar("fairrank")

	db, err := store.Open(*dbPath, store.Options{Sync: *sync, Metrics: metrics})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if *bootstrap > 0 {
		if err := bootstrapDemo(db, *bootstrap, *seed); err != nil {
			log.Fatal(err)
		}
		log.Printf("bootstrapped dataset %q with %d workers", "demo", *bootstrap)
	}

	srvOpts := []server.ServerOption{
		server.WithRequestLog(log.Printf),
		server.WithAuditLimit(*auditLimit),
		server.WithMetrics(metrics),
		server.WithJobWorkers(*jobWorkers),
		server.WithJobQueueLimit(*jobQueue),
	}
	if *pprofOn {
		srvOpts = append(srvOpts, server.WithPprof())
	}
	srv, err := server.New(db, srvOpts...)
	if err != nil {
		log.Fatal(err)
	}

	if *peers != "" {
		if *nodeID == "" || *advertise == "" {
			log.Fatal("-peers requires both -node-id and -advertise")
		}
		var peerURLs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerURLs = append(peerURLs, p)
			}
		}
		if err := srv.EnableCluster(cluster.Config{
			Self:   *advertise,
			NodeID: *nodeID,
			Peers:  peerURLs,
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster mode: node %s advertising %s with %d peers", *nodeID, *advertise, len(peerURLs))
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops admission (the
	// listener first, so nothing new arrives; then the job queue) and
	// drains in-flight work under the -drain deadline. Jobs that outlive
	// the deadline are parked durably and resume on the next start. A
	// second signal kills the process the old-fashioned way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (store: %s)", *addr, *dbPath)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal is fatal
	log.Printf("shutting down (drain deadline %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("job queue drain: %v (unfinished jobs stay queued for the next start)", err)
	}
	if err := db.Sync(); err != nil && !errors.Is(err, store.ErrClosed) {
		log.Printf("store sync: %v", err)
	}
	log.Printf("bye")
}
