package main

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func lines(pairs ...[2]interface{}) string {
	var b strings.Builder
	b.WriteString("goos: linux\n")
	for _, p := range pairs {
		fmt.Fprintf(&b, "BenchmarkTelemetryOverhead/%s-8 \t 5\t %d ns/op\n", p[0], p[1])
	}
	b.WriteString("PASS\n")
	return b.String()
}

func TestComparePairedRatios(t *testing.T) {
	in := lines(
		[2]interface{}{"telemetry=off", 100},
		[2]interface{}{"telemetry=on", 103},
		[2]interface{}{"telemetry=off", 100},
		[2]interface{}{"telemetry=on", 105},
		[2]interface{}{"telemetry=off", 100},
		[2]interface{}{"telemetry=on", 103},
	)
	cmp, err := compare(strings.NewReader(in), "telemetry=off", "telemetry=on")
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.paired {
		t.Fatal("equal run counts should be paired")
	}
	if cmp.baseRuns != 3 || cmp.candRuns != 3 {
		t.Errorf("run counts = %d / %d, want 3 / 3", cmp.baseRuns, cmp.candRuns)
	}
	if math.Abs(cmp.overheadPct-3) > 1e-9 {
		t.Errorf("overhead = %v%%, want 3%% (median ratio)", cmp.overheadPct)
	}
}

func TestComparePairingCancelsDrift(t *testing.T) {
	// Round 2 runs on a machine twice as loaded as round 1; the absolute
	// numbers double but the per-round ratio stays 1%, and that is what
	// the gate must see.
	in := lines(
		[2]interface{}{"telemetry=off", 10000},
		[2]interface{}{"telemetry=on", 10100},
		[2]interface{}{"telemetry=off", 20000},
		[2]interface{}{"telemetry=on", 20200},
	)
	cmp, err := compare(strings.NewReader(in), "telemetry=off", "telemetry=on")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.overheadPct-1) > 1e-9 {
		t.Errorf("overhead = %v%%, want 1%%", cmp.overheadPct)
	}
}

func TestCompareUnpairedFallsBackToMedians(t *testing.T) {
	in := lines(
		[2]interface{}{"telemetry=off", 100},
		[2]interface{}{"telemetry=off", 102},
		[2]interface{}{"telemetry=off", 90},
		[2]interface{}{"telemetry=on", 104},
		[2]interface{}{"telemetry=on", 102},
	)
	cmp, err := compare(strings.NewReader(in), "telemetry=off", "telemetry=on")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.paired {
		t.Fatal("unequal run counts must not be paired")
	}
	if cmp.baseMedian != 100 || cmp.candMedian != 103 {
		t.Fatalf("medians = %v / %v, want 100 / 103", cmp.baseMedian, cmp.candMedian)
	}
	if math.Abs(cmp.overheadPct-3) > 1e-9 {
		t.Errorf("overhead = %v%%, want 3%%", cmp.overheadPct)
	}
}

func TestCompareNegativeOverhead(t *testing.T) {
	in := lines(
		[2]interface{}{"telemetry=off", 100},
		[2]interface{}{"telemetry=on", 95},
	)
	cmp, err := compare(strings.NewReader(in), "telemetry=off", "telemetry=on")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.overheadPct >= 0 {
		t.Errorf("overhead = %v%%, want negative", cmp.overheadPct)
	}
}

func TestCompareMissingSeries(t *testing.T) {
	in := lines([2]interface{}{"telemetry=off", 100})
	if _, err := compare(strings.NewReader(in), "telemetry=off", "telemetry=on"); err == nil {
		t.Fatal("expected error with no candidate runs")
	}
	if _, err := compare(strings.NewReader("PASS\n"), "off", "on"); err == nil {
		t.Fatal("expected error with empty input")
	}
}
