// Command benchdiff is the CI telemetry-overhead gate. It reads
// `go test -bench -count N` output from stdin, groups the repeated
// runs of a baseline and a candidate sub-benchmark, compares their
// median ns/op and exits non-zero when the candidate is more than
// -max-overhead percent slower:
//
//	go test -run '^$' -bench BenchmarkTelemetryOverhead -count 5 ./internal/core/ |
//	    benchdiff -max-overhead 5
//
// Medians over several -count repetitions, not single runs, keep one
// noisy scheduling hiccup from failing the build.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"fairrank/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		maxOverhead = flag.Float64("max-overhead", 5, "fail when the candidate's median ns/op exceeds the baseline's by more than this percentage")
		baseSub     = flag.String("baseline", "telemetry=off", "substring selecting baseline benchmark lines")
		candSub     = flag.String("candidate", "telemetry=on", "substring selecting candidate benchmark lines")
	)
	flag.Parse()
	cmp, err := compare(os.Stdin, *baseSub, *candSub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline  (%s): median %.0f ns/op over %d runs\n", *baseSub, cmp.baseMedian, cmp.baseRuns)
	fmt.Printf("candidate (%s): median %.0f ns/op over %d runs\n", *candSub, cmp.candMedian, cmp.candRuns)
	how := "median vs median"
	if cmp.paired {
		how = fmt.Sprintf("median of %d per-round ratios", cmp.baseRuns)
	}
	fmt.Printf("overhead: %+.2f%% (%s, limit %.2f%%)\n", cmp.overheadPct, how, *maxOverhead)
	if cmp.overheadPct > *maxOverhead {
		log.Fatalf("overhead %.2f%% exceeds the %.2f%% budget", cmp.overheadPct, *maxOverhead)
	}
}

type comparison struct {
	baseMedian, candMedian float64
	baseRuns, candRuns     int
	overheadPct            float64
	paired                 bool
}

// compare parses benchmark output and reduces the baseline and
// candidate series to an overhead percentage. When both series have the
// same number of runs — the normal case, each `go test -count` round
// emitting one line per variant — the k-th baseline run is paired with
// the k-th candidate run and the overhead is the median of the
// per-round ratios. Rounds close in time see the same machine load, so
// pairing cancels the slow drift of a busy host that would bias a
// plain median-vs-median comparison (every baseline group finishing
// before the first candidate run starts). Unequal run counts fall back
// to median-vs-median.
func compare(r io.Reader, baseSub, candSub string) (comparison, error) {
	results, err := benchfmt.Parse(r)
	if err != nil {
		return comparison{}, err
	}
	var base, cand []float64
	for _, res := range results {
		// Candidate first: guard against one substring containing the
		// other ("telemetry=off" contains neither, but stay order-safe).
		switch {
		case strings.Contains(res.Name, candSub):
			cand = append(cand, res.NsPerOp)
		case strings.Contains(res.Name, baseSub):
			base = append(base, res.NsPerOp)
		}
	}
	if len(base) == 0 || len(cand) == 0 {
		return comparison{}, fmt.Errorf("need both %q (%d runs) and %q (%d runs) in the input",
			baseSub, len(base), candSub, len(cand))
	}
	c := comparison{
		baseMedian: benchfmt.Median(base),
		candMedian: benchfmt.Median(cand),
		baseRuns:   len(base),
		candRuns:   len(cand),
	}
	if c.baseMedian <= 0 {
		return comparison{}, fmt.Errorf("baseline median is %v ns/op", c.baseMedian)
	}
	if len(base) == len(cand) {
		ratios := make([]float64, len(base))
		for i := range base {
			if base[i] <= 0 {
				return comparison{}, fmt.Errorf("baseline run %d is %v ns/op", i+1, base[i])
			}
			ratios[i] = cand[i] / base[i]
		}
		c.overheadPct = (benchfmt.Median(ratios) - 1) * 100
		c.paired = true
	} else {
		c.overheadPct = (c.candMedian - c.baseMedian) / c.baseMedian * 100
	}
	return c, nil
}
