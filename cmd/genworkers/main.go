// Command genworkers generates a synthetic worker population over the
// paper's attribute space and writes it as CSV, JSON, or a columnar
// snapshot (the mmap-ready binary format fairaudit -snapshot and the
// fairserve upload API consume).
//
// Usage:
//
//	genworkers -n 7300 -seed 42 -format csv -o workers.csv
//	genworkers -n 1000000 -seed 42 -format snapshot -o workers.snap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fairrank/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genworkers: ")
	var (
		n      = flag.Int("n", simulate.SmallPopulation, "number of workers to generate")
		seed   = flag.Uint64("seed", 42, "generation seed")
		format = flag.String("format", "csv", "output format: csv, json or snapshot")
		out    = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := run(w, *n, *seed, *format); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, n int, seed uint64, format string) error {
	ds, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return ds.WriteCSV(w)
	case "json":
		return ds.WriteJSON(w)
	case "snapshot":
		return ds.WriteSnapshot(w)
	default:
		return fmt.Errorf("unknown format %q (want csv, json or snapshot)", format)
	}
}
