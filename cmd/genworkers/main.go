// Command genworkers generates a synthetic worker population over the
// paper's attribute space and writes it as CSV or JSON.
//
// Usage:
//
//	genworkers -n 7300 -seed 42 -format csv -o workers.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fairrank/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genworkers: ")
	var (
		n      = flag.Int("n", simulate.SmallPopulation, "number of workers to generate")
		seed   = flag.Uint64("seed", 42, "generation seed")
		format = flag.String("format", "csv", "output format: csv or json")
		out    = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := run(w, *n, *seed, *format); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, n int, seed uint64, format string) error {
	ds, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return ds.WriteCSV(w)
	case "json":
		return ds.WriteJSON(w)
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
}
