package main

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCSV(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 25, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 26 { // header + 25 workers
		t.Fatalf("%d rows, want 26", len(recs))
	}
	if recs[0][0] != "id" || recs[0][1] != "Gender" {
		t.Fatalf("header = %v", recs[0])
	}
}

func TestRunJSON(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 10, 2, "json"); err != nil {
		t.Fatal(err)
	}
	var workers []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 10 {
		t.Fatalf("%d workers", len(workers))
	}
	if _, ok := workers[0]["protected"]; !ok {
		t.Error("missing protected block")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 10, 1, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(&b, 0, 1, "csv"); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, 20, 9, "csv"); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 20, 9, "csv"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}
