package main

import (
	"encoding/json"
	"strings"
	"testing"

	"fairrank/internal/core"
)

func TestBuildArtifact(t *testing.T) {
	bench := "goos: linux\n" +
		"BenchmarkTelemetryOverhead/telemetry=off-8 \t 5\t 90000000 ns/op\t 2048 B/op\t 30 allocs/op\n" +
		"BenchmarkTelemetryOverhead/telemetry=on-8 \t 5\t 91000000 ns/op\t 2100 B/op\t 31 allocs/op\n" +
		"PASS\n"
	a, err := build(strings.NewReader(bench), 150, 7, 10, "balanced", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(a.Benchmarks))
	}
	if a.Benchmarks[0].Name != "BenchmarkTelemetryOverhead/telemetry=off" ||
		a.Benchmarks[0].AllocsPerOp != 30 {
		t.Errorf("first benchmark: %+v", a.Benchmarks[0])
	}
	if a.Audit.Algorithm != "balanced" || a.Audit.Workers != 150 || a.Audit.Unfairness <= 0 {
		t.Errorf("audit info: %+v", a.Audit)
	}
	if a.Telemetry.Counters[core.MetricEMDEvaluations] <= 0 {
		t.Errorf("telemetry snapshot missing %s: %+v", core.MetricEMDEvaluations, a.Telemetry.Counters)
	}
	if a.Telemetry.Counters[core.MetricRuns] != 1 {
		t.Errorf("runs counter = %d, want 1", a.Telemetry.Counters[core.MetricRuns])
	}
	// The artifact must survive a JSON round-trip with its counters intact.
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back artifact
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Telemetry.Counters[core.MetricEMDEvaluations] != a.Telemetry.Counters[core.MetricEMDEvaluations] {
		t.Error("counters changed across JSON round-trip")
	}
}

func TestBuildBadAlgorithm(t *testing.T) {
	if _, err := build(strings.NewReader(""), 50, 1, 10, "quantum", false); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}
