// Command benchjson turns `go test -bench -benchmem` output into a
// machine-readable benchmark artifact (BENCH_4.json). It reads the
// benchmark text from stdin, then runs one instrumented reference audit
// so the artifact also carries the engine's telemetry counters — EMD
// evaluations, cache hits and misses, pair-cache occupancy — alongside
// the ns/op numbers. See EXPERIMENTS.md for the format.
//
//	go test -run '^$' -bench . -benchmem ./internal/core/ | benchjson -out BENCH_4.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"fairrank/internal/benchfmt"
	"fairrank/internal/core"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
	"fairrank/internal/telemetry"
)

// artifact is the BENCH_4.json schema.
type artifact struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks []benchfmt.Result  `json:"benchmarks"`
	Audit      auditInfo          `json:"audit"`
	Telemetry  telemetry.Snapshot `json:"telemetry"`
}

// auditInfo identifies the reference audit whose telemetry counters are
// embedded, so the counts are reproducible.
type auditInfo struct {
	Workers    int     `json:"workers"`
	Seed       uint64  `json:"seed"`
	Algorithm  string  `json:"algorithm"`
	Bins       int     `json:"bins"`
	Prune      bool    `json:"prune"`
	Unfairness float64 `json:"unfairness"`
	ElapsedNS  int64   `json:"elapsed_ns"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out     = flag.String("out", "BENCH_4.json", "output file (\"-\" for stdout)")
		workers = flag.Int("workers", 400, "population size of the reference audit")
		seed    = flag.Uint64("seed", 42, "reference-audit seed")
		bins    = flag.Int("bins", 10, "histogram bins for the reference audit")
		algo    = flag.String("algo", "balanced", "reference-audit algorithm")
		prune   = flag.Bool("prune", false, "enable the branch-and-bound pruning cascade in the reference audit")
	)
	flag.Parse()
	a, err := build(os.Stdin, *workers, *seed, *bins, *algo, *prune)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: %d benchmark lines, %d telemetry counters",
		*out, len(a.Benchmarks), len(a.Telemetry.Counters))
}

func build(in io.Reader, workers int, seed uint64, bins int, algo string, prune bool) (*artifact, error) {
	results, err := benchfmt.Parse(in)
	if err != nil {
		return nil, err
	}
	audit, snap, err := referenceAudit(workers, seed, bins, algo, prune)
	if err != nil {
		return nil, err
	}
	return &artifact{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
		Audit:      audit,
		Telemetry:  snap,
	}, nil
}

// referenceAudit runs one fully instrumented audit and returns its
// headline result plus the complete telemetry snapshot.
func referenceAudit(workers int, seed uint64, bins int, algo string, prune bool) (auditInfo, telemetry.Snapshot, error) {
	fail := func(err error) (auditInfo, telemetry.Snapshot, error) {
		return auditInfo{}, telemetry.Snapshot{}, fmt.Errorf("reference audit: %w", err)
	}
	ds, err := simulate.PaperWorkers(workers, seed)
	if err != nil {
		return fail(err)
	}
	f, err := scoring.NewLinear("f(α=0.5)", map[string]float64{
		"LanguageTest": 0.5,
		"ApprovalRate": 0.5,
	})
	if err != nil {
		return fail(err)
	}
	reg := telemetry.NewRegistry()
	e, err := core.NewEvaluator(ds, f, core.Config{Bins: bins, Metrics: reg, Prune: prune})
	if err != nil {
		return fail(err)
	}
	res, err := core.Run(context.Background(), core.Spec{Algorithm: algo, Evaluator: e, Seed: seed})
	if err != nil {
		return fail(err)
	}
	return auditInfo{
		Workers:    workers,
		Seed:       seed,
		Algorithm:  res.Algorithm,
		Bins:       bins,
		Prune:      prune,
		Unfairness: res.Unfairness,
		ElapsedNS:  int64(res.Elapsed),
	}, reg.Snapshot(), nil
}
