// Command fairaudit runs a fairness audit on a worker population: it
// searches for the most unfair partitioning of the workers under a scoring
// function and reports the partitioning, its unfairness, and the algorithm's
// decision trace.
//
// Audit a generated population with the paper's f1 (α = 0.5):
//
//	fairaudit -gen 500 -seed 42 -algo balanced -alpha 0.5
//
// Audit a CSV in the paper's schema with explicit weights and a figure:
//
//	fairaudit -data workers.csv -weights LanguageTest=1 -algo unbalanced -figure
//
// Audit a columnar snapshot memory-mapped, without loading it into RAM:
//
//	fairaudit -snapshot workers.snap -algo balanced
//
// Follow the audit with a continuous-audit readout, streaming the rows
// through a sliding-window and/or exponential-decay estimator:
//
//	fairaudit -gen 500 -window 100 -half-life 250
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/explain"
	"fairrank/internal/report"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
	"fairrank/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairaudit: ")
	var (
		dataFile = flag.String("data", "", "CSV dataset in the paper's schema (mutually exclusive with -gen and -snapshot)")
		snapFile = flag.String("snapshot", "", "columnar snapshot file (genworkers -format snapshot); audited via mmap, zero-copy")
		gen      = flag.Int("gen", 0, "generate this many synthetic workers instead of loading -data")
		seed     = flag.Uint64("seed", 42, "seed for generation and random baselines")
		algo     = flag.String("algo", "balanced", "algorithm: "+strings.Join(core.Algorithms(), "|"))
		alpha    = flag.Float64("alpha", 0.5, "weight of LanguageTest in f = α·LanguageTest + (1-α)·ApprovalRate")
		weights  = flag.String("weights", "", "explicit weights, e.g. \"LanguageTest=0.7,ApprovalRate=0.3\" (overrides -alpha)")
		bins     = flag.Int("bins", 10, "histogram bins")
		metric   = flag.String("metric", "emd", "distance metric: emd|l1|tv|chi2|js|ks|hellinger")
		prune    = flag.Bool("prune", false, "enable the branch-and-bound pruning cascade (bit-identical results, see DESIGN.md §9)")
		attrs    = flag.String("attrs", "", "comma-separated protected attributes to audit (default: all)")
		figure   = flag.Bool("figure", false, "render per-partition score histograms")
		tree     = flag.Bool("tree", false, "render the splitting-decision trace")
		sig      = flag.Int("significance", 0, "permutation-test rounds for a p-value (0 = skip)")
		expl     = flag.Bool("explain", false, "print per-attribute importance (solo and leave-one-out)")
		prot     = flag.String("protected", "", "infer schema from -data: comma-separated protected columns")
		obs      = flag.String("observed", "", "infer schema from -data: comma-separated observed columns")
		idCol    = flag.String("id", "", "infer schema from -data: worker-id column (default row numbers)")
		describe = flag.Bool("describe", false, "print a population profile before auditing")
		window   = flag.Int("window", 0, "also stream the rows through a sliding-window continuous audit of this capacity (internal/drift)")
		halfLife = flag.Float64("half-life", 0, "also stream the rows through an exponential-decay continuous audit with this half-life in events")
		timeout  = flag.Duration("timeout", 0, "abort the audit after this long (0 = no deadline)")
		telJSON  = flag.String("telemetry-json", "", "write engine metrics and the audit's span tree as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()
	if err := run(os.Stdout, *dataFile, *snapFile, *gen, *seed, *algo, *alpha, *weights, *bins, *metric, *prune, *attrs, *figure, *tree, *sig, *expl, *prot, *obs, *idCol, *describe, *timeout, *telJSON); err != nil {
		log.Fatal(err)
	}
	if *window > 0 || *halfLife > 0 {
		fmt.Println()
		if err := runContinuousCmd(os.Stdout, *dataFile, *snapFile, *gen, *seed, *alpha, *weights, *bins, *attrs, *window, *halfLife); err != nil {
			log.Fatal(err)
		}
	}
}

func run(w io.Writer, dataFile, snapFile string, gen int, seed uint64, algo string, alpha float64,
	weightSpec string, bins int, metricName string, prune bool, attrSpec string, figure, tree bool, sigRounds int, explainAttrs bool,
	protCols, obsCols, idCol string, describe bool, timeout time.Duration, telJSON string) error {

	ds, err := loadDataset(dataFile, snapFile, gen, seed, protCols, obsCols, idCol)
	if err != nil {
		return err
	}
	// No-op for generated/CSV data; unmaps a -snapshot view.
	defer ds.Close()
	if describe {
		if err := dataset.WriteProfile(w, ds); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	f, err := buildFunc(alpha, weightSpec)
	if err != nil {
		return err
	}
	metric, err := emd.ParseMetric(metricName)
	if err != nil {
		return err
	}
	cfg := core.Config{Bins: bins, Metric: metric, Prune: prune}
	var (
		reg    *telemetry.Registry
		tracer *telemetry.Tracer
	)
	if telJSON != "" {
		reg = telemetry.NewRegistry()
		cfg.Metrics = reg
	}
	e, err := core.NewEvaluator(ds, f, cfg)
	if err != nil {
		return err
	}
	attrIdx, err := parseAttrs(ds, attrSpec)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if telJSON != "" {
		ctx, tracer = telemetry.WithTracer(ctx, "fairaudit")
	}
	res, err := core.Run(ctx, core.Spec{
		Algorithm: algo,
		Evaluator: e,
		Attrs:     attrIdx,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	if telJSON != "" {
		if err := telemetry.WriteReportFile(telJSON, tracer, reg); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "dataset: %d workers; function: %s; metric: %s, %d bins\n",
		ds.N(), f.Name(), metric, bins)
	fmt.Fprintf(w, "%s found unfairness %.4f over %d partitions in %s\n\n",
		res.Algorithm, res.Unfairness, res.Partitioning.Size(), res.Elapsed)
	fmt.Fprintln(w, res.Partitioning.Describe(ds.Schema()))
	if tree {
		fmt.Fprintln(w)
		if err := report.Tree(w, e, res); err != nil {
			return err
		}
	}
	if figure {
		fmt.Fprintln(w)
		if err := report.Partitioning(w, e, res.Partitioning); err != nil {
			return err
		}
	}
	if explainAttrs {
		fmt.Fprintln(w, "\nattribute importance:")
		if err := explain.Report(w, explain.Attributes(e)); err != nil {
			return err
		}
	}
	if sigRounds > 0 {
		p, obs, err := core.Significance(e, res.Partitioning, sigRounds, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\npermutation test (%d rounds): observed %.4f, p = %.4f\n",
			sigRounds, obs, p)
		if p <= 0.05 {
			fmt.Fprintln(w, "the disparity is unlikely to be sampling noise (p <= 0.05)")
		} else {
			fmt.Fprintln(w, "the disparity is compatible with sampling noise (p > 0.05)")
		}
	}
	return nil
}

func loadDataset(dataFile, snapFile string, gen int, seed uint64, protCols, obsCols, idCol string) (*dataset.Dataset, error) {
	sources := 0
	for _, set := range []bool{dataFile != "", snapFile != "", gen > 0} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		return nil, fmt.Errorf("-data, -snapshot and -gen are mutually exclusive")
	case snapFile != "":
		// The columns stay on disk; the audit reads them through the
		// mapping, so RAM cost is independent of population size.
		return dataset.OpenSnapshot(snapFile)
	case dataFile != "":
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if protCols != "" || obsCols != "" {
			// Arbitrary CSV: infer the schema from the named columns.
			return dataset.InferCSV(f, dataset.InferOptions{
				Protected: splitList(protCols),
				Observed:  splitList(obsCols),
				IDColumn:  idCol,
			})
		}
		return dataset.ReadCSV(f, simulate.PaperSchema())
	case gen > 0:
		return simulate.PaperWorkers(gen, seed)
	default:
		return simulate.PaperWorkers(simulate.SmallPopulation, seed)
	}
}

func buildFunc(alpha float64, weightSpec string) (scoring.Func, error) {
	if weightSpec == "" {
		if alpha < 0 || alpha > 1 {
			return nil, fmt.Errorf("alpha %v outside [0,1]", alpha)
		}
		return scoring.NewLinear(fmt.Sprintf("f(α=%.2g)", alpha), map[string]float64{
			"LanguageTest": alpha,
			"ApprovalRate": 1 - alpha,
		})
	}
	w := map[string]float64{}
	for _, pair := range strings.Split(weightSpec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad weight %q (want name=value)", pair)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %v", pair, err)
		}
		w[name] = x
	}
	return scoring.NewLinear("f", w)
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func splitList(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func parseAttrs(ds *dataset.Dataset, spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		i := ds.Schema().ProtectedIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("%q is not a protected attribute", name)
		}
		out = append(out, i)
	}
	return out, nil
}
