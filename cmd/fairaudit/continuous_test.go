package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRunContinuousReadout(t *testing.T) {
	var b bytes.Buffer
	if err := runContinuousCmd(&b, "", "", 200, 7, 0.5, "", 10, "", 50, 100); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"continuous audit: 200 join events, window 50, half-life 100",
		"total", "window", "decay", "final:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// A window covering the whole stream must equal the unbounded monitor
	// — the CLI-level echo of the metamorphic differential test.
	b.Reset()
	if err := runContinuousCmd(&b, "", "", 150, 7, 0.5, "", 10, "Gender", 150, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	last := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "final:") {
			last = l
		}
	}
	fields := strings.Fields(last) // final: total X over N workers; window Y over the last N
	if len(fields) < 8 {
		t.Fatalf("unexpected final line %q", last)
	}
	tot, err1 := strconv.ParseFloat(fields[2], 64)
	win, err2 := strconv.ParseFloat(fields[7], 64)
	if err1 != nil || err2 != nil || tot != win {
		t.Fatalf("full-stream window %v != total %v (line %q)", win, tot, last)
	}
}

func TestRunContinuousValidation(t *testing.T) {
	var b bytes.Buffer
	if err := runContinuousCmd(&b, "", "", 50, 1, 0.5, "", 10, "Charisma", 20, 0); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if err := runContinuousCmd(&b, "", "", 50, 1, 2.5, "", 10, "", 20, 0); err == nil {
		t.Fatal("bad alpha accepted")
	}
	if err := runContinuousCmd(&b, "", "", 50, 1, 0.5, "", 10, "", -3, 0); err == nil {
		t.Fatal("negative window accepted")
	}
}
