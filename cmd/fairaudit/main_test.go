package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/simulate"
	"fairrank/internal/telemetry"
)

func TestRunGeneratedDataset(t *testing.T) {
	var b strings.Builder
	err := run(&b, "", "", 150, 42, "balanced", 0.5, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"150 workers", "balanced found unfairness", "Gender="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunSnapshotMatchesGenerated pins the -snapshot path: auditing a
// memory-mapped snapshot of a generated population produces byte-identical
// CLI output to auditing the in-memory population, modulo elapsed times.
func TestRunSnapshotMatchesGenerated(t *testing.T) {
	elapsed := regexp.MustCompile(`\d+(\.\d+)?(n|µ|m)?s\b`)
	ds, err := simulate.PaperWorkers(150, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "workers.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var mem, mapped strings.Builder
	if err := run(&mem, "", "", 150, 42, "balanced", 0.5, "", 10, "emd", false, "", false, true, 0, false, "", "", "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&mapped, "", path, 0, 42, "balanced", 0.5, "", 10, "emd", false, "", false, true, 0, false, "", "", "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	memOut := elapsed.ReplaceAllString(mem.String(), "T")
	mappedOut := elapsed.ReplaceAllString(mapped.String(), "T")
	if memOut != mappedOut {
		t.Errorf("snapshot audit diverges from in-memory audit:\n--- mem\n%s\n--- snapshot\n%s", memOut, mappedOut)
	}
}

// TestRunPruneIdenticalOutput pins the CLI contract of -prune: the full
// report — unfairness, trace, partitions — is byte-identical with the
// pruning cascade on and off, once the wall-clock duration fields are
// masked.
func TestRunPruneIdenticalOutput(t *testing.T) {
	elapsed := regexp.MustCompile(`\d+(\.\d+)?(n|µ|m)?s\b`)
	outputs := make([]string, 2)
	for i, prune := range []bool{false, true} {
		var b strings.Builder
		err := run(&b, "", "", 150, 42, "balanced", 0.5, "", 10, "emd", prune, "", false, true, 0, false, "", "", "", false, 0, "")
		if err != nil {
			t.Fatal(err)
		}
		outputs[i] = elapsed.ReplaceAllString(b.String(), "X")
	}
	if outputs[0] != outputs[1] {
		t.Errorf("-prune changed the report:\noff:\n%s\non:\n%s", outputs[0], outputs[1])
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"balanced", "unbalanced", "r-balanced", "r-unbalanced", "all-attributes"} {
		var b strings.Builder
		if err := run(&b, "", "", 100, 1, algo, 1, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, ""); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunWithTreeAndFigure(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", "", 100, 2, "unbalanced", 0.5, "", 10, "emd", false, "", true, true, 0, false, "", "", "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "step 1") {
		t.Error("tree trace missing")
	}
	if !strings.Contains(out, "unfairness(P,") {
		t.Error("figure missing")
	}
}

func TestRunFromCSVFile(t *testing.T) {
	ds, err := simulate.PaperWorkers(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "workers.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var b strings.Builder
	if err := run(&b, path, "", 0, 3, "all-attributes", 0.5, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "60 workers") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	cases := []struct {
		name string
		err  func() error
	}{
		{"data and gen exclusive", func() error {
			return run(&b, "x.csv", "", 10, 1, "balanced", 0.5, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, "")
		}},
		{"missing file", func() error {
			return run(&b, "/nonexistent/x.csv", "", 0, 1, "balanced", 0.5, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, "")
		}},
		{"bad algorithm", func() error {
			return run(&b, "", "", 50, 1, "quantum", 0.5, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, "")
		}},
		{"bad alpha", func() error {
			return run(&b, "", "", 50, 1, "balanced", 1.5, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, "")
		}},
		{"bad metric", func() error {
			return run(&b, "", "", 50, 1, "balanced", 0.5, "", 10, "manhattan2", false, "", false, false, 0, false, "", "", "", false, 0, "")
		}},
		{"bad weights", func() error {
			return run(&b, "", "", 50, 1, "balanced", 0.5, "LanguageTest", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, "")
		}},
		{"bad weight value", func() error {
			return run(&b, "", "", 50, 1, "balanced", 0.5, "LanguageTest=lots", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, "")
		}},
		{"bad attr", func() error {
			return run(&b, "", "", 50, 1, "balanced", 0.5, "", 10, "emd", false, "Charisma", false, false, 0, false, "", "", "", false, 0, "")
		}},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestRunWithSignificance(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", "", 100, 6, "balanced", 0.5, "", 10, "emd", false, "", false, false, 50, false, "", "", "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "permutation test (50 rounds)") {
		t.Errorf("significance output missing:\n%s", out)
	}
	if !strings.Contains(out, "p = ") {
		t.Errorf("p-value missing:\n%s", out)
	}
}

func TestRunWithExplain(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", "", 150, 8, "balanced", 1, "", 10, "emd", false, "", false, false, 0, true, "", "", "", false, 0, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "attribute importance") || !strings.Contains(out, "marginal") {
		t.Errorf("explain output missing:\n%s", out)
	}
}

func TestRunWithWeightsAndAttrs(t *testing.T) {
	var b strings.Builder
	err := run(&b, "", "", 120, 5, "balanced", 0.5,
		"LanguageTest=0.8,ApprovalRate=0.2", 10, "l1", false, "Gender,Country", false, false, 0, false, "", "", "", false, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "metric: l1") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunWithInferredSchema(t *testing.T) {
	csv := "worker,city,gender,age,rating\n" +
		"a,Paris,F,30,4.5\nb,Lyon,M,40,3.0\nc,Paris,F,50,4.8\nd,Nice,M,35,2.2\n" +
		"e,Lyon,F,28,4.1\nf,Paris,M,61,3.3\ng,Nice,F,44,4.6\nh,Lyon,M,52,2.8\n"
	path := filepath.Join(t.TempDir(), "custom.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run(&b, path, "", 0, 1, "all-attributes", 0.5, "rating=1", 5, "emd", false, "",
		false, false, 0, false, "gender,city,age", "rating", "worker", true, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "8 workers") || !strings.Contains(out, "gender=") {
		t.Errorf("inferred audit output:\n%s", out)
	}
}

func TestRunTelemetryJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.json")
	var b strings.Builder
	err := run(&b, "", "", 120, 9, "balanced", 0.5, "", 10, "emd", false, "", false, false, 0, false, "", "", "", false, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetry.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("telemetry dump is not valid JSON: %v", err)
	}
	if rep.Spans == nil || rep.Spans.Name != "fairaudit" {
		t.Fatalf("span tree root = %+v, want name fairaudit", rep.Spans)
	}
	phases := map[string]bool{}
	rep.Spans.Walk(func(st *telemetry.SpanTree) { phases[st.Name] = true })
	for _, want := range []string{"run", "scan", "probe", "split", "emd", "reduce"} {
		if !phases[want] {
			t.Errorf("span tree missing phase %q", want)
		}
	}
	if rep.Metrics.Counters[core.MetricEMDEvaluations] <= 0 {
		t.Errorf("metrics snapshot missing %s", core.MetricEMDEvaluations)
	}
}
