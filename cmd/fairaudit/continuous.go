package main

import (
	"fmt"
	"io"

	"fairrank/internal/dataset"
	"fairrank/internal/drift"
	"fairrank/internal/monitor"
	"fairrank/internal/scoring"
)

// runContinuousCmd is the -window / -half-life entry point: it loads the
// same dataset and scoring function as the static audit and streams the
// rows through the continuous-audit estimators.
func runContinuousCmd(w io.Writer, dataFile, snapFile string, gen int, seed uint64, alpha float64,
	weightSpec string, bins int, attrSpec string, window int, halfLife float64) error {
	if window < 0 || halfLife < 0 {
		return fmt.Errorf("window (%d) and half-life (%g) must be non-negative", window, halfLife)
	}
	ds, err := loadDataset(dataFile, snapFile, gen, seed, "", "", "")
	if err != nil {
		return err
	}
	defer ds.Close()
	f, err := buildFunc(alpha, weightSpec)
	if err != nil {
		return err
	}
	attrIdx, err := parseAttrs(ds, attrSpec)
	if err != nil {
		return err
	}
	return runContinuous(w, ds, f, continuousAttrNames(ds, attrIdx), bins, window, halfLife)
}

// runContinuous replays the dataset's rows as a join stream through the
// continuous-audit estimators and prints how the unfairness estimate
// evolves: the unbounded-history monitor next to a sliding window
// (-window) and/or an exponential-decay estimator (-half-life). On a
// static snapshot the stream order is row order, so the readout shows
// what a monitor attached partway through the population would report —
// and how far a bounded-memory estimate sits from the full-history one.
func runContinuous(w io.Writer, ds *dataset.Dataset, f scoring.Func, attrNames []string, bins, window int, halfLife float64) error {
	total, err := monitor.New(ds.Schema(), attrNames, bins, 0)
	if err != nil {
		return err
	}
	var win *drift.Window
	if window > 0 {
		if win, err = drift.NewWindow(ds.Schema(), attrNames, bins, window); err != nil {
			return err
		}
	}
	var dec *drift.Decay
	if halfLife > 0 {
		if dec, err = drift.NewDecay(ds.Schema(), attrNames, bins, halfLife); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "continuous audit: %d join events", ds.N())
	if win != nil {
		fmt.Fprintf(w, ", window %d", window)
	}
	if dec != nil {
		fmt.Fprintf(w, ", half-life %g", halfLife)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%10s  %10s", "event", "total")
	if win != nil {
		fmt.Fprintf(w, "  %10s", "window")
	}
	if dec != nil {
		fmt.Fprintf(w, "  %10s", "decay")
	}
	fmt.Fprintln(w)

	every := ds.N() / 10
	if every < 1 {
		every = 1
	}
	attrs := make([]int, len(attrNames))
	for i, name := range attrNames {
		attrs[i] = ds.Schema().ProtectedIndex(name)
	}
	line := func(event int) {
		fmt.Fprintf(w, "%10d  %10.4f", event, total.Unfairness())
		if win != nil {
			fmt.Fprintf(w, "  %10.4f", win.Unfairness())
		}
		if dec != nil {
			fmt.Fprintf(w, "  %10.4f", dec.Unfairness())
		}
		fmt.Fprintln(w)
	}
	for i := 0; i < ds.N(); i++ {
		prot := make(map[string]any, len(attrs))
		for _, a := range attrs {
			def := ds.Schema().Protected[a]
			if def.Kind == dataset.Categorical {
				prot[def.Name] = ds.ProtectedLabel(a, i)
			} else {
				prot[def.Name] = ds.RawProtected(a, i)
			}
		}
		score := f.Score(ds, i)
		if err := total.Join(ds.ID(i), prot, score); err != nil {
			return fmt.Errorf("event %d: %w", i+1, err)
		}
		if win != nil {
			if err := win.Join(ds.ID(i), prot, score); err != nil {
				return fmt.Errorf("event %d: %w", i+1, err)
			}
		}
		if dec != nil {
			if err := dec.Join(ds.ID(i), prot, score); err != nil {
				return fmt.Errorf("event %d: %w", i+1, err)
			}
		}
		if (i+1)%every == 0 || i == ds.N()-1 {
			line(i + 1)
		}
	}
	fmt.Fprintf(w, "\nfinal: total %.4f over %d workers", total.Unfairness(), total.Workers())
	if win != nil {
		fmt.Fprintf(w, "; window %.4f over the last %d", win.Unfairness(), win.Live())
	}
	if dec != nil {
		fmt.Fprintf(w, "; decay %.4f", dec.Unfairness())
	}
	fmt.Fprintln(w)
	return nil
}

// continuousAttrNames resolves the -attrs selection (or every protected
// attribute) to names for the estimators.
func continuousAttrNames(ds *dataset.Dataset, attrIdx []int) []string {
	if len(attrIdx) == 0 {
		names := make([]string, len(ds.Schema().Protected))
		for i, a := range ds.Schema().Protected {
			names[i] = a.Name
		}
		return names
	}
	names := make([]string, len(attrIdx))
	for i, a := range attrIdx {
		names[i] = ds.Schema().Protected[a].Name
	}
	return names
}
