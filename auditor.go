package fairrank

import (
	"context"
	"errors"
	"fmt"

	"fairrank/internal/core"
	"fairrank/internal/explain"
	"fairrank/internal/partition"
	"fairrank/internal/repair"
)

// AttributeImportance quantifies one protected attribute's contribution to
// a scoring function's unfairness: Solo is the unfairness of splitting on
// the attribute alone; Marginal is the leave-one-out drop in full-split
// unfairness.
type AttributeImportance = explain.AttributeImportance

// Algorithm names one of the paper's partitioning-search algorithms.
type Algorithm string

// The algorithms evaluated in the paper, plus the exact solver.
const (
	// AlgoBalanced is Algorithm 1: split every partition on the globally
	// worst attribute each round, stop when unfairness stops improving.
	AlgoBalanced Algorithm = "balanced"
	// AlgoUnbalanced is Algorithm 2: decide per partition whether to
	// split further, yielding an unbalanced partitioning tree.
	AlgoUnbalanced Algorithm = "unbalanced"
	// AlgoRBalanced is balanced with random attribute choice (baseline).
	AlgoRBalanced Algorithm = "r-balanced"
	// AlgoRUnbalanced is unbalanced with random attribute choice.
	AlgoRUnbalanced Algorithm = "r-unbalanced"
	// AlgoAllAttributes splits on every protected attribute (baseline).
	AlgoAllAttributes Algorithm = "all-attributes"
	// AlgoExhaustive enumerates the whole partitioning space; it fails
	// with a budget error beyond tiny instances.
	AlgoExhaustive Algorithm = "exhaustive"
)

// Algorithms lists the five heuristic/baseline algorithms in the paper's
// table order (exhaustive excluded, as in the paper's tables).
var Algorithms = []Algorithm{
	AlgoUnbalanced, AlgoRUnbalanced, AlgoBalanced, AlgoRBalanced, AlgoAllAttributes,
}

// RegisteredAlgorithms returns every algorithm name the engine registry
// knows, sorted — the authoritative set Audit accepts (a superset of
// Algorithms that includes the exact solvers).
func RegisteredAlgorithms() []string { return core.Algorithms() }

// Auditor runs fairness audits with a fixed measurement configuration.
// The zero value is not ready; use NewAuditor.
type Auditor struct {
	cfg              Config
	seed             uint64
	exhaustiveBudget int
}

// Option configures an Auditor.
type Option func(*Auditor)

// WithConfig sets the unfairness measurement configuration (bins, metric,
// ground distance, parallelism).
func WithConfig(cfg Config) Option { return func(a *Auditor) { a.cfg = cfg } }

// WithSeed seeds the random-attribute baselines; audits are deterministic
// for a fixed seed. The default seed is 1.
func WithSeed(seed uint64) Option { return func(a *Auditor) { a.seed = seed } }

// WithExhaustiveBudget caps how many partitionings AlgoExhaustive may
// enumerate before giving up (default 100000).
func WithExhaustiveBudget(budget int) Option {
	return func(a *Auditor) { a.exhaustiveBudget = budget }
}

// NewAuditor returns an Auditor with 10 histogram bins, the EMD metric and
// score-unit ground distance — the paper's configuration.
func NewAuditor(opts ...Option) *Auditor {
	a := &Auditor{seed: 1, exhaustiveBudget: 100000}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Audit searches for the most unfair partitioning of ds under f using the
// given algorithm, over all protected attributes.
func (a *Auditor) Audit(ds *Dataset, f ScoringFunc, algo Algorithm) (*Result, error) {
	return a.AuditAttrsContext(context.Background(), ds, f, algo, nil)
}

// AuditContext is Audit under a context: cancellation or a deadline aborts
// the search promptly, returning ctx.Err().
func (a *Auditor) AuditContext(ctx context.Context, ds *Dataset, f ScoringFunc, algo Algorithm) (*Result, error) {
	return a.AuditAttrsContext(ctx, ds, f, algo, nil)
}

// AuditAttrs is Audit restricted to a subset of protected attributes,
// given by name. attrs nil means all protected attributes.
func (a *Auditor) AuditAttrs(ds *Dataset, f ScoringFunc, algo Algorithm, attrs []string) (*Result, error) {
	return a.AuditAttrsContext(context.Background(), ds, f, algo, attrs)
}

// AuditAttrsContext is AuditAttrs under a context. All Audit variants
// funnel into core.Run here; the algorithm name is resolved against the
// engine registry, so any registered algorithm — including ones not listed
// in Algorithms — is accepted.
func (a *Auditor) AuditAttrsContext(ctx context.Context, ds *Dataset, f ScoringFunc, algo Algorithm, attrs []string) (*Result, error) {
	e, err := core.NewEvaluator(ds, f, a.cfg)
	if err != nil {
		return nil, err
	}
	var idx []int
	if attrs != nil {
		idx = make([]int, 0, len(attrs))
		for _, name := range attrs {
			i := ds.Schema().ProtectedIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("fairrank: %q is not a protected attribute", name)
			}
			idx = append(idx, i)
		}
	}
	return core.Run(ctx, core.Spec{
		Algorithm: string(algo),
		Evaluator: e,
		Attrs:     idx,
		Seed:      a.seed,
		Budget:    a.exhaustiveBudget,
	})
}

// AuditAll runs every algorithm in Algorithms and returns the results in
// the same order.
func (a *Auditor) AuditAll(ds *Dataset, f ScoringFunc) ([]*Result, error) {
	out := make([]*Result, 0, len(Algorithms))
	for _, algo := range Algorithms {
		r, err := a.Audit(ds, f, algo)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Beam runs the beam-search extension: like balanced, but keeping the
// `width` best frontier partitionings each round and returning the best
// partitioning ever seen. It escapes the greedy traps the paper observes in
// its stopping-condition discussion, at width× the cost.
func (a *Auditor) Beam(ds *Dataset, f ScoringFunc, width int) (*Result, error) {
	e, err := core.NewEvaluator(ds, f, a.cfg)
	if err != nil {
		return nil, err
	}
	return core.Beam(e, nil, width)
}

// Significance permutation-tests whether a partitioning's unfairness
// exceeds what exchangeable scores would produce, returning the one-sided
// p-value and the observed unfairness. Small p-values mean the disparity is
// not sampling noise.
func (a *Auditor) Significance(ds *Dataset, f ScoringFunc, pt *Partitioning, rounds int) (pValue, observed float64, err error) {
	e, err := core.NewEvaluator(ds, f, a.cfg)
	if err != nil {
		return 0, 0, err
	}
	return core.Significance(e, pt, rounds, a.seed)
}

// Explain computes per-attribute importances for the scoring function's
// unfairness, sorted most-important first.
func (a *Auditor) Explain(ds *Dataset, f ScoringFunc) ([]AttributeImportance, error) {
	e, err := core.NewEvaluator(ds, f, a.cfg)
	if err != nil {
		return nil, err
	}
	return explain.Attributes(e), nil
}

// Unfairness measures unfairness(P, f) for an explicit partitioning —
// Definition 2 of the paper.
func (a *Auditor) Unfairness(ds *Dataset, f ScoringFunc, pt *Partitioning) (float64, error) {
	e, err := core.NewEvaluator(ds, f, a.cfg)
	if err != nil {
		return 0, err
	}
	return e.Unfairness(pt), nil
}

// GroupBy builds the partitioning induced by splitting the whole
// population on the named protected attributes in order — the pre-defined
// groupings prior work audits (e.g. just Gender).
func GroupBy(ds *Dataset, attrs ...string) (*Partitioning, error) {
	if len(attrs) == 0 {
		return nil, errors.New("fairrank: GroupBy needs at least one attribute")
	}
	parts := []*Partition{partition.Root(ds)}
	for _, name := range attrs {
		i := ds.Schema().ProtectedIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("fairrank: %q is not a protected attribute", name)
		}
		parts = partition.SplitAll(ds, parts, i)
	}
	return &Partitioning{Parts: parts}, nil
}

// RepairedScores applies quantile-matching bias repair (the paper's future
// work): every partition's score distribution is pulled toward the global
// distribution. amount=1 fully equalizes; within-partition ranking is
// preserved. Returns the repaired score column, indexed like the dataset.
func (a *Auditor) RepairedScores(ds *Dataset, f ScoringFunc, pt *Partitioning, amount float64) ([]float64, error) {
	e, err := core.NewEvaluator(ds, f, a.cfg)
	if err != nil {
		return nil, err
	}
	return repair.Scores(e.Scores(), pt, amount)
}

// ScoreUnfairness measures the average pairwise EMD of an arbitrary score
// column over a partitioning, e.g. to compare before/after repair.
func (a *Auditor) ScoreUnfairness(scores []float64, pt *Partitioning) (float64, error) {
	bins := a.cfg.Bins
	if bins <= 0 {
		bins = 10
	}
	return repair.Unfairness(scores, pt, bins)
}
