package rerank

import (
	"math"
	"testing"

	"fairrank/internal/marketplace"
	"fairrank/internal/rng"
	"fairrank/internal/simulate"
)

func TestRandomizedDeterminism(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 300, 0, 11)
	a, err := Randomized(ds, attr, ranked, 50, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Randomized(ds, attr, ranked, 50, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50 {
		t.Fatalf("page size %d, want 50", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at position %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Rank != i+1 {
			t.Fatalf("rank %d mislabeled as %d", i+1, a[i].Rank)
		}
	}
	c, err := Randomized(ds, attr, ranked, 50, Params{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Worker != c[i].Worker {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical pages — jitter inert")
	}
}

func TestRandomizedPermutationInvariance(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 200, 0, 12)
	want, err := Randomized(ds, attr, ranked, 40, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shuffled := make([]marketplace.RankedWorker, len(ranked))
	copy(shuffled, ranked)
	r := rng.New(99)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	got, err := Randomized(ds, attr, shuffled, 40, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pool order leaked into page at position %d", i)
		}
	}
}

// TestRandomizedProtectedBlindness is the proxy-free contract: the page
// is a function of the pool and params alone. Swapping in a completely
// different dataset — different rows, different protected columns — and
// even an out-of-range or absent attribute changes nothing.
func TestRandomizedProtectedBlindness(t *testing.T) {
	ds1, attr, ranked := biasedRanking(t, 150, 0, 13)
	ds2, err := simulate.PaperWorkers(150, 77)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Randomized(ds1, attr, ranked, 30, Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for name, call := range map[string]func() ([]marketplace.RankedWorker, error){
		"other dataset": func() ([]marketplace.RankedWorker, error) { return Randomized(ds2, attr, ranked, 30, Params{Seed: 5}) },
		"attr -1":       func() ([]marketplace.RankedWorker, error) { return Randomized(ds1, -1, ranked, 30, Params{Seed: 5}) },
		"nil dataset":   func() ([]marketplace.RankedWorker, error) { return Randomized(nil, 0, ranked, 30, Params{Seed: 5}) },
	} {
		got, err := call()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: page changed at position %d", name, i)
			}
		}
	}
}

// TestRandomizedDisplacementBound pins the jitter's reach: a candidate
// can never finish below anyone scored more than Spread·range under it,
// nor above anyone scored more than Spread·range over it.
func TestRandomizedDisplacementBound(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 400, 0, 14)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, rw := range ranked {
		lo, hi = math.Min(lo, rw.Score), math.Max(hi, rw.Score)
	}
	for _, spread := range []float64{0.05, 0.1, 0.5} {
		reach := spread * (hi - lo)
		for seed := uint64(0); seed < 10; seed++ {
			page, err := Randomized(ds, attr, ranked, 0, Params{Seed: seed, Spread: spread})
			if err != nil {
				t.Fatal(err)
			}
			for i, rw := range page {
				above, below := 0, 0
				for _, other := range ranked {
					if other.Score > rw.Score+reach {
						above++
					}
					if other.Score < rw.Score-reach {
						below++
					}
				}
				if rank := i + 1; rank < 1+above || rank > len(ranked)-below {
					t.Fatalf("spread %v seed %d: worker %d (score %v) at rank %d outside [%d, %d]",
						spread, seed, rw.Worker, rw.Score, rank, 1+above, len(ranked)-below)
				}
			}
		}
	}
}

func TestRandomizedValidation(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 50, 0, 15)
	if _, err := Randomized(ds, attr, nil, 10, Params{}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := Randomized(ds, attr, ranked, 10, Params{Spread: -0.1}); err == nil {
		t.Error("negative spread accepted")
	}
	if _, err := Randomized(ds, attr, ranked, 10, Params{Spread: 1.5}); err == nil {
		t.Error("spread > 1 accepted")
	}
	if _, err := Randomized(ds, attr, ranked, 10, Params{Spread: math.NaN()}); err == nil {
		t.Error("NaN spread accepted")
	}
	bad := []marketplace.RankedWorker{{Worker: 0, Score: math.NaN(), Rank: 1}}
	if _, err := Randomized(ds, attr, bad, 1, Params{}); err == nil {
		t.Error("NaN score accepted")
	}
	// Constant-score pool: jitter amplitude is 0, canonical order serves.
	flat := []marketplace.RankedWorker{
		{Worker: 3, Score: 0.5, Rank: 1}, {Worker: 1, Score: 0.5, Rank: 2}, {Worker: 2, Score: 0.5, Rank: 3},
	}
	page, err := Randomized(ds, attr, flat, 0, Params{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3} {
		if page[i].Worker != want {
			t.Fatalf("flat pool not in canonical worker order: %+v", page)
		}
	}
}

func TestRandomizedRegistered(t *testing.T) {
	fn, err := Lookup("randomized")
	if err != nil {
		t.Fatal(err)
	}
	ds, attr, ranked := biasedRanking(t, 60, 0, 16)
	direct, err := Randomized(ds, attr, ranked, 10, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	via, err := fn(ds, attr, ranked, 10, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != via[i] {
			t.Fatal("registry entry disagrees with Randomized")
		}
	}
}
