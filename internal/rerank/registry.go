package rerank

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/telemetry"
)

// Params carries the per-algorithm knobs of a re-rank request. Every
// re-ranker reads only the fields it understands and ignores the rest,
// so one JSON body shape serves the whole registry (POST /v1/rank).
type Params struct {
	// Epsilon is exposure-parity's score-sacrifice bound (see Options).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Alpha is fair-topk's significance level in (0,1): the probability
	// that a fair Bernoulli process would be rejected by the per-prefix
	// minimum-count tests. 0 selects DefaultAlpha.
	Alpha float64 `json:"alpha,omitempty"`
	// Seed seeds the "randomized" re-ranker's jitter; the same seed
	// always reproduces the same page.
	Seed uint64 `json:"seed,omitempty"`
	// Spread is the "randomized" re-ranker's jitter width as a fraction
	// of the pool's score range, in [0, 1]. 0 selects DefaultSpread.
	Spread float64 `json:"spread,omitempty"`
}

// DefaultAlpha is the fair-topk significance used when Params.Alpha is 0,
// matching the FA*IR paper's running example.
const DefaultAlpha = 0.1

// Func is one registered re-ranker: given the full candidate pool (every
// Worker a row of ds, in any order), it returns a fairness-constrained
// page of min(k, len(pool)) candidates with fresh ranks 1..n (k <= 0
// selects the whole pool). Implementations must be deterministic: two
// identical calls return identical pages.
type Func func(ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker, k int, p Params) ([]marketplace.RankedWorker, error)

var registry = struct {
	sync.RWMutex
	m map[string]Func
}{m: map[string]Func{}}

// Register adds a re-ranker under a canonical name, mirroring
// core.Register's contract: empty names, nil funcs and duplicates are
// programming errors and panic.
func Register(name string, fn Func) {
	if name == "" || fn == nil {
		panic("rerank: Register requires a name and a rerank function")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("rerank: re-ranker %q already registered", name))
	}
	registry.m[name] = fn
}

// Lookup resolves a registered re-ranker by name; the error lists the
// registered names so HTTP handlers can surface it directly.
func Lookup(name string) (Func, error) {
	registry.RLock()
	fn, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rerank: unknown re-ranker %q (registered: %s)",
			name, strings.Join(Rerankers(), ", "))
	}
	return fn, nil
}

// Rerankers returns the registered re-ranker names, sorted.
func Rerankers() []string {
	registry.RLock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	registry.RUnlock()
	sort.Strings(out)
	return out
}

// Telemetry series exposed by Serve.
const (
	// MetricServes counts re-rank requests per algorithm (label
	// "algorithm"); failed requests are counted in MetricErrors too.
	MetricServes = "fairrank_rerank_serves_total"
	// MetricErrors counts re-rank requests that returned an error.
	MetricErrors = "fairrank_rerank_errors_total"
	// MetricServeSeconds is the per-algorithm serve latency histogram.
	MetricServeSeconds = "fairrank_rerank_seconds"
	// MetricTableCacheHits / MetricTableCacheMisses expose the fair-topk
	// minimum-count table cache (gauges read at exposition time).
	MetricTableCacheHits   = "fairrank_rerank_table_cache_hits"
	MetricTableCacheMisses = "fairrank_rerank_table_cache_misses"
	MetricTableCacheSize   = "fairrank_rerank_table_cache_size"
)

// serveBuckets spans 1µs..~33s: re-rank pages are orders of magnitude
// faster than audits, so the default 100µs-floor latency buckets would
// collapse every healthy request into the first bucket.
func serveBuckets() []float64 { return telemetry.ExpBuckets(1e-6, 2, 25) }

// algoLabel returns the telemetry label for a re-ranker name.
func algoLabel(name string) telemetry.Label {
	return telemetry.Label{Key: "algorithm", Value: name}
}

// Serve is the instrumented serving entry point: it resolves name,
// re-ranks, and records the per-algorithm request counter and latency
// histogram on reg (nil reg disables telemetry at the usual nil-safe
// cost). This is what POST /v1/rank and the load generator call.
func Serve(reg *telemetry.Registry, name string, ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker, k int, p Params) ([]marketplace.RankedWorker, error) {
	fn, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	out, err := fn(ds, attr, pool, k, p)
	reg.Histogram(MetricServeSeconds, serveBuckets(), algoLabel(name)).ObserveSince(start)
	reg.Counter(MetricServes, algoLabel(name)).Inc()
	if err != nil {
		reg.Counter(MetricErrors, algoLabel(name)).Inc()
	}
	return out, err
}

// PreregisterMetrics creates every re-rank series on reg at boot so
// /metrics shows the full surface before the first request, mirroring
// core.PreregisterMetrics. The fair-topk table cache is exposed through
// exposition-time gauge functions — the cache lives in this package and
// should not be mirrored on the serve path.
func PreregisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, name := range Rerankers() {
		reg.Counter(MetricServes, algoLabel(name))
		reg.Counter(MetricErrors, algoLabel(name))
		reg.Histogram(MetricServeSeconds, serveBuckets(), algoLabel(name))
	}
	reg.GaugeFunc(MetricTableCacheHits, func() float64 {
		h, _, _ := TableCacheStats()
		return float64(h)
	})
	reg.GaugeFunc(MetricTableCacheMisses, func() float64 {
		_, m, _ := TableCacheStats()
		return float64(m)
	})
	reg.GaugeFunc(MetricTableCacheSize, func() float64 {
		_, _, n := TableCacheStats()
		return float64(n)
	})
}

// pageSize clamps a requested page size to the pool: k <= 0 or k past the
// pool selects the whole pool.
func pageSize(k, pool int) int {
	if k <= 0 || k > pool {
		return pool
	}
	return k
}
