package rerank

import (
	"fmt"
	"math"
	"sort"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/rng"
)

// This file implements the "randomized" re-ranker: score perturbation as
// a proxy-free fairness intervention (after Kliachkin et al., "Fairness
// in Ranking under Disparate Uncertainty", arXiv:2403.19419, and the
// randomized-ranking line of work it surveys). Unlike every other
// registered re-ranker it NEVER reads the protected column — it cannot,
// by construction, because it never touches the dataset at all. Fairness
// comes from breaking the ranking's determinism: when group membership
// correlates with small score differences (the paper's EMD audits find
// exactly this shape), jittering scores by a bounded amount lets
// lower-scored groups surface into top pages in proportion to how close
// their scores are, without anyone having to name — or even measure —
// the disadvantaged group. That makes it the mitigation of choice when
// the protected attribute is unavailable, unreliable, or illegal to use
// at serving time; the drift scenario (internal/simulate) runs it
// against det-greedy to quantify what that blindness costs in detection
// latency and steady-state unfairness.
//
// Determinism contract: the jitter is seeded (Params.Seed), and noise is
// assigned by canonical pool position (score desc, worker asc) before
// re-sorting — so two identical calls return identical pages, and the
// input pool's order cannot leak into the result (permutation
// invariance, same as every other re-ranker).
//
// Displacement bound: with amplitude A = Spread·range/2, candidate i can
// finish below candidate j only if score_i − score_j < 2A = Spread·range.
// Spread therefore directly caps how far any candidate can sink or rise:
// the test suite pins rank_i ≥ 1 + #{j: score_j > score_i + Spread·range}
// and the mirror upper bound.

// DefaultSpread is the jitter amplitude used when Params.Spread is 0:
// noise spans ±5% of the pool's score range.
const DefaultSpread = 0.1

func init() {
	Register("randomized", Randomized)
}

// Randomized re-ranks by seeded bounded score perturbation. attr and the
// dataset's protected columns are deliberately ignored — see the file
// comment — so it works even when attr < 0 (no protected attribute
// supplied). ds may be nil; only the pool is consulted.
func Randomized(ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker, k int, p Params) ([]marketplace.RankedWorker, error) {
	if len(pool) == 0 {
		return nil, errEmptyPool
	}
	spread := p.Spread
	if spread == 0 {
		spread = DefaultSpread
	}
	if math.IsNaN(spread) || spread < 0 || spread > 1 {
		return nil, fmt.Errorf("rerank: spread %v out of range [0, 1]", p.Spread)
	}
	// Canonical order first: noise is a function of (seed, canonical
	// position), never of the caller's pool order.
	cands := make([]candidate, len(pool))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, rw := range pool {
		if math.IsNaN(rw.Score) || math.IsInf(rw.Score, 0) {
			return nil, fmt.Errorf("rerank: worker %d has non-finite score", rw.Worker)
		}
		cands[i] = candidate{rw.Worker, rw.Score}
		lo, hi = math.Min(lo, rw.Score), math.Max(hi, rw.Score)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].worker < cands[b].worker
	})
	// Uniform noise in ±A with A = spread·range/2. A constant-score pool
	// has range 0: the jitter is a no-op and the canonical order serves.
	amp := 0.5 * spread * (hi - lo)
	r := rng.New(p.Seed)
	perturbed := make([]float64, len(cands))
	for i := range cands {
		perturbed[i] = cands[i].score + amp*(2*r.Float64()-1)
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if perturbed[ia] != perturbed[ib] {
			return perturbed[ia] > perturbed[ib]
		}
		return cands[ia].worker < cands[ib].worker
	})
	n := pageSize(k, len(cands))
	out := make([]marketplace.RankedWorker, n)
	for pos := 0; pos < n; pos++ {
		c := cands[order[pos]]
		out[pos] = marketplace.RankedWorker{Worker: c.worker, Score: c.score, Rank: pos + 1}
	}
	return out, nil
}
