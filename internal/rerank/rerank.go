// Package rerank implements serving-time fair re-ranking: given a ranked
// candidate pool and a protected attribute, each registered re-ranker
// re-orders candidates under a different fairness contract —
//
//   - "exposure-parity": the position-bias exposure each group receives
//     approaches its share of the candidate pool (demographic parity of
//     exposure, after Singh & Joachims' fairness-of-exposure, which the
//     paper cites), while bounding the score sacrificed at any position;
//   - "fair-topk": FA*IR (Zehlike et al.), every prefix of the page holds
//     at least the significance-tested minimum count of each group, via
//     binomial-CDF minimum-count tables with the multiple-testing-
//     corrected significance adjustment;
//   - "det-greedy" / "det-cons" / "det-relaxed": the LinkedIn Talent
//     Search interval-constrained re-rankers (Geyik et al.), every prefix
//     keeping each group's count within [floor(p·i), ceil(p·i)];
//   - "randomized": proxy-free seeded score perturbation (after
//     Kliachkin et al.) — the only re-ranker that never reads the
//     protected column, for when the attribute is unavailable or barred
//     from serving.
//
// Together with package repair this covers the paper's future work on
// "repairing bias in the context of ranking": repair fixes the scores,
// rerank fixes the result page.
package rerank

import (
	"errors"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
)

// errEmptyPool is shared by every re-ranker's pool validation.
var errEmptyPool = errors.New("rerank: empty ranking")

// Options configures the exposure-parity re-ranker.
type Options struct {
	// Epsilon is the maximum score a single position may sacrifice to
	// improve exposure balance: at each rank the fairest eligible
	// candidate is chosen only if their score is within Epsilon of the
	// best remaining candidate's. 0 reproduces the score-optimal order;
	// 1 ignores scores entirely.
	Epsilon float64
}

func init() {
	Register("exposure-parity", func(ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker, k int, p Params) ([]marketplace.RankedWorker, error) {
		out, err := ExposureParity(ds, attr, pool, Options{Epsilon: p.Epsilon})
		if err != nil {
			return nil, err
		}
		return out[:pageSize(k, len(out))], nil
	})
}

// ExposureParity re-ranks the given candidates. ranked must be the
// candidates to place (e.g. a top-k page, or the full population); Worker
// indices refer to rows of ds; attr is the protected attribute (by index
// into ds.Schema().Protected) whose groups should receive proportional
// exposure. The result has the same candidate set with fresh ranks, and
// is deterministic: groups are always scanned in value-code order, so two
// identical calls return identical pages even when scores tie.
func ExposureParity(ds *dataset.Dataset, attr int, ranked []marketplace.RankedWorker, opts Options) ([]marketplace.RankedWorker, error) {
	if opts.Epsilon < 0 {
		return nil, errors.New("rerank: negative epsilon")
	}
	groups, err := splitPool(ds, attr, ranked)
	if err != nil {
		return nil, err
	}
	share := make([]float64, len(groups))
	for g := range groups {
		share[g] = float64(len(groups[g])) / float64(len(ranked))
	}

	exposure := make([]float64, len(groups))
	totalExposure := 0.0
	out := make([]marketplace.RankedWorker, 0, len(ranked))
	for pos := 1; len(out) < len(ranked); pos++ {
		bias := marketplace.PositionBias(pos)
		// Best remaining candidate overall (for the epsilon bound).
		bestScore := -1.0
		for _, gs := range groups {
			if len(gs) > 0 && gs[0].score > bestScore {
				bestScore = gs[0].score
			}
		}
		// Most exposure-deprived group whose best candidate is eligible.
		// pick is only dereferenced once a first eligible group set it,
		// and the code-order scan makes every tie-break deterministic.
		pick := -1
		worstDeficit := 0.0
		for g, gs := range groups {
			if len(gs) == 0 || gs[0].score < bestScore-opts.Epsilon {
				continue
			}
			deficit := share[g]*(totalExposure+bias) - exposure[g]
			switch {
			case pick < 0:
				pick, worstDeficit = g, deficit
			case deficit > worstDeficit,
				deficit == worstDeficit && gs[0].score > groups[pick][0].score:
				pick, worstDeficit = g, deficit
			}
		}
		if pick < 0 {
			// No group eligible under epsilon (only possible when the
			// deprived groups' candidates score too low): fall back to
			// the lowest-coded group holding the best remaining score.
			for g, gs := range groups {
				if len(gs) > 0 && gs[0].score == bestScore {
					pick = g
					break
				}
			}
		}
		c := groups[pick][0]
		groups[pick] = groups[pick][1:]
		exposure[pick] += bias
		totalExposure += bias
		out = append(out, marketplace.RankedWorker{Worker: c.worker, Score: c.score, Rank: pos})
	}
	return out, nil
}
