// Package rerank implements fairness-aware re-ranking: given a ranked
// result page and a protected attribute, it re-orders candidates so that
// the position-bias exposure each group receives approaches its share of
// the candidate pool (demographic parity of exposure, after Singh &
// Joachims' fairness-of-exposure, which the paper cites), while bounding
// how much score may be sacrificed at any single position.
//
// Together with package repair this covers the paper's future work on
// "repairing bias in the context of ranking": repair fixes the scores,
// rerank fixes the result page.
package rerank

import (
	"errors"
	"fmt"
	"sort"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
)

// Options configures the re-ranker.
type Options struct {
	// Epsilon is the maximum score a single position may sacrifice to
	// improve exposure balance: at each rank the fairest eligible
	// candidate is chosen only if their score is within Epsilon of the
	// best remaining candidate's. 0 reproduces the score-optimal order;
	// 1 ignores scores entirely.
	Epsilon float64
}

// ExposureParity re-ranks the given candidates. ranked must be the
// candidates to place (e.g. a top-k page, or the full population); Worker
// indices refer to rows of ds; attr is the protected attribute (by index
// into ds.Schema().Protected) whose groups should receive proportional
// exposure. The result has the same candidate set with fresh ranks.
func ExposureParity(ds *dataset.Dataset, attr int, ranked []marketplace.RankedWorker, opts Options) ([]marketplace.RankedWorker, error) {
	if len(ranked) == 0 {
		return nil, errors.New("rerank: empty ranking")
	}
	if attr < 0 || attr >= len(ds.Schema().Protected) {
		return nil, fmt.Errorf("rerank: protected attribute %d out of range", attr)
	}
	if opts.Epsilon < 0 {
		return nil, errors.New("rerank: negative epsilon")
	}

	// Candidates per group, each sorted by descending score (stable by
	// worker index) so the head of each list is its best candidate.
	type candidate struct {
		worker int
		score  float64
	}
	groups := map[int][]candidate{}
	share := map[int]float64{}
	for _, rw := range ranked {
		if rw.Worker < 0 || rw.Worker >= ds.N() {
			return nil, fmt.Errorf("rerank: worker %d out of range", rw.Worker)
		}
		g := ds.Code(attr, rw.Worker)
		groups[g] = append(groups[g], candidate{rw.Worker, rw.Score})
		share[g]++
	}
	for g := range groups {
		gs := groups[g]
		sort.SliceStable(gs, func(a, b int) bool {
			if gs[a].score != gs[b].score {
				return gs[a].score > gs[b].score
			}
			return gs[a].worker < gs[b].worker
		})
		share[g] /= float64(len(ranked))
	}

	exposure := map[int]float64{}
	totalExposure := 0.0
	out := make([]marketplace.RankedWorker, 0, len(ranked))
	for pos := 1; len(out) < len(ranked); pos++ {
		bias := marketplace.PositionBias(pos)
		// Best remaining candidate overall (for the epsilon bound).
		bestScore := -1.0
		for _, gs := range groups {
			if len(gs) > 0 && gs[0].score > bestScore {
				bestScore = gs[0].score
			}
		}
		// Most exposure-deprived group whose best candidate is eligible.
		pick := -1
		worstDeficit := 0.0
		first := true
		for g, gs := range groups {
			if len(gs) == 0 {
				continue
			}
			deficit := share[g]*(totalExposure+bias) - exposure[g]
			eligible := gs[0].score >= bestScore-opts.Epsilon
			if eligible && (first || deficit > worstDeficit ||
				(deficit == worstDeficit && gs[0].score > groups[pick][0].score)) {
				pick = g
				worstDeficit = deficit
				first = false
			}
		}
		if pick < 0 {
			// No group eligible under epsilon (only possible when the
			// deprived groups' candidates score too low): fall back to
			// the best-scored group.
			for g, gs := range groups {
				if len(gs) > 0 && gs[0].score == bestScore {
					pick = g
					break
				}
			}
		}
		c := groups[pick][0]
		groups[pick] = groups[pick][1:]
		exposure[pick] += bias
		totalExposure += bias
		out = append(out, marketplace.RankedWorker{Worker: c.worker, Score: c.score, Rank: pos})
	}
	return out, nil
}
