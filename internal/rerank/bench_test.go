package rerank

import (
	"fmt"
	"sync"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
	"fairrank/internal/telemetry"
)

// benchPool is the shared serving-benchmark population: large enough that
// re-ranking does real work (a full-pool pass for exposure-parity), biased
// enough that every re-ranker has something to fix, and built once per
// process because RankBy over 5000 workers dwarfs a single serve call.
const (
	benchWorkers = 5000
	benchSeed    = 97
	benchK       = 100
)

var benchFixture struct {
	sync.Once
	ds   *dataset.Dataset
	attr int
	pool []marketplace.RankedWorker
	err  error
}

func benchPool(tb testing.TB) (*dataset.Dataset, int, []marketplace.RankedWorker) {
	tb.Helper()
	f := &benchFixture
	f.Do(func() {
		ds, err := simulate.PaperWorkers(benchWorkers, benchSeed)
		if err != nil {
			f.err = err
			return
		}
		// Overlapping score ranges keep the pool feasible for every
		// re-ranker while still clustering the disadvantaged group low.
		fn, err := scoring.NewRuleFunc("bench-bias", benchSeed, []scoring.Rule{
			{When: scoring.AttrIs("Gender", "Male"), Lo: 0.3, Hi: 1.0},
			{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.7},
		})
		if err != nil {
			f.err = err
			return
		}
		f.ds, f.attr = ds, ds.Schema().ProtectedIndex("Gender")
		f.pool = marketplace.RankBy(ds, fn, 0)
	})
	if f.err != nil {
		tb.Fatal(f.err)
	}
	return f.ds, f.attr, f.pool
}

// BenchmarkRerankServe times one page serve per registered re-ranker
// through the registry (the POST /v1/rank path: Lookup + telemetry + the
// algorithm), plus a path=direct baseline that calls ExposureParity the
// way pre-registry callers did. `make bench-rerank` holds the registry
// path to within 5% of direct via benchdiff — the registry wrapper and
// nil-registry telemetry must stay free — and emits BENCH_8.json.
func BenchmarkRerankServe(b *testing.B) {
	ds, attr, pool := benchPool(b)
	p := Params{Epsilon: 1}

	b.Run("algo=exposure-parity/path=direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := ExposureParity(ds, attr, pool, Options{Epsilon: p.Epsilon})
			if err != nil {
				b.Fatal(err)
			}
			_ = out[:benchK]
		}
	})
	for _, name := range Rerankers() {
		b.Run(fmt.Sprintf("algo=%s/path=registry", name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Serve(nil, name, ds, attr, pool, benchK, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// p99Budget is the serving latency budget: the slowest 1% of re-rank
// requests over a 5000-candidate pool must finish within a quarter
// second. The healthy path runs in microseconds–milliseconds, so this is
// a two-orders-of-magnitude regression tripwire, not a tight bound — it
// exists to catch an accidental O(n²) scan or a lock convoy on the
// fair-topk table cache, and it reads the same telemetry histogram
// production reads, so a Quantile regression here is a /metrics
// regression too.
const p99Budget = 0.25 // seconds

// TestRerankP99Budget is the load generator: for every registered
// re-ranker it issues 480 serve requests with page sizes cycling through
// production-shaped values, records each into the per-algorithm
// fairrank_rerank_seconds histogram exactly as POST /v1/rank does, and
// asserts the histogram's conservative p99 (the bucket upper bound)
// stays within budget.
func TestRerankP99Budget(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation in -short mode")
	}
	ds, attr, pool := benchPool(t)
	reg := telemetry.NewRegistry()
	PreregisterMetrics(reg)

	pageSizes := []int{10, 25, 50, 100}
	const rounds = 120 // x4 page sizes = 480 requests per algorithm
	for _, name := range Rerankers() {
		for i := 0; i < rounds; i++ {
			for _, k := range pageSizes {
				if _, err := Serve(reg, name, ds, attr, pool, k, Params{Epsilon: 1}); err != nil {
					t.Fatalf("%s k=%d: %v", name, k, err)
				}
			}
		}
	}
	for _, name := range Rerankers() {
		h := reg.Histogram(MetricServeSeconds, serveBuckets(), algoLabel(name))
		if got, want := h.Count(), int64(rounds*len(pageSizes)); got != want {
			t.Fatalf("%s: histogram holds %d observations, want %d", name, got, want)
		}
		p99 := h.Quantile(0.99)
		t.Logf("%s: p99 <= %.6fs over %d requests", name, p99, rounds*len(pageSizes))
		if p99 > p99Budget {
			t.Errorf("%s: p99 %.4fs exceeds the %.2fs budget", name, p99, p99Budget)
		}
		if errs := reg.Counter(MetricErrors, algoLabel(name)).Value(); errs != 0 {
			t.Errorf("%s: %d errors recorded", name, errs)
		}
	}
}
