package rerank

import (
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// biasedRanking ranks a population by the gender-discriminating f6 and
// returns the dataset, gender attribute index and the top-k ranking.
func biasedRanking(t *testing.T, n, k int, seed uint64) (ds *dataset.Dataset, attr int, ranked []marketplace.RankedWorker) {
	t.Helper()
	d, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := scoring.NewRuleFunc("f6", seed, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, d.Schema().ProtectedIndex("Gender"), marketplace.RankBy(d, f6, k)
}

func TestValidation(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 100, 20, 1)
	if _, err := ExposureParity(ds, attr, nil, Options{}); err == nil {
		t.Error("empty ranking accepted")
	}
	if _, err := ExposureParity(ds, 99, ranked, Options{}); err == nil {
		t.Error("bad attribute accepted")
	}
	if _, err := ExposureParity(ds, attr, ranked, Options{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	oob := []marketplace.RankedWorker{{Worker: 9999, Score: 1, Rank: 1}}
	if _, err := ExposureParity(ds, attr, oob, Options{}); err == nil {
		t.Error("out-of-range worker accepted")
	}
}

func TestEpsilonZeroKeepsScoreOrder(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 200, 50, 2)
	out, err := ExposureParity(ds, attr, ranked, Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Worker != ranked[i].Worker {
			t.Fatalf("epsilon=0 changed position %d", i)
		}
		if out[i].Rank != i+1 {
			t.Fatalf("rank %d mislabeled", i+1)
		}
	}
}

func TestFullEpsilonBalancesExposure(t *testing.T) {
	// Re-rank the full candidate pool (k=0): with f6 bias the original
	// top-100 page is all male, so only a pool-level re-rank can fix the
	// page's exposure.
	ds, attr, ranked := biasedRanking(t, 400, 0, 3)
	before, err := marketplace.GroupExposure(ds, attr, ranked[:100])
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExposureParity(ds, attr, ranked, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	after, err := marketplace.GroupExposure(ds, attr, out[:100])
	if err != nil {
		t.Fatal(err)
	}
	db := marketplace.ExposureDisparity(before)
	da := marketplace.ExposureDisparity(after)
	if da >= db {
		t.Fatalf("disparity did not improve: %v -> %v", db, da)
	}
	if da > 1.5 {
		t.Fatalf("full-epsilon disparity still %v", da)
	}
}

func TestSameCandidateSet(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 300, 80, 4)
	out, err := ExposureParity(ds, attr, ranked, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ranked) {
		t.Fatalf("size changed: %d -> %d", len(ranked), len(out))
	}
	seen := map[int]bool{}
	for _, rw := range ranked {
		seen[rw.Worker] = true
	}
	for _, rw := range out {
		if !seen[rw.Worker] {
			t.Fatalf("worker %d not in the original candidate set", rw.Worker)
		}
		delete(seen, rw.Worker)
	}
	if len(seen) != 0 {
		t.Fatalf("%d candidates dropped", len(seen))
	}
}

func TestUtilityCostBounded(t *testing.T) {
	// The utility (NDCG vs original scores) must stay high for moderate
	// epsilon and degrade gracefully.
	ds, attr, ranked := biasedRanking(t, 400, 100, 5)
	relevance := make([]float64, ds.N())
	for _, rw := range ranked {
		relevance[rw.Worker] = rw.Score
	}
	prev := 1.0
	for _, eps := range []float64{0, 0.3, 1} {
		out, err := ExposureParity(ds, attr, ranked, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		ndcg, err := marketplace.NDCG(relevance, out)
		if err != nil {
			t.Fatal(err)
		}
		if ndcg > prev+1e-9 {
			t.Fatalf("NDCG increased with epsilon %v: %v > %v", eps, ndcg, prev)
		}
		if eps == 0 && ndcg < 0.999 {
			t.Fatalf("epsilon=0 NDCG = %v, want ~1", ndcg)
		}
		if ndcg < 0.5 {
			t.Fatalf("NDCG collapsed to %v at epsilon %v", ndcg, eps)
		}
		prev = ndcg
	}
}

func TestDeterministic(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 200, 50, 6)
	a, err := ExposureParity(ds, attr, ranked, Options{Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExposureParity(ds, attr, ranked, Options{Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Worker != b[i].Worker {
			t.Fatalf("non-deterministic at position %d", i)
		}
	}
}

func TestSingleGroup(t *testing.T) {
	// All candidates in one group: re-ranking is the identity.
	ds, attr, _ := biasedRanking(t, 200, 0, 7)
	male, err := scoring.NewRuleFunc("m", 7, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.5, Hi: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := marketplace.RankBy(ds, male, 0)
	males := all[:0:0]
	gender := attr
	for _, rw := range all {
		if ds.Code(gender, rw.Worker) == 0 {
			males = append(males, rw)
		}
	}
	out, err := ExposureParity(ds, attr, males, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Worker != males[i].Worker {
			t.Fatalf("single-group rerank changed order at %d", i)
		}
	}
}
