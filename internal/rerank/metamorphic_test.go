package rerank

import (
	"errors"
	"testing"

	"fairrank/internal/marketplace"
	"fairrank/internal/testkit"
)

// Metamorphic relations: transformations of the input whose effect on
// the output is known exactly, with no oracle needed.

// Re-rankers consume the pool as a set — shuffling the input order must
// not change the page (splitPool re-sorts per group; nothing may depend
// on arrival order).
func TestInputPermutationInvariance(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(4, 80))
		if err != nil {
			t.Fatal(err)
		}
		pool := scoreSorted(g, ds)
		shuffled := make([]marketplace.RankedWorker, len(pool))
		for i, j := range g.R.Perm(len(pool)) {
			shuffled[i] = pool[j]
		}
		k := g.R.IntRange(1, len(pool))
		p := Params{Epsilon: g.R.Float64(), Alpha: g.R.FloatRange(0.05, 0.25)}
		for _, name := range Rerankers() {
			a, errA := Serve(nil, name, ds, 0, pool, k, p)
			b, errB := Serve(nil, name, ds, 0, shuffled, k, p)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d %s: error depends on input order: %v vs %v", seed, name, errA, errB)
			}
			if errA != nil {
				if errors.Is(errA, ErrInfeasible) {
					continue
				}
				t.Fatalf("seed %d %s: %v", seed, name, errA)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d %s: input order changed position %d: %v vs %v",
						seed, name, i, a[i], b[i])
				}
			}
		}
	}
}

// Det* and fair-topk constraints depend only on pool shares, never on
// score magnitudes: translating every score by a constant must yield the
// same worker sequence. (exposure-parity is deliberately excluded — its
// epsilon is an absolute score bound.)
func TestScoreTranslationInvariance(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(4, 80))
		if err != nil {
			t.Fatal(err)
		}
		pool := scoreSorted(g, ds)
		shift := g.R.FloatRange(0.5, 4)
		shifted := make([]marketplace.RankedWorker, len(pool))
		for i, rw := range pool {
			shifted[i] = marketplace.RankedWorker{Worker: rw.Worker, Score: rw.Score + shift, Rank: rw.Rank}
		}
		k := g.R.IntRange(1, len(pool))
		p := Params{Alpha: g.R.FloatRange(0.05, 0.25)}
		for _, name := range []string{"det-greedy", "det-cons", "det-relaxed", "fair-topk"} {
			a, errA := Serve(nil, name, ds, 0, pool, k, p)
			b, errB := Serve(nil, name, ds, 0, shifted, k, p)
			if errors.Is(errA, ErrInfeasible) && errors.Is(errB, ErrInfeasible) {
				continue
			}
			if errA != nil || errB != nil {
				t.Fatalf("seed %d %s: %v / %v", seed, name, errA, errB)
			}
			for i := range a {
				if a[i].Worker != b[i].Worker {
					t.Fatalf("seed %d %s: translation changed position %d: worker %d vs %d",
						seed, name, i, a[i].Worker, b[i].Worker)
				}
			}
		}
	}
}

// Raising the significance level makes the per-prefix test stricter:
// MTable entries never decrease in alpha, and the multiple-testing
// adjustment only ever lowers alpha.
func TestAlphaMonotonicity(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		k := g.R.IntRange(1, 50)
		p := g.R.FloatRange(0.05, 0.95)
		a1 := g.R.FloatRange(0.01, 0.2)
		a2 := a1 + g.R.FloatRange(0.01, 0.3)
		lo, hi := MTable(k, p, a1), MTable(k, p, a2)
		for i := range lo {
			if hi[i] < lo[i] {
				t.Fatalf("seed %d (k=%d p=%v): raising alpha %v->%v dropped entry %d: %d -> %d",
					seed, k, p, a1, a2, i, lo[i], hi[i])
			}
		}
		if ac := AdjustAlpha(k, p, a1); ac > a1 {
			t.Fatalf("seed %d: adjustment raised alpha %v -> %v", seed, a1, ac)
		}
	}
}

// Growing the page can only grow each prefix's obligation: for k1 <= k2,
// the k2 table restricted to the first k1 prefixes is entry-wise >= ...
// actually identical for the unadjusted table (each prefix is tested
// independently) and >= is the safe claim after adjustment (a longer
// family forces a smaller alpha_c, hence smaller entries). Both pinned.
func TestTableLengthRelations(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		g := testkit.NewGen(seed)
		k1 := g.R.IntRange(1, 30)
		k2 := k1 + g.R.IntRange(1, 30)
		p := g.R.FloatRange(0.1, 0.9)
		alpha := g.R.FloatRange(0.02, 0.25)
		short, long := MTable(k1, p, alpha), MTable(k2, p, alpha)
		for i := 0; i <= k1; i++ {
			if short[i] != long[i] {
				t.Fatalf("seed %d: unadjusted prefix %d differs across lengths: %d vs %d",
					seed, i, short[i], long[i])
			}
		}
		adjShort, adjLong := AdjustedMTable(k1, p, alpha), AdjustedMTable(k2, p, alpha)
		for i := 0; i <= k1; i++ {
			if adjLong[i] > adjShort[i] {
				t.Fatalf("seed %d: longer family tightened prefix %d: %d > %d",
					seed, i, adjLong[i], adjShort[i])
			}
		}
	}
}
