package rerank

import (
	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
)

// This file implements the LinkedIn Talent Search deterministic
// re-rankers (Geyik, Ambler & Kenthapadi, "Fairness-Aware Ranking in
// Search & Recommendation Systems with Application to LinkedIn Talent
// Search", KDD 2019): interval constraints that keep every prefix of the
// page representative of the candidate pool. With p_g the pool share of
// group g, a page is feasible when every prefix of length i holds
// between floor(p_g·i) and ceil(p_g·i) members of each group.
//
// All interval arithmetic is integer-exact: p_g = cnt_g/n, so
// floor(p_g·i) = (cnt_g·i)/n and ceil(p_g·i) = (cnt_g·i + n - 1)/n in
// integer division — the intervals depend only on pool shares, never on
// scores (the score-translation metamorphic invariant).
//
// The three variants share a skeleton and differ only in how they choose
// among groups when no minimum is violated, each with the deterministic
// tie-break cascade (score desc, then worker index asc, then group code
// asc — the code-order scan supplies the last level for free):
//
//   - det-greedy: the best-scored head among groups still below their
//     prefix maximum;
//   - det-cons: the group whose fractional representation is furthest
//     behind — minimal (count_g+1)/p_g — among groups below maximum;
//   - det-relaxed: like det-cons but on the integer next-deadline
//     ceil((count_g+1)/p_g), taking the best-scored head among ties.
//
// Geyik et al. prove all three feasible for up to three groups;
// det-greedy can violate a ceiling with four or more (the differential
// suite pins the ≤3-group guarantee and documents the relaxation).

func init() {
	Register("det-greedy", detReranker(detGreedy))
	Register("det-cons", detReranker(detCons))
	Register("det-relaxed", detReranker(detRelaxed))
}

type detVariant int

const (
	detGreedy detVariant = iota
	detCons
	detRelaxed
)

// detState carries the shared per-position bookkeeping of one Det* run.
type detState struct {
	queues [][]candidate
	cnt    []int // pool count per group (fixed)
	counts []int // placed so far per group
	n      int   // pool size
}

// minAt / maxAt are the interval bounds of group g at prefix length i.
func (s *detState) minAt(g, i int) int { return s.cnt[g] * i / s.n }
func (s *detState) maxAt(g, i int) int { return (s.cnt[g]*i + s.n - 1) / s.n }

// better reports whether group a's head beats group b's head on the
// score-then-worker tie-break cascade (b < 0 means "no pick yet").
func (s *detState) better(a, b int) bool {
	if b < 0 {
		return true
	}
	ha, hb := s.queues[a][0], s.queues[b][0]
	if ha.score != hb.score {
		return ha.score > hb.score
	}
	return ha.worker < hb.worker
}

func detReranker(variant detVariant) Func {
	return func(ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker, k int, p Params) ([]marketplace.RankedWorker, error) {
		queues, err := splitPool(ds, attr, pool)
		if err != nil {
			return nil, err
		}
		s := &detState{
			queues: queues,
			cnt:    make([]int, len(queues)),
			counts: make([]int, len(queues)),
			n:      len(pool),
		}
		for g, q := range queues {
			s.cnt[g] = len(q)
		}
		n := pageSize(k, len(pool))
		out := make([]marketplace.RankedWorker, 0, n)
		for pos := 1; pos <= n; pos++ {
			// Groups below their prefix minimum must be served first:
			// skipping one would leave prefix pos short of its floor.
			pick := -1
			for g, q := range s.queues {
				if len(q) > 0 && s.counts[g] < s.minAt(g, pos) && s.better(g, pick) {
					pick = g
				}
			}
			if pick < 0 {
				pick = s.pickVariant(variant, pos)
			}
			if pick < 0 {
				// Every group with candidates sits at its ceiling (or the
				// below-ceiling groups are exhausted): relax the ceiling
				// rather than truncate the page — the constraints are
				// vacuous for groups whose pool ran dry.
				for g, q := range s.queues {
					if len(q) > 0 && s.better(g, pick) {
						pick = g
					}
				}
			}
			c := s.queues[pick][0]
			s.queues[pick] = s.queues[pick][1:]
			s.counts[pick]++
			out = append(out, marketplace.RankedWorker{Worker: c.worker, Score: c.score, Rank: pos})
		}
		return out, nil
	}
}

// pickVariant chooses among the groups still below their prefix-pos
// ceiling, per the variant's rule. Returns -1 when no such group has
// candidates left.
func (s *detState) pickVariant(variant detVariant, pos int) int {
	pick := -1
	for g, q := range s.queues {
		if len(q) == 0 || s.counts[g] >= s.maxAt(g, pos) {
			continue
		}
		switch variant {
		case detGreedy:
			if s.better(g, pick) {
				pick = g
			}
		case detCons:
			// Minimize (counts+1)/p_g, i.e. (counts_g+1)·n/cnt_g;
			// compared exactly by cross-multiplication.
			if pick < 0 {
				pick = g
				continue
			}
			lhs := (s.counts[g] + 1) * s.cnt[pick]
			rhs := (s.counts[pick] + 1) * s.cnt[g]
			if lhs < rhs || (lhs == rhs && s.better(g, pick)) {
				pick = g
			}
		case detRelaxed:
			// Minimize the integer position at which the group's floor
			// next binds: ceil((counts_g+1)·n / cnt_g).
			if pick < 0 {
				pick = g
				continue
			}
			next := func(h int) int {
				return ((s.counts[h]+1)*s.n + s.cnt[h] - 1) / s.cnt[h]
			}
			ng, np := next(g), next(pick)
			if ng < np || (ng == np && s.better(g, pick)) {
				pick = g
			}
		}
	}
	return pick
}
