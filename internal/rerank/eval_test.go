package rerank

import (
	"context"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// overlapBiasedRanking ranks with a gender bias whose score ranges
// overlap, so the disadvantaged group appears inside the page but
// clustered at its bottom — the regime the within-page audit measures
// (an entirely shut-out group is invisible to it; see AuditPage).
func overlapBiasedRanking(t *testing.T, n int, seed uint64) (*dataset.Dataset, int, []marketplace.RankedWorker) {
	t.Helper()
	ds, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scoring.NewRuleFunc("overlap", seed, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.3, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, ds.Schema().ProtectedIndex("Gender"), marketplace.RankBy(ds, f, 0)
}

// The evaluation layer over a gender-biased population: every mitigating
// re-ranker must be scored on both axes, the audit axis must separate
// the unmitigated page from a mitigated one, and utility must stay a
// valid NDCG.
func TestEvaluateScoresBothAxes(t *testing.T) {
	ds, attr, ranked := overlapBiasedRanking(t, 400, 21)
	base, outcomes, err := Evaluate(context.Background(), ds, attr, ranked, 100, Params{Epsilon: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Algorithm != "" {
		t.Fatalf("baseline algorithm = %q", base.Algorithm)
	}
	if base.Unfairness <= 0 {
		t.Fatalf("biased baseline audited as fair: %v", base.Unfairness)
	}
	if len(outcomes) != len(Rerankers()) {
		t.Fatalf("%d outcomes for %d re-rankers", len(outcomes), len(Rerankers()))
	}
	improved := 0
	for _, o := range outcomes {
		if o.NDCG <= 0 || o.NDCG > 1+1e-9 {
			t.Errorf("%s: NDCG %v outside (0,1]", o.Algorithm, o.NDCG)
		}
		if o.Unfairness < 0 {
			t.Errorf("%s: negative unfairness %v", o.Algorithm, o.Unfairness)
		}
		if o.Unfairness < base.Unfairness {
			improved++
		}
	}
	// The f6 population's top-100 is near-exclusively male; any working
	// mitigation family must audit strictly fairer than that page.
	if improved == 0 {
		t.Fatalf("no re-ranker improved on baseline unfairness %v: %+v", base.Unfairness, outcomes)
	}
}

// AuditPage input validation.
func TestAuditPageValidation(t *testing.T) {
	ds, _, ranked := biasedRanking(t, 50, 10, 22)
	if _, err := AuditPage(context.Background(), ds, nil); err == nil {
		t.Error("empty page accepted")
	}
	oob := append(ranked[:0:0], ranked[0])
	oob[0].Worker = 9999
	if _, err := AuditPage(context.Background(), ds, oob); err == nil {
		t.Error("out-of-range worker accepted")
	}
}
