package rerank

import (
	"sort"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/testkit"
)

// Property tests over testkit-generated populations. The exposure numbers
// here were calibrated empirically first: greedy parity re-ranking can
// nudge an already-near-parity page slightly off (worst observed +0.024
// disparity over 500 seeds), so the invariants are (a) substantial
// disparity is never made worse and (b) degradation of a fair page is
// bounded, rather than an unconditional improvement claim.

// scoreSorted builds the score-optimal baseline page over all of ds.
func scoreSorted(g *testkit.Gen, ds *dataset.Dataset) []marketplace.RankedWorker {
	scores := g.Scores(ds.N())
	out := make([]marketplace.RankedWorker, ds.N())
	for i := range out {
		out[i] = marketplace.RankedWorker{Worker: i, Score: scores[i]}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// exposureDisparity is the worst absolute gap between a group's share of
// position-bias exposure and its share of the candidate pool.
func exposureDisparity(ds *dataset.Dataset, attr int, page []marketplace.RankedWorker) float64 {
	exposure := map[int]float64{}
	count := map[int]float64{}
	total := 0.0
	for _, rw := range page {
		g := ds.Code(attr, rw.Worker)
		bias := marketplace.PositionBias(rw.Rank)
		exposure[g] += bias
		count[g]++
		total += bias
	}
	worst := 0.0
	for g := range count {
		d := exposure[g]/total - count[g]/float64(len(page))
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// The output must be a permutation of the input candidates with ranks
// 1..n, for every epsilon.
func TestExposureParityIsPermutation(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 80))
		if err != nil {
			t.Fatal(err)
		}
		base := scoreSorted(g, ds)
		eps := g.R.Float64()
		out, err := ExposureParity(ds, 0, base, Options{Epsilon: eps})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(out) != len(base) {
			t.Fatalf("seed %d: %d candidates in, %d out", seed, len(base), len(out))
		}
		seen := map[int]float64{}
		for _, rw := range base {
			seen[rw.Worker] = rw.Score
		}
		for i, rw := range out {
			if rw.Rank != i+1 {
				t.Fatalf("seed %d: position %d has rank %d", seed, i, rw.Rank)
			}
			score, ok := seen[rw.Worker]
			if !ok {
				t.Fatalf("seed %d: worker %d not in input (or duplicated)", seed, rw.Worker)
			}
			if score != rw.Score {
				t.Fatalf("seed %d: worker %d score changed %v -> %v", seed, rw.Worker, score, rw.Score)
			}
			delete(seen, rw.Worker)
		}
	}
}

// Epsilon 0 must reproduce the score-optimal order's score sequence: no
// position may sacrifice any score.
func TestEpsilonZeroMatchesScoreOptimal(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 80))
		if err != nil {
			t.Fatal(err)
		}
		base := scoreSorted(g, ds)
		out, err := ExposureParity(ds, 0, base, Options{Epsilon: 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range out {
			if out[i].Score != base[i].Score {
				t.Fatalf("seed %d rank %d: score %v, score-optimal %v", seed, i+1, out[i].Score, base[i].Score)
			}
		}
	}
}

// The exposure-parity invariant: with the score constraint fully relaxed,
// a page with substantial disparity is never made worse, and a page that is
// already fair degrades by a bounded amount at most.
func TestExposureParityInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 100))
		if err != nil {
			t.Fatal(err)
		}
		base := scoreSorted(g, ds)
		out, err := ExposureParity(ds, 0, base, Options{Epsilon: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		db := exposureDisparity(ds, 0, base)
		dr := exposureDisparity(ds, 0, out)
		if db > 0.05 && dr > db+testkit.Tol {
			t.Fatalf("seed %d: disparity worsened %v -> %v", seed, db, dr)
		}
		if dr > db+0.05 {
			t.Fatalf("seed %d: disparity degraded beyond bound: %v -> %v", seed, db, dr)
		}
	}
}

// Every registered re-ranker must be bit-for-bit deterministic: two
// identical calls return identical pages, including over tie-heavy
// score distributions where any reliance on map iteration order would
// surface. Scores are quantized to three values so almost every
// position is decided by tie-breaks alone.
func TestAllRerankersDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 80; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(3, 90))
		if err != nil {
			t.Fatal(err)
		}
		pool := make([]marketplace.RankedWorker, ds.N())
		for i := range pool {
			pool[i] = marketplace.RankedWorker{Worker: i, Score: float64(g.R.Intn(3)) / 2}
		}
		sort.SliceStable(pool, func(a, b int) bool { return pool[a].Score > pool[b].Score })
		for i := range pool {
			pool[i].Rank = i + 1
		}
		k := g.R.IntRange(1, len(pool))
		p := Params{Epsilon: g.R.Float64(), Alpha: g.R.FloatRange(0.05, 0.25)}
		for _, name := range Rerankers() {
			a, errA := Serve(nil, name, ds, 0, pool, k, p)
			b, errB := Serve(nil, name, ds, 0, pool, k, p)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d %s: nondeterministic error: %v vs %v", seed, name, errA, errB)
			}
			if errA != nil {
				continue // infeasible both times is deterministic too
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d %s: position %d differs: %+v vs %+v",
						seed, name, i, a[i], b[i])
				}
			}
		}
	}
}
