package rerank

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
)

// This file implements the "fair-topk" re-ranker: FA*IR (Zehlike et al.,
// "FA*IR: A Fair Top-k Ranking Algorithm", CIKM 2017), generalized from
// the paper's binary protected/non-protected setting to every group of a
// protected attribute via the dataset's per-attribute code column.
//
// The contract: a page of size k is fair at significance alpha when, for
// every prefix length i <= k and every group g with pool share p_g, the
// number of group-g members in the prefix is at least
//
//	m_g(i) = min{ m : F(m; i, p_g) > alpha_c }
//
// where F is the binomial CDF and alpha_c is the multiple-testing-
// corrected significance: testing all k prefixes each at level alpha
// rejects a genuinely fair Bernoulli(p) process far more often than
// alpha, so alpha_c is lowered until the family-wise failure probability
// of the whole table is back at alpha (FA*IR §4.2, found here by binary
// search over an exact dynamic program rather than the paper's tables).
//
// Construction walks positions 1..k picking the highest-scored head
// among the per-group queues whose placement keeps the remaining table
// satisfiable (an earliest-deadline-first safety check). This subsumes
// the classic "take the best protected candidate when the prefix test
// would fail" rule and extends it soundly to multiple simultaneous
// tables: whenever the tables are jointly satisfiable at all — checked
// up front — the produced page satisfies every prefix constraint.

// ErrInfeasible reports that no page of the requested size can satisfy
// the fairness tables — the pool lacks members of some group, or the
// per-group minimum counts jointly exceed a prefix length.
var ErrInfeasible = errors.New("rerank: fairness constraints infeasible for this pool")

// adjustMaxK caps the page size for which the significance adjustment
// binary search runs; the search costs O(k²) per probe and the FA*IR
// paper itself publishes tables only to k = 400. Larger pages use the
// unadjusted alpha, whose tables are at least as strict (more
// conservative, never less fair).
const adjustMaxK = 512

func init() {
	Register("fair-topk", FairTopK)
}

// FairTopK is the registry entry point for FA*IR: re-rank pool into a
// page of min(k, len(pool)) candidates satisfying the per-group
// minimum-count tables at significance p.Alpha (DefaultAlpha when 0).
func FairTopK(ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker, k int, p Params) ([]marketplace.RankedWorker, error) {
	alpha := p.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("rerank: alpha %v outside (0,1)", alpha)
	}
	queues, err := splitPool(ds, attr, pool)
	if err != nil {
		return nil, err
	}
	n := pageSize(k, len(pool))

	// One minimum-count table per group present in the pool, from its
	// pool share. Groups absent from the pool have share 0 and need no
	// table (m ≡ 0).
	tables := make([][]int, len(queues))
	for g, q := range queues {
		if len(q) == 0 {
			continue
		}
		share := float64(len(q)) / float64(len(pool))
		tables[g] = AdjustedMTable(n, share, alpha)
	}

	// Joint feasibility: every prefix must have room for all minimum
	// counts, and every group's pool must cover its final minimum.
	for i := 1; i <= n; i++ {
		req := 0
		for _, tbl := range tables {
			if tbl != nil {
				req += tbl[i]
			}
		}
		if req > i {
			return nil, fmt.Errorf("%w: prefix %d requires %d protected members", ErrInfeasible, i, req)
		}
	}
	for g, tbl := range tables {
		if tbl != nil && tbl[n] > len(queues[g]) {
			return nil, fmt.Errorf("%w: group %d has %d candidates, table requires %d",
				ErrInfeasible, g, len(queues[g]), tbl[n])
		}
	}

	counts := make([]int, len(queues))
	// req[d] = total minimum-count deficit of prefix d under the current
	// counts; recomputed per position (page sizes are small — the whole
	// construction is O(k²·groups) worst case).
	req := make([]int, n+1)
	out := make([]marketplace.RankedWorker, 0, n)
	for pos := 1; pos <= n; pos++ {
		for d := pos; d <= n; d++ {
			req[d] = 0
			for g, tbl := range tables {
				if tbl != nil && tbl[d] > counts[g] {
					req[d] += tbl[d] - counts[g]
				}
			}
		}
		// safe reports whether placing group h now leaves every later
		// prefix satisfiable: after this position, prefix d has d-pos
		// slots left to cover its remaining deficit.
		safe := func(h int) bool {
			for d := pos; d <= n; d++ {
				r := req[d]
				if tbl := tables[h]; tbl != nil && tbl[d] > counts[h] {
					r--
				}
				if r > d-pos {
					return false
				}
			}
			return true
		}
		pick := -1
		for g, q := range queues {
			if len(q) == 0 {
				continue
			}
			if pick >= 0 {
				head, best := q[0], queues[pick][0]
				if head.score < best.score || (head.score == best.score && head.worker > best.worker) {
					continue
				}
			}
			if safe(g) {
				pick = g
			}
		}
		if pick < 0 {
			return nil, ErrInfeasible
		}
		c := queues[pick][0]
		queues[pick] = queues[pick][1:]
		counts[pick]++
		out = append(out, marketplace.RankedWorker{Worker: c.worker, Score: c.score, Rank: pos})
	}
	return out, nil
}

// MTable returns the FA*IR minimum-count table for page size k, group
// share p and significance alpha, unadjusted: entry i (1-based; entry 0
// is always 0) is the smallest m with binomial CDF F(m; i, p) > alpha.
// The binomial distribution is maintained incrementally across prefix
// lengths — one O(i) convolution step per row, O(k²) total.
func MTable(k int, p, alpha float64) []int {
	tbl := make([]int, k+1)
	pmf := make([]float64, 1, k+1)
	pmf[0] = 1
	m := 0
	for i := 1; i <= k; i++ {
		pmf = append(pmf, 0)
		for c := i; c >= 1; c-- {
			pmf[c] = pmf[c]*(1-p) + pmf[c-1]*p
		}
		pmf[0] *= 1 - p
		// F(m; i, p) only shrinks as i grows, so m never steps back.
		cdf := 0.0
		for c := 0; c <= m; c++ {
			cdf += pmf[c]
		}
		for cdf <= alpha && m < i {
			m++
			cdf += pmf[m]
		}
		tbl[i] = m
	}
	return tbl
}

// FailureProb returns the probability that a fair Bernoulli(p) process of
// length len(table)-1 violates the minimum-count table at some prefix —
// the family-wise rejection probability the significance adjustment
// drives down to alpha. Exact dynamic program over (prefix, count).
func FailureProb(p float64, table []int) float64 {
	k := len(table) - 1
	f := make([]float64, 1, k+1)
	f[0] = 1
	for i := 1; i <= k; i++ {
		f = append(f, 0)
		for c := i; c >= 1; c-- {
			f[c] = f[c]*(1-p) + f[c-1]*p
		}
		f[0] *= 1 - p
		for c := 0; c < table[i] && c <= i; c++ {
			f[c] = 0
		}
	}
	success := 0.0
	for _, v := range f {
		success += v
	}
	if success > 1 {
		success = 1
	}
	return 1 - success
}

// AdjustAlpha returns the multiple-testing-corrected significance for a
// (k, p, alpha) table family: the largest alpha_c <= alpha whose table's
// family-wise failure probability (FailureProb) stays within alpha.
// Monotonicity makes binary search exact to float precision. Page sizes
// beyond adjustMaxK skip the search and keep alpha.
func AdjustAlpha(k int, p, alpha float64) float64 {
	if k > adjustMaxK {
		return alpha
	}
	lo, hi := 0.0, alpha
	for iter := 0; iter < 50 && hi-lo > alpha*1e-9; iter++ {
		mid := (lo + hi) / 2
		if FailureProb(p, MTable(k, p, mid)) <= alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// tableKey identifies one cached adjusted table by the exact float bits
// of its parameters — shares repeat exactly across requests against the
// same pool, so bitwise identity is the right interning key.
type tableKey struct {
	k    int
	p, a uint64
}

var tableCache = struct {
	sync.RWMutex
	m map[tableKey][]int
}{m: map[tableKey][]int{}}

var tableHits, tableMisses atomic.Int64

// AdjustedMTable returns the significance-adjusted minimum-count table
// for (k, p, alpha), computing and caching it on first use — the cache
// is what keeps fair-topk inside the serving-latency budget, exactly
// like the fixed-point quantization intern hooks of the pruning cascade.
// The returned slice is the shared cached copy: treat it as read-only.
func AdjustedMTable(k int, p, alpha float64) []int {
	key := tableKey{k, math.Float64bits(p), math.Float64bits(alpha)}
	tableCache.RLock()
	tbl, ok := tableCache.m[key]
	tableCache.RUnlock()
	if ok {
		tableHits.Add(1)
		return tbl
	}
	tableMisses.Add(1)
	tbl = MTable(k, p, AdjustAlpha(k, p, alpha))
	tableCache.Lock()
	if prev, dup := tableCache.m[key]; dup {
		tbl = prev // keep the first computation on a race
	} else {
		tableCache.m[key] = tbl
	}
	tableCache.Unlock()
	return tbl
}

// TableCacheStats reports the adjusted-table cache's hit/miss counters
// and current size, for the exposition-time telemetry gauges.
func TableCacheStats() (hits, misses, size int64) {
	tableCache.RLock()
	size = int64(len(tableCache.m))
	tableCache.RUnlock()
	return tableHits.Load(), tableMisses.Load(), size
}
