package rerank

import (
	"strings"
	"testing"

	"fairrank/internal/telemetry"
)

func TestRegistryHasAllFamilies(t *testing.T) {
	names := Rerankers()
	for _, want := range []string{"det-cons", "det-greedy", "det-relaxed", "exposure-parity", "fair-topk"} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("%s not registered: %v", want, err)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Rerankers not sorted: %v", names)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", FairTopK) })
	mustPanic("nil func", func() { Register("x", nil) })
	mustPanic("duplicate", func() { Register("fair-topk", FairTopK) })
}

func TestLookupErrorListsNames(t *testing.T) {
	_, err := Lookup("nope")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, name := range Rerankers() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("lookup error omits %q: %v", name, err)
		}
	}
}

func TestServeRecordsTelemetry(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 100, 20, 11)
	reg := telemetry.NewRegistry()
	PreregisterMetrics(reg)

	if _, err := Serve(reg, "exposure-parity", ds, attr, ranked, 10, Params{}); err != nil {
		t.Fatal(err)
	}
	label := algoLabel("exposure-parity")
	if got := reg.Counter(MetricServes, label).Value(); got != 1 {
		t.Fatalf("serves counter = %d, want 1", got)
	}
	if got := reg.Counter(MetricErrors, label).Value(); got != 0 {
		t.Fatalf("errors counter = %d, want 0", got)
	}
	h := reg.Histogram(MetricServeSeconds, serveBuckets(), label)
	if h.Count() != 1 {
		t.Fatalf("latency histogram count = %d, want 1", h.Count())
	}

	// A failing request counts as both a serve and an error.
	if _, err := Serve(reg, "exposure-parity", ds, 99, ranked, 10, Params{}); err == nil {
		t.Fatal("bad attribute accepted")
	}
	if got := reg.Counter(MetricServes, label).Value(); got != 2 {
		t.Fatalf("serves counter = %d, want 2", got)
	}
	if got := reg.Counter(MetricErrors, label).Value(); got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}

	// Unknown names fail before any counter exists to attribute them to.
	if _, err := Serve(reg, "nope", ds, attr, ranked, 10, Params{}); err == nil {
		t.Fatal("unknown re-ranker accepted")
	}
}

func TestServeNilRegistry(t *testing.T) {
	ds, attr, ranked := biasedRanking(t, 100, 20, 12)
	if _, err := Serve(nil, "det-cons", ds, attr, ranked, 10, Params{}); err != nil {
		t.Fatal(err)
	}
}

func TestTableCacheHits(t *testing.T) {
	h0, m0, _ := TableCacheStats()
	// A parameter triple no other test uses, so the first call must miss
	// and the second must hit.
	AdjustedMTable(17, 0.123456789, 0.0987654321)
	AdjustedMTable(17, 0.123456789, 0.0987654321)
	h1, m1, size := TableCacheStats()
	if m1 != m0+1 {
		t.Fatalf("misses %d -> %d, want +1", m0, m1)
	}
	if h1 != h0+1 {
		t.Fatalf("hits %d -> %d, want +1", h0, h1)
	}
	if size < 1 {
		t.Fatalf("cache size %d", size)
	}
}

func TestPageSize(t *testing.T) {
	cases := []struct{ k, pool, want int }{
		{0, 10, 10}, {-3, 10, 10}, {5, 10, 5}, {10, 10, 10}, {15, 10, 10},
	}
	for _, c := range cases {
		if got := pageSize(c.k, c.pool); got != c.want {
			t.Errorf("pageSize(%d, %d) = %d, want %d", c.k, c.pool, got, c.want)
		}
	}
}
