package rerank

import (
	"context"
	"fmt"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/scoring"
)

// The evaluation layer scores every re-ranker on the two axes the
// mitigation literature trades between: how much unfairness the page
// sheds (audited by the existing core engine over the page's exposure
// distribution) and how much ranking utility it costs (NDCG against the
// score-optimal page).

// Outcome is one re-ranker's two-axis evaluation of a page.
type Outcome struct {
	// Algorithm is the registry name ("" for the unmitigated baseline).
	Algorithm string `json:"algorithm"`
	// Unfairness is the core engine's audit of the page: the most unfair
	// partitioning of the page members' position-bias exposure.
	Unfairness float64 `json:"unfairness"`
	// NDCG measures utility retention against the score-optimal page
	// (1 = no utility lost).
	NDCG float64 `json:"ndcg"`
	// Disparity is the max/min ratio of mean group exposure on the page.
	Disparity float64 `json:"disparity"`
}

// AuditPage runs the core engine over a page: page members become a
// derived population whose single observed attribute is their
// position-bias exposure (rank 1 → 1.0, in [0,1] — exactly the engine's
// GroundScore range), keeping every protected column, and the balanced
// greedy search finds the most unfair partitioning of that exposure.
// attrs optionally restricts the search to specific protected attributes
// (indices into ds.Schema().Protected, which the derived population
// shares) — pass the mitigated attribute to measure what a re-ranker
// changed rather than the page's exposure spread along every attribute.
// This is the audit axis of the evaluation layer: a re-ranker is judged
// by the same machinery that judged the original ranking.
//
// The measure is within-page: a page that excludes a group entirely
// shows no unfairness along that attribute (there is no one to compare),
// so pair it with the exposure-disparity axis, which does see exclusion.
func AuditPage(ctx context.Context, ds *dataset.Dataset, page []marketplace.RankedWorker, attrs ...int) (float64, error) {
	if len(page) == 0 {
		return 0, errEmptyPool
	}
	schema := ds.Schema()
	derived := &dataset.Schema{
		Protected: schema.Clone().Protected,
		Observed:  []dataset.Attribute{dataset.Num("Exposure", 0, 1, 1)},
	}
	b := dataset.NewBuilder(derived)
	for _, rw := range page {
		if rw.Worker < 0 || rw.Worker >= ds.N() {
			return 0, fmt.Errorf("rerank: worker %d out of range", rw.Worker)
		}
		prot := map[string]any{}
		for a, attr := range schema.Protected {
			if attr.Kind == dataset.Categorical {
				prot[attr.Name] = attr.ValueLabel(ds.Code(a, rw.Worker))
			} else {
				prot[attr.Name] = ds.RawProtected(a, rw.Worker)
			}
		}
		b.Add(ds.ID(rw.Worker), prot, map[string]any{"Exposure": marketplace.PositionBias(rw.Rank)})
	}
	pop, err := b.Build()
	if err != nil {
		return 0, err
	}
	exposure := scoring.ScoreFunc{
		FuncName: "page-exposure",
		Fn:       func(d *dataset.Dataset, i int) float64 { return d.Observed(0, i) },
	}
	e, err := core.NewEvaluator(pop, exposure, core.Config{})
	if err != nil {
		return 0, err
	}
	res, err := core.Run(ctx, core.Spec{Algorithm: "balanced", Evaluator: e, Attrs: attrs})
	if err != nil {
		return 0, err
	}
	return res.Unfairness, nil
}

// evaluatePage computes one page's Outcome against the pool's scores.
func evaluatePage(ctx context.Context, ds *dataset.Dataset, attr int, pool, page []marketplace.RankedWorker, algorithm string) (Outcome, error) {
	out := Outcome{Algorithm: algorithm}
	var err error
	if out.Unfairness, err = AuditPage(ctx, ds, page, attr); err != nil {
		return out, err
	}
	relevance := make([]float64, ds.N())
	for _, rw := range pool {
		relevance[rw.Worker] = rw.Score
	}
	if out.NDCG, err = marketplace.NDCG(relevance, page); err != nil {
		return out, err
	}
	exp, err := marketplace.GroupExposure(ds, attr, page)
	if err != nil {
		return out, err
	}
	out.Disparity = marketplace.ExposureDisparity(exp)
	return out, nil
}

// Evaluate runs every named re-ranker (all registered ones when names is
// nil) over the pool at page size k and scores each page on both axes,
// alongside the unmitigated score-optimal baseline (Algorithm ""). The
// pool must already be ranked (as from marketplace.RankBy); the baseline
// page is its k-prefix. Re-rankers that reject the pool (e.g. fair-topk
// on an infeasible one) surface their error.
func Evaluate(ctx context.Context, ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker, k int, p Params, names []string) (base Outcome, outcomes []Outcome, err error) {
	if names == nil {
		names = Rerankers()
	}
	n := pageSize(k, len(pool))
	if base, err = evaluatePage(ctx, ds, attr, pool, pool[:n], ""); err != nil {
		return base, nil, err
	}
	for _, name := range names {
		page, err := Serve(nil, name, ds, attr, pool, n, p)
		if err != nil {
			return base, outcomes, fmt.Errorf("%s: %w", name, err)
		}
		o, err := evaluatePage(ctx, ds, attr, pool, page, name)
		if err != nil {
			return base, outcomes, fmt.Errorf("%s: %w", name, err)
		}
		outcomes = append(outcomes, o)
	}
	return base, outcomes, nil
}
