package rerank

import (
	"errors"
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/testkit"
)

// Differential tests: every registered re-ranker runs against the
// testkit oracles — the literal binomial-CDF table construction, the
// exhaustive family-wise failure probability, and the brute-force prefix
// checks — over seeded generator populations.

// pageCodes projects a page onto its sequence of group codes.
func pageCodes(ds *dataset.Dataset, attr int, page []marketplace.RankedWorker) []int {
	out := make([]int, len(page))
	for i, rw := range page {
		out[i] = ds.Code(attr, rw.Worker)
	}
	return out
}

// poolCounts tallies pool members per group code.
func poolCounts(ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker) []int {
	out := make([]int, ds.Schema().Protected[attr].Cardinality())
	for _, rw := range pool {
		out[ds.Code(attr, rw.Worker)]++
	}
	return out
}

// The incremental MTable must reproduce the oracle's scan-from-zero
// construction entry for entry.
func TestMTableMatchesOracle(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 80; seed++ {
		g := testkit.NewGen(seed)
		k := g.R.IntRange(1, 40)
		p := g.R.FloatRange(0.05, 0.95)
		alpha := g.R.FloatRange(0.01, 0.3)
		got := MTable(k, p, alpha)
		want := o.FairTopKTable(k, p, alpha)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d (k=%d p=%v alpha=%v): entry %d = %d, oracle %d",
					seed, k, p, alpha, i, got[i], want[i])
			}
		}
	}
}

// The failure-probability dynamic program must match the exhaustive
// 2^k enumeration for every small table, including adjusted ones.
func TestFailureProbMatchesExhaustive(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		k := g.R.IntRange(1, 12)
		p := g.R.FloatRange(0.1, 0.9)
		alpha := g.R.FloatRange(0.02, 0.3)
		for _, tbl := range [][]int{
			MTable(k, p, alpha),
			MTable(k, p, AdjustAlpha(k, p, alpha)),
		} {
			got := FailureProb(p, tbl)
			want := o.FairFailProb(p, tbl)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d (k=%d p=%v): DP %v, exhaustive %v over %v",
					seed, k, p, got, want, tbl)
			}
		}
	}
}

// The significance adjustment must lower alpha, bring the family-wise
// failure probability within the nominal level, and only ever relax the
// table (pointwise <= the unadjusted one).
func TestAdjustAlphaProperties(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		g := testkit.NewGen(seed)
		k := g.R.IntRange(2, 60)
		p := g.R.FloatRange(0.1, 0.9)
		alpha := g.R.FloatRange(0.02, 0.3)
		ac := AdjustAlpha(k, p, alpha)
		if ac > alpha || ac < 0 {
			t.Fatalf("seed %d: adjusted alpha %v outside [0, %v]", seed, ac, alpha)
		}
		if fp := FailureProb(p, MTable(k, p, ac)); fp > alpha+1e-9 {
			t.Fatalf("seed %d: adjusted table still fails at %v > %v", seed, fp, alpha)
		}
		raw, adj := MTable(k, p, alpha), AdjustedMTable(k, p, alpha)
		for i := range adj {
			if adj[i] > raw[i] {
				t.Fatalf("seed %d: adjusted table exceeds raw at %d: %d > %d",
					seed, i, adj[i], raw[i])
			}
		}
	}
}

// Every registered re-ranker must return a well-formed page: size
// min(k, pool), fresh ranks 1..n, candidates a subset of the pool with
// unchanged scores and no duplicates.
func TestAllRerankersContract(t *testing.T) {
	infeasible := 0
	for seed := uint64(1); seed <= 50; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(3, 90))
		if err != nil {
			t.Fatal(err)
		}
		pool := scoreSorted(g, ds)
		k := g.R.IntRange(1, len(pool)+5)
		for _, name := range Rerankers() {
			page, err := Serve(nil, name, ds, 0, pool, k, Params{Epsilon: g.R.Float64()})
			if errors.Is(err, ErrInfeasible) {
				infeasible++
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			want := pageSize(k, len(pool))
			if len(page) != want {
				t.Fatalf("seed %d %s: page size %d, want %d", seed, name, len(page), want)
			}
			seen := map[int]float64{}
			for _, rw := range pool {
				seen[rw.Worker] = rw.Score
			}
			for i, rw := range page {
				if rw.Rank != i+1 {
					t.Fatalf("seed %d %s: position %d has rank %d", seed, name, i, rw.Rank)
				}
				score, ok := seen[rw.Worker]
				if !ok {
					t.Fatalf("seed %d %s: worker %d not in pool (or duplicated)", seed, name, rw.Worker)
				}
				if score != rw.Score {
					t.Fatalf("seed %d %s: worker %d score changed", seed, name, rw.Worker)
				}
				delete(seen, rw.Worker)
			}
		}
	}
	if infeasible > 20 {
		t.Fatalf("%d of 50 seeds infeasible for fair-topk — generator shares too skewed", infeasible)
	}
}

// fair-topk pages must satisfy every group's adjusted minimum-count
// table at every prefix, checked by the oracle's brute-force counter.
func TestFairTopKSatisfiesTables(t *testing.T) {
	checked := 0
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(5, 100))
		if err != nil {
			t.Fatal(err)
		}
		pool := scoreSorted(g, ds)
		k := g.R.IntRange(2, len(pool))
		alpha := g.R.FloatRange(0.05, 0.25)
		page, err := FairTopK(ds, 0, pool, k, Params{Alpha: alpha})
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		counts := poolCounts(ds, 0, pool)
		tables := make([][]int, len(counts))
		for gr, c := range counts {
			if c == 0 {
				continue
			}
			share := float64(c) / float64(len(pool))
			tables[gr] = AdjustedMTable(len(page), share, alpha)
		}
		if err := testkit.CheckPrefixMinimums(pageCodes(ds, 0, page), tables); err != nil {
			t.Fatalf("seed %d (k=%d alpha=%v): %v", seed, k, alpha, err)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d of 60 seeds were feasible", checked)
	}
}

// Det* pages over pools with at most three present groups must satisfy
// the floor/ceiling interval at every prefix — Geyik et al.'s feasible
// range, checked against the brute-force oracle.
func TestDetSatisfiesPrefixIntervals(t *testing.T) {
	checked := 0
	for seed := uint64(1); seed <= 120; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(5, 100))
		if err != nil {
			t.Fatal(err)
		}
		pool := scoreSorted(g, ds)
		counts := poolCounts(ds, 0, pool)
		present := 0
		for _, c := range counts {
			if c > 0 {
				present++
			}
		}
		if present > 3 {
			continue
		}
		k := g.R.IntRange(1, len(pool))
		for _, name := range []string{"det-greedy", "det-cons", "det-relaxed"} {
			page, err := Serve(nil, name, ds, 0, pool, k, Params{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if err := testkit.CheckPrefixIntervals(pageCodes(ds, 0, page), counts); err != nil {
				t.Fatalf("seed %d %s (k=%d counts=%v): %v", seed, name, k, counts, err)
			}
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("only %d of 120 seeds had <=3 present groups", checked)
	}
}

// Degenerate pools every re-ranker must handle: a single-group pool (the
// page is the score order), all-equal scores (worker-index order breaks
// ties), and k exceeding the pool (the page is the whole pool).
func TestDegeneratePools(t *testing.T) {
	g := testkit.NewGen(99)
	ds, err := g.WorkerDataset(60)
	if err != nil {
		t.Fatal(err)
	}
	pool := scoreSorted(g, ds)

	t.Run("single group", func(t *testing.T) {
		var sub []marketplace.RankedWorker
		for _, rw := range pool {
			if ds.Code(0, rw.Worker) == 0 {
				sub = append(sub, rw)
			}
		}
		if len(sub) < 3 {
			t.Fatalf("seed population has only %d group-0 members", len(sub))
		}
		for _, name := range Rerankers() {
			page, err := Serve(nil, name, ds, 0, sub, len(sub), Params{Epsilon: 1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range page {
				if page[i].Worker != sub[i].Worker {
					t.Fatalf("%s: single-group page deviates from score order at %d", name, i)
				}
			}
		}
	})

	t.Run("all-equal scores", func(t *testing.T) {
		flat := make([]marketplace.RankedWorker, len(pool))
		for i, rw := range pool {
			flat[i] = marketplace.RankedWorker{Worker: rw.Worker, Score: 0.5, Rank: i + 1}
		}
		for _, name := range Rerankers() {
			a, err := Serve(nil, name, ds, 0, flat, 20, Params{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, err := Serve(nil, name, ds, 0, flat, 20, Params{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: tie-heavy page not deterministic at %d", name, i)
				}
			}
		}
	})

	t.Run("k past the pool", func(t *testing.T) {
		for _, name := range Rerankers() {
			page, err := Serve(nil, name, ds, 0, pool, len(pool)+50, Params{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(page) != len(pool) {
				t.Fatalf("%s: page size %d, want whole pool %d", name, len(page), len(pool))
			}
		}
	})

	t.Run("k zero selects whole pool", func(t *testing.T) {
		for _, name := range Rerankers() {
			page, err := Serve(nil, name, ds, 0, pool, 0, Params{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(page) != len(pool) {
				t.Fatalf("%s: page size %d, want %d", name, len(page), len(pool))
			}
		}
	})
}
