package rerank

import (
	"fmt"
	"sort"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
)

// candidate is one pool entry inside a per-group queue.
type candidate struct {
	worker int
	score  float64
}

// splitPool validates the pool against ds and splits it into per-group
// candidate queues indexed by the protected attribute's value code, each
// sorted by descending score with worker index as the deterministic
// tiebreak. Queues of absent groups are empty. Iterating queues by code
// (0..cardinality-1) is the package's canonical deterministic group
// order — no map iteration anywhere on a serving path.
func splitPool(ds *dataset.Dataset, attr int, pool []marketplace.RankedWorker) ([][]candidate, error) {
	if len(pool) == 0 {
		return nil, errEmptyPool
	}
	if attr < 0 || attr >= len(ds.Schema().Protected) {
		return nil, fmt.Errorf("rerank: protected attribute %d out of range", attr)
	}
	card := ds.Schema().Protected[attr].Cardinality()
	queues := make([][]candidate, card)
	for _, rw := range pool {
		if rw.Worker < 0 || rw.Worker >= ds.N() {
			return nil, fmt.Errorf("rerank: worker %d out of range", rw.Worker)
		}
		g := ds.Code(attr, rw.Worker)
		queues[g] = append(queues[g], candidate{rw.Worker, rw.Score})
	}
	for g := range queues {
		q := queues[g]
		sort.SliceStable(q, func(a, b int) bool {
			if q[a].score != q[b].score {
				return q[a].score > q[b].score
			}
			return q[a].worker < q[b].worker
		})
	}
	return queues, nil
}
