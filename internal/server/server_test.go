package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/simulate"
	"fairrank/internal/store"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "srv.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, path
}

func uploadDataset(t *testing.T, ts *httptest.Server, name string, n int) {
	t.Helper()
	ds, err := simulate.PaperWorkers(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets/"+name, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestDashboard(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 60)
	postJSON(t, ts.URL+"/v1/tasks", map[string]any{
		"id": "gig", "title": "a <script> test", "dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 1},
	})
	postJSON(t, ts.URL+"/v1/audits", map[string]any{
		"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1},
	})
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("dashboard = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	html := body.String()
	for _, want := range []string{"fairrank", "workers", "gig", "audit-000001"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Task title must be HTML-escaped.
	if strings.Contains(html, "<script>") {
		t.Error("dashboard did not escape task title")
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var out map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &out); code != 200 || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, out)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 120)

	var list []map[string]any
	if code := getJSON(t, ts.URL+"/v1/datasets", &list); code != 200 || len(list) != 1 {
		t.Fatalf("list = %d %v", code, list)
	}
	var info map[string]any
	if code := getJSON(t, ts.URL+"/v1/datasets/workers", &info); code != 200 {
		t.Fatalf("get = %d", code)
	}
	if info["workers"].(float64) != 120 {
		t.Fatalf("info = %v", info)
	}
	if code := getJSON(t, ts.URL+"/v1/datasets/missing", nil); code != 404 {
		t.Fatalf("missing dataset = %d", code)
	}
}

func TestDatasetUploadCSV(t *testing.T) {
	_, ts, _ := newTestServer(t)
	ds, _ := simulate.PaperWorkers(30, 1)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets/csvset", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("csv upload = %d", resp.StatusCode)
	}
}

func TestDatasetUploadErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/datasets/x", "application/octet-stream",
		strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/datasets/x", "application/xml", strings.NewReader("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("bad content type = %d", resp.StatusCode)
	}
}

func TestTaskLifecycleAndRank(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 200)

	task := map[string]any{
		"id": "gig1", "title": "web gig", "dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 0.7, "ApprovalRate": 0.3},
	}
	resp, _ := postJSON(t, ts.URL+"/v1/tasks", task)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post task = %d", resp.StatusCode)
	}
	// Duplicate rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/tasks", task)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate task = %d", resp.StatusCode)
	}
	var tasks []map[string]any
	if code := getJSON(t, ts.URL+"/v1/tasks", &tasks); code != 200 || len(tasks) != 1 {
		t.Fatalf("list tasks = %d %v", code, tasks)
	}

	var ranked []map[string]any
	if code := getJSON(t, ts.URL+"/v1/rank?task=gig1&k=5", &ranked); code != 200 {
		t.Fatalf("rank = %d", code)
	}
	if len(ranked) != 5 {
		t.Fatalf("%d ranked entries", len(ranked))
	}
	prev := 2.0
	for _, e := range ranked {
		s := e["score"].(float64)
		if s > prev {
			t.Fatal("ranking not descending")
		}
		prev = s
	}

	// Filtered ranking.
	var filtered []map[string]any
	url := ts.URL + "/v1/rank?task=gig1&k=5&q=" + urlQueryEscape("Gender = 'Female'")
	if code := getJSON(t, url, &filtered); code != 200 {
		t.Fatalf("filtered rank = %d", code)
	}
	if len(filtered) == 0 {
		t.Fatal("no filtered results")
	}
}

func urlQueryEscape(s string) string {
	r := strings.NewReplacer(" ", "%20", "'", "%27", "=", "%3D")
	return r.Replace(s)
}

func TestTaskErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 50)
	cases := []map[string]any{
		{"id": "", "dataset": "workers", "weights": map[string]float64{"LanguageTest": 1}},
		{"id": "t", "dataset": "missing", "weights": map[string]float64{"LanguageTest": 1}},
		{"id": "t", "dataset": "workers", "weights": map[string]float64{}},
		{"id": "t", "dataset": "workers", "weights": map[string]float64{"Charisma": 1}},
	}
	for i, c := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/tasks", c)
		if resp.StatusCode < 400 {
			t.Errorf("case %d accepted with %d", i, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/tasks", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d", resp.StatusCode)
	}
}

func TestRankErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 50)
	postJSON(t, ts.URL+"/v1/tasks", map[string]any{
		"id": "t1", "dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 1},
	})
	if code := getJSON(t, ts.URL+"/v1/rank", nil); code != 400 {
		t.Errorf("missing task param = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rank?task=missing", nil); code != 404 {
		t.Errorf("missing task = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rank?task=t1&k=-2", nil); code != 400 {
		t.Errorf("bad k = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rank?task=t1&q=%5B%5D", nil); code != 400 {
		t.Errorf("bad query = %d", code)
	}
}

func TestAuditEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 200)

	req := map[string]any{
		"dataset":   "workers",
		"algorithm": "balanced",
		"weights":   map[string]float64{"LanguageTest": 1},
		"bins":      10,
	}
	resp, body := postJSON(t, ts.URL+"/v1/audits", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("audit = %d: %s", resp.StatusCode, body)
	}
	var audit map[string]any
	if err := json.Unmarshal(body, &audit); err != nil {
		t.Fatal(err)
	}
	id := audit["id"].(string)
	if audit["unfairness"].(float64) <= 0 {
		t.Fatal("zero unfairness on random data (suspicious)")
	}
	if len(audit["partitions"].([]any)) < 2 {
		t.Fatal("too few partitions")
	}

	// Stored and retrievable.
	var fetched map[string]any
	if code := getJSON(t, ts.URL+"/v1/audits/"+id, &fetched); code != 200 {
		t.Fatalf("get audit = %d", code)
	}
	if fetched["unfairness"] != audit["unfairness"] {
		t.Fatal("stored audit differs")
	}
	var all []map[string]any
	if code := getJSON(t, ts.URL+"/v1/audits", &all); code != 200 || len(all) != 1 {
		t.Fatalf("list audits = %d, %d items", code, len(all))
	}
	if code := getJSON(t, ts.URL+"/v1/audits/audit-999999", nil); code != 404 {
		t.Fatalf("missing audit = %d", code)
	}
}

func TestAuditWithSignificanceAndAttrs(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 150)
	req := map[string]any{
		"dataset":             "workers",
		"algorithm":           "all-attributes",
		"weights":             map[string]float64{"ApprovalRate": 1},
		"attributes":          []string{"Gender", "Country"},
		"significance_rounds": 50,
		"seed":                7,
	}
	resp, body := postJSON(t, ts.URL+"/v1/audits", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("audit = %d: %s", resp.StatusCode, body)
	}
	var audit map[string]any
	if err := json.Unmarshal(body, &audit); err != nil {
		t.Fatal(err)
	}
	if _, ok := audit["p_value"]; !ok {
		t.Fatal("p_value missing")
	}
	// Only Gender×Country cells (≤ 6 partitions).
	if n := len(audit["partitions"].([]any)); n > 6 {
		t.Fatalf("%d partitions from a 2x3 attribute subset", n)
	}
}

func TestAuditErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 50)
	cases := []map[string]any{
		{"dataset": "missing", "weights": map[string]float64{"LanguageTest": 1}},
		{"dataset": "workers", "weights": map[string]float64{}},
		{"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1}, "algorithm": "quantum"},
		{"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1}, "metric": "nope"},
		{"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1}, "attributes": []string{"Nope"}},
		{"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1}, "attributes": []string{}},
	}
	for i, c := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/audits", c)
		if resp.StatusCode < 400 {
			t.Errorf("case %d accepted with %d", i, resp.StatusCode)
		}
	}
}

func TestRerankEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 300)
	postJSON(t, ts.URL+"/v1/tasks", map[string]any{
		"id": "t1", "dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 1},
	})
	req := map[string]any{"task": "t1", "k": 20, "attribute": "Gender", "epsilon": 1.0}
	resp, body := postJSON(t, ts.URL+"/v1/rerank", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rerank = %d: %s", resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out["ranking"].([]any)) != 20 {
		t.Fatalf("ranking size = %d", len(out["ranking"].([]any)))
	}
	if out["disparity_after"].(float64) > out["disparity_before"].(float64) {
		t.Fatalf("disparity worsened: %v -> %v", out["disparity_before"], out["disparity_after"])
	}
	// Errors.
	for i, bad := range []map[string]any{
		{"task": "missing", "attribute": "Gender"},
		{"task": "t1", "attribute": "Charisma"},
		{"task": "t1", "attribute": "Gender", "epsilon": -1},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/rerank", bad)
		if resp.StatusCode < 400 {
			t.Errorf("bad rerank %d accepted with %d", i, resp.StatusCode)
		}
	}
}

func TestRepairEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 300)
	req := map[string]any{
		"dataset":  "workers",
		"weights":  map[string]float64{"LanguageTest": 1},
		"group_by": []string{"Gender"},
		"amount":   1.0,
	}
	resp, body := postJSON(t, ts.URL+"/v1/repair", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair = %d: %s", resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["unfairness_after"].(float64) > out["unfairness_before"].(float64) {
		t.Fatalf("repair worsened unfairness: %v -> %v",
			out["unfairness_before"], out["unfairness_after"])
	}
	if out["groups"].(float64) != 2 {
		t.Fatalf("groups = %v, want 2 (Gender)", out["groups"])
	}
	// Default grouping via balanced.
	req2 := map[string]any{
		"dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 1},
		"amount":  0.5,
	}
	resp, body = postJSON(t, ts.URL+"/v1/repair", req2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair default grouping = %d: %s", resp.StatusCode, body)
	}
	// Errors.
	for i, bad := range []map[string]any{
		{"dataset": "missing", "weights": map[string]float64{"LanguageTest": 1}, "amount": 1},
		{"dataset": "workers", "weights": map[string]float64{}, "amount": 1},
		{"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1}, "amount": 2},
		{"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1}, "group_by": []string{"Nope"}, "amount": 1},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/repair", bad)
		if resp.StatusCode < 400 {
			t.Errorf("bad repair %d accepted with %d", i, resp.StatusCode)
		}
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	_, ts, path := newTestServer(t)
	uploadDataset(t, ts, "workers", 80)
	postJSON(t, ts.URL+"/v1/tasks", map[string]any{
		"id": "t1", "dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 1},
	})
	postJSON(t, ts.URL+"/v1/audits", map[string]any{
		"dataset": "workers", "weights": map[string]float64{"LanguageTest": 1},
	})
	ts.Close()

	// Restart over the same store file.
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s2, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var list []map[string]any
	if code := getJSON(t, ts2.URL+"/v1/datasets", &list); code != 200 || len(list) != 1 {
		t.Fatalf("datasets after restart = %d %v", code, list)
	}
	var tasks []map[string]any
	if code := getJSON(t, ts2.URL+"/v1/tasks", &tasks); code != 200 || len(tasks) != 1 {
		t.Fatalf("tasks after restart = %v", tasks)
	}
	var audits []map[string]any
	if code := getJSON(t, ts2.URL+"/v1/audits", &audits); code != 200 || len(audits) != 1 {
		t.Fatalf("audits after restart = %v", audits)
	}
	// New audits continue the ID sequence rather than clobbering.
	resp, body := postJSON(t, ts2.URL+"/v1/audits", map[string]any{
		"dataset": "workers", "weights": map[string]float64{"ApprovalRate": 1},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-restart audit = %d: %s", resp.StatusCode, body)
	}
	if code := getJSON(t, ts2.URL+"/v1/audits", &audits); code != 200 || len(audits) != 2 {
		t.Fatalf("expected 2 audits after restart, got %d", len(audits))
	}
}

func TestRankUsesStoredTaskAcrossDatasets(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "a", 60)
	uploadDataset(t, ts, "b", 90)
	postJSON(t, ts.URL+"/v1/tasks", map[string]any{
		"id": "tb", "dataset": "b",
		"weights": map[string]float64{"ApprovalRate": 1},
	})
	var ranked []map[string]any
	if code := getJSON(t, ts.URL+"/v1/rank?task=tb&k=0", &ranked); code != 200 {
		t.Fatalf("rank = %d", code)
	}
	if len(ranked) != 90 {
		t.Fatalf("ranked %d workers, want 90 (dataset b)", len(ranked))
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 150)
	resp, body := postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d: %s", resp.StatusCode, body)
	}
	var imps []map[string]any
	if err := json.Unmarshal(body, &imps); err != nil {
		t.Fatal(err)
	}
	if len(imps) != 6 {
		t.Fatalf("%d importances, want 6", len(imps))
	}
	if _, ok := imps[0]["Solo"]; !ok {
		t.Fatalf("importance shape: %v", imps[0])
	}
	// Errors.
	resp, _ = postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"dataset": "missing", "weights": map[string]float64{"LanguageTest": 1},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing dataset = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/explain", map[string]any{
		"dataset": "workers", "weights": map[string]float64{},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty weights = %d", resp.StatusCode)
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var names []string
	if code := getJSON(t, ts.URL+"/v1/algorithms", &names); code != http.StatusOK {
		t.Fatalf("algorithms = %d", code)
	}
	if !reflect.DeepEqual(names, core.Algorithms()) {
		t.Fatalf("endpoint %v != registry %v", names, core.Algorithms())
	}
	for _, want := range []string{"balanced", "unbalanced", "exhaustive"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("algorithm list missing %q: %v", want, names)
		}
	}
}

// TestAuditClientDisconnect drives the audit handler in-process with a
// cancellable request context — the server-side view of a client that
// disconnects mid-audit. The search must abort promptly and leave nothing
// in the audit store.
func TestAuditClientDisconnect(t *testing.T) {
	s, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 500)

	// exhaustive-cells over all six attributes streams candidates from a
	// Bell-number space: it cannot finish, so only the cancellation can
	// end the request.
	raw, err := json.Marshal(map[string]any{
		"dataset":   "workers",
		"algorithm": "exhaustive-cells",
		"budget":    1 << 40,
		"weights":   map[string]float64{"LanguageTest": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The body reader signals when the handler has drained the request, so
	// the cancel deterministically lands after the audit is underway instead
	// of racing a fixed sleep against the scheduler.
	bodyRead := make(chan struct{})
	body := &eofSignalReader{r: bytes.NewReader(raw), eof: bodyRead, remain: len(raw)}
	req := httptest.NewRequest(http.MethodPost, "/v1/audits", body).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	<-bodyRead
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("audit handler did not return within 5s of client disconnect")
	}

	// The aborted audit must not have been assigned an ID or stored.
	var all []map[string]any
	if code := getJSON(t, ts.URL+"/v1/audits", &all); code != http.StatusOK || len(all) != 0 {
		t.Fatalf("audits after disconnect: code %d, %d stored", code, len(all))
	}
}

// eofSignalReader closes eof once every one of the remain expected bytes
// has been delivered (or the underlying reader reports EOF), marking the
// moment a handler has consumed the request body. Counting bytes matters:
// json.Decoder stops after the final close brace without ever reading the
// terminal EOF, so an EOF-only signal would never fire.
type eofSignalReader struct {
	r        io.Reader
	eof      chan struct{}
	remain   int
	signaled bool
}

func (s *eofSignalReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	s.remain -= n
	if (s.remain <= 0 || err == io.EOF) && !s.signaled {
		s.signaled = true
		close(s.eof)
	}
	return n, err
}
