package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fairrank/internal/drift"
	"fairrank/internal/simulate/driftsim"
	"fairrank/internal/store"
)

// e2eMonitorSpec is the 3-rule monitor the e2e scenario runs against:
// driftsim's stock audit (absolute backstop, slope detector, and the
// window-vs-baseline drift detector) re-pointed at the uploaded dataset.
func e2eMonitorSpec(id, ds string) drift.Spec {
	spec := driftsim.DefaultMonitorSpec(id, "Gender", 20)
	spec.Dataset = ds
	return spec
}

func createMonitor(t *testing.T, ts *httptest.Server, spec drift.Spec) monitorStatus {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/monitors", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create monitor: status %d: %s", resp.StatusCode, body)
	}
	var st monitorStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// httpSink drives a server-side monitor through driftsim.MonitorSink, so
// the exact same scenario that exercises an in-process watch exercises
// the HTTP surface.
type httpSink struct {
	t    *testing.T
	base string
	id   string
}

func (s *httpSink) Send(events []drift.Event) ([]drift.AlarmEvent, error) {
	resp, body := postJSON(s.t, s.base+"/v1/monitors/"+s.id+"/events", map[string]any{"events": events})
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events: status %d: %s", resp.StatusCode, body)
	}
	var out monitorEventsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	if out.Applied != len(events) {
		return nil, fmt.Errorf("applied %d of %d", out.Applied, len(events))
	}
	return out.Alarms, nil
}

func (s *httpSink) SealBaseline() error {
	resp, body := postJSON(s.t, s.base+"/v1/monitors/"+s.id+"/baseline", nil)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("baseline: status %d: %s", resp.StatusCode, body)
	}
	return nil
}

func (s *httpSink) Unfairness() (float64, error) {
	var st monitorStatus
	if code := getJSON(s.t, s.base+"/v1/monitors/"+s.id, &st); code != http.StatusOK {
		return 0, fmt.Errorf("status %d", code)
	}
	if st.Window == nil {
		return 0, fmt.Errorf("monitor has no window estimator")
	}
	return st.Window.Unfairness, nil
}

func getMonitor(t *testing.T, base, id string) monitorStatus {
	t.Helper()
	var st monitorStatus
	if code := getJSON(t, base+"/v1/monitors/"+id, &st); code != http.StatusOK {
		t.Fatalf("get monitor: status %d", code)
	}
	return st
}

func alarmByRule(t *testing.T, st monitorStatus, rule string) drift.AlarmStatus {
	t.Helper()
	for _, a := range st.Alarms {
		if a.Rule == rule {
			return a
		}
	}
	t.Fatalf("no alarm %q in status %+v", rule, st.Alarms)
	return drift.AlarmStatus{}
}

// pageBatch builds one window-filling batch of joins: count/2 per gender,
// every worker id unique under prefix, each gender at a fixed score.
// With the default 10 bins a 0.1 score gap is one histogram bin — EMD
// 0.1 per bin of separation once the batch owns the whole window.
func pageBatch(prefix string, count int, maleScore, femaleScore float64) []drift.Event {
	events := make([]drift.Event, 0, count)
	for i := 0; i < count/2; i++ {
		events = append(events,
			drift.Event{Type: drift.EventJoin, Worker: fmt.Sprintf("%s-m%d", prefix, i),
				Protected: map[string]any{"Gender": "Male"}, Score: maleScore},
			drift.Event{Type: drift.EventJoin, Worker: fmt.Sprintf("%s-f%d", prefix, i),
				Protected: map[string]any{"Gender": "Female"}, Score: femaleScore},
		)
	}
	return events
}

func driftTransitions(alarms []drift.AlarmEvent) (fired, cleared int) {
	for _, a := range alarms {
		if a.RuleType != drift.RuleBaseline {
			continue
		}
		switch a.Type {
		case drift.AlarmFired:
			fired++
		case drift.AlarmCleared:
			cleared++
		}
	}
	return fired, cleared
}

func TestMonitorLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 120)

	st := createMonitor(t, ts, e2eMonitorSpec("audit-1", "workers"))
	if st.Dataset != "workers" || st.ID != "audit-1" {
		t.Fatalf("created status = %+v", st)
	}
	// The dataset seed fills the estimators but is not an observed event.
	if st.Events != 0 {
		t.Fatalf("events after seed = %d, want 0", st.Events)
	}
	if st.Total.Workers != 120 {
		t.Fatalf("total workers = %d, want the full seeded population", st.Total.Workers)
	}
	if st.Window == nil || st.Window.Workers != 80 {
		t.Fatalf("window = %+v, want the last 80 seed rows", st.Window)
	}
	if len(st.Alarms) != 3 {
		t.Fatalf("alarms = %+v, want 3 rules", st.Alarms)
	}

	// Duplicate id is a conflict.
	if resp, _ := postJSON(t, ts.URL+"/v1/monitors", e2eMonitorSpec("audit-1", "workers")); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", resp.StatusCode)
	}

	var list []monitorStatus
	if code := getJSON(t, ts.URL+"/v1/monitors", &list); code != 200 || len(list) != 1 || list[0].ID != "audit-1" {
		t.Fatalf("list = %d %+v", code, list)
	}
	getMonitor(t, ts.URL, "audit-1")

	// The monitor holds a reference: the dataset cannot be deleted first.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/workers", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("dataset delete under monitor: %v %d", err, resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/monitors/audit-1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete monitor: %v %d", err, resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/monitors/audit-1", nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/monitors/audit-1", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %v %d", err, resp.StatusCode)
	}
	// Monitor gone — the dataset is deletable again.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/workers", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("dataset delete after monitor removed: %v %d", err, resp.StatusCode)
	}
}

func TestMonitorCreateValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 60)

	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown dataset", e2eMonitorSpec("m1", "nope"), http.StatusNotFound},
		{"bad attribute", func() drift.Spec {
			s := e2eMonitorSpec("m2", "workers")
			s.Attributes = []string{"NotAnAttr"}
			return s
		}(), http.StatusBadRequest},
		{"bad id", func() drift.Spec {
			s := e2eMonitorSpec("UPPER CASE", "workers")
			return s
		}(), http.StatusBadRequest},
		{"unknown field", map[string]any{
			"id": "m3", "dataset": "workers", "attributes": []string{"Gender"},
			"weights": map[string]float64{"ApprovalRate": 1}, "surprise": true,
		}, http.StatusBadRequest},
		{"no weights", map[string]any{
			"id": "m4", "dataset": "workers", "attributes": []string{"Gender"},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/monitors", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

func TestMonitorEventIngest(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 60)
	createMonitor(t, ts, e2eMonitorSpec("ingest", "workers"))
	sink := &httpSink{t: t, base: ts.URL, id: "ingest"}

	alarms, err := sink.Send([]drift.Event{
		{Type: drift.EventJoin, Worker: "w1", Protected: map[string]any{"Gender": "Female"}, Score: 0.7},
		{Type: drift.EventRescore, Worker: "w1", Score: 0.4},
		{Type: drift.EventLeave, Worker: "w1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 0 {
		t.Fatalf("unexpected transitions: %+v", alarms)
	}
	if st := getMonitor(t, ts.URL, "ingest"); st.Events != 3 {
		t.Fatalf("events = %d, want 3", st.Events)
	}

	// A bad event mid-batch: everything before it sticks, the response
	// names both the failing index and the applied count.
	resp, body := postJSON(t, ts.URL+"/v1/monitors/ingest/events", map[string]any{"events": []drift.Event{
		{Type: drift.EventJoin, Worker: "w2", Protected: map[string]any{"Gender": "Male"}, Score: 0.5},
		{Type: drift.EventRescore, Worker: "no-such-worker", Score: 0.9},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "event 1 (after 1 applied)") {
		t.Fatalf("bad batch error = %s", body)
	}
	if st := getMonitor(t, ts.URL, "ingest"); st.Events != 4 {
		t.Fatalf("events after partial batch = %d, want 4", st.Events)
	}

	// Unknown monitor.
	resp, _ = postJSON(t, ts.URL+"/v1/monitors/ghost/events", map[string]any{"events": []drift.Event{}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown monitor: status %d", resp.StatusCode)
	}
}

// TestMonitorDriftE2E is the acceptance scenario end to end over HTTP: a
// served-page drift scenario feeds a 3-rule monitor through the REST
// surface, the window-vs-baseline rule fires exactly once on the shift
// and latches (hysteresis), a controlled cool-down clears it exactly
// once, a re-fire is provoked and then held through the hysteresis band,
// and finally the server restarts from its WAL without losing the active
// alarm or re-firing it.
func TestMonitorDriftE2E(t *testing.T) {
	_, ts, path := newTestServer(t)
	uploadDataset(t, ts, "workers", 500)
	createMonitor(t, ts, e2eMonitorSpec("drift-e2e", "workers"))
	sink := &httpSink{t: t, base: ts.URL, id: "drift-e2e"}

	// Phase 1 — the drift scenario, served over HTTP. Group-aware
	// det-greedy keeps the drifted group on the page, so the monitor sees
	// the divergence and the drift rule fires exactly once, then stays
	// latched on the plateau.
	scn := driftsim.Spec{
		Seed:    1,
		Shift:   0.25,
		Spread:  0.5,
		Monitor: e2eMonitorSpec("drift-e2e", "workers"),
	}
	run, err := driftsim.RunOne(scn, "det-greedy", sink)
	if err != nil {
		t.Fatal(err)
	}
	shiftAt := 60 / 3 // withDefaults: Steps=60, ShiftAt=Steps/3
	if run.DetectionStep < shiftAt {
		t.Fatalf("detected at step %d, before the shift at %d", run.DetectionStep, shiftAt)
	}
	if fired, cleared := driftTransitions(run.Alarms); fired != 1 || cleared != 0 {
		t.Fatalf("scenario drift transitions fired=%d cleared=%d, want exactly one fire, latched", fired, cleared)
	}
	if run.Final < 0.1 {
		t.Fatalf("final windowed unfairness %v — drift plateau missing", run.Final)
	}
	st := getMonitor(t, ts.URL, "drift-e2e")
	if a := alarmByRule(t, st, "drift"); !a.Active || a.Fired != 1 {
		t.Fatalf("drift alarm after scenario = %+v, want active with 1 fire", a)
	}

	// Phase 2 — controlled clear: a window of identical scores drives the
	// estimate to 0, crossing the cleared level (limit minus hysteresis)
	// exactly once.
	alarms, err := sink.Send(pageBatch("cool", 80, 0.95, 0.95))
	if err != nil {
		t.Fatal(err)
	}
	if fired, cleared := driftTransitions(alarms); fired != 0 || cleared != 1 {
		t.Fatalf("cool-down transitions fired=%d cleared=%d, want exactly one clear", fired, cleared)
	}

	// Re-seal the baseline at the now-fair level so the next phases work
	// against a known zero.
	resp, body := postJSON(t, ts.URL+"/v1/monitors/drift-e2e/baseline", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-seal: status %d: %s", resp.StatusCode, body)
	}
	var sealed struct {
		Sealed map[string]float64 `json:"sealed"`
	}
	if err := json.Unmarshal(body, &sealed); err != nil {
		t.Fatal(err)
	}
	if v, ok := sealed.Sealed["drift"]; !ok || v > 1e-9 {
		t.Fatalf("re-sealed baseline = %v, want 0 over a uniform window", sealed.Sealed)
	}

	// Phase 3 — re-fire: a two-bin score gap makes the windowed EMD 0.2,
	// twice the rule's delta. Exactly one fire, no flapping.
	alarms, err = sink.Send(pageBatch("gap2", 80, 0.95, 0.75))
	if err != nil {
		t.Fatal(err)
	}
	if fired, cleared := driftTransitions(alarms); fired != 1 || cleared != 0 {
		t.Fatalf("re-fire transitions fired=%d cleared=%d, want exactly one fire", fired, cleared)
	}

	// Phase 4 — hysteresis: narrowing the gap to one bin drops the signal
	// to ~0.1 — at/below the firing limit but above the cleared level
	// (0.075) — so the alarm must stay latched with no transition at all.
	alarms, err = sink.Send(pageBatch("gap1", 80, 0.95, 0.85))
	if err != nil {
		t.Fatal(err)
	}
	if fired, cleared := driftTransitions(alarms); fired != 0 || cleared != 0 {
		t.Fatalf("hysteresis band transitions fired=%d cleared=%d, want none (latched)", fired, cleared)
	}
	st = getMonitor(t, ts.URL, "drift-e2e")
	if a := alarmByRule(t, st, "drift"); !a.Active || a.Fired != 2 {
		t.Fatalf("drift alarm before restart = %+v, want active with 2 fires", a)
	}
	preRestart := st

	// Phase 5 — restart over the same WAL. The revived monitor re-seeds
	// its estimators from the dataset snapshot without evaluating rules,
	// so the active alarm survives with its fired count intact.
	ts.Close()
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s2, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	st = getMonitor(t, ts2.URL, "drift-e2e")
	a := alarmByRule(t, st, "drift")
	if !a.Active || a.Fired != 2 {
		t.Fatalf("drift alarm after restart = %+v, want active with 2 fires", a)
	}
	if pre := alarmByRule(t, preRestart, "drift"); a.Baseline != pre.Baseline {
		t.Fatalf("baseline drifted across restart: %v != %v", a.Baseline, pre.Baseline)
	}
	if st.Window == nil || st.Window.Workers != 80 {
		t.Fatalf("window after restart = %+v, want re-seeded from the dataset", st.Window)
	}

	// Feeding the same high-signal traffic after the restart must NOT
	// re-fire: the alarm is already active, and the rule's warmup
	// re-applies to the first live events.
	sink2 := &httpSink{t: t, base: ts2.URL, id: "drift-e2e"}
	alarms, err = sink2.Send(pageBatch("post", 80, 0.95, 0.75))
	if err != nil {
		t.Fatal(err)
	}
	if fired, cleared := driftTransitions(alarms); fired != 0 || cleared != 0 {
		t.Fatalf("post-restart transitions fired=%d cleared=%d, want none", fired, cleared)
	}
	st = getMonitor(t, ts2.URL, "drift-e2e")
	if a := alarmByRule(t, st, "drift"); !a.Active || a.Fired != 2 {
		t.Fatalf("drift alarm after post-restart traffic = %+v, want unchanged", a)
	}
}

// TestMonitorEventStream verifies the SSE surface: replayed transitions
// arrive framed with ids, and a live transition lands on an already-open
// stream.
func TestMonitorEventStream(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 60)
	spec := drift.Spec{
		ID: "sse", Dataset: "workers", Attributes: []string{"Gender"},
		Weights: map[string]float64{"ApprovalRate": 1}, Window: 40,
		Rules: []drift.RuleSpec{
			{Name: "gap", Type: drift.RuleThreshold, Threshold: 0.2, Hysteresis: 0.2},
		},
	}
	createMonitor(t, ts, spec)
	sink := &httpSink{t: t, base: ts.URL, id: "sse"}

	// Trip the threshold: a four-bin gender gap across the whole window.
	alarms, err := sink.Send(pageBatch("a", 40, 0.95, 0.55))
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 || alarms[0].Type != drift.AlarmFired {
		t.Fatalf("threshold transitions = %+v, want one fire", alarms)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/monitors/sse/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// While the stream is open, produce a live clear.
	go func() {
		_, _ = sink.Send(pageBatch("b", 40, 0.95, 0.95))
	}()

	var got []drift.AlarmEvent
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev drift.AlarmEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		got = append(got, ev)
		if len(got) == 2 {
			break
		}
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d events, want 2 (replayed fire + live clear): %v", len(got), sc.Err())
	}
	if got[0].Type != drift.AlarmFired || got[1].Type != drift.AlarmCleared {
		t.Fatalf("streamed sequence = %s, %s — want fired then cleared", got[0].Type, got[1].Type)
	}
	if got[0].Monitor != "sse" || got[1].Seq <= got[0].Seq {
		t.Fatalf("bad framing: %+v", got)
	}
}
