// Cluster integration: the server side of internal/cluster. This file
// wires the four tentpole pieces into HTTP:
//
//   - membership/placement: EnableCluster starts the peer loop;
//     GET /v1/cluster and GET /v1/cluster/ping expose status and
//     heartbeats; handleSubmitJob (jobs.go) forwards to ring owners.
//   - work-stealing: POST /v1/cluster/steal and /v1/cluster/ack are the
//     victim side over jobs.ClaimQueued/AckClaims; the thief side lives
//     in the cluster loop and lands jobs through clusterNode.SubmitLocal.
//   - scatter-gather reads: scatterListJobs / scatterGetJob (jobs.go).
//   - snapshot shipping: GET /v1/datasets/{name}/snapshot exports the
//     columnar file Range-capably; hydrateFromPeer pulls it through the
//     resumable chunked-upload path, so a hydration interrupted by a
//     crash resumes from the persisted byte ranges and ends CRC-checked
//     by dataset.OpenSnapshot like any other upload.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"fairrank/internal/cluster"
	"fairrank/internal/jobs"
)

// clusterNode adapts *Server to cluster.Node.
type clusterNode struct{ s *Server }

func (n clusterNode) Depth() (queued, running int) { return n.s.jobs.Depth() }

// Datasets is the local inventory: every registered dataset plus every
// stored snapshot (a superset in steady state — snapshot-spec jobs
// resolve against the store even when no live mapping is registered).
func (n clusterNode) Datasets() []string {
	names := map[string]bool{}
	n.s.mu.RLock()
	for name := range n.s.datasets {
		names[name] = true
	}
	n.s.mu.RUnlock()
	for _, name := range n.s.snaps.Names() {
		names[name] = true
	}
	out := make([]string, 0, len(names))
	for name := range names {
		out = append(out, name)
	}
	return out
}

// SubmitLocal enqueues a raw wire spec on the local queue — the landing
// path for stolen and re-placed jobs. The canonical hash is recomputed
// here rather than trusted from the peer: it binds the dataset *content*
// this node will actually audit, so cluster-wide dedup can never
// coalesce two specs that would produce different results.
func (n clusterNode) SubmitLocal(spec json.RawMessage) error {
	sp, err := jobs.DecodeSpec(spec)
	if err != nil {
		return err
	}
	cspec, release, err := n.s.resolveJobSpec(sp)
	if err != nil {
		return err
	}
	hash := cspec.Hash()
	release()
	_, _, err = n.s.jobs.Submit(sp, hash)
	return err
}

func (n clusterNode) Hydrate(name, peerURL string) error {
	return n.s.hydrateFromPeer(name, peerURL)
}

// EnableCluster joins this server to a fairserve cluster. Call after New
// (and, in tests, after the HTTP listener exists so cfg.Self is known);
// the routes are mounted unconditionally and answer "disabled" until
// this runs. Metrics and logging default to the server's own.
func (s *Server) EnableCluster(cfg cluster.Config) error {
	if cfg.Metrics == nil {
		cfg.Metrics = s.metrics
	}
	if cfg.Logf == nil {
		cfg.Logf = s.logf
	}
	s.mu.RLock()
	already := s.cluster != nil
	s.mu.RUnlock()
	if already {
		return errors.New("server: cluster already enabled")
	}
	c, err := cluster.New(clusterNode{s}, cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.cluster != nil {
		s.mu.Unlock()
		c.Close()
		return errors.New("server: cluster already enabled")
	}
	s.cluster = c
	s.mu.Unlock()
	return nil
}

// Cluster exposes the cluster layer (tests, status tooling); nil when
// standalone.
func (s *Server) Cluster() *cluster.Cluster { return s.clusterRef() }

func (s *Server) clusterRef() *cluster.Cluster {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cluster
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	c := s.clusterRef()
	if c == nil {
		writeJSON(w, http.StatusOK, cluster.Status{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) handleClusterPing(w http.ResponseWriter, r *http.Request) {
	c := s.clusterRef()
	if c == nil {
		writeErr(w, http.StatusNotFound, errors.New("clustering disabled"))
		return
	}
	queued, running := s.jobs.Depth()
	writeJSON(w, http.StatusOK, c.Ping(queued, running, s.jobs.Claimed()))
}

// readClusterBody reads one bounded peer-protocol body.
func readClusterBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, cluster.MaxMessageBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > cluster.MaxMessageBytes {
		return nil, fmt.Errorf("message exceeds %d bytes", cluster.MaxMessageBytes)
	}
	return body, nil
}

// handleClusterSteal is the victim side of work-stealing: atomically
// claim up to Max dispatchable queued jobs whose dataset the thief
// holds, and park them awaiting the ack.
func (s *Server) handleClusterSteal(w http.ResponseWriter, r *http.Request) {
	c := s.clusterRef()
	if c == nil {
		writeErr(w, http.StatusNotFound, errors.New("clustering disabled"))
		return
	}
	body, err := readClusterBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	req, err := cluster.DecodeStealRequest(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	have := map[string]bool{}
	for _, name := range req.Datasets {
		have[name] = true
	}
	eligible := func(sp jobs.Spec) bool {
		name := sp.Dataset
		if name == "" {
			name = sp.Snapshot
		}
		return have[name]
	}
	claims := s.jobs.ClaimQueued(req.Max, eligible, req.Thief, 0)
	resp := cluster.StealResponse{}
	for _, cl := range claims {
		raw, err := json.Marshal(cl.Spec)
		if err != nil {
			continue // unmarshalable spec cannot travel; its claim expires
		}
		resp.Claims = append(resp.Claims, cluster.StealClaim{
			Token:    cl.Token,
			JobID:    cl.JobID,
			SpecHash: cl.SpecHash,
			Spec:     raw,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterAck finalizes a steal handoff: the thief has durably
// enqueued the jobs, so the victim's copies become terminal ("stolen").
func (s *Server) handleClusterAck(w http.ResponseWriter, r *http.Request) {
	c := s.clusterRef()
	if c == nil {
		writeErr(w, http.StatusNotFound, errors.New("clustering disabled"))
		return
	}
	body, err := readClusterBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	req, err := cluster.DecodeAckRequest(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.AckResponse{Acked: s.jobs.AckClaims(req.Tokens)})
}

// handleSnapshotExport streams a stored snapshot's bytes. ServeContent
// gives Range and HEAD semantics for free — exactly what resumable
// hydration needs on the receiving side.
func (s *Server) handleSnapshotExport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f, ref, err := s.snaps.Open(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("snapshot %q not found", name))
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", contentTypeSnapshot)
	http.ServeContent(w, r, ref.File, st.ModTime(), f)
}

// hydrateRequest is the POST /v1/cluster/hydrate body: pull one named
// snapshot from a peer right now (the automatic path does the same on
// the heartbeat loop).
type hydrateRequest struct {
	Name string `json:"name"`
	Peer string `json:"peer"`
}

func (s *Server) handleClusterHydrate(w http.ResponseWriter, r *http.Request) {
	c := s.clusterRef()
	if c == nil {
		writeErr(w, http.StatusNotFound, errors.New("clustering disabled"))
		return
	}
	var req hydrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad hydrate json: %w", err))
		return
	}
	if req.Name == "" || req.Peer == "" {
		writeErr(w, http.StatusBadRequest, errors.New("name and peer are required"))
		return
	}
	if err := s.hydrateFromPeer(req.Name, req.Peer); err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	s.mu.RLock()
	ds, ok := s.datasets[req.Name]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("hydrated %q did not register", req.Name))
		return
	}
	writeJSON(w, http.StatusCreated, describe(req.Name, ds))
}

// hydrateChunkBytes is the Range-request granularity for snapshot
// hydration. 4 MiB amortizes request overhead while keeping any single
// retry cheap; progress persists per chunk, so that is also the most
// re-transfer a crash can cost.
const hydrateChunkBytes int64 = 4 << 20

// hydrateClient is the peer transfer client. Generous per-request
// timeout: a request moves at most hydrateChunkBytes.
var hydrateClient = &http.Client{Timeout: 60 * time.Second}

// hydrateFromPeer pulls the named snapshot from peerURL through the
// resumable-upload machinery: an uploadSession (with Source set) tracks
// received ranges durably, chunks arrive as HTTP Range reads written at
// their offset, and completion runs the same validate→adopt→register
// tail as a client upload — including the snapshot CRC check at open.
// One hydration per name runs at a time; a failed transfer leaves the
// session behind and the next call resumes where it stopped.
func (s *Server) hydrateFromPeer(name, peerURL string) error {
	s.mu.Lock()
	if s.hydrating[name] {
		s.mu.Unlock()
		return fmt.Errorf("hydration of %q already in flight", name)
	}
	s.hydrating[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.hydrating, name)
		s.mu.Unlock()
	}()

	src := peerURL + "/v1/datasets/" + url.PathEscape(name) + "/snapshot"
	size, err := s.probeSnapshotSize(src)
	if err != nil {
		return err
	}
	sess, err := s.hydrationSession(name, peerURL, size)
	if err != nil {
		return err
	}
	for {
		s.mu.Lock()
		if sess.closed {
			// Lost a race with expiry/abort; restart next tick.
			s.mu.Unlock()
			return fmt.Errorf("hydration session for %q closed underneath", name)
		}
		if sess.complete() {
			sess.closed = true // elected finalizer
			s.mu.Unlock()
			break
		}
		missing := sess.missing()
		chunk := missing[0]
		if chunk.End-chunk.Start > hydrateChunkBytes {
			chunk.End = chunk.Start + hydrateChunkBytes
		}
		sess.writers.Add(1)
		s.mu.Unlock()

		err := s.fetchHydrateChunk(src, sess, chunk)
		sess.writers.Done()
		if err != nil {
			return fmt.Errorf("hydrate %q from %s: %w", name, peerURL, err)
		}
		s.mu.Lock()
		if !sess.closed {
			sess.Received = mergeRange(sess.Received, chunk)
			sess.Updated = time.Now().Unix()
			err = s.persistSession(sess)
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	_, _, err = s.completeSession(sess)
	return err
}

// probeSnapshotSize HEADs the export route for the authoritative size.
func (s *Server) probeSnapshotSize(src string) (int64, error) {
	req, err := http.NewRequest(http.MethodHead, src, nil)
	if err != nil {
		return 0, err
	}
	resp, err := hydrateClient.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("snapshot probe %s: status %d", src, resp.StatusCode)
	}
	size := resp.ContentLength
	if size <= 0 {
		return 0, fmt.Errorf("snapshot probe %s: no content length", src)
	}
	if size > maxUploadBytes {
		return 0, fmt.Errorf("snapshot %s exceeds upload size limit", src)
	}
	return size, nil
}

// hydrationSession finds the resumable session for (name, source) or
// creates one. A size mismatch (the peer re-uploaded the dataset)
// discards the stale partial and starts over.
func (s *Server) hydrationSession(name, peerURL string, size int64) (*uploadSession, error) {
	s.mu.Lock()
	var stale *uploadSession
	for _, u := range s.sessions {
		if u.Dataset != name || u.Source == "" || u.closed {
			continue
		}
		if u.Size == size {
			s.mu.Unlock()
			return u, nil
		}
		stale = u
		break
	}
	if stale != nil {
		stale.closed = true
		delete(s.sessions, stale.Token)
		s.db.Delete(bucketUploads, stale.Token)
	}
	s.mu.Unlock()
	if stale != nil {
		os.Remove(stale.spillPath(s.uploadDir))
	}

	token, err := newUploadToken()
	if err != nil {
		return nil, err
	}
	sess := &uploadSession{
		Token:   token,
		Dataset: name,
		Size:    size,
		File:    "spill-" + token,
		Source:  peerURL,
		Updated: time.Now().Unix(),
	}
	f, err := os.OpenFile(sess.spillPath(s.uploadDir), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		os.Remove(sess.spillPath(s.uploadDir))
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(sess.spillPath(s.uploadDir))
		return nil, err
	}
	s.mu.Lock()
	if len(s.sessions) >= maxUploadSessions {
		s.mu.Unlock()
		os.Remove(sess.spillPath(s.uploadDir))
		return nil, errors.New("too many concurrent upload sessions")
	}
	err = s.persistSession(sess)
	if err == nil {
		s.sessions[token] = sess
	}
	s.mu.Unlock()
	if err != nil {
		os.Remove(sess.spillPath(s.uploadDir))
		return nil, err
	}
	return sess, nil
}

// fetchHydrateChunk GETs one byte range from the peer and writes it at
// its offset in the session spill via the shared writeChunk path.
func (s *Server) fetchHydrateChunk(src string, sess *uploadSession, r byteRange) error {
	req, err := http.NewRequest(http.MethodGet, src, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", r.Start, r.End-1))
	resp, err := hydrateClient.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	want := r.End - r.Start
	switch resp.StatusCode {
	case http.StatusPartialContent:
	case http.StatusOK:
		// Peer ignored the Range header; only acceptable when the chunk is
		// the whole file.
		if r.Start != 0 || want != sess.Size {
			return fmt.Errorf("peer ignored Range request for %s", src)
		}
	default:
		return fmt.Errorf("range GET %s: status %d", src, resp.StatusCode)
	}
	if _, err := s.writeChunk(sess, r.Start, want, resp.Body); err != nil {
		return err
	}
	return nil
}
