package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fairrank/internal/simulate"
	"fairrank/internal/store"
)

// fuzzSrv is the shared fixture behind FuzzRankRequest: fuzz workers are
// separate processes, so each builds one small server (a biased
// population plus one posted task) on first use.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzErr  error
)

func fuzzServer() (*Server, error) {
	fuzzOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fairrank-fuzz-*")
		if err != nil {
			fuzzErr = err
			return
		}
		db, err := store.Open(filepath.Join(dir, "fuzz.db"), store.Options{})
		if err != nil {
			fuzzErr = err
			return
		}
		s, err := New(db)
		if err != nil {
			fuzzErr = err
			return
		}
		ds, err := simulate.SkewedWorkers(80, 7, simulate.Options{
			SkillBias: 10, BiasAttr: "Language", BiasValue: "English",
		})
		if err != nil {
			fuzzErr = err
			return
		}
		s.registerDataset("fuzz", ds)
		raw, err := json.Marshal(taskSpec{
			ID: "fuzz-task", Title: "fuzz", Dataset: "fuzz",
			Weights: map[string]float64{"LanguageTest": 1},
		})
		if err != nil {
			fuzzErr = err
			return
		}
		if err := s.db.Put(bucketTasks, "fuzz-task", raw); err != nil {
			fuzzErr = err
			return
		}
		fuzzSrv = s
	})
	return fuzzSrv, fuzzErr
}

// FuzzRankRequest drives the POST /v1/rank handler directly — below the
// withRecovery middleware, so any panic surfaces as a crash — with
// arbitrary JSON bodies. The contract for every input: no panic, and a
// well-formed JSON response — a ranking payload with consecutive ranks
// on 200, a non-empty error message otherwise. A 200 with an empty or
// truncated body (the classic encode-after-WriteHeader failure, e.g. an
// unencodable +Inf sneaking into a diagnostic field) fails here.
func FuzzRankRequest(f *testing.F) {
	f.Add([]byte(`{"task":"fuzz-task","k":5}`))
	f.Add([]byte(`{"task":"fuzz-task","k":10,"algorithm":"fair-topk","attribute":"Language"}`))
	f.Add([]byte(`{"task":"fuzz-task","k":10,"algorithm":"fair-topk","attribute":"Language","params":{"alpha":0.25},"audit":true}`))
	f.Add([]byte(`{"task":"fuzz-task","k":8,"algorithm":"det-greedy","attribute":"Gender"}`))
	f.Add([]byte(`{"task":"fuzz-task","k":8,"algorithm":"det-cons","attribute":"Country"}`))
	f.Add([]byte(`{"task":"fuzz-task","k":8,"algorithm":"det-relaxed","attribute":"Ethnicity"}`))
	f.Add([]byte(`{"task":"fuzz-task","k":200,"algorithm":"exposure-parity","attribute":"Language","params":{"epsilon":0.5}}`))
	f.Add([]byte(`{"task":"fuzz-task","q":"translator","k":3}`))
	f.Add([]byte(`{"task":"fuzz-task","k":-1}`))
	f.Add([]byte(`{"task":"nope"}`))
	f.Add([]byte(`{"task":"fuzz-task","algorithm":"nope","attribute":"Language"}`))
	f.Add([]byte(`{"task":"fuzz-task","algorithm":"fair-topk","attribute":"LanguageTest"}`))
	f.Add([]byte(`{"task":"fuzz-task","algorithm":"fair-topk","attribute":"Language","params":{"alpha":99}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"task":"fuzz-task","k":1e3}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		s, err := fuzzServer()
		if err != nil {
			t.Fatalf("fixture: %v", err)
		}
		req := httptest.NewRequest("POST", "/v1/rank", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.handleRankPost(rec, req)
		resp := rec.Result()
		defer resp.Body.Close()
		if resp.StatusCode == 200 {
			var out rankPostResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("200 with undecodable body %q: %v\ninput: %q", rec.Body.Bytes(), err, body)
			}
			for i, e := range out.Ranking {
				if e.Rank != i+1 {
					t.Fatalf("position %d has rank %d\ninput: %q", i, e.Rank, body)
				}
			}
			return
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatalf("status %d with undecodable body %q: %v\ninput: %q",
				resp.StatusCode, rec.Body.Bytes(), err, body)
		}
		if apiErr.Error == "" {
			t.Fatalf("status %d with empty error\ninput: %q", resp.StatusCode, body)
		}
	})
}
