package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/store"
	"fairrank/internal/telemetry"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample's value from an exposition body; ok is
// false when the exact series line is absent.
func metricValue(body, series string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, found := strings.CutPrefix(line, series+" "); found {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// TestMetricsEndpoint pins the scrape surface end to end: engine series
// are preregistered at boot, per-route counters and histograms appear
// after traffic, and an audit populates the engine counters through the
// server's shared registry.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)

	body := scrape(t, ts)
	if _, ok := metricValue(body, core.MetricEMDEvaluations); !ok {
		t.Fatalf("engine series %s not preregistered:\n%s", core.MetricEMDEvaluations, body)
	}
	if v, _ := metricValue(body, core.MetricEMDEvaluations); v != 0 {
		t.Errorf("engine counter nonzero before any audit: %v", v)
	}

	uploadDataset(t, ts, "crowd", 300)
	resp, raw := postJSON(t, ts.URL+"/v1/audits", map[string]any{
		"dataset": "crowd",
		"weights": map[string]float64{"Rating": 1},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("audit status %d: %s", resp.StatusCode, raw)
	}

	body = scrape(t, ts)
	if v, ok := metricValue(body, core.MetricEMDEvaluations); !ok || v <= 0 {
		t.Errorf("%s = %v, %v; want > 0 after an audit", core.MetricEMDEvaluations, v, ok)
	}
	if v, ok := metricValue(body, core.MetricPairCacheHits); !ok {
		t.Errorf("%s missing after an audit (= %v)", core.MetricPairCacheHits, v)
	}
	if v, ok := metricValue(body, core.MetricRuns); !ok || v != 1 {
		t.Errorf("%s = %v, %v; want 1", core.MetricRuns, v, ok)
	}
	series := MetricHTTPRequests + `{code="201",route="POST /v1/audits"}`
	if v, ok := metricValue(body, series); !ok || v != 1 {
		t.Errorf("%s = %v, %v; want 1", series, v, ok)
	}
	if !strings.Contains(body, "# TYPE "+MetricHTTPRequestSeconds+" histogram") {
		t.Errorf("missing histogram TYPE line for %s", MetricHTTPRequestSeconds)
	}
}

// TestMetricsMiddlewareConcurrent hammers one route from many goroutines
// while scraping concurrently, then pins the counted total and the
// histogram invariants (bucket monotonicity, count in the +Inf bucket).
// Run under -race this also proves the scrape path never tears.
func TestMetricsMiddlewareConcurrent(t *testing.T) {
	_, ts, _ := newTestServer(t)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(ts.URL + "/healthz")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	// Scrape while traffic is in flight: counters must be monotone
	// across successive scrapes.
	series := MetricHTTPRequests + `{code="200",route="GET /healthz"}`
	last := 0.0
	for i := 0; i < 5; i++ {
		if v, ok := metricValue(scrape(t, ts), series); ok {
			if v < last {
				t.Fatalf("counter went backwards: %v after %v", v, last)
			}
			last = v
		}
	}
	wg.Wait()

	body := scrape(t, ts)
	if v, ok := metricValue(body, series); !ok || v != workers*perWorker {
		t.Fatalf("%s = %v, %v; want %d", series, v, ok, workers*perWorker)
	}

	// Histogram: cumulative buckets must be monotone, the +Inf bucket and
	// _count must equal the request total, and _sum must be positive.
	route := `route="GET /healthz"`
	var bucketVals []float64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, MetricHTTPRequestSeconds+"_bucket{") && strings.Contains(line, route) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q", line)
			}
			bucketVals = append(bucketVals, v)
		}
	}
	if len(bucketVals) == 0 {
		t.Fatalf("no histogram buckets for %s:\n%s", route, body)
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", bucketVals)
		}
	}
	if inf := bucketVals[len(bucketVals)-1]; inf != workers*perWorker {
		t.Errorf("+Inf bucket = %v, want %d", inf, workers*perWorker)
	}
	if v, ok := metricValue(body, fmt.Sprintf("%s_count{%s}", MetricHTTPRequestSeconds, route)); !ok || v != workers*perWorker {
		t.Errorf("histogram _count = %v, %v; want %d", v, ok, workers*perWorker)
	}
	if v, ok := metricValue(body, fmt.Sprintf("%s_sum{%s}", MetricHTTPRequestSeconds, route)); !ok || v <= 0 {
		t.Errorf("histogram _sum = %v, %v; want > 0", v, ok)
	}
}

// TestWithMetricsSharedRegistry pins that an externally supplied registry
// receives both the server's HTTP series and the store's series — the
// single-exposition deployment fairserve uses.
func TestWithMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	path := filepath.Join(t.TempDir(), "srv.db")
	db, err := store.Open(path, store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := New(db, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics() != reg {
		t.Fatal("Metrics() did not return the supplied registry")
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	uploadDataset(t, ts, "crowd", 120)
	body := scrape(t, ts)
	if v, ok := metricValue(body, store.MetricPuts); !ok || v < 1 {
		t.Errorf("%s = %v, %v; want >= 1 (dataset upload persisted)", store.MetricPuts, v, ok)
	}
	series := MetricHTTPRequests + `{code="201",route="POST /v1/datasets/{name}"}`
	if v, ok := metricValue(body, series); !ok || v != 1 {
		t.Errorf("%s = %v, %v; want 1", series, v, ok)
	}
}

// TestPprofGated pins that /debug/pprof/ is 404 by default and serves
// only when WithPprof is given.
func TestPprofGated(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without WithPprof: status %d", resp.StatusCode)
	}

	db, err := store.Open(filepath.Join(t.TempDir(), "srv.db"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := New(db, WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s.Handler())
	t.Cleanup(ts2.Close)
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with WithPprof", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.PublishExpvar("fairrank-test-debugvars")
	reg.Counter("test_counter_total").Inc()
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(vars["fairrank-test-debugvars"], &snap); err != nil {
		t.Fatalf("published registry var: %v", err)
	}
	if snap.Counters["test_counter_total"] != 1 {
		t.Errorf("expvar snapshot = %+v, want test_counter_total 1", snap.Counters)
	}
}
