package server

import (
	"encoding/json"
	"html/template"
	"net/http"
	"sort"
)

// dashboardTmpl renders the single-page overview served at GET /.
var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>fairrank</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: .35rem .6rem; border-bottom: 1px solid #ddd; }
th { background: #f5f5f5; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.sig { color: #b00020; font-weight: 600; }
.muted { color: #777; }
code { background: #f5f5f5; padding: .1rem .3rem; border-radius: 3px; }
</style>
</head>
<body>
<h1>fairrank — fairness of ranking in online job marketplaces</h1>
<p class="muted">Exploring the most unfair partitioning of worker populations
under task-qualification scoring functions (EDBT 2019 reproduction).</p>

<h2>Datasets ({{len .Datasets}})</h2>
{{if .Datasets}}
<table><tr><th>name</th><th class="num">workers</th><th>protected attributes</th></tr>
{{range .Datasets}}<tr><td><code>{{.Name}}</code></td><td class="num">{{.Workers}}</td><td>{{range .Protected}}{{.}} {{end}}</td></tr>
{{end}}</table>
{{else}}<p class="muted">none — upload with <code>POST /v1/datasets/{name}</code></p>{{end}}

<h2>Tasks ({{len .Tasks}})</h2>
{{if .Tasks}}
<table><tr><th>id</th><th>title</th><th>dataset</th></tr>
{{range .Tasks}}<tr><td><code>{{.ID}}</code></td><td>{{.Title}}</td><td><code>{{.Dataset}}</code></td></tr>
{{end}}</table>
{{else}}<p class="muted">none — post with <code>POST /v1/tasks</code></p>{{end}}

<h2>Audits ({{len .Audits}})</h2>
{{if .Audits}}
<table><tr><th>id</th><th>dataset</th><th>algorithm</th><th class="num">unfairness</th><th class="num">groups</th><th class="num">p-value</th></tr>
{{range .Audits}}<tr><td><code>{{.ID}}</code></td><td><code>{{.Dataset}}</code></td><td>{{.Algorithm}}</td>
<td class="num{{if gt .Unfairness 0.4}} sig{{end}}">{{printf "%.3f" .Unfairness}}</td>
<td class="num">{{len .Partitions}}</td>
<td class="num">{{if .PValue}}{{printf "%.3f" .PValue}}{{else}}–{{end}}</td></tr>
{{end}}</table>
{{else}}<p class="muted">none — run with <code>POST /v1/audits</code></p>{{end}}
</body>
</html>
`))

type dashboardData struct {
	Datasets []datasetInfo
	Tasks    []taskSpec
	Audits   []auditResponse
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	data := dashboardData{}
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		data.Datasets = append(data.Datasets, describe(n, s.datasets[n]))
	}
	s.mu.RUnlock()
	for _, id := range s.db.Keys(bucketTasks) {
		raw, ok := s.db.Get(bucketTasks, id)
		if !ok {
			continue
		}
		var t taskSpec
		if json.Unmarshal(raw, &t) == nil {
			data.Tasks = append(data.Tasks, t)
		}
	}
	for _, id := range s.db.Keys(bucketAudits) {
		raw, ok := s.db.Get(bucketAudits, id)
		if !ok {
			continue
		}
		var a auditResponse
		if json.Unmarshal(raw, &a) == nil {
			data.Audits = append(data.Audits, a)
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, data); err != nil {
		// Headers already sent; nothing better to do than log-by-status.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
