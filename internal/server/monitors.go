package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"fairrank/internal/dataset"
	"fairrank/internal/drift"
	"fairrank/internal/scoring"
)

// This file is the continuous-audit surface: named drift monitors
// attached to live datasets. A monitor is created from a drift.Spec,
// seeded with the dataset's current rows scored by the spec's linear
// weights (so its estimators start from the real population, not from
// empty), and then fed incrementally via POST .../events. Alarm
// transitions stream over SSE at GET .../events.
//
// Persistence contract: the WAL stores each monitor's spec and alarm
// states — NOT its event stream. On boot the watch is rebuilt, alarm
// states are restored FIRST, and the dataset snapshot is replayed as the
// seed. The seed goes through Watch.Seed — estimators only, no rule
// evaluation — so the re-seeding transient can neither lose an active
// alarm nor re-fire it, however large the dataset; on top of that each
// rule's warmup re-applies to the first live events (warmup counters are
// deliberately not persisted).

const bucketMonitors = "monitors"

// monitorRecord is the WAL value: everything needed to revive a monitor
// except its event history, which the estimators re-derive from the
// dataset seed plus future events.
type monitorRecord struct {
	Spec   drift.Spec         `json:"spec"`
	Alarms []drift.AlarmState `json:"alarms,omitempty"`
}

// serverMonitor is one live monitor: the watch, its alarm-event hub, and
// the mutex serializing event ingestion (drift.Watch is single-writer).
type serverMonitor struct {
	mu    sync.Mutex
	watch *drift.Watch
	hub   *drift.Hub
}

// seedWatch replays the dataset's rows into a fresh watch as join
// events: worker ids are the dataset ids, protected values come from the
// monitored attributes' columns, and scores from the spec's linear
// weights. Seeding goes through Watch.Seed, so it can never emit alarm
// transitions — rules only ever interpret live events.
func seedWatch(w *drift.Watch, ds *dataset.Dataset, spec drift.Spec) error {
	f, err := scoring.NewLinear(spec.ID, spec.Weights)
	if err != nil {
		return err
	}
	attrs := make([]int, len(spec.Attributes))
	for i, name := range spec.Attributes {
		if attrs[i] = ds.Schema().ProtectedIndex(name); attrs[i] < 0 {
			return fmt.Errorf("%q is not a protected attribute", name)
		}
	}
	for i := 0; i < ds.N(); i++ {
		prot := make(map[string]any, len(attrs))
		for _, a := range attrs {
			def := ds.Schema().Protected[a]
			if def.Kind == dataset.Categorical {
				prot[def.Name] = ds.ProtectedLabel(a, i)
			} else {
				prot[def.Name] = ds.RawProtected(a, i)
			}
		}
		ev := drift.Event{
			Type:      drift.EventJoin,
			Worker:    ds.ID(i),
			Protected: prot,
			Score:     f.Score(ds, i),
		}
		if err := w.Seed(ev); err != nil {
			return fmt.Errorf("seed row %d: %w", i, err)
		}
	}
	return nil
}

// persistMonitor writes the monitor's current spec + alarm states.
// Callers hold m.mu.
func (s *Server) persistMonitor(m *serverMonitor) error {
	raw, err := json.Marshal(monitorRecord{Spec: m.watch.Spec(), Alarms: m.watch.AlarmStates()})
	if err != nil {
		return err
	}
	return s.db.Put(bucketMonitors, m.watch.Spec().ID, raw)
}

// reloadMonitors revives every persisted monitor at boot. Runs after
// datasets reload; the dataset-delete guard keeps the reference valid.
func (s *Server) reloadMonitors() error {
	for _, id := range s.db.Keys(bucketMonitors) {
		raw, ok := s.db.Get(bucketMonitors, id)
		if !ok {
			continue
		}
		var rec monitorRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("monitor %q: %w", id, err)
		}
		ds, ok := s.datasets[rec.Spec.Dataset]
		if !ok {
			return fmt.Errorf("monitor %q: dataset %q missing", id, rec.Spec.Dataset)
		}
		w, err := drift.NewWatch(ds.Schema(), rec.Spec)
		if err != nil {
			return fmt.Errorf("monitor %q: %w", id, err)
		}
		w.SetMetrics(s.metrics)
		// Restore before seeding: active alarms stay active through the
		// seed replay (which cannot emit transitions — see seedWatch).
		w.RestoreAlarms(rec.Alarms)
		if err := seedWatch(w, ds, rec.Spec); err != nil {
			return fmt.Errorf("monitor %q: %w", id, err)
		}
		s.monitors[id] = &serverMonitor{watch: w, hub: drift.NewHub()}
	}
	s.syncMonitorGauge()
	return nil
}

func (s *Server) syncMonitorGauge() {
	s.metrics.Gauge(drift.MetricWatches).Set(float64(len(s.monitors)))
}

// monitorStatus is the wire shape of GET /v1/monitors[/{id}].
type monitorStatus struct {
	drift.Status
	Dataset string `json:"dataset"`
}

func (s *Server) handleCreateMonitor(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, err := drift.DecodeSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.monitors[spec.ID]; dup {
		writeErr(w, http.StatusConflict, fmt.Errorf("monitor %q already exists", spec.ID))
		return
	}
	ds, ok := s.datasets[spec.Dataset]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", spec.Dataset))
		return
	}
	watch, err := drift.NewWatch(ds.Schema(), spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	watch.SetMetrics(s.metrics)
	if err := seedWatch(watch, ds, spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m := &serverMonitor{watch: watch, hub: drift.NewHub()}
	if err := s.persistMonitor(m); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.monitors[spec.ID] = m
	s.syncMonitorGauge()
	writeJSON(w, http.StatusCreated, monitorStatus{Status: watch.Status(), Dataset: spec.Dataset})
}

func (s *Server) handleListMonitors(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.monitors))
	for id := range s.monitors {
		ids = append(ids, id)
	}
	mons := make([]*serverMonitor, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		mons = append(mons, s.monitors[id])
	}
	s.mu.RUnlock()
	out := make([]monitorStatus, len(mons))
	for i, m := range mons {
		m.mu.Lock()
		out[i] = monitorStatus{Status: m.watch.Status(), Dataset: m.watch.Spec().Dataset}
		m.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookupMonitor(id string) (*serverMonitor, bool) {
	s.mu.RLock()
	m, ok := s.monitors[id]
	s.mu.RUnlock()
	return m, ok
}

func (s *Server) handleGetMonitor(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookupMonitor(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("monitor %q not found", r.PathValue("id")))
		return
	}
	m.mu.Lock()
	st := monitorStatus{Status: m.watch.Status(), Dataset: m.watch.Spec().Dataset}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeleteMonitor(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	m, ok := s.monitors[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, fmt.Errorf("monitor %q not found", id))
		return
	}
	if err := s.db.Delete(bucketMonitors, id); err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	delete(s.monitors, id)
	s.syncMonitorGauge()
	s.mu.Unlock()
	// Close outside the server lock: Close walks subscriber channels.
	m.hub.Close()
	w.WriteHeader(http.StatusNoContent)
}

// monitorEventsResponse is the wire shape of POST .../events.
type monitorEventsResponse struct {
	// Applied counts events accepted before the first failure (all of
	// them on success); estimator state reflects exactly those events.
	Applied int `json:"applied"`
	// Alarms are the transitions this batch produced, in order.
	Alarms []drift.AlarmEvent `json:"alarms"`
}

func (s *Server) handleMonitorEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, ok := s.lookupMonitor(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("monitor %q not found", id))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	events, err := drift.DecodeEvents(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := monitorEventsResponse{Alarms: []drift.AlarmEvent{}}
	m.mu.Lock()
	for i, ev := range events {
		alarms, err := m.watch.Apply(ev)
		if err != nil {
			m.mu.Unlock()
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("event %d (after %d applied): %w", i, resp.Applied, err))
			return
		}
		resp.Applied++
		for _, a := range alarms {
			resp.Alarms = append(resp.Alarms, m.hub.Publish(a))
		}
	}
	var persistErr error
	if len(resp.Alarms) > 0 {
		// Transitions changed durable alarm state; persist before
		// acknowledging so a crash cannot resurrect a cleared alarm or
		// forget a fired one.
		persistErr = s.persistMonitor(m)
	}
	m.mu.Unlock()
	if persistErr != nil {
		writeErr(w, http.StatusInternalServerError, persistErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMonitorBaseline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, ok := s.lookupMonitor(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("monitor %q not found", id))
		return
	}
	m.mu.Lock()
	sealed := m.watch.SealBaseline()
	err := s.persistMonitor(m)
	m.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]map[string]float64{"sealed": sealed})
}

// handleMonitorEventStream streams a monitor's alarm transitions as
// server-sent events: bounded replay first, then live transitions until
// the client disconnects or the monitor is deleted (hub closed).
func (s *Server) handleMonitorEventStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, ok := s.lookupMonitor(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("monitor %q not found", id))
		return
	}
	replay, live, cancel := m.hub.Subscribe()
	defer cancel()
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeEvent := func(ev drift.AlarmEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	for _, ev := range replay {
		if !writeEvent(ev) {
			return
		}
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // monitor deleted
			}
			if !writeEvent(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
