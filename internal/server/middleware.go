package server

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the response status for request logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// handlers behind the instrumentation (notably the SSE job-event stream,
// which must Flush per event) reach the real connection's Flusher.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// withRecovery converts handler panics into 500 responses instead of
// killing the connection (and, under some servers, the process): a single
// malformed audit request must never take the platform down.
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeErr(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withLogging logs one line per request: method, path, status, duration.
// logf is usually log.Printf; nil disables logging.
func withLogging(logf func(format string, args ...any), next http.Handler) http.Handler {
	if logf == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		logf("server: %s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

// withSemaphore bounds the number of concurrent requests through a
// handler; excess requests receive 503. Audits are CPU-heavy (a full
// partitioning search), so unbounded concurrency lets a burst of audit
// requests starve the ranking path.
func withSemaphore(limit int, next http.Handler) http.Handler {
	if limit <= 0 {
		return next
	}
	sem := make(chan struct{}, limit)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("too many concurrent audits (limit %d)", limit))
		}
	})
}
