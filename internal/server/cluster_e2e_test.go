// End-to-end cluster tests: real HTTP between N in-process fairserve
// nodes, short heartbeats, and the acceptance scenarios from the
// multi-node milestone — cluster-wide dedup, work-stealing drain,
// zero-loss node death with bit-identical recovery, and snapshot
// hydration (including resume after a mid-transfer failure).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fairrank/internal/cluster"
	"fairrank/internal/core"
	"fairrank/internal/jobs"
	"fairrank/internal/store"
)

// startNode boots one fairserve node on its own store and listener.
func startNode(t *testing.T, opts ...ServerOption) (*Server, *httptest.Server) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "node.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := New(db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// formCluster joins the nodes into one cluster with test-speed
// heartbeats and waits until every node's ring covers the full
// membership. mut can tweak each node's config before enabling.
func formCluster(t *testing.T, servers []*Server, urls []string, mut func(i int, cfg *cluster.Config)) {
	t.Helper()
	for i, s := range servers {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := cluster.Config{
			Self:         urls[i],
			NodeID:       fmt.Sprintf("node-%c", 'a'+i),
			Peers:        peers,
			Heartbeat:    25 * time.Millisecond,
			PeerTimeout:  2 * time.Second,
			SuspectAfter: 2,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		if err := s.EnableCluster(cfg); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "cluster formation", func() bool {
		for _, s := range servers {
			if len(s.Cluster().Status().RingNodes) != len(servers) {
				return false
			}
		}
		return true
	})
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// postJobDirect submits a job spec with the forwarding loop guard
// stamped, pinning it to the receiving node regardless of ring owner.
func postJobDirect(t *testing.T, baseURL string, spec map[string]any) jobs.Job {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "test-direct")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("direct submit status %d (%s)", resp.StatusCode, body)
	}
	var j jobs.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	return j
}

// scatterPage mirrors clusterJobPage for decoding fan-out responses.
type scatterPage struct {
	Jobs []struct {
		jobs.Job
		Node string `json:"node"`
	} `json:"jobs"`
	Total   int  `json:"total"`
	Partial bool `json:"partial"`
}

func listScattered(t *testing.T, baseURL, query string) scatterPage {
	t.Helper()
	var page scatterPage
	if status := getJSON(t, baseURL+"/v1/jobs"+query, &page); status != http.StatusOK {
		t.Fatalf("scatter list status %d", status)
	}
	return page
}

// TestClusterForwardDedupScatter: one spec submitted through all three
// nodes runs exactly once cluster-wide (ring placement + canonical-hash
// dedup), and scatter-gather reads surface it from any node.
func TestClusterForwardDedupScatter(t *testing.T) {
	var servers []*Server
	var urls []string
	for i := 0; i < 3; i++ {
		s, ts := startNode(t)
		uploadDataset(t, ts, "demo", 40)
		servers = append(servers, s)
		urls = append(urls, ts.URL)
	}
	formCluster(t, servers, urls, func(i int, cfg *cluster.Config) {
		cfg.DisableStealing = true
		cfg.DisableHydration = true
	})
	// Peers must advertise the dataset before placement forwards to them.
	waitFor(t, 5*time.Second, "dataset advertisement", func() bool {
		for _, s := range servers {
			for _, p := range s.Cluster().Status().Peers {
				found := false
				for _, d := range p.Datasets {
					if d == "demo" {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	})

	spec := jobSpecBody(map[string]float64{"LanguageTest": 1}, 99)
	var ids []string
	for _, u := range urls {
		resp, body := postJSON(t, u+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit via %s: status %d (%s)", u, resp.StatusCode, body)
		}
		var j jobs.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// All three submissions coalesced onto the same owner-side job.
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("submissions did not coalesce: ids %v", ids)
	}
	// The job is visible — and awaitable — from every node via scatter.
	for _, u := range urls {
		waitJobHTTP(t, u, ids[0], jobs.StateDone)
	}
	var runs int64
	for _, s := range servers {
		runs += s.Jobs().Runs()
	}
	if runs != 1 {
		t.Fatalf("cluster ran the spec %d times, want exactly 1", runs)
	}
	// Scatter list agrees from every vantage point and names the owner.
	var owner string
	for _, u := range urls {
		page := listScattered(t, u, "?state=done")
		if page.Total != 1 || len(page.Jobs) != 1 || page.Partial {
			t.Fatalf("scatter list from %s: %+v", u, page)
		}
		if page.Jobs[0].Node == "" {
			t.Fatalf("scatter list from %s missing node annotation", u)
		}
		if owner == "" {
			owner = page.Jobs[0].Node
		} else if page.Jobs[0].Node != owner {
			t.Fatalf("owner disagreement: %s vs %s", page.Jobs[0].Node, owner)
		}
	}
	// Validation still precedes fan-out on a clustered node.
	var errResp map[string]any
	for _, bad := range []string{"?limit=-1", "?offset=-3", "?limit=x"} {
		if status := getJSON(t, urls[0]+"/v1/jobs"+bad, &errResp); status != http.StatusBadRequest {
			t.Fatalf("clustered GET /v1/jobs%s status %d, want 400", bad, status)
		}
	}
	// Build identity and cluster series are live on /metrics.
	resp, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"fairrank_build_info", "fairrank_cluster_epoch", "fairrank_cluster_peer_up"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestClusterWorkStealingDrains: a node whose executor is wedged
// accumulates queued jobs; an idle peer steals and runs them, the
// victim's copies go terminal as "stolen", and no job is lost.
func TestClusterWorkStealingDrains(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	gate := func(orig jobs.Executor) jobs.Executor {
		return func(ctx context.Context, j jobs.Job, progress func(core.TraceStep)) ([]byte, error) {
			<-release
			return orig(ctx, j, progress)
		}
	}
	sA, tsA := startNode(t, func(s *Server) { s.jobExecWrap = gate })
	sB, tsB := startNode(t)
	uploadDataset(t, tsA, "demo", 40)
	uploadDataset(t, tsB, "demo", 40)
	servers := []*Server{sA, sB}
	urls := []string{tsA.URL, tsB.URL}
	formCluster(t, servers, urls, func(i int, cfg *cluster.Config) {
		cfg.DisableHydration = true
		cfg.DisableStealing = i == 0 // only B steals
	})
	defer once.Do(func() { close(release) })

	const n = 6
	for i := 0; i < n; i++ {
		postJobDirect(t, tsA.URL, jobSpecBody(map[string]float64{"LanguageTest": 1}, uint64(200+i)))
	}
	// B steals A's queued backlog (A's workers are wedged) and runs it.
	waitFor(t, 10*time.Second, "steals to land", func() bool {
		return sB.Jobs().Runs() >= 1
	})
	waitFor(t, 10*time.Second, "victim copies to go terminal", func() bool {
		page := listScattered(t, tsB.URL, "?state=stolen")
		return page.Total >= 1 && int64(page.Total) == sB.Jobs().Runs()
	})
	stolen := listScattered(t, tsB.URL, "?state=stolen").Total
	once.Do(func() { close(release) }) // let A finish what it kept
	waitFor(t, 10*time.Second, "all jobs done cluster-wide", func() bool {
		return listScattered(t, tsA.URL, "?state=done").Total == n
	})
	if got := sA.Jobs().Runs() + sB.Jobs().Runs(); got != int64(n) {
		t.Fatalf("cluster ran %d jobs, want %d", got, n)
	}
	if sB.Jobs().Runs() == 0 || stolen == 0 {
		t.Fatalf("no stealing happened (B ran %d, stolen %d)", sB.Jobs().Runs(), stolen)
	}
	// Steal accounting made it to telemetry.
	snap := sB.metrics.Snapshot()
	var steals int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "fairrank_cluster_steals_total") {
			steals += v
		}
	}
	if steals != sB.Jobs().Runs() {
		t.Fatalf("steal counter %d != thief runs %d", steals, sB.Jobs().Runs())
	}
}

// TestClusterKillNodeZeroLossBitIdentical: jobs forwarded to a node
// that dies mid-run are re-placed on the next ring epoch and complete
// elsewhere — zero jobs lost, and every recovered result is
// bit-identical to a clean standalone run of the same spec.
func TestClusterKillNodeZeroLossBitIdentical(t *testing.T) {
	wedge := func(jobs.Executor) jobs.Executor {
		return func(ctx context.Context, j jobs.Job, progress func(core.TraceStep)) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	sA, tsA := startNode(t)
	sB, tsB := startNode(t, func(s *Server) { s.jobExecWrap = wedge }) // the node that dies
	sC, tsC := startNode(t)
	for _, ts := range []*httptest.Server{tsA, tsB, tsC} {
		uploadDataset(t, ts, "demo", 40)
	}
	servers := []*Server{sA, sB, sC}
	urls := []string{tsA.URL, tsB.URL, tsC.URL}
	formCluster(t, servers, urls, func(i int, cfg *cluster.Config) {
		cfg.DisableStealing = true // pin recovery to the re-placement path
		cfg.DisableHydration = true
	})
	waitFor(t, 5*time.Second, "dataset advertisement", func() bool {
		for _, p := range sA.Cluster().Status().Peers {
			if len(p.Datasets) == 0 {
				return false
			}
		}
		return true
	})

	// Submit distinct specs through A; ring placement spreads them, and
	// everything landing on B wedges there.
	const n = 8
	seeds := map[uint64]bool{}
	for i := 0; i < n; i++ {
		seed := uint64(300 + i)
		seeds[seed] = true
		resp, body := postJSON(t, tsA.URL+"/v1/jobs", jobSpecBody(map[string]float64{"ApprovalRate": 2, "LanguageTest": 1}, seed))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	// Kill B abruptly: listener gone, in-flight work killed mid-run.
	tsB.Close()
	sB.Jobs().Kill()

	// Everything must still finish — re-placed onto A or C.
	waitFor(t, 30*time.Second, "all jobs done after node death", func() bool {
		page := listScattered(t, tsA.URL, "?state=done&limit=50")
		got := map[uint64]bool{}
		for _, j := range page.Jobs {
			if seeds[j.Spec.Seed] {
				got[j.Spec.Seed] = true
			}
		}
		return len(got) == n
	})
	page := listScattered(t, tsA.URL, "?state=done&limit=50")
	if !page.Partial {
		t.Fatal("scatter list with a dead peer must be flagged partial")
	}
	if sB.Jobs().Runs() == 0 {
		t.Fatal("no jobs were placed on the doomed node; the death scenario is vacuous")
	}

	// Reference: a clean standalone node runs every spec; results must
	// match the cluster's bit for bit.
	_, tsRef := startNode(t)
	uploadDataset(t, tsRef, "demo", 40)
	ref := map[uint64][]byte{}
	for seed := range seeds {
		j := postJobDirect(t, tsRef.URL, jobSpecBody(map[string]float64{"ApprovalRate": 2, "LanguageTest": 1}, seed))
		done := waitJobHTTP(t, tsRef.URL, j.ID, jobs.StateDone)
		ref[seed] = done.Result
	}
	for _, j := range page.Jobs {
		want, ok := ref[j.Spec.Seed]
		if !ok {
			continue
		}
		if !bytes.Equal(j.Result, want) {
			t.Fatalf("seed %d: recovered result differs from clean run:\n  cluster %s\n  clean   %s",
				j.Spec.Seed, j.Result, want)
		}
	}
}

// TestClusterSnapshotHydration: a dataset uploaded to node A hydrates
// automatically onto empty nodes B and C; the shipped snapshot is
// byte-identical and audits of it are bit-identical across nodes.
func TestClusterSnapshotHydration(t *testing.T) {
	sA, tsA := startNode(t)
	sB, tsB := startNode(t)
	sC, tsC := startNode(t)
	uploadDataset(t, tsA, "shared", 40)
	servers := []*Server{sA, sB, sC}
	urls := []string{tsA.URL, tsB.URL, tsC.URL}
	formCluster(t, servers, urls, func(i int, cfg *cluster.Config) {
		cfg.DisableStealing = true
	})
	waitFor(t, 10*time.Second, "hydration onto B and C", func() bool {
		for _, u := range []string{tsB.URL, tsC.URL} {
			var ds map[string]any
			if getJSON(t, u+"/v1/datasets/shared", &ds) != http.StatusOK {
				return false
			}
		}
		return true
	})
	fetch := func(u string) []byte {
		resp, err := http.Get(u + "/v1/datasets/shared/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot export status %d", resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	orig := fetch(tsA.URL)
	if hydrated := fetch(tsC.URL); !bytes.Equal(orig, hydrated) {
		t.Fatalf("hydrated snapshot differs: %d vs %d bytes", len(orig), len(hydrated))
	}
	// Audit the hydrated copy on C and the original on A, forced local on
	// each; pure-function determinism demands identical bytes out.
	spec := map[string]any{"dataset": "shared", "weights": map[string]float64{"LanguageTest": 1}, "seed": 5, "budget": 500}
	jA := postJobDirect(t, tsA.URL, spec)
	jC := postJobDirect(t, tsC.URL, spec)
	rA := waitJobHTTP(t, tsA.URL, jA.ID, jobs.StateDone)
	rC := waitJobHTTP(t, tsC.URL, jC.ID, jobs.StateDone)
	if !bytes.Equal(rA.Result, rC.Result) {
		t.Fatalf("audit of hydrated dataset differs:\n  A %s\n  C %s", rA.Result, rC.Result)
	}
}

// TestHydrateResumesMidTransfer drives hydrateFromPeer directly against
// a flaky peer: the first transfer dies after one 4 MiB chunk, and the
// retry fetches only the missing tail — the persisted upload session is
// the resume point, exactly like a client-side resumable upload.
func TestHydrateResumesMidTransfer(t *testing.T) {
	_, tsA := startNode(t)
	uploadDataset(t, tsA, "big", 60000) // ~5 MB snapshot → 2 chunks

	var mu sync.Mutex
	var rangeReqs []string
	failNext := false
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.Header.Get("Range") != "" {
			mu.Lock()
			rangeReqs = append(rangeReqs, r.Header.Get("Range"))
			n := len(rangeReqs)
			mu.Unlock()
			if n == 2 && failNext {
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
		}
		req, err := http.NewRequest(r.Method, tsA.URL+r.URL.Path, nil)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		if rng := r.Header.Get("Range"); rng != "" {
			req.Header.Set("Range", rng)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, v := range resp.Header {
			w.Header()[k] = v
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)
	failNext = true

	sC, tsC := startNode(t)
	if err := sC.hydrateFromPeer("big", proxy.URL); err == nil {
		t.Fatal("first hydration should fail at the second chunk")
	}
	if err := sC.hydrateFromPeer("big", proxy.URL); err != nil {
		t.Fatalf("resumed hydration failed: %v", err)
	}
	mu.Lock()
	reqs := append([]string(nil), rangeReqs...)
	mu.Unlock()
	if len(reqs) != 3 {
		t.Fatalf("expected 3 range requests (chunk1, failed chunk2, resumed chunk2), got %v", reqs)
	}
	if reqs[0] == reqs[1] || reqs[1] != reqs[2] {
		t.Fatalf("resume re-fetched the wrong ranges: %v", reqs)
	}
	if !strings.HasPrefix(reqs[1], "bytes=4194304-") {
		t.Fatalf("second chunk should start at 4 MiB: %v", reqs)
	}
	// The hydrated dataset is registered and byte-identical to the source.
	var ds map[string]any
	if status := getJSON(t, tsC.URL+"/v1/datasets/big", &ds); status != http.StatusOK {
		t.Fatalf("hydrated dataset not registered: status %d", status)
	}
	get := func(u string) []byte {
		resp, err := http.Get(u + "/v1/datasets/big/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if !bytes.Equal(get(tsA.URL), get(tsC.URL)) {
		t.Fatal("hydrated snapshot bytes differ from source")
	}
}
