// Streaming, resumable dataset ingest. One-shot POST /v1/datasets/{name}
// caps out at what the server is willing to buffer; snapshots of
// million-worker populations arrive instead as a chunked upload session:
//
//	POST   /v1/datasets/{name}/uploads          create session {"size": N} → token
//	POST   /v1/datasets/{name}/chunks           Upload-Token + Content-Range + bytes
//	GET    /v1/datasets/{name}/uploads/{token}  status: received/missing ranges
//	DELETE /v1/datasets/{name}/uploads/{token}  abort, discard the spill
//
// Chunks are written straight into a preallocated spill file at their
// Content-Range offset — the server never holds more than one chunk's
// io.Copy buffer per request, regardless of dataset size. Received ranges
// are merged and persisted in the WAL after each chunk's bytes are synced,
// so a client can resume across both its own interruptions and server
// restarts. When the byte coverage closes, the spill is validated as a
// columnar snapshot (dataset.OpenSnapshot), adopted into the snapshot
// store, and registered as a live mmap-backed dataset — the columns never
// transit the heap.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"fairrank/internal/dataset"
)

const (
	bucketUploads = "uploads"
	// maxUploadSessions caps concurrent chunked-upload sessions. Each
	// session preallocates up to maxUploadBytes of spill, so without a cap
	// an unauthenticated client could reserve unbounded disk.
	maxUploadSessions = 32
	// uploadSessionTTL is how long a session may sit idle (no chunk
	// accepted) before it becomes eligible for expiry. Expiry is swept
	// lazily when new sessions are created, which is exactly when the
	// cap — the resource being protected — comes under pressure.
	uploadSessionTTL = time.Hour
)

// byteRange is a half-open [Start, End) interval of the upload.
type byteRange struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// uploadSession is the WAL-persisted state of one chunked upload.
type uploadSession struct {
	Token   string `json:"token"`
	Dataset string `json:"dataset"`
	Size    int64  `json:"size"`
	// File is the spill filename within the server's upload directory.
	File string `json:"file"`
	// Received holds the sorted, disjoint, merged byte ranges written and
	// synced so far. Persisted after — never before — the bytes reach disk,
	// so a recorded range is always trustworthy after a crash.
	Received []byteRange `json:"received,omitempty"`
	// Updated is the unix time of the last accepted chunk (or session
	// creation); idle sessions past uploadSessionTTL are expired.
	Updated int64 `json:"updated,omitempty"`
	// Source marks a cluster-hydration session and names the peer base
	// URL the bytes come from (cluster.go). Client uploads leave it
	// empty. Persisted so an interrupted hydration resumes across
	// restarts from its recorded ranges.
	Source string `json:"source,omitempty"`

	// closed marks the session as no longer accepting writes: set under
	// s.mu by exactly one of finalize, abort, or expiry, whichever wins.
	// Chunk requests check it both before touching the spill and again
	// before recording their range, so once closed is observed true no new
	// spill fd is opened and no range is merged or persisted.
	closed bool
	// writers counts in-flight chunk writes. Add happens under s.mu only
	// while !closed; finalizeUpload sets closed then Waits, so by the time
	// it validates the spill every straggling write has landed and no new
	// one can start — nothing can dirty the file after validation.
	writers sync.WaitGroup
}

// mergeRange inserts r into sorted disjoint ranges, coalescing overlaps
// and adjacencies. Duplicate and out-of-order chunks are naturally
// idempotent under this merge.
func mergeRange(rs []byteRange, r byteRange) []byteRange {
	out := make([]byteRange, 0, len(rs)+1)
	for _, ex := range rs {
		switch {
		case ex.End < r.Start: // strictly before, not even adjacent
			out = append(out, ex)
		case r.End < ex.Start: // strictly after
			// r is placed below; keep ex for the tail.
			out = append(out, ex)
		default: // overlap or adjacency: absorb into r
			r.Start = min(r.Start, ex.Start)
			r.End = max(r.End, ex.End)
		}
	}
	// Insert r in sorted position.
	ins := len(out)
	for i, ex := range out {
		if r.Start < ex.Start {
			ins = i
			break
		}
	}
	out = append(out, byteRange{})
	copy(out[ins+1:], out[ins:])
	out[ins] = r
	return out
}

func (u *uploadSession) complete() bool {
	return len(u.Received) == 1 && u.Received[0].Start == 0 && u.Received[0].End == u.Size
}

func (u *uploadSession) receivedBytes() int64 {
	var n int64
	for _, r := range u.Received {
		n += r.End - r.Start
	}
	return n
}

// missing returns the byte ranges not yet received.
func (u *uploadSession) missing() []byteRange {
	var out []byteRange
	var at int64
	for _, r := range u.Received {
		if r.Start > at {
			out = append(out, byteRange{Start: at, End: r.Start})
		}
		at = r.End
	}
	if at < u.Size {
		out = append(out, byteRange{Start: at, End: u.Size})
	}
	return out
}

func (u *uploadSession) spillPath(dir string) string { return filepath.Join(dir, u.File) }

// uploadStatus is the wire form of a session's progress.
type uploadStatus struct {
	Token    string      `json:"token"`
	Dataset  string      `json:"dataset"`
	Size     int64       `json:"size"`
	Received int64       `json:"received"`
	Complete bool        `json:"complete"`
	Missing  []byteRange `json:"missing,omitempty"`
}

func (u *uploadSession) status() uploadStatus {
	return uploadStatus{
		Token:    u.Token,
		Dataset:  u.Dataset,
		Size:     u.Size,
		Received: u.receivedBytes(),
		Complete: u.complete(),
		Missing:  u.missing(),
	}
}

func newUploadToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// persistSession writes the session record to the WAL. Callers hold s.mu.
func (s *Server) persistSession(u *uploadSession) error {
	raw, err := json.Marshal(u)
	if err != nil {
		return err
	}
	return s.db.Put(bucketUploads, u.Token, raw)
}

// reloadUploads restores persisted upload sessions at boot and sweeps
// spill files no session references (crash residue from finalize/abort).
// A session whose spill file is missing or mis-sized restarts from zero:
// the file is recreated at full size and its received set cleared.
func (s *Server) reloadUploads() error {
	live := map[string]bool{}
	for _, token := range s.db.Keys(bucketUploads) {
		raw, ok := s.db.Get(bucketUploads, token)
		if !ok {
			continue
		}
		var sess uploadSession
		if json.Unmarshal(raw, &sess) != nil || sess.Token != token || sess.Size <= 0 || sess.File == "" {
			// Unreadable record: drop it rather than carry junk forever.
			if err := s.db.Delete(bucketUploads, token); err != nil {
				return err
			}
			continue
		}
		if sess.Updated == 0 {
			// Pre-expiry record: date it from boot so it gets a full idle
			// window before the TTL sweep may claim it.
			sess.Updated = time.Now().Unix()
		}
		spill := sess.spillPath(s.uploadDir)
		if st, err := os.Stat(spill); err != nil || st.Size() != sess.Size {
			sess.Received = nil
			f, err := os.OpenFile(spill, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				return fmt.Errorf("server: recreate upload spill: %w", err)
			}
			if err := f.Truncate(sess.Size); err != nil {
				f.Close()
				return fmt.Errorf("server: size upload spill: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			if err := s.persistSession(&sess); err != nil {
				return err
			}
		}
		s.sessions[token] = &sess
		live[sess.File] = true
	}
	entries, err := os.ReadDir(s.uploadDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || live[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(s.uploadDir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// handleCreateUpload starts a chunked upload session for a dataset.
func (s *Server) handleCreateUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("dataset name required"))
		return
	}
	var req struct {
		Size int64 `json:"size"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad upload json: %w", err))
		return
	}
	if req.Size <= 0 {
		writeErr(w, http.StatusBadRequest, errors.New("upload size must be positive"))
		return
	}
	if req.Size > maxUploadBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, errors.New("upload exceeds size limit"))
		return
	}
	// Make room by expiring idle sessions before judging the cap.
	s.mu.Lock()
	stale := s.expireSessionsLocked(time.Now())
	s.mu.Unlock()
	for _, spill := range stale {
		os.Remove(spill)
	}
	token, err := newUploadToken()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	sess := &uploadSession{
		Token:   token,
		Dataset: name,
		Size:    req.Size,
		File:    "spill-" + token,
		Updated: time.Now().Unix(),
	}
	// Preallocate the spill at full size so offset writes never extend the
	// file and a restart can distinguish "spill intact" from "spill lost".
	f, err := os.OpenFile(sess.spillPath(s.uploadDir), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := f.Truncate(sess.Size); err != nil {
		f.Close()
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := f.Close(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// Cap check and insert are one atomic step, so concurrent creates
	// cannot race past the limit between a check and an insert.
	s.mu.Lock()
	if len(s.sessions) >= maxUploadSessions {
		s.mu.Unlock()
		os.Remove(sess.spillPath(s.uploadDir))
		writeErr(w, http.StatusTooManyRequests, errors.New("too many concurrent upload sessions"))
		return
	}
	err = s.persistSession(sess)
	if err == nil {
		s.sessions[token] = sess
	}
	st := sess.status()
	s.mu.Unlock()
	if err != nil {
		os.Remove(sess.spillPath(s.uploadDir))
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// expireSessionsLocked closes and unregisters sessions idle for longer
// than uploadSessionTTL, returning their spill paths for the caller to
// remove outside the lock. Callers hold s.mu.
func (s *Server) expireSessionsLocked(now time.Time) []string {
	var spills []string
	cutoff := now.Add(-uploadSessionTTL).Unix()
	for token, sess := range s.sessions {
		if sess.closed || sess.Updated > cutoff {
			continue
		}
		sess.closed = true
		delete(s.sessions, token)
		s.db.Delete(bucketUploads, token)
		spills = append(spills, sess.spillPath(s.uploadDir))
	}
	return spills
}

// parseContentRange parses "bytes <start>-<end>/<total>" (end inclusive,
// per RFC 9110) into a half-open [start, end+1) byte range.
func parseContentRange(h string) (start, end, total int64, err error) {
	const prefix = "bytes "
	if !strings.HasPrefix(h, prefix) {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	rangePart, totalPart, ok := strings.Cut(h[len(prefix):], "/")
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	startPart, endPart, ok := strings.Cut(rangePart, "-")
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	if start, err = strconv.ParseInt(startPart, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad Content-Range start %q", startPart)
	}
	if end, err = strconv.ParseInt(endPart, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad Content-Range end %q", endPart)
	}
	if total, err = strconv.ParseInt(totalPart, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad Content-Range total %q", totalPart)
	}
	if start < 0 || end < start || total <= end {
		return 0, 0, 0, fmt.Errorf("inconsistent Content-Range %q", h)
	}
	return start, end, total, nil
}

// lookupSession fetches the session for a chunk or status request.
func (s *Server) lookupSession(name, token string) (*uploadSession, error) {
	if token == "" {
		return nil, errors.New("upload token required")
	}
	s.mu.RLock()
	sess, ok := s.sessions[token]
	s.mu.RUnlock()
	if !ok || sess.Dataset != name {
		return nil, fmt.Errorf("no upload session %q for dataset %q", token, name)
	}
	return sess, nil
}

// handleUploadChunk receives one Content-Range slice of a session's bytes.
// Duplicate and out-of-order chunks are accepted; an interrupted body
// leaves the session exactly as it was. The final chunk — whichever one
// closes the coverage — finalizes the upload and answers 201 with the
// registered dataset; earlier chunks answer 202 with progress.
func (s *Server) handleUploadChunk(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sess, err := s.lookupSession(name, r.Header.Get("Upload-Token"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	start, end, total, err := parseContentRange(r.Header.Get("Content-Range"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if total != sess.Size {
		writeErr(w, http.StatusRequestedRangeNotSatisfiable,
			fmt.Errorf("Content-Range total %d does not match session size %d", total, sess.Size))
		return
	}
	want := end - start + 1
	// Admission: a closed session (finalizing, aborted, or expired) must
	// not have its spill reopened — once finalize validates the bytes, a
	// stray writer into the adopted, mmap'd snapshot would break the
	// zero-copy invariant that opened views are safe to index.
	s.mu.Lock()
	if sess.closed {
		st := sess.status()
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, st)
		return
	}
	sess.writers.Add(1)
	s.mu.Unlock()
	if code, err := s.writeChunk(sess, start, want, r.Body); err != nil {
		sess.writers.Done()
		writeErr(w, code, err)
		return
	}
	sess.writers.Done()
	s.mu.Lock()
	if sess.closed {
		// The session finalized (or was aborted) while our bytes were in
		// flight. The write went to an unlinked or about-to-be-validated
		// file and was never recorded; tell the client where things stand
		// rather than resurrect the session's WAL record.
		st := sess.status()
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, st)
		return
	}
	sess.Received = mergeRange(sess.Received, byteRange{Start: start, End: end + 1})
	sess.Updated = time.Now().Unix()
	err = s.persistSession(sess)
	done := err == nil && sess.complete()
	if done {
		// Electing this request the sole finalizer: every later chunk —
		// including a duplicate retry of this one — bounces off closed
		// above instead of double-finalizing.
		sess.closed = true
	}
	st := sess.status()
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if !done {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	s.finalizeUpload(w, sess)
}

// writeChunk copies want bytes of body into the session spill at offset
// start and syncs them. The bounded copy straight to the offset keeps
// per-request memory at one copy buffer, independent of chunk and dataset
// size. A non-nil error reports the HTTP status to answer with; nothing
// is recorded, so the client simply retries the same range. Sparse
// partial bytes from an interrupted copy are harmless — the range only
// becomes trusted when fully written and synced.
func (s *Server) writeChunk(sess *uploadSession, start, want int64, body io.Reader) (int, error) {
	f, err := os.OpenFile(sess.spillPath(s.uploadDir), os.O_WRONLY, 0)
	if err != nil {
		return http.StatusInternalServerError, err
	}
	n, err := io.Copy(io.NewOffsetWriter(f, start), io.LimitReader(body, want))
	if err != nil {
		f.Close()
		return http.StatusInternalServerError, fmt.Errorf("chunk body: %w", err)
	}
	if n != want {
		f.Close()
		return http.StatusBadRequest,
			fmt.Errorf("chunk body has %d bytes, Content-Range promised %d", n, want)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return http.StatusInternalServerError, err
	}
	if err := f.Close(); err != nil {
		return http.StatusInternalServerError, err
	}
	return 0, nil
}

// finalizeUpload answers the chunk request that closed the coverage with
// the outcome of completeSession.
func (s *Server) finalizeUpload(w http.ResponseWriter, sess *uploadSession) {
	info, status, err := s.completeSession(sess)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	writeJSON(w, status, info)
}

// completeSession validates a fully-received spill as a columnar
// snapshot, adopts it into the snapshot store, and registers the
// mmap-backed dataset. Shared tail of client chunk uploads and cluster
// snapshot hydration. The session is consumed either way: a corrupt
// transfer is discarded rather than left around to re-fail forever. The
// caller must have set sess.closed under s.mu, electing itself the only
// finalizer. Returns the dataset description and an HTTP status.
func (s *Server) completeSession(sess *uploadSession) (datasetInfo, int, error) {
	// Drain straggling chunk writes (duplicate retries of ranges other
	// chunks already covered). closed is set, so no new writer can start:
	// after Wait the spill is quiescent, and whatever those writers left
	// behind is exactly what OpenSnapshot validates below.
	sess.writers.Wait()
	spill := sess.spillPath(s.uploadDir)
	dropSession := func() {
		s.mu.Lock()
		delete(s.sessions, sess.Token)
		s.db.Delete(bucketUploads, sess.Token)
		s.mu.Unlock()
	}
	// Probe-validate, then unmap: Adopt renames the file and the snapshot
	// store must own the only live view of its final path.
	probe, err := dataset.OpenSnapshot(spill)
	if err != nil {
		dropSession()
		os.Remove(spill)
		return datasetInfo{}, http.StatusUnprocessableEntity, fmt.Errorf("uploaded snapshot invalid: %w", err)
	}
	probe.Close()
	path, err := s.snaps.Adopt(sess.Dataset, spill)
	if err != nil {
		dropSession()
		os.Remove(spill)
		return datasetInfo{}, http.StatusInternalServerError, err
	}
	mapped, err := dataset.OpenSnapshot(path)
	if err != nil {
		dropSession()
		return datasetInfo{}, http.StatusInternalServerError, err
	}
	s.registerDataset(sess.Dataset, mapped)
	dropSession()
	return describe(sess.Dataset, mapped), http.StatusCreated, nil
}

func (s *Server) handleUploadStatus(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookupSession(r.PathValue("name"), r.PathValue("token"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.RLock()
	st := sess.status()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleAbortUpload(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookupSession(r.PathValue("name"), r.PathValue("token"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	if sess.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, errors.New("upload session is finalizing"))
		return
	}
	sess.closed = true
	delete(s.sessions, sess.Token)
	err = s.db.Delete(bucketUploads, sess.Token)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	os.Remove(sess.spillPath(s.uploadDir))
	w.WriteHeader(http.StatusNoContent)
}
