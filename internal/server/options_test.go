package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fairrank/internal/store"
)

func TestServerOptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "opts.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var mu sync.Mutex
	var logged []string
	s, err := New(db,
		WithRequestLog(func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			logged = append(logged, fmt.Sprintf(format, args...))
		}),
		WithAuditLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.auditLimit != 2 {
		t.Fatalf("audit limit = %d", s.auditLimit)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 || !strings.Contains(logged[0], "GET /healthz -> 200") {
		t.Fatalf("request log = %v", logged)
	}
}

func TestNewRejectsCorruptSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// A dataset entry that is not a valid binary snapshot.
	if err := db.Put("datasets", "broken", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := New(db); err == nil {
		t.Fatal("corrupt snapshot accepted on reload")
	}
}

func TestUploadTooLargeBody(t *testing.T) {
	// Exercise the unreadable-body path with a request that lies about
	// its content length.
	_, ts, _ := newTestServer(t)
	req, err := http.NewRequest("POST", ts.URL+"/v1/datasets/x", strings.NewReader("short"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short garbage upload = %d", resp.StatusCode)
	}
}

func doDelete(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestDeleteEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "workers", 40)
	postJSON(t, ts.URL+"/v1/tasks", map[string]any{
		"id": "t1", "dataset": "workers",
		"weights": map[string]float64{"LanguageTest": 1},
	})

	// Dataset with live task: refused.
	if code := doDelete(t, ts.URL+"/v1/datasets/workers"); code != http.StatusConflict {
		t.Fatalf("delete referenced dataset = %d, want 409", code)
	}
	// Delete the task, then the dataset.
	if code := doDelete(t, ts.URL+"/v1/tasks/t1"); code != http.StatusNoContent {
		t.Fatalf("delete task = %d", code)
	}
	if code := doDelete(t, ts.URL+"/v1/tasks/t1"); code != http.StatusNotFound {
		t.Fatalf("double delete task = %d", code)
	}
	if code := doDelete(t, ts.URL+"/v1/datasets/workers"); code != http.StatusNoContent {
		t.Fatalf("delete dataset = %d", code)
	}
	if code := doDelete(t, ts.URL+"/v1/datasets/workers"); code != http.StatusNotFound {
		t.Fatalf("double delete dataset = %d", code)
	}
	var list []map[string]any
	if code := getJSON(t, ts.URL+"/v1/datasets", &list); code != 200 || len(list) != 0 {
		t.Fatalf("datasets after delete = %v", list)
	}
}
