// Package server exposes the fairrank platform over HTTP: dataset upload,
// task posting, filtered ranking (the marketplace result page), and
// fairness audits — with tasks, audit results and dataset snapshots held
// durably in the embedded store.
//
// API (all JSON unless noted):
//
//	GET  /healthz                     liveness probe
//	GET  /v1/datasets                 list datasets
//	POST /v1/datasets/{name}          upload: text/csv (paper schema),
//	                                  application/octet-stream (legacy binary) or
//	                                  application/x-fairrank-snapshot (columnar,
//	                                  streamed to disk and served mmap'd)
//	GET  /v1/datasets/{name}          dataset metadata
//	GET  /v1/datasets/{name}/snapshot columnar snapshot bytes (Range-capable)
//	POST /v1/datasets/{name}/uploads  start a chunked upload session {"size":N}
//	POST /v1/datasets/{name}/chunks   send one chunk (Upload-Token, Content-Range)
//	GET  /v1/datasets/{name}/uploads/{token}  session progress (resume point)
//	DELETE /v1/datasets/{name}/uploads/{token} abort session
//	POST /v1/tasks                    post a task {id,title,dataset,weights}
//	GET  /v1/tasks                    list tasks
//	GET  /v1/rank?task=&k=&q=         ranked (optionally query-filtered) workers
//	POST /v1/rank                     ranked page through a registered fair
//	                                  re-ranker (see rankPostRequest)
//	GET  /v1/rerankers                list registered re-ranker names
//	GET  /v1/algorithms               list registered audit algorithms
//	POST /v1/audits                   run an audit synchronously (see auditRequest)
//	GET  /v1/audits                   list stored audit results
//	GET  /v1/audits/{id}              one stored audit result
//	POST /v1/jobs                     submit an async audit job (202; 429 when full)
//	GET  /v1/jobs                     list jobs (paginated: limit/offset/state)
//	GET  /v1/jobs/{id}                job status + result
//	DELETE /v1/jobs/{id}              cancel a queued or running job
//	GET  /v1/jobs/{id}/events         follow job lifecycle + progress (SSE)
//	POST /v1/monitors                 create a continuous-audit drift monitor
//	                                  (drift.Spec JSON; seeded from its dataset)
//	GET  /v1/monitors                 list monitor statuses
//	GET  /v1/monitors/{id}            one monitor's status (estimators + alarms)
//	DELETE /v1/monitors/{id}          delete a monitor (closes its event stream)
//	POST /v1/monitors/{id}/events     feed a batch of join/leave/rescore events,
//	                                  returns alarm transitions
//	GET  /v1/monitors/{id}/events     follow alarm transitions (SSE)
//	POST /v1/monitors/{id}/baseline   seal window-vs-baseline comparison levels
//	POST /v1/rerank                   exposure-parity re-rank a task's page
//	POST /v1/repair                   before/after unfairness of score repair
//	POST /v1/explain                  per-attribute importance for a function
//	GET  /v1/cluster                  cluster membership + placement status
//	GET  /v1/cluster/ping             peer heartbeat (depth + dataset inventory)
//	POST /v1/cluster/steal            peer protocol: claim queued jobs
//	POST /v1/cluster/ack              peer protocol: finalize a steal handoff
//	POST /v1/cluster/hydrate          pull a snapshot from a peer {name, peer}
//	GET  /                            HTML dashboard
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"

	"fairrank/internal/cluster"
	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/explain"
	"fairrank/internal/jobs"
	"fairrank/internal/marketplace"
	"fairrank/internal/partition"
	"fairrank/internal/repair"
	"fairrank/internal/rerank"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
	"fairrank/internal/store"
	"fairrank/internal/telemetry"
)

const (
	bucketDatasets = "datasets"
	bucketTasks    = "tasks"
	bucketAudits   = "audits"
	maxUploadBytes = 256 << 20
)

// Server is the HTTP platform server. Create with New, mount via Handler.
type Server struct {
	db *store.DB
	// logf receives request log lines; nil disables request logging.
	logf func(format string, args ...any)
	// auditLimit bounds concurrent audit computations (default 4).
	auditLimit int
	// metrics receives per-route HTTP series and the engine series of
	// every audit evaluator; served at GET /metrics.
	metrics *telemetry.Registry
	// pprof mounts /debug/pprof/ when set (see WithPprof).
	pprof bool
	// jobs is the durable async audit scheduler behind /v1/jobs.
	jobs *jobs.Queue
	// jobOpts tunes the queue; see WithJobWorkers / WithJobQueueLimit.
	jobOpts jobs.Options
	// jobExecWrap, when non-nil, wraps the job executor — a seam for
	// crash/recovery tests to gate or observe runs.
	jobExecWrap func(jobs.Executor) jobs.Executor

	// snaps owns the columnar snapshot files backing every registered
	// dataset; the WAL holds only refs (see store.Snapshots).
	snaps *store.Snapshots
	// uploadDir holds chunked-upload spill files (see upload.go).
	uploadDir string

	// cluster federates this node with its peers when EnableCluster was
	// called; nil on a standalone node. Guarded by mu (set once, read on
	// hot paths).
	cluster *cluster.Cluster

	mu       sync.RWMutex
	datasets map[string]*dataset.Dataset
	sessions map[string]*uploadSession
	// monitors are the live continuous-audit watches (see monitors.go).
	monitors map[string]*serverMonitor
	// hydrating guards per-dataset snapshot hydration (cluster.go).
	hydrating map[string]bool
	// retired holds mmap-backed datasets that were replaced or deleted.
	// They are closed at Shutdown, not at retire time: audit handlers and
	// job workers hold *Dataset pointers across long runs without the lock,
	// and unmapping under them would fault. Address space is the only cost
	// of keeping a retired mapping until drain.
	retired  []io.Closer
	auditSeq int
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithRequestLog enables request logging through logf (e.g. log.Printf).
func WithRequestLog(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithAuditLimit bounds concurrent audit requests; excess requests get 503.
func WithAuditLimit(n int) ServerOption {
	return func(s *Server) { s.auditLimit = n }
}

// WithJobWorkers sets the async-audit worker pool size (default 2).
func WithJobWorkers(n int) ServerOption {
	return func(s *Server) { s.jobOpts.Workers = n }
}

// WithJobQueueLimit bounds admitted (queued + running) async jobs; excess
// submissions get 429 with a Retry-After hint (default 64).
func WithJobQueueLimit(n int) ServerOption {
	return func(s *Server) { s.jobOpts.MaxActive = n }
}

// New builds a Server over an open store. Registered datasets live as
// columnar snapshot files next to the WAL and are reopened memory-mapped,
// so boot cost and resident memory stay independent of population size.
// Legacy databases that inlined dataset bytes as WAL values are migrated
// to snapshot files on first boot.
func New(db *store.DB, opts ...ServerOption) (*Server, error) {
	s := &Server{
		db:         db,
		datasets:   map[string]*dataset.Dataset{},
		sessions:   map[string]*uploadSession{},
		monitors:   map[string]*serverMonitor{},
		hydrating:  map[string]bool{},
		auditLimit: 4,
		metrics:    telemetry.NewRegistry(),
	}
	for _, o := range opts {
		o(s)
	}
	// Engine series appear on /metrics from boot, not after the first
	// audit request creates an evaluator; same for the re-rank serving
	// series behind POST /v1/rank.
	core.PreregisterMetrics(s.metrics)
	rerank.PreregisterMetrics(s.metrics)
	// Build identity on every scrape: heterogeneous cluster rollouts show
	// up as differing fairrank_build_info labels across nodes.
	telemetry.RegisterBuildInfo(s.metrics)
	snaps, err := store.NewSnapshots(db, db.Path()+".snapshots")
	if err != nil {
		return nil, fmt.Errorf("server: snapshot store: %w", err)
	}
	s.snaps = snaps
	s.uploadDir = db.Path() + ".uploads"
	if err := os.MkdirAll(s.uploadDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: upload dir: %w", err)
	}
	// Migrate pre-snapshot databases: decode each inlined dataset record
	// once, write it out as a snapshot file, and drop the fat WAL value.
	for _, name := range db.Keys(bucketDatasets) {
		raw, ok := db.Get(bucketDatasets, name)
		if !ok {
			continue
		}
		ds, err := dataset.ReadBinary(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("server: migrate dataset %q: %w", name, err)
		}
		if _, err := snaps.Save(name, ds.WriteSnapshot); err != nil {
			return nil, fmt.Errorf("server: migrate dataset %q: %w", name, err)
		}
		if err := db.Delete(bucketDatasets, name); err != nil {
			return nil, fmt.Errorf("server: migrate dataset %q: %w", name, err)
		}
	}
	if _, err := snaps.Sweep(); err != nil {
		return nil, fmt.Errorf("server: snapshot sweep: %w", err)
	}
	for _, name := range snaps.Names() {
		path, ok := snaps.Path(name)
		if !ok {
			continue
		}
		ds, err := dataset.OpenSnapshot(path)
		if err != nil {
			return nil, fmt.Errorf("server: reload dataset %q: %w", name, err)
		}
		s.datasets[name] = ds
	}
	if err := s.reloadUploads(); err != nil {
		return nil, fmt.Errorf("server: reload uploads: %w", err)
	}
	// Monitors revive after datasets so the seed replay can read rows.
	if err := s.reloadMonitors(); err != nil {
		return nil, fmt.Errorf("server: reload monitors: %w", err)
	}
	s.auditSeq = db.Len(bucketAudits)
	// The queue starts after datasets reload so recovered jobs can
	// resolve their specs the moment a worker picks them up.
	exec := jobs.Executor(s.execJob)
	if s.jobExecWrap != nil {
		exec = s.jobExecWrap(exec)
	}
	s.jobOpts.Metrics = s.metrics
	s.jobOpts.Logf = s.logf
	q, err := jobs.New(db, exec, s.jobOpts)
	if err != nil {
		return nil, fmt.Errorf("server: job queue: %w", err)
	}
	s.jobs = q
	return s, nil
}

// Jobs exposes the async audit queue (metrics, tests, embedding).
func (s *Server) Jobs() *jobs.Queue { return s.jobs }

// Shutdown drains the server's background work: job admission stops, the
// worker pool drains until ctx expires, and whatever remains is parked
// durably for the next process. The HTTP listener is owned by the caller
// (cmd/fairserve) and must be shut down first so no new jobs arrive.
// Retired dataset mappings — replaced or deleted while audits may still
// have been reading them — are unmapped here, after the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	// The cluster loop goes first: no more steals, forwards, or
	// hydrations may touch the queue or the dataset table mid-drain.
	if c := s.clusterRef(); c != nil {
		c.Close()
	}
	err := s.jobs.Shutdown(ctx)
	s.mu.Lock()
	retired := s.retired
	s.retired = nil
	s.mu.Unlock()
	for _, c := range retired {
		c.Close()
	}
	return err
}

// registerDataset swaps name's live dataset to ds, retiring (not closing)
// any previous mapping.
func (s *Server) registerDataset(name string, ds *dataset.Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.datasets[name]; ok {
		s.retired = append(s.retired, old)
	}
	s.datasets[name] = ds
}

// Handler returns the HTTP handler with all routes mounted. Every route
// is wrapped with per-route request/latency metrics at mount time (see
// instrument); /metrics itself, /debug/vars and the pprof endpoints are
// left bare so scraping does not observe itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handleFunc := func(pattern string, h http.HandlerFunc) { handle(pattern, h) }
	handleFunc("GET /{$}", s.handleDashboard)
	handleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handleFunc("GET /v1/datasets", s.handleListDatasets)
	handleFunc("POST /v1/datasets/{name}", s.handleUploadDataset)
	handleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	handleFunc("GET /v1/datasets/{name}/snapshot", s.handleSnapshotExport)
	handleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	handleFunc("POST /v1/datasets/{name}/uploads", s.handleCreateUpload)
	handleFunc("GET /v1/datasets/{name}/uploads/{token}", s.handleUploadStatus)
	handleFunc("DELETE /v1/datasets/{name}/uploads/{token}", s.handleAbortUpload)
	handleFunc("POST /v1/datasets/{name}/chunks", s.handleUploadChunk)
	handleFunc("POST /v1/tasks", s.handlePostTask)
	handleFunc("GET /v1/tasks", s.handleListTasks)
	handleFunc("DELETE /v1/tasks/{id}", s.handleDeleteTask)
	handleFunc("GET /v1/rank", s.handleRank)
	handleFunc("POST /v1/rank", s.handleRankPost)
	handleFunc("GET /v1/rerankers", s.handleRerankers)
	handleFunc("GET /v1/algorithms", s.handleAlgorithms)
	handle("POST /v1/audits", withSemaphore(s.auditLimit, http.HandlerFunc(s.handleRunAudit)))
	handleFunc("GET /v1/audits", s.handleListAudits)
	handleFunc("GET /v1/audits/{id}", s.handleGetAudit)
	handleFunc("POST /v1/jobs", s.handleSubmitJob)
	handleFunc("GET /v1/jobs", s.handleListJobs)
	handleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	handleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	handleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	handleFunc("POST /v1/monitors", s.handleCreateMonitor)
	handleFunc("GET /v1/monitors", s.handleListMonitors)
	handleFunc("GET /v1/monitors/{id}", s.handleGetMonitor)
	handleFunc("DELETE /v1/monitors/{id}", s.handleDeleteMonitor)
	handleFunc("POST /v1/monitors/{id}/events", s.handleMonitorEvents)
	handleFunc("GET /v1/monitors/{id}/events", s.handleMonitorEventStream)
	handleFunc("POST /v1/monitors/{id}/baseline", s.handleMonitorBaseline)
	handleFunc("GET /v1/cluster", s.handleClusterStatus)
	handleFunc("GET /v1/cluster/ping", s.handleClusterPing)
	handleFunc("POST /v1/cluster/steal", s.handleClusterSteal)
	handleFunc("POST /v1/cluster/ack", s.handleClusterAck)
	handleFunc("POST /v1/cluster/hydrate", s.handleClusterHydrate)
	handleFunc("POST /v1/rerank", s.handleRerank)
	handleFunc("POST /v1/repair", s.handleRepair)
	handle("POST /v1/explain", withSemaphore(s.auditLimit, http.HandlerFunc(s.handleExplain)))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.pprof {
		mountPprof(mux)
	}
	return withLogging(s.logf, withRecovery(mux))
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

type datasetInfo struct {
	Name      string   `json:"name"`
	Workers   int      `json:"workers"`
	Protected []string `json:"protected"`
	Observed  []string `json:"observed"`
}

func describe(name string, ds *dataset.Dataset) datasetInfo {
	info := datasetInfo{Name: name, Workers: ds.N()}
	for _, a := range ds.Schema().Protected {
		info.Protected = append(info.Protected, a.Name)
	}
	for _, a := range ds.Schema().Observed {
		info.Observed = append(info.Observed, a.Name)
	}
	return info
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]datasetInfo, 0, len(names))
	for _, n := range names {
		out = append(out, describe(n, s.datasets[n]))
	}
	writeJSON(w, http.StatusOK, out)
}

// contentTypeSnapshot is the columnar snapshot format (dataset.WriteSnapshot).
// Uploads of this type stream through a spill file and are served
// memory-mapped; the server heap never holds the columns.
const contentTypeSnapshot = "application/x-fairrank-snapshot"

func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("dataset name required"))
		return
	}
	ct := r.Header.Get("Content-Type")
	if ct == contentTypeSnapshot {
		s.uploadSnapshotOneShot(w, r, name)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxUploadBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, errors.New("upload exceeds size limit"))
		return
	}
	var ds *dataset.Dataset
	switch ct {
	case "text/csv":
		ds, err = dataset.ReadCSV(bytes.NewReader(body), simulate.PaperSchema())
	case "application/octet-stream", "":
		ds, err = dataset.ReadBinary(bytes.NewReader(body))
	default:
		writeErr(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("content type %q (want text/csv, application/octet-stream or %s)", ct, contentTypeSnapshot))
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Persist as a columnar snapshot file whatever the upload format, then
	// serve the mapped view; the decoded heap copy dies with this request.
	path, err := s.snaps.Save(name, ds.WriteSnapshot)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	mapped, err := dataset.OpenSnapshot(path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.registerDataset(name, mapped)
	writeJSON(w, http.StatusCreated, describe(name, mapped))
}

// uploadSnapshotOneShot ingests a whole snapshot body in one request,
// spilling to disk as it arrives. For resumable transfers use the chunked
// session routes (upload.go); the validate-adopt-register tail is shared.
func (s *Server) uploadSnapshotOneShot(w http.ResponseWriter, r *http.Request, name string) {
	tmp, err := os.CreateTemp(s.uploadDir, "oneshot-*")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	spill := tmp.Name()
	n, err := io.Copy(tmp, io.LimitReader(r.Body, maxUploadBytes+1))
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(spill)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if n > maxUploadBytes {
		os.Remove(spill)
		writeErr(w, http.StatusRequestEntityTooLarge, errors.New("upload exceeds size limit"))
		return
	}
	probe, err := dataset.OpenSnapshot(spill)
	if err != nil {
		os.Remove(spill)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("uploaded snapshot invalid: %w", err))
		return
	}
	probe.Close()
	path, err := s.snaps.Adopt(name, spill)
	if err != nil {
		os.Remove(spill)
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	mapped, err := dataset.OpenSnapshot(path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.registerDataset(name, mapped)
	writeJSON(w, http.StatusCreated, describe(name, mapped))
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	ds, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	writeJSON(w, http.StatusOK, describe(name, ds))
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", name))
		return
	}
	// Refuse while tasks still reference the dataset: deleting under a
	// live task would break its ranking endpoint.
	for _, id := range s.db.Keys(bucketTasks) {
		raw, ok := s.db.Get(bucketTasks, id)
		if !ok {
			continue
		}
		var t taskSpec
		if json.Unmarshal(raw, &t) == nil && t.Dataset == name {
			writeErr(w, http.StatusConflict,
				fmt.Errorf("task %q still references dataset %q", t.ID, name))
			return
		}
	}
	// Same for monitors: a revived monitor must be able to re-seed from
	// its dataset at the next boot.
	for id, m := range s.monitors {
		if m.watch.Spec().Dataset == name {
			writeErr(w, http.StatusConflict,
				fmt.Errorf("monitor %q still references dataset %q", id, name))
			return
		}
	}
	if err := s.snaps.Delete(name); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// Retire rather than close: an in-flight audit may still be reading
	// the mapping (see Server.retired).
	s.retired = append(s.retired, s.datasets[name])
	delete(s.datasets, name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDeleteTask(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.db.Get(bucketTasks, id); !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("task %q not found", id))
		return
	}
	if err := s.db.Delete(bucketTasks, id); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type taskSpec struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Dataset string             `json:"dataset"`
	Weights map[string]float64 `json:"weights"`
}

func (s *Server) handlePostTask(w http.ResponseWriter, r *http.Request) {
	var t taskSpec
	if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad task json: %w", err))
		return
	}
	if t.ID == "" || t.Dataset == "" {
		writeErr(w, http.StatusBadRequest, errors.New("task id and dataset are required"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[t.Dataset]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", t.Dataset))
		return
	}
	f, err := scoring.NewLinear(t.ID, t.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := f.Validate(ds.Schema()); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, dup := s.db.Get(bucketTasks, t.ID); dup {
		writeErr(w, http.StatusConflict, fmt.Errorf("task %q already exists", t.ID))
		return
	}
	raw, err := json.Marshal(t)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := s.db.Put(bucketTasks, t.ID, raw); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, t)
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request) {
	out := []taskSpec{}
	for _, id := range s.db.Keys(bucketTasks) {
		raw, ok := s.db.Get(bucketTasks, id)
		if !ok {
			continue
		}
		var t taskSpec
		if err := json.Unmarshal(raw, &t); err != nil {
			continue
		}
		out = append(out, t)
	}
	writeJSON(w, http.StatusOK, out)
}

type rankedEntry struct {
	Rank   int     `json:"rank"`
	Worker string  `json:"worker"`
	Score  float64 `json:"score"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	taskID := r.URL.Query().Get("task")
	if taskID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("task parameter required"))
		return
	}
	raw, ok := s.db.Get(bucketTasks, taskID)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("task %q not found", taskID))
		return
	}
	var t taskSpec
	if err := json.Unmarshal(raw, &t); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.RLock()
	ds, ok := s.datasets[t.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", t.Dataset))
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
	}
	m, err := marketplace.New(ds)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := m.PostTask(marketplace.Task{ID: t.ID, Title: t.Title, Weights: t.Weights}); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	var ranked []marketplace.RankedWorker
	if q := r.URL.Query().Get("q"); q != "" {
		ranked, err = m.RankQuery(t.ID, q, k)
	} else {
		ranked, err = m.Rank(t.ID, k)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make([]rankedEntry, len(ranked))
	for i, rw := range ranked {
		out[i] = rankedEntry{Rank: rw.Rank, Worker: ds.ID(rw.Worker), Score: rw.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

// auditRequest describes an audit to run.
type auditRequest struct {
	Dataset string `json:"dataset"`
	// Algorithm is a registered algorithm name (GET /v1/algorithms lists
	// them); empty selects "balanced".
	Algorithm string `json:"algorithm"`
	// Weights defines the scoring function over observed attributes.
	Weights map[string]float64 `json:"weights"`
	Bins    int                `json:"bins,omitempty"`
	Metric  string             `json:"metric,omitempty"`
	// Attributes restricts the audit to these protected attributes.
	Attributes []string `json:"attributes,omitempty"`
	// SignificanceRounds > 0 adds a permutation-test p-value.
	SignificanceRounds int    `json:"significance_rounds,omitempty"`
	Seed               uint64 `json:"seed,omitempty"`
	// Budget caps exhaustive enumeration (0 = engine default).
	Budget int `json:"budget,omitempty"`
}

// auditResponse is the stored, returned audit result.
type auditResponse struct {
	ID          string           `json:"id"`
	Dataset     string           `json:"dataset"`
	Algorithm   string           `json:"algorithm"`
	Unfairness  float64          `json:"unfairness"`
	Partitions  []auditPartition `json:"partitions"`
	ElapsedSecs float64          `json:"elapsed_seconds"`
	PValue      *float64         `json:"p_value,omitempty"`
}

type auditPartition struct {
	Label string `json:"label"`
	Size  int    `json:"size"`
}

func (s *Server) handleRunAudit(w http.ResponseWriter, r *http.Request) {
	var req auditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad audit json: %w", err))
		return
	}
	s.mu.RLock()
	ds, ok := s.datasets[req.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", req.Dataset))
		return
	}
	f, err := scoring.NewLinear("audit-fn", req.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cfg := core.Config{Bins: req.Bins, Metrics: s.metrics}
	if req.Metric != "" {
		m, err := emd.ParseMetric(req.Metric)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cfg.Metric = m
	}
	e, err := core.NewEvaluator(ds, f, cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var attrs []int
	if req.Attributes != nil {
		for _, name := range req.Attributes {
			i := ds.Schema().ProtectedIndex(name)
			if i < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("%q is not a protected attribute", name))
				return
			}
			attrs = append(attrs, i)
		}
		if len(attrs) == 0 {
			writeErr(w, http.StatusBadRequest, errors.New("attributes list is empty"))
			return
		}
	}
	// The request's context flows into the engine: a client that
	// disconnects mid-audit aborts the search instead of burning an audit
	// slot to completion.
	res, err := core.Run(r.Context(), core.Spec{
		Algorithm: req.Algorithm,
		Evaluator: e,
		Attrs:     attrs,
		Seed:      req.Seed,
		Budget:    req.Budget,
	})
	if err != nil {
		if r.Context().Err() != nil {
			// Client is gone; nothing to write and nothing to store.
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	resp := auditResponse{
		Dataset:     req.Dataset,
		Algorithm:   res.Algorithm,
		Unfairness:  res.Unfairness,
		ElapsedSecs: res.Elapsed.Seconds(),
	}
	for _, p := range res.Partitioning.Parts {
		resp.Partitions = append(resp.Partitions, auditPartition{
			Label: p.Label(ds.Schema()), Size: p.Size(),
		})
	}
	sort.Slice(resp.Partitions, func(i, j int) bool {
		return resp.Partitions[i].Label < resp.Partitions[j].Label
	})
	if req.SignificanceRounds > 0 {
		p, _, err := core.Significance(e, res.Partitioning, req.SignificanceRounds, req.Seed)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp.PValue = &p
	}

	s.mu.Lock()
	s.auditSeq++
	resp.ID = fmt.Sprintf("audit-%06d", s.auditSeq)
	s.mu.Unlock()
	raw, err := json.Marshal(resp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := s.db.Put(bucketAudits, resp.ID, raw); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// rerankRequest asks for an exposure-parity re-ranking of a task's result
// page.
type rerankRequest struct {
	Task      string  `json:"task"`
	K         int     `json:"k"`
	Attribute string  `json:"attribute"`
	Epsilon   float64 `json:"epsilon"`
}

type rerankResponse struct {
	Ranking         []rankedEntry `json:"ranking"`
	DisparityBefore float64       `json:"disparity_before"`
	DisparityAfter  float64       `json:"disparity_after"`
}

func (s *Server) handleRerank(w http.ResponseWriter, r *http.Request) {
	var req rerankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad rerank json: %w", err))
		return
	}
	raw, ok := s.db.Get(bucketTasks, req.Task)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("task %q not found", req.Task))
		return
	}
	var t taskSpec
	if err := json.Unmarshal(raw, &t); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.RLock()
	ds, ok := s.datasets[t.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", t.Dataset))
		return
	}
	attr := ds.Schema().ProtectedIndex(req.Attribute)
	if attr < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("%q is not a protected attribute", req.Attribute))
		return
	}
	f, err := scoring.NewLinear(t.ID, t.Weights)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// Re-rank the full pool, then return the requested page.
	pool := marketplace.RankBy(ds, f, 0)
	out, err := rerank.ExposureParity(ds, attr, pool, rerank.Options{Epsilon: req.Epsilon})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	k := req.K
	if k <= 0 || k > len(out) {
		k = len(out)
	}
	beforeExp, err := marketplace.GroupExposure(ds, attr, pool[:k])
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	afterExp, err := marketplace.GroupExposure(ds, attr, out[:k])
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := rerankResponse{
		DisparityBefore: marketplace.ExposureDisparity(beforeExp),
		DisparityAfter:  marketplace.ExposureDisparity(afterExp),
	}
	for _, rw := range out[:k] {
		resp.Ranking = append(resp.Ranking, rankedEntry{
			Rank: rw.Rank, Worker: ds.ID(rw.Worker), Score: rw.Score,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// repairRequest asks for a before/after unfairness evaluation of
// quantile-matching score repair over a grouping.
type repairRequest struct {
	Dataset string `json:"dataset"`
	// Weights define the scoring function whose scores are repaired.
	Weights map[string]float64 `json:"weights"`
	// GroupBy names the protected attributes defining the repair groups;
	// empty means "the most unfair partitioning found by balanced".
	GroupBy []string `json:"group_by,omitempty"`
	Amount  float64  `json:"amount"`
	Bins    int      `json:"bins,omitempty"`
}

type repairResponse struct {
	UnfairnessBefore float64 `json:"unfairness_before"`
	UnfairnessAfter  float64 `json:"unfairness_after"`
	Groups           int     `json:"groups"`
	Amount           float64 `json:"amount"`
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req repairRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad repair json: %w", err))
		return
	}
	s.mu.RLock()
	ds, ok := s.datasets[req.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", req.Dataset))
		return
	}
	f, err := scoring.NewLinear("repair-fn", req.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e, err := core.NewEvaluator(ds, f, core.Config{Bins: req.Bins, Metrics: s.metrics})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var pt *partition.Partitioning
	if len(req.GroupBy) > 0 {
		parts := []*partition.Partition{partition.Root(ds)}
		for _, name := range req.GroupBy {
			a := ds.Schema().ProtectedIndex(name)
			if a < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("%q is not a protected attribute", name))
				return
			}
			parts = partition.SplitAll(ds, parts, a)
		}
		pt = &partition.Partitioning{Parts: parts}
	} else {
		res, err := core.Run(r.Context(), core.Spec{Evaluator: e})
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		pt = res.Partitioning
	}
	bins := e.Config().Bins
	before, err := repair.Unfairness(e.Scores(), pt, bins)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	repaired, err := repair.Scores(e.Scores(), pt, req.Amount)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	after, err := repair.Unfairness(repaired, pt, bins)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, repairResponse{
		UnfairnessBefore: before,
		UnfairnessAfter:  after,
		Groups:           pt.Size(),
		Amount:           req.Amount,
	})
}

// explainRequest asks which protected attributes drive a function's
// unfairness.
type explainRequest struct {
	Dataset string             `json:"dataset"`
	Weights map[string]float64 `json:"weights"`
	Bins    int                `json:"bins,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad explain json: %w", err))
		return
	}
	s.mu.RLock()
	ds, ok := s.datasets[req.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", req.Dataset))
		return
	}
	f, err := scoring.NewLinear("explain-fn", req.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e, err := core.NewEvaluator(ds, f, core.Config{Bins: req.Bins, Metrics: s.metrics})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	imps, err := explain.AttributesContext(r.Context(), e)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, imps)
}

// handleAlgorithms lists the registered audit algorithm names — the
// authoritative validation set for auditRequest.Algorithm.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, core.Algorithms())
}

func (s *Server) handleListAudits(w http.ResponseWriter, r *http.Request) {
	out := []auditResponse{}
	for _, id := range s.db.Keys(bucketAudits) {
		raw, ok := s.db.Get(bucketAudits, id)
		if !ok {
			continue
		}
		var a auditResponse
		if err := json.Unmarshal(raw, &a); err != nil {
			continue
		}
		out = append(out, a)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetAudit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, ok := s.db.Get(bucketAudits, id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("audit %q not found", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}
