package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fairrank/internal/rerank"
	"fairrank/internal/simulate"
)

// uploadSkewed uploads a population whose LanguageTest scores are
// inflated for English speakers, so a LanguageTest-weighted task ranks
// with real demographic bias — the population the mitigation endpoint
// exists for.
func uploadSkewed(t *testing.T, ts *httptest.Server, name string, n int) {
	t.Helper()
	// Bias 10 keeps minority speakers inside the unmitigated page but
	// clustered at its bottom — the regime where a within-page audit can
	// see the unfairness a re-ranker fixes (a fully shut-out group is
	// invisible to a within-page measure; the disparity axis covers that).
	ds, err := simulate.SkewedWorkers(n, 42, simulate.Options{
		SkillBias: 10,
		BiasAttr:  "Language",
		BiasValue: "English",
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets/"+name, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
}

// postBiasedTask posts the LanguageTest-weighted task over the skewed
// dataset and returns its ID.
func postBiasedTask(t *testing.T, ts *httptest.Server, dataset string) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/tasks", taskSpec{
		ID: "lang-task", Title: "translator", Dataset: dataset,
		Weights: map[string]float64{"LanguageTest": 1},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("task status %d: %s", resp.StatusCode, body)
	}
	return "lang-task"
}

func TestRankPostPlainMatchesGet(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadSkewed(t, ts, "skew", 300)
	task := postBiasedTask(t, ts, "skew")

	var viaGet []rankedEntry
	if code := getJSON(t, ts.URL+"/v1/rank?task="+task+"&k=25", &viaGet); code != http.StatusOK {
		t.Fatalf("GET status %d", code)
	}
	resp, body := postJSON(t, ts.URL+"/v1/rank", rankPostRequest{Task: task, K: 25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	var viaPost rankPostResponse
	if err := json.Unmarshal(body, &viaPost); err != nil {
		t.Fatal(err)
	}
	if len(viaPost.Ranking) != len(viaGet) {
		t.Fatalf("POST page size %d, GET %d", len(viaPost.Ranking), len(viaGet))
	}
	for i := range viaGet {
		if viaPost.Ranking[i] != viaGet[i] {
			t.Fatalf("position %d differs: POST %+v, GET %+v", i, viaPost.Ranking[i], viaGet[i])
		}
	}
	if viaPost.NDCG != nil || viaPost.UnfairnessBefore != nil {
		t.Fatal("plain page carries mitigation diagnostics")
	}
}

// The acceptance path: a FA*IR page over the biased task, audited by the
// core engine, must be strictly fairer than the unmitigated page at a
// bounded utility cost.
func TestRankPostFairTopKReducesUnfairness(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadSkewed(t, ts, "skew", 600)
	task := postBiasedTask(t, ts, "skew")

	resp, body := postJSON(t, ts.URL+"/v1/rank", rankPostRequest{
		Task: task, K: 50, Algorithm: "fair-topk", Attribute: "Language", Audit: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out rankPostResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ranking) != 50 {
		t.Fatalf("page size %d", len(out.Ranking))
	}
	if out.UnfairnessBefore == nil || out.UnfairnessAfter == nil {
		t.Fatalf("audit fields missing: %s", body)
	}
	if *out.UnfairnessAfter >= *out.UnfairnessBefore {
		t.Fatalf("unfairness not reduced: %v -> %v", *out.UnfairnessBefore, *out.UnfairnessAfter)
	}
	if out.NDCG == nil || *out.NDCG < 0.8 || *out.NDCG > 1+1e-9 {
		t.Fatalf("NDCG out of bounds: %v", out.NDCG)
	}
	// The unmitigated page may shut a group out entirely (disparity +Inf,
	// omitted from the payload); the mitigated page must always be finite
	// and, when both are present, strictly better.
	if out.DisparityAfter == nil {
		t.Fatal("mitigated disparity missing or infinite")
	}
	if out.DisparityBefore != nil && *out.DisparityAfter >= *out.DisparityBefore {
		t.Fatalf("exposure disparity not reduced: %v -> %v", *out.DisparityBefore, *out.DisparityAfter)
	}
}

// Every registered re-ranker must serve the biased task through the
// endpoint; each mitigated page must improve page-level exposure
// disparity over the unmitigated one.
func TestRankPostAllAlgorithms(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadSkewed(t, ts, "skew", 400)
	task := postBiasedTask(t, ts, "skew")

	var names []string
	if code := getJSON(t, ts.URL+"/v1/rerankers", &names); code != http.StatusOK {
		t.Fatalf("rerankers status %d", code)
	}
	want := rerank.Rerankers()
	if len(names) != len(want) {
		t.Fatalf("rerankers = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("rerankers = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		resp, body := postJSON(t, ts.URL+"/v1/rank", rankPostRequest{
			Task: task, K: 40, Algorithm: name, Attribute: "Language",
			Params: rerank.Params{Epsilon: 1},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
		var out rankPostResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Algorithm != name {
			t.Fatalf("algorithm echoed as %q", out.Algorithm)
		}
		if out.DisparityAfter == nil || out.NDCG == nil {
			t.Fatalf("%s: diagnostics missing: %s", name, body)
		}
		if out.DisparityBefore != nil && *out.DisparityAfter >= *out.DisparityBefore {
			t.Fatalf("%s: disparity not improved: %v -> %v",
				name, *out.DisparityBefore, *out.DisparityAfter)
		}
	}
}

func TestRankPostValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadSkewed(t, ts, "skew", 120)
	task := postBiasedTask(t, ts, "skew")

	cases := []struct {
		name string
		req  rankPostRequest
		code int
	}{
		{"missing task", rankPostRequest{}, http.StatusBadRequest},
		{"unknown task", rankPostRequest{Task: "nope"}, http.StatusNotFound},
		{"negative k", rankPostRequest{Task: task, K: -1}, http.StatusBadRequest},
		{"unknown algorithm", rankPostRequest{Task: task, Algorithm: "nope", Attribute: "Language"}, http.StatusBadRequest},
		{"bad attribute", rankPostRequest{Task: task, Algorithm: "fair-topk", Attribute: "LanguageTest"}, http.StatusBadRequest},
		{"missing attribute", rankPostRequest{Task: task, Algorithm: "fair-topk"}, http.StatusBadRequest},
		{"bad alpha", rankPostRequest{Task: task, Algorithm: "fair-topk", Attribute: "Language",
			Params: rerank.Params{Alpha: 2}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/rank", c.req)
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d (want %d): %s", c.name, resp.StatusCode, c.code, body)
		}
	}

	// The unknown-algorithm error must list the registered names.
	resp, body := postJSON(t, ts.URL+"/v1/rank", rankPostRequest{
		Task: task, Algorithm: "nope", Attribute: "Language",
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "fair-topk") {
		t.Fatalf("unknown-algorithm error unhelpful: %d %s", resp.StatusCode, body)
	}
}

// Serving through the endpoint must populate the per-algorithm telemetry
// series on /metrics.
func TestRankPostTelemetry(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadSkewed(t, ts, "skew", 120)
	task := postBiasedTask(t, ts, "skew")

	resp, body := postJSON(t, ts.URL+"/v1/rank", rankPostRequest{
		Task: task, K: 20, Algorithm: "det-cons", Attribute: "Language",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(mresp.Body)
	text := buf.String()
	for _, want := range []string{
		rerank.MetricServes, rerank.MetricServeSeconds, rerank.MetricTableCacheSize,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(text, `algorithm="det-cons"`) {
		t.Error("/metrics missing the det-cons label")
	}
}
