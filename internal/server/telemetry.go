package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"fairrank/internal/telemetry"
)

// HTTP metric names, exported on the server's registry.
const (
	MetricHTTPRequests       = "fairrank_http_requests_total"
	MetricHTTPRequestSeconds = "fairrank_http_request_seconds"
)

// WithMetrics attaches an externally owned telemetry registry, so the
// process can aggregate server, store and engine series in one /metrics
// exposition. Without this option the server creates a private registry;
// either way Metrics() returns the one in use.
func WithMetrics(reg *telemetry.Registry) ServerOption {
	return func(s *Server) {
		if reg != nil {
			s.metrics = reg
		}
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the server's
// handler. Off by default: profiling endpoints expose goroutine stacks
// and heap contents, so operators opt in explicitly (fairserve -pprof).
func WithPprof() ServerOption {
	return func(s *Server) { s.pprof = true }
}

// Metrics returns the registry the server records into — the one passed
// via WithMetrics, or the server's own.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// instrument wraps one route's handler with a per-route request counter
// (labeled by status code) and latency histogram. Wrapping happens at
// mount time because an outer middleware cannot see which pattern the mux
// matched; the route label is the pattern itself, so path parameters
// ({name}, {id}) never explode the series cardinality.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	hist := s.metrics.Histogram(MetricHTTPRequestSeconds, telemetry.DefBuckets(),
		telemetry.Label{Key: "route", Value: route})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.metrics.Counter(MetricHTTPRequests,
			telemetry.Label{Key: "route", Value: route},
			telemetry.Label{Key: "code", Value: strconv.Itoa(rec.status)},
		).Inc()
		hist.ObserveSince(start)
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// mountPprof exposes the standard pprof handlers on mux. DefaultServeMux
// registration (the pprof package's init) is deliberately not relied on —
// the platform never serves DefaultServeMux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
