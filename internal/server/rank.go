package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"fairrank/internal/dataset"
	"fairrank/internal/marketplace"
	"fairrank/internal/rerank"
)

// rankPostRequest is the POST /v1/rank body: the GET query parameters
// plus a re-ranking algorithm selection. Algorithm "" serves the plain
// score-ranked page, exactly like GET /v1/rank; any registered re-ranker
// name (GET /v1/rerankers) re-ranks the task's full candidate pool and
// serves the fairness-constrained page.
type rankPostRequest struct {
	Task string `json:"task"`
	// Q optionally restricts the pool to a keyword query, as GET's q=.
	Q string `json:"q,omitempty"`
	// K is the page size; 0 selects the default (10), negative is an error.
	K int `json:"k,omitempty"`
	// Algorithm is a registered re-ranker name, or "" for no mitigation.
	Algorithm string `json:"algorithm,omitempty"`
	// Attribute names the protected attribute whose groups the re-ranker
	// balances. Required by the group-aware re-rankers; may be empty for
	// proxy-free ones ("randomized"), in which case the group diagnostics
	// (disparity, audit) are skipped — there is no attribute to audit by.
	Attribute string `json:"attribute,omitempty"`
	// Params carries the per-algorithm knobs (epsilon, alpha).
	Params rerank.Params `json:"params,omitempty"`
	// Audit additionally runs the core engine over the before/after pages
	// and reports both unfairness values. Costs an engine search per page.
	Audit bool `json:"audit,omitempty"`
}

// rankPostResponse extends the GET ranking payload with the mitigation
// diagnostics. Pointer fields appear only when a re-ranker ran (and the
// unfairness pair only when audit was requested).
type rankPostResponse struct {
	Ranking   []rankedEntry `json:"ranking"`
	Algorithm string        `json:"algorithm,omitempty"`
	// NDCG is the served page's utility against the score-optimal page.
	NDCG *float64 `json:"ndcg,omitempty"`
	// DisparityBefore/After are the page-level max/min group exposure
	// ratios without and with the re-ranker. A disparity is omitted when
	// it is infinite — some group received zero exposure on that page —
	// since JSON has no encoding for it; an absent before with a present
	// after means the re-ranker recovered a fully shut-out group.
	DisparityBefore *float64 `json:"disparity_before,omitempty"`
	DisparityAfter  *float64 `json:"disparity_after,omitempty"`
	// UnfairnessBefore/After are the core engine's audit of both pages.
	UnfairnessBefore *float64 `json:"unfairness_before,omitempty"`
	UnfairnessAfter  *float64 `json:"unfairness_after,omitempty"`
}

// defaultPageSize matches GET /v1/rank's default k.
const defaultPageSize = 10

func (s *Server) handleRankPost(w http.ResponseWriter, r *http.Request) {
	var req rankPostRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad rank json: %w", err))
		return
	}
	if req.Task == "" {
		writeErr(w, http.StatusBadRequest, errors.New("task is required"))
		return
	}
	if req.K < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %d", req.K))
		return
	}
	k := req.K
	if k == 0 {
		k = defaultPageSize
	}
	raw, ok := s.db.Get(bucketTasks, req.Task)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("task %q not found", req.Task))
		return
	}
	var t taskSpec
	if err := json.Unmarshal(raw, &t); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.RLock()
	ds, ok := s.datasets[t.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataset %q not found", t.Dataset))
		return
	}
	m, err := marketplace.New(ds)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if err := m.PostTask(marketplace.Task{ID: t.ID, Title: t.Title, Weights: t.Weights}); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// Rank the whole (possibly query-filtered) pool, not just the page: a
	// re-ranker must be able to promote candidates from beyond the top-k.
	var pool []marketplace.RankedWorker
	if req.Q != "" {
		pool, err = m.RankQuery(t.ID, req.Q, 0)
	} else {
		pool, err = m.Rank(t.ID, 0)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if k > len(pool) {
		k = len(pool)
	}

	if req.Algorithm == "" {
		writeJSON(w, http.StatusOK, rankPostResponse{Ranking: entries(ds, pool[:k])})
		return
	}

	// An empty attribute is attr = -1: proxy-free re-rankers accept it
	// (they never read the protected column), group-aware ones reject it
	// with their usual out-of-range error.
	attr := -1
	if req.Attribute != "" {
		if attr = ds.Schema().ProtectedIndex(req.Attribute); attr < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("%q is not a protected attribute", req.Attribute))
			return
		}
	}
	page, err := rerank.Serve(s.metrics, req.Algorithm, ds, attr, pool, k, req.Params)
	switch {
	case errors.Is(err, rerank.ErrInfeasible):
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	before := pool[:len(page)]

	resp := rankPostResponse{Ranking: entries(ds, page), Algorithm: req.Algorithm}
	relevance := make([]float64, ds.N())
	for _, rw := range pool {
		relevance[rw.Worker] = rw.Score
	}
	if ndcg, err := marketplace.NDCG(relevance, page); err == nil {
		resp.NDCG = &ndcg
	}
	if attr >= 0 {
		if exp, err := marketplace.GroupExposure(ds, attr, before); err == nil {
			resp.DisparityBefore = finitePtr(marketplace.ExposureDisparity(exp))
		}
		if exp, err := marketplace.GroupExposure(ds, attr, page); err == nil {
			resp.DisparityAfter = finitePtr(marketplace.ExposureDisparity(exp))
		}
	}
	if req.Audit && attr >= 0 {
		// The audit is restricted to the mitigated attribute: it answers
		// "what did this re-ranker change", not "is the page fair along
		// every protected column".
		ub, err := rerank.AuditPage(r.Context(), ds, before, attr)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		ua, err := rerank.AuditPage(r.Context(), ds, page, attr)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp.UnfairnessBefore = &ub
		resp.UnfairnessAfter = &ua
	}
	writeJSON(w, http.StatusOK, resp)
}

// finitePtr boxes v for an omitempty pointer field, dropping the
// JSON-unencodable non-finite values.
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// entries renders a page as the wire ranking format shared with GET.
func entries(ds *dataset.Dataset, page []marketplace.RankedWorker) []rankedEntry {
	out := make([]rankedEntry, len(page))
	for i, rw := range page {
		out[i] = rankedEntry{Rank: rw.Rank, Worker: ds.ID(rw.Worker), Score: rw.Score}
	}
	return out
}

// handleRerankers lists the registered re-ranker names — the
// authoritative validation set for rankPostRequest.Algorithm.
func (s *Server) handleRerankers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rerank.Rerankers())
}
