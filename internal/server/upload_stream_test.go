package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"fairrank/internal/simulate"
	"fairrank/internal/store"
)

// Tests for the chunked, resumable snapshot upload path (upload.go): the
// four failure shapes a real client hits — interruption mid-chunk,
// duplicate retry, out-of-order arrival, and a server restart in the
// middle of a session — plus the one-shot streaming content type.

func snapshotBytes(t *testing.T, n int) []byte {
	t.Helper()
	ds, err := simulate.PaperWorkers(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// createUpload starts a session and returns its token.
func createUpload(t *testing.T, ts *httptest.Server, name string, size int) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/datasets/"+name+"/uploads", map[string]int{"size": size})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create upload status %d (%s)", resp.StatusCode, body)
	}
	var st uploadStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Token == "" || st.Size != int64(size) || st.Received != 0 {
		t.Fatalf("fresh session %+v", st)
	}
	return st.Token
}

// sendChunk posts data as the inclusive byte range [start, start+len-1].
// The caller owns the response body.
func sendChunk(t *testing.T, ts *httptest.Server, name, token string, data []byte, start, total int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/"+name+"/chunks", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Upload-Token", token)
	req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, start+len(data)-1, total))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) uploadStatus {
	t.Helper()
	defer resp.Body.Close()
	var st uploadStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func assertDatasetWorkers(t *testing.T, ts *httptest.Server, name string, want int) {
	t.Helper()
	var info datasetInfo
	if code := getJSON(t, ts.URL+"/v1/datasets/"+name, &info); code != http.StatusOK {
		t.Fatalf("get dataset status %d", code)
	}
	if info.Workers != want {
		t.Fatalf("dataset has %d workers, want %d", info.Workers, want)
	}
}

func TestUploadChunkedHappyPathOutOfOrder(t *testing.T) {
	_, ts, _ := newTestServer(t)
	snap := snapshotBytes(t, 60)
	token := createUpload(t, ts, "big", len(snap))

	// Three chunks delivered last-first: coverage closes on the first
	// chunk's arrival, whatever the order.
	cut1, cut2 := len(snap)/3, 2*len(snap)/3
	chunks := []struct{ start, end int }{{cut2, len(snap)}, {cut1, cut2}, {0, cut1}}
	var sent int64
	for i, c := range chunks {
		resp := sendChunk(t, ts, "big", token, snap[c.start:c.end], c.start, len(snap))
		sent += int64(c.end - c.start)
		if i < len(chunks)-1 {
			st := decodeStatus(t, resp)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("chunk %d status %d", i, resp.StatusCode)
			}
			if st.Complete || st.Received != sent {
				t.Fatalf("after chunk %d: %+v, want received %d", i, st, sent)
			}
		} else if resp.StatusCode != http.StatusCreated {
			t.Fatalf("final chunk status %d", resp.StatusCode)
		} else {
			resp.Body.Close()
		}
	}
	assertDatasetWorkers(t, ts, "big", 60)
	// The session is consumed: further status queries 404.
	if code := getJSON(t, ts.URL+"/v1/datasets/big/uploads/"+token, nil); code != http.StatusNotFound {
		t.Fatalf("status after finalize = %d, want 404", code)
	}
}

func TestUploadChunkInterruptedMidChunk(t *testing.T) {
	_, ts, _ := newTestServer(t)
	snap := snapshotBytes(t, 40)
	token := createUpload(t, ts, "d", len(snap))
	half := len(snap) / 2

	// A truncated body — the client died mid-chunk. The promised range
	// must not be recorded.
	resp := sendChunk(t, ts, "d", token, snap[:half/2], 0, len(snap))
	// Header promised [0, half), body carried only half/2 bytes.
	resp.Body.Close()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/d/chunks", bytes.NewReader(snap[:half/2]))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Upload-Token", token)
	req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", 0, half-1, len(snap)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short chunk status %d, want 400", resp.StatusCode)
	}
	var st uploadStatus
	if code := getJSON(t, ts.URL+"/v1/datasets/d/uploads/"+token, &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Received != int64(half/2) {
		// Only the first, fully-delivered chunk counts.
		t.Fatalf("received %d after interrupted chunk, want %d", st.Received, half/2)
	}

	// Retrying the interrupted range in full, then the rest, completes.
	resp = sendChunk(t, ts, "d", token, snap[half/2:half], half/2, len(snap))
	resp.Body.Close()
	resp = sendChunk(t, ts, "d", token, snap[half:], half, len(snap))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("final chunk status %d", resp.StatusCode)
	}
	assertDatasetWorkers(t, ts, "d", 40)
}

func TestUploadChunkDuplicateRetry(t *testing.T) {
	_, ts, _ := newTestServer(t)
	snap := snapshotBytes(t, 40)
	token := createUpload(t, ts, "d", len(snap))
	half := len(snap) / 2

	// The client's response to chunk 1 was lost, so it sends it again.
	for i := 0; i < 2; i++ {
		resp := sendChunk(t, ts, "d", token, snap[:half], 0, len(snap))
		st := decodeStatus(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("chunk status %d", resp.StatusCode)
		}
		if st.Received != int64(half) {
			t.Fatalf("received %d after %d sends, want %d (idempotent)", st.Received, i+1, half)
		}
	}
	resp := sendChunk(t, ts, "d", token, snap[half:], half, len(snap))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("final chunk status %d", resp.StatusCode)
	}
	assertDatasetWorkers(t, ts, "d", 40)
}

func TestUploadResumesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/srv.db"
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	snap := snapshotBytes(t, 60)
	token := createUpload(t, ts1, "big", len(snap))
	third := len(snap) / 3
	resp := sendChunk(t, ts1, "big", token, snap[:third], 0, len(snap))
	resp.Body.Close()

	// The process dies mid-upload.
	ts1.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	s2, err := New(db2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	// The session survived: same token, first chunk still counted, the
	// status reply tells the client exactly what is missing.
	var st uploadStatus
	if code := getJSON(t, ts2.URL+"/v1/datasets/big/uploads/"+token, &st); code != http.StatusOK {
		t.Fatalf("status after restart %d", code)
	}
	if st.Received != int64(third) || st.Complete {
		t.Fatalf("after restart: %+v", st)
	}
	if len(st.Missing) != 1 || st.Missing[0].Start != int64(third) || st.Missing[0].End != int64(len(snap)) {
		t.Fatalf("missing after restart: %+v", st.Missing)
	}

	resp = sendChunk(t, ts2, "big", token, snap[third:], third, len(snap))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("final chunk status %d", resp.StatusCode)
	}
	assertDatasetWorkers(t, ts2, "big", 60)

	// And the finalized dataset is audit-ready.
	audit, body := postJSON(t, ts2.URL+"/v1/audits", map[string]any{
		"dataset": "big",
		"weights": map[string]float64{"LanguageTest": 1, "ApprovalRate": 1},
	})
	if audit.StatusCode != http.StatusCreated {
		t.Fatalf("audit over resumed upload: %d (%s)", audit.StatusCode, body)
	}
}

func TestUploadCorruptSnapshotRejectedAtFinalize(t *testing.T) {
	_, ts, _ := newTestServer(t)
	snap := snapshotBytes(t, 40)
	snap[len(snap)/2] ^= 0xFF // corrupt a column byte: checksums must catch it
	token := createUpload(t, ts, "bad", len(snap))
	resp := sendChunk(t, ts, "bad", token, snap, 0, len(snap))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt finalize status %d, want 422", resp.StatusCode)
	}
	// Nothing registered, session consumed.
	if code := getJSON(t, ts.URL+"/v1/datasets/bad", nil); code != http.StatusNotFound {
		t.Fatalf("corrupt dataset registered (status %d)", code)
	}
	if code := getJSON(t, ts.URL+"/v1/datasets/bad/uploads/"+token, nil); code != http.StatusNotFound {
		t.Fatalf("session survived failed finalize (status %d)", code)
	}
}

func TestUploadSnapshotOneShot(t *testing.T) {
	_, ts, _ := newTestServer(t)
	snap := snapshotBytes(t, 50)
	resp, err := http.Post(ts.URL+"/v1/datasets/one", contentTypeSnapshot, bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("one-shot snapshot upload status %d", resp.StatusCode)
	}
	assertDatasetWorkers(t, ts, "one", 50)
}

// TestJobBySnapshotReference: an async job can name a stored snapshot
// instead of a registered dataset; the worker opens a private mapping for
// the run and the result records which snapshot it audited.
func TestJobBySnapshotReference(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "demo", 60)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"snapshot": "demo",
		"weights":  map[string]float64{"LanguageTest": 1, "ApprovalRate": 2},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit by snapshot: %d (%s)", resp.StatusCode, body)
	}
	var j struct{ ID string }
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	done := waitJobHTTP(t, ts.URL, j.ID, "done")
	var res jobResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != "demo" || res.Dataset != "" {
		t.Fatalf("result provenance %+v, want snapshot=demo", res)
	}
	if len(res.Partitions) == 0 {
		t.Fatal("snapshot job produced no partitions")
	}

	// An unknown snapshot fails fast at submission.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"snapshot": "no-such",
		"weights":  map[string]float64{"LanguageTest": 1},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown snapshot: %d (%s)", resp.StatusCode, body)
	}
}

// TestUploadConcurrentFinalChunkSingleFinalizer: several identical
// retries of the coverage-closing chunk race each other. Exactly one
// request may finalize (201); the rest must bounce off the closed
// session (409, or 404 once it is consumed) — never a spurious 422/500
// from a double finalize, and never a write into the adopted snapshot.
func TestUploadConcurrentFinalChunkSingleFinalizer(t *testing.T) {
	_, ts, _ := newTestServer(t)
	snap := snapshotBytes(t, 60)
	token := createUpload(t, ts, "big", len(snap))
	half := len(snap) / 2
	resp := sendChunk(t, ts, "big", token, snap[:half], 0, len(snap))
	resp.Body.Close()

	const racers = 8
	codes := make(chan int, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/big/chunks", bytes.NewReader(snap[half:]))
			if err != nil {
				codes <- -1
				return
			}
			req.Header.Set("Upload-Token", token)
			req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", half, len(snap)-1, len(snap)))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	created := 0
	for code := range codes {
		switch code {
		case http.StatusCreated:
			created++
		case http.StatusConflict, http.StatusNotFound:
			// Lost the race after or before the winner finalized.
		default:
			t.Fatalf("racing final chunk answered %d, want 201/409/404", code)
		}
	}
	if created != 1 {
		t.Fatalf("%d racing final chunks finalized, want exactly 1", created)
	}
	assertDatasetWorkers(t, ts, "big", 60)
}

// TestUploadSessionCapAndExpiry: session count is capped, and creating a
// new session sweeps idle-expired sessions (removing their spills) to
// make room under the cap.
func TestUploadSessionCapAndExpiry(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	tokens := make([]string, 0, maxUploadSessions)
	for i := 0; i < maxUploadSessions; i++ {
		tokens = append(tokens, createUpload(t, ts, "d", 4096))
	}
	resp, body := postJSON(t, ts.URL+"/v1/datasets/d/uploads", map[string]int{"size": 4096})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create beyond cap: %d (%s), want 429", resp.StatusCode, body)
	}

	// Age every session past the TTL; the next create sweeps them.
	srv.mu.Lock()
	for _, sess := range srv.sessions {
		sess.Updated -= int64(2 * uploadSessionTTL / time.Second)
	}
	spill := srv.sessions[tokens[0]].spillPath(srv.uploadDir)
	srv.mu.Unlock()

	createUpload(t, ts, "d", 4096)
	if code := getJSON(t, ts.URL+"/v1/datasets/d/uploads/"+tokens[0], nil); code != http.StatusNotFound {
		t.Fatalf("expired session status = %d, want 404", code)
	}
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Fatalf("expired session spill still on disk (err=%v)", err)
	}
}

func TestUploadAbortDiscardsSession(t *testing.T) {
	_, ts, _ := newTestServer(t)
	snap := snapshotBytes(t, 40)
	token := createUpload(t, ts, "d", len(snap))
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/d/uploads/"+token, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("abort status %d", resp.StatusCode)
	}
	resp = sendChunk(t, ts, "d", token, snap, 0, len(snap))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("chunk after abort status %d, want 404", resp.StatusCode)
	}
}
