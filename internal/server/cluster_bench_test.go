// Cluster throughput benchmark behind `make bench-cluster` (BENCH_9).
// Three cells, one shared job workload (submit b.N distinct audit specs
// over HTTP, wait for the fleet to finish them):
//
//	cluster=off    standalone node, EnableCluster never called — the
//	               pre-cluster baseline (nil cluster ref on every path).
//	cluster=solo   same node with the cluster layer enabled but zero
//	               peers: heartbeat loop, ring of one, placement checks
//	               all live. The benchdiff gate holds this within 5% of
//	               cluster=off — clustering compiled in and idle must be
//	               (nearly) free.
//	cluster=three  3-node cluster, a b.N-job backlog pinned to node A
//	               with every executor gated until submission finishes —
//	               the timed region is the fleet draining the backlog
//	               (stealing enabled), and the cell reports the
//	               steal-latency histogram. The gate is what makes steals
//	               observable at all on a small CI box: without it the
//	               submit path costs at least as much CPU as the audit
//	               itself, so a backlog never forms and thieves correctly
//	               see an empty victim.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"fairrank/internal/cluster"
	"fairrank/internal/core"
	"fairrank/internal/jobs"
	"fairrank/internal/simulate"
	"fairrank/internal/store"
)

func benchNode(b *testing.B, opts ...ServerOption) (*Server, *httptest.Server) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "node.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	s, err := New(db, opts...)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return s, ts
}

func benchUpload(b *testing.B, ts *httptest.Server, name string, n int) {
	b.Helper()
	ds, err := simulate.PaperWorkers(n, 42)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets/"+name, "application/octet-stream", &buf)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("upload status %d", resp.StatusCode)
	}
}

// benchDrain submits b.N distinct specs round-robin over submitURLs and
// blocks until every node in servers has finished its share.
func benchDrain(b *testing.B, servers []*Server, submitURLs []string, seedBase uint64) {
	b.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < b.N; i++ {
		spec := map[string]any{
			"dataset": "demo",
			"weights": map[string]float64{"LanguageTest": 1},
			"seed":    seedBase + uint64(i),
			"budget":  200,
		}
		raw, _ := json.Marshal(spec)
		u := submitURLs[i%len(submitURLs)]
		req, err := http.NewRequest(http.MethodPost, u+"/v1/jobs", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			b.Fatalf("submit status %d", resp.StatusCode)
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var runs int64
		for _, s := range servers {
			runs += s.Jobs().Runs()
		}
		if runs >= int64(b.N) {
			return
		}
		if time.Now().After(deadline) {
			b.Fatalf("fleet finished %d/%d jobs before deadline", runs, b.N)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func BenchmarkClusterJobs(b *testing.B) {
	b.Run("cluster=off", func(b *testing.B) {
		s, ts := benchNode(b)
		benchUpload(b, ts, "demo", 40)
		b.ResetTimer()
		benchDrain(b, []*Server{s}, []string{ts.URL}, 10_000)
	})

	b.Run("cluster=solo", func(b *testing.B) {
		s, ts := benchNode(b)
		benchUpload(b, ts, "demo", 40)
		if err := s.EnableCluster(cluster.Config{
			Self:      ts.URL,
			NodeID:    "solo",
			Heartbeat: 25 * time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		benchDrain(b, []*Server{s}, []string{ts.URL}, 20_000)
	})

	b.Run("cluster=three", func(b *testing.B) {
		// Every node's executor blocks on release until the backlog is in
		// place; node A needs queue headroom for the whole backlog.
		release := make(chan struct{})
		gate := func(s *Server) {
			s.jobExecWrap = func(orig jobs.Executor) jobs.Executor {
				return func(ctx context.Context, j jobs.Job, progress func(core.TraceStep)) ([]byte, error) {
					<-release
					return orig(ctx, j, progress)
				}
			}
		}
		var servers []*Server
		var urls []string
		for i := 0; i < 3; i++ {
			s, ts := benchNode(b, gate, WithJobQueueLimit(b.N+64))
			benchUpload(b, ts, "demo", 40)
			servers = append(servers, s)
			urls = append(urls, ts.URL)
		}
		for i, s := range servers {
			var peers []string
			for j, u := range urls {
				if j != i {
					peers = append(peers, u)
				}
			}
			if err := s.EnableCluster(cluster.Config{
				Self:         urls[i],
				NodeID:       fmt.Sprintf("bench-%c", 'a'+i),
				Peers:        peers,
				Heartbeat:    25 * time.Millisecond,
				SuspectAfter: 2,
				// Hydration off: every node already holds the dataset.
				DisableHydration: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			formed := true
			for _, s := range servers {
				if len(s.Cluster().Status().RingNodes) != 3 {
					formed = false
				}
			}
			if formed {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("cluster did not form")
			}
			time.Sleep(10 * time.Millisecond)
		}
		// Untimed: pin the whole backlog onto node A (the loop-guard header
		// suppresses ring forwarding so the steal path, not placement, does
		// the distribution). B and C start stealing batches immediately —
		// their gated workers wedge, so nothing executes yet.
		client := &http.Client{Timeout: 30 * time.Second}
		for i := 0; i < b.N; i++ {
			spec := map[string]any{
				"dataset": "demo",
				"weights": map[string]float64{"LanguageTest": 1},
				"seed":    uint64(30_000 + i),
				"budget":  200,
			}
			raw, _ := json.Marshal(spec)
			req, err := http.NewRequest(http.MethodPost, urls[0]+"/v1/jobs", bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(cluster.HeaderForwarded, "bench-pin")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				b.Fatalf("submit status %d", resp.StatusCode)
			}
		}
		// Timed region: open the gate and drain the backlog fleet-wide.
		b.ResetTimer()
		close(release)
		deadline = time.Now().Add(2 * time.Minute)
		for {
			var runs int64
			for _, s := range servers {
				runs += s.Jobs().Runs()
			}
			if runs >= int64(b.N) {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("fleet finished %d/%d jobs before deadline", runs, b.N)
			}
			time.Sleep(2 * time.Millisecond)
		}
		b.StopTimer()
		// Steal-latency histogram across the thieves (nodes B and C).
		var count int64
		var p50, p99 float64
		for _, s := range servers[1:] {
			h := s.metrics.Histogram(cluster.MetricStealSeconds, nil)
			if c := h.Count(); c > 0 {
				count += c
				if q := h.Quantile(0.5); q > p50 {
					p50 = q
				}
				if q := h.Quantile(0.99); q > p99 {
					p99 = q
				}
			}
		}
		b.ReportMetric(float64(count), "steal-batches")
		b.ReportMetric(p50*1e3, "steal-p50-ms")
		b.ReportMetric(p99*1e3, "steal-p99-ms")
	})
}
