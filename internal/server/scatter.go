// Scatter-gather job reads. In a cluster, GET /v1/jobs and
// GET /v1/jobs/{id} answer for the whole fleet: the request fans out to
// every live peer (with per-peer timeouts, stamped with the scatter
// loop-guard header so peers answer locally), the pages merge into one
// stable global ordering, and a down peer degrades the answer to
// partial: true instead of failing it.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"

	"fairrank/internal/cluster"
	"fairrank/internal/jobs"
)

// clusterJob annotates a job with the node it lives on. Job IDs are
// per-node sequences ("job-000001" exists on every node), so the pair
// (ID, Node) is the cluster-wide identity.
type clusterJob struct {
	jobs.Job
	Node string `json:"node,omitempty"`
}

// clusterJobPage is the clustered GET /v1/jobs answer. Partial marks a
// page assembled while at least one peer was unreachable.
type clusterJobPage struct {
	Jobs    []clusterJob `json:"jobs"`
	Total   int          `json:"total"`
	Offset  int          `json:"offset"`
	Limit   int          `json:"limit"`
	Partial bool         `json:"partial,omitempty"`
}

// scatterListJobs merges every live node's job list into one page.
// Each node is asked for the first offset+limit entries of its own
// newest-first ordering; the union re-sorts (ID descending, node ID
// ascending on ties — stable across nodes) and the global page is cut
// from that. The per-node ask clamps at maxJobPage, the same depth
// bound a standalone node enforces.
func (s *Server) scatterListJobs(w http.ResponseWriter, c *cluster.Cluster, state jobs.State, offset, limit int) {
	want := offset + limit
	if want > maxJobPage {
		want = maxJobPage
	}
	local, localTotal := s.jobs.List(state, 0, want)
	rows := make([]clusterJob, 0, len(local))
	for _, j := range local {
		rows = append(rows, clusterJob{Job: j, Node: c.NodeID()})
	}
	total := localTotal
	partial := c.DownPeers() > 0 // dead peers were never asked
	peers := c.AlivePeers()
	type answer struct {
		peer cluster.PeerRef
		page jobPage
		err  error
	}
	results := make(chan answer, len(peers))
	for _, p := range peers {
		go func(p cluster.PeerRef) {
			u := fmt.Sprintf("%s/v1/jobs?limit=%d&offset=0", p.URL, want)
			if state != "" {
				u += "&state=" + url.QueryEscape(string(state))
			}
			status, body, err := c.Fetch(u)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("peer %s: status %d", p.URL, status)
			}
			var page jobPage
			if err == nil {
				err = json.Unmarshal(body, &page)
			}
			results <- answer{peer: p, page: page, err: err}
		}(p)
	}
	for range peers {
		a := <-results
		if a.err != nil {
			partial = true
			continue
		}
		total += a.page.Total
		for _, j := range a.page.Jobs {
			rows = append(rows, clusterJob{Job: j, Node: a.peer.ID})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ID != rows[j].ID {
			return rows[i].ID > rows[j].ID // newest first, matching Queue.List
		}
		return rows[i].Node < rows[j].Node
	})
	if offset > len(rows) {
		rows = rows[len(rows):]
	} else {
		rows = rows[offset:]
	}
	if limit < len(rows) {
		rows = rows[:limit]
	}
	writeJSON(w, http.StatusOK, clusterJobPage{
		Jobs: rows, Total: total, Offset: offset, Limit: limit, Partial: partial,
	})
}

// scatterGetJob looks a job ID up across the fleet after a local miss,
// visiting live peers in stable node-ID order and returning the first
// hit. A miss while some peer was unreachable is flagged partial: the
// job may exist on the down node.
func (s *Server) scatterGetJob(w http.ResponseWriter, c *cluster.Cluster, id string) {
	partial := c.DownPeers() > 0
	for _, p := range c.AlivePeers() {
		status, body, err := c.Fetch(p.URL + "/v1/jobs/" + url.PathEscape(id))
		if err != nil {
			partial = true
			continue
		}
		if status != http.StatusOK {
			continue
		}
		var j jobs.Job
		if err := json.Unmarshal(body, &j); err != nil {
			partial = true
			continue
		}
		writeJSON(w, http.StatusOK, clusterJob{Job: j, Node: p.ID})
		return
	}
	writeJSON(w, http.StatusNotFound, struct {
		Error   string `json:"error"`
		Partial bool   `json:"partial,omitempty"`
	}{Error: fmt.Sprintf("job %q not found", id), Partial: partial})
}
