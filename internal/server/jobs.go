// Async audit jobs: the HTTP surface over internal/jobs. Synchronous
// POST /v1/audits stays for small interactive runs; everything heavy goes
// through here — submit, poll, follow as SSE, cancel — with admission
// control shedding load instead of monopolizing connections.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"fairrank/internal/cluster"
	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/jobs"
	"fairrank/internal/scoring"
)

const (
	maxJobBodyBytes = 1 << 20
	// defaultJobPage and maxJobPage bound GET /v1/jobs pages: a
	// long-running server accumulates unbounded job history in the store,
	// and serializing it all in one response would balloon without limit.
	defaultJobPage = 50
	maxJobPage     = 500
)

// jobResult is the stored output of an async audit. It deliberately
// carries no wall-clock fields (unlike the synchronous auditResponse's
// elapsed_seconds): crash recovery re-runs interrupted jobs and promises
// a bit-identical result, so everything here must be a pure function of
// the spec.
type jobResult struct {
	Dataset    string           `json:"dataset,omitempty"`
	Snapshot   string           `json:"snapshot,omitempty"`
	Algorithm  string           `json:"algorithm"`
	Unfairness float64          `json:"unfairness"`
	Partitions []auditPartition `json:"partitions"`
}

// jobPage is the paginated GET /v1/jobs response.
type jobPage struct {
	Jobs   []jobs.Job `json:"jobs"`
	Total  int        `json:"total"`
	Offset int        `json:"offset"`
	Limit  int        `json:"limit"`
}

// resolveJobSpec turns a wire spec into the core.Spec it will execute,
// validating every reference against live server state. It is called at
// submit time (for validation and the canonical hash) and again at
// execution time (datasets can change between the two — the run uses
// whatever the name resolves to then, exactly like a synchronous audit
// issued at that moment).
//
// A spec naming a Snapshot gets its own memory-mapped view of the stored
// snapshot file, independent of the registered-dataset table; the returned
// release func unmaps it and must be called once the run's results are
// fully materialized. For Dataset specs release is a no-op — the shared
// mapping belongs to the registry.
func (s *Server) resolveJobSpec(sp jobs.Spec) (core.Spec, func(), error) {
	release := func() {}
	var ds *dataset.Dataset
	if sp.Snapshot != "" {
		path, ok := s.snaps.Path(sp.Snapshot)
		if !ok {
			return core.Spec{}, nil, fmt.Errorf("snapshot %q not found", sp.Snapshot)
		}
		mapped, err := dataset.OpenSnapshot(path)
		if err != nil {
			return core.Spec{}, nil, fmt.Errorf("snapshot %q: %w", sp.Snapshot, err)
		}
		ds = mapped
		release = func() { mapped.Close() }
	} else {
		s.mu.RLock()
		var ok bool
		ds, ok = s.datasets[sp.Dataset]
		s.mu.RUnlock()
		if !ok {
			return core.Spec{}, nil, fmt.Errorf("dataset %q not found", sp.Dataset)
		}
	}
	fail := func(err error) (core.Spec, func(), error) {
		release()
		return core.Spec{}, nil, err
	}
	f, err := scoring.NewLinear("job-fn", sp.Weights)
	if err != nil {
		return fail(err)
	}
	if err := f.Validate(ds.Schema()); err != nil {
		return fail(err)
	}
	cfg := core.Config{Bins: sp.Bins, Metrics: s.metrics}
	if sp.Metric != "" {
		m, err := emd.ParseMetric(sp.Metric)
		if err != nil {
			return fail(err)
		}
		cfg.Metric = m
	}
	var attrs []int
	if sp.Attributes != nil {
		for _, name := range sp.Attributes {
			i := ds.Schema().ProtectedIndex(name)
			if i < 0 {
				return fail(fmt.Errorf("%q is not a protected attribute", name))
			}
			attrs = append(attrs, i)
		}
	}
	return core.Spec{
		Algorithm: sp.Algorithm,
		Dataset:   ds,
		Func:      f,
		Config:    cfg,
		Attrs:     attrs,
		Seed:      sp.Seed,
		Budget:    sp.Budget,
	}, release, nil
}

// execJob is the queue's executor: resolve the spec, drive the engine
// under the job's context, and serialize the deterministic result.
func (s *Server) execJob(ctx context.Context, j jobs.Job, progress func(core.TraceStep)) ([]byte, error) {
	spec, release, err := s.resolveJobSpec(j.Spec)
	if err != nil {
		return nil, err
	}
	// Labels and sizes below are materialized values, so releasing after
	// the marshal is safe even for a job-private snapshot mapping.
	defer release()
	spec.Progress = progress
	res, err := core.Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	out := jobResult{
		Dataset:    j.Spec.Dataset,
		Snapshot:   j.Spec.Snapshot,
		Algorithm:  res.Algorithm,
		Unfairness: res.Unfairness,
		Partitions: []auditPartition{},
	}
	schema := spec.Dataset.Schema()
	for _, p := range res.Partitioning.Parts {
		out.Partitions = append(out.Partitions, auditPartition{Label: p.Label(schema), Size: p.Size()})
	}
	sort.Slice(out.Partitions, func(i, k int) bool {
		return out.Partitions[i].Label < out.Partitions[k].Label
	})
	return json.Marshal(out)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxJobBodyBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxJobBodyBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, errors.New("job spec exceeds size limit"))
		return
	}
	spec, err := jobs.DecodeSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Resolve now so bad submissions fail fast with a 4xx instead of
	// becoming failed jobs, and to derive the canonical dedup hash.
	cspec, release, err := s.resolveJobSpec(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	hash := cspec.Hash()
	release()
	// Clustered placement: the canonical hash's ring owner runs the job,
	// so identical specs submitted anywhere in the cluster dedup onto one
	// run. A stamped submission is never re-forwarded (loop guard), and
	// any placement failure falls through to local execution.
	if c := s.clusterRef(); c != nil && r.Header.Get(cluster.HeaderForwarded) == "" {
		dsName := spec.Dataset
		if dsName == "" {
			dsName = spec.Snapshot
		}
		if fw := c.PlaceJob(hash, dsName, body); fw != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(fw.Status)
			_, _ = w.Write(fw.Body)
			return
		}
	}
	job, created, err := s.jobs.Submit(spec, hash)
	var full *jobs.FullError
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", strconv.Itoa(int(full.RetryAfter.Seconds())))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusAccepted
	if !created {
		// Coalesced onto an existing job (active dedup or result cache).
		status = http.StatusOK
	}
	writeJSON(w, status, job)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c := s.clusterRef()
	if job, ok := s.jobs.Get(id); ok {
		if c != nil {
			writeJSON(w, http.StatusOK, clusterJob{Job: job, Node: c.NodeID()})
			return
		}
		writeJSON(w, http.StatusOK, job)
		return
	}
	// Local miss: scatter to live peers unless this request is itself a
	// peer's fan-out (loop guard).
	if c == nil || r.Header.Get(cluster.HeaderScatter) != "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		return
	}
	s.scatterGetJob(w, c, id)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	limit := defaultJobPage
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = min(n, maxJobPage)
	}
	offset := 0
	if v := qp.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", v))
			return
		}
		offset = n
	}
	state := jobs.State(qp.Get("state"))
	switch state {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled, jobs.StateStolen:
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad state %q", state))
		return
	}
	// Clustered reads fan out to live peers and merge; a peer's own
	// fan-out request (scatter header) is answered from local state only.
	if c := s.clusterRef(); c != nil && r.Header.Get(cluster.HeaderScatter) == "" {
		s.scatterListJobs(w, c, state, offset, limit)
		return
	}
	page, total := s.jobs.List(state, offset, limit)
	writeJSON(w, http.StatusOK, jobPage{Jobs: page, Total: total, Offset: offset, Limit: limit})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
	case errors.Is(err, jobs.ErrTerminal):
		writeErr(w, http.StatusConflict, fmt.Errorf("job %q already %s", id, job.State))
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, job)
	}
}

// handleJobEvents streams a job's lifecycle and engine progress as
// server-sent events: replayed history first, then live events until the
// job reaches a terminal state or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	replay, live, cancel, err := s.jobs.Subscribe(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		return
	}
	defer cancel()
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeEvent := func(ev jobs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	for _, ev := range replay {
		if !writeEvent(ev) {
			return
		}
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // terminal state reached; stream complete
			}
			if !writeEvent(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
