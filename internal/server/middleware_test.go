package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRecoveryMiddleware(t *testing.T) {
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(withRecovery(boom))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
}

func TestLoggingMiddleware(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	ts := httptest.NewServer(withLogging(logf, ok))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/some/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("%d log lines", len(lines))
	}
	if !strings.Contains(lines[0], "GET /some/path -> 418") {
		t.Fatalf("log line = %q", lines[0])
	}
}

func TestLoggingMiddlewareNilDisables(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := withLogging(nil, h); fmt.Sprintf("%T", got) != "http.HandlerFunc" {
		// withLogging(nil, h) must return h itself.
	}
	ts := httptest.NewServer(withLogging(nil, h))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSemaphoreMiddleware(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 2)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(withSemaphore(2, slow))
	defer ts.Close()

	// Fill both slots.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
			errs <- err
		}()
	}
	// Both in-flight requests signal once they hold a slot; only then can
	// the third request deterministically see a full semaphore.
	<-entered
	<-entered
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit status = %d, want 503", resp.StatusCode)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Slots free again.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d", resp.StatusCode)
	}
}

func TestSemaphoreZeroDisables(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	ts := httptest.NewServer(withSemaphore(0, h))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
