package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/jobs"
	"fairrank/internal/simulate"
	"fairrank/internal/store"
)

// putDataset writes a deterministic population straight into the store,
// so a server built over it (including after a simulated crash) reloads
// the exact same dataset bytes.
func putDataset(t *testing.T, db *store.DB, name string, n int) {
	t.Helper()
	ds, err := simulate.PaperWorkers(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(bucketDatasets, name, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// waitJobHTTP polls GET /v1/jobs/{id} until the job reaches want.
func waitJobHTTP(t *testing.T, baseURL, id string, want jobs.State) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var j jobs.Job
	for time.Now().Before(deadline) {
		if status := getJSON(t, baseURL+"/v1/jobs/"+id, &j); status != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, status)
		}
		if j.State == want {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s: state %s after timeout, want %s (error %q)", id, j.State, want, j.Error)
	return jobs.Job{}
}

func jobSpecBody(weights map[string]float64, seed uint64) map[string]any {
	return map[string]any{"dataset": "demo", "weights": weights, "seed": seed, "budget": 500}
}

// TestJobsEndToEndDedup is the acceptance scenario: N identical and M
// distinct submissions over HTTP produce exactly M engine runs, and every
// client ends up with the result for the spec it submitted.
func TestJobsEndToEndDedup(t *testing.T) {
	s, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "demo", 80)

	const identical, distinct = 6, 3
	specs := make([]map[string]any, distinct)
	specs[0] = jobSpecBody(map[string]float64{"LanguageTest": 1}, 1)
	specs[1] = jobSpecBody(map[string]float64{"LanguageTest": 1, "ApprovalRate": 2}, 1)
	specs[2] = jobSpecBody(map[string]float64{"LanguageTest": 1}, 2) // same weights, new seed

	// N submissions of spec 0: the first creates (202), the rest coalesce
	// (200) onto the same job whether it is still active or already done.
	var firstID string
	for i := 0; i < identical; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", specs[0])
		var j jobs.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatalf("submission %d: %v (%s)", i, err, body)
		}
		switch {
		case i == 0 && resp.StatusCode != http.StatusAccepted:
			t.Fatalf("first submission status %d", resp.StatusCode)
		case i > 0 && resp.StatusCode != http.StatusOK:
			t.Fatalf("duplicate submission %d status %d", i, resp.StatusCode)
		case i > 0 && j.ID != firstID:
			t.Fatalf("duplicate submission %d landed on %s, want %s", i, j.ID, firstID)
		}
		if i == 0 {
			firstID = j.ID
		}
	}
	ids := []string{firstID}
	for _, spec := range specs[1:] {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("distinct submission status %d (%s)", resp.StatusCode, body)
		}
		var j jobs.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	results := map[string]json.RawMessage{}
	for _, id := range ids {
		j := waitJobHTTP(t, ts.URL, id, jobs.StateDone)
		if len(j.Result) == 0 {
			t.Fatalf("job %s done without result", id)
		}
		results[id] = j.Result
	}
	if runs := s.Jobs().Runs(); runs != distinct {
		t.Fatalf("engine ran %d times for %d distinct specs (+%d duplicates)", runs, distinct, identical-1)
	}
	// The seed-only change must actually change the audit input hash —
	// distinct jobs, even if their unfairness happens to coincide.
	if ids[0] == ids[2] {
		t.Fatal("distinct seeds were deduplicated together")
	}
	for id, raw := range results {
		var res struct {
			Dataset    string  `json:"dataset"`
			Unfairness float64 `json:"unfairness"`
		}
		if err := json.Unmarshal(raw, &res); err != nil || res.Dataset != "demo" {
			t.Fatalf("job %s result malformed: %v (%s)", id, err, raw)
		}
	}
}

// TestJobsRestartMidRunBitIdentical kills the process (simulated) while a
// job is mid-run, restarts over the same store, and requires the
// recovered job to complete with a result byte-identical to a run that
// was never interrupted.
func TestJobsRestartMidRunBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "srv.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	putDataset(t, db, "demo", 80)

	// Server 1: the executor signals and then stalls until the crash.
	started := make(chan struct{})
	stall := func(jobs.Executor) jobs.Executor {
		return func(ctx context.Context, j jobs.Job, progress func(core.TraceStep)) ([]byte, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	s1, err := New(db, func(s *Server) { s.jobExecWrap = stall })
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	spec := jobSpecBody(map[string]float64{"LanguageTest": 1, "ApprovalRate": 3}, 7)
	resp, body := postJSON(t, ts1.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d (%s)", resp.StatusCode, body)
	}
	var submitted jobs.Job
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	<-started
	s1.Jobs().Kill()
	ts1.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Server 2: plain restart over the same store. Recovery requeues the
	// interrupted job and the real executor finishes it.
	db2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	s2, err := New(db2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	recovered := waitJobHTTP(t, ts2.URL, submitted.ID, jobs.StateDone)
	if !recovered.Recovered {
		t.Fatal("job completed after restart but is not flagged Recovered")
	}

	// Server 3: a clean run of the same spec on an identical dataset,
	// never crashed — the recovery baseline.
	s3, ts3, _ := newTestServer(t)
	_ = s3
	uploadDataset(t, ts3, "demo", 80)
	resp, body = postJSON(t, ts3.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("clean submit status %d (%s)", resp.StatusCode, body)
	}
	var clean jobs.Job
	if err := json.Unmarshal(body, &clean); err != nil {
		t.Fatal(err)
	}
	cleanDone := waitJobHTTP(t, ts3.URL, clean.ID, jobs.StateDone)
	if !bytes.Equal(recovered.Result, cleanDone.Result) {
		t.Fatalf("recovered result is not bit-identical:\n  recovered %s\n  clean     %s",
			recovered.Result, cleanDone.Result)
	}
}

// TestJobsAdmissionShedsOverHTTP pins the 429 surface: a full queue sheds
// with Retry-After, and capacity opening readmits.
func TestJobsAdmissionShedsOverHTTP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "srv.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	putDataset(t, db, "demo", 40)
	release := make(chan struct{})
	gate := func(exec jobs.Executor) jobs.Executor {
		return func(ctx context.Context, j jobs.Job, progress func(core.TraceStep)) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return exec(ctx, j, progress)
		}
	}
	s, err := New(db,
		WithJobQueueLimit(1),
		func(s *Server) { s.jobExecWrap = gate },
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", jobSpecBody(map[string]float64{"LanguageTest": 1}, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d (%s)", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", jobSpecBody(map[string]float64{"LanguageTest": 1}, 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d (%s)", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	// A duplicate of the running spec still coalesces while the queue is
	// full: dedup is not admission.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", jobSpecBody(map[string]float64{"LanguageTest": 1}, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedup-under-pressure status %d (%s)", resp.StatusCode, body)
	}
}

// TestJobsListPaginationHTTP pins the satellite fix: GET /v1/jobs is
// paginated with a bounded default instead of serializing all history.
func TestJobsListPaginationHTTP(t *testing.T) {
	s, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "demo", 40)
	var ids []string
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", jobSpecBody(map[string]float64{"LanguageTest": 1}, uint64(i+1)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status %d (%s)", i, resp.StatusCode, body)
		}
		var j jobs.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitJobHTTP(t, ts.URL, id, jobs.StateDone)
	}
	if runs := s.Jobs().Runs(); runs != 5 {
		t.Fatalf("runs = %d, want 5", runs)
	}

	var page struct {
		Jobs   []jobs.Job `json:"jobs"`
		Total  int        `json:"total"`
		Offset int        `json:"offset"`
		Limit  int        `json:"limit"`
	}
	if status := getJSON(t, ts.URL+"/v1/jobs?limit=2", &page); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if page.Total != 5 || len(page.Jobs) != 2 || page.Limit != 2 {
		t.Fatalf("page = %d jobs of %d (limit %d)", len(page.Jobs), page.Total, page.Limit)
	}
	if page.Jobs[0].ID != ids[4] {
		t.Fatalf("newest-first violated: first is %s, want %s", page.Jobs[0].ID, ids[4])
	}
	if status := getJSON(t, ts.URL+"/v1/jobs?limit=2&offset=4", &page); status != http.StatusOK {
		t.Fatalf("offset list status %d", status)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != ids[0] {
		t.Fatalf("tail page = %+v", page.Jobs)
	}
	if status := getJSON(t, ts.URL+"/v1/jobs?state=done", &page); status != http.StatusOK || page.Total != 5 {
		t.Fatalf("state filter: status %d, total %d", status, page.Total)
	}
	// Defaults and validation.
	if status := getJSON(t, ts.URL+"/v1/jobs", &page); status != http.StatusOK || page.Limit != 50 {
		t.Fatalf("default limit = %d (status %d)", page.Limit, status)
	}
	// Negative and malformed paging must be a 400, never a panic, an
	// empty 200, or (clustered) a wasted fan-out — regression for the
	// scatter path validating after the fact.
	var errResp map[string]any
	for _, bad := range []string{
		"?limit=0", "?limit=-1", "?limit=-2", "?limit=x",
		"?offset=-1", "?offset=-999999", "?offset=1.5", "?limit=-1&offset=3",
		"?state=bogus",
	} {
		if status := getJSON(t, ts.URL+"/v1/jobs"+bad, &errResp); status != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs%s status %d, want 400", bad, status)
		}
	}
}

// TestJobsCancelAndErrorsHTTP covers DELETE semantics and submission
// error mapping.
func TestJobsCancelAndErrorsHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t)
	uploadDataset(t, ts, "demo", 40)

	// Unknown dataset and malformed specs are 4xx at submit, not failed jobs.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"dataset": "nope", "weights": map[string]float64{"LanguageTest": 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown dataset status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"dataset": "demo", "weights": map[string]float64{"LanguageTest": 1}, "typo": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"dataset": "demo", "weights": map[string]float64{"Bogus": 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad weight attribute status %d", resp.StatusCode)
	}

	// Cancel: unknown id 404; terminal job 409.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-424242", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: %v %d", err, resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", jobSpecBody(map[string]float64{"LanguageTest": 1}, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d (%s)", resp.StatusCode, body)
	}
	var j jobs.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	waitJobHTTP(t, ts.URL, j.ID, jobs.StateDone)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel terminal: %v %d", err, resp.StatusCode)
	}
}

// TestJobsEventsSSE follows a job over GET /v1/jobs/{id}/events: replayed
// lifecycle events, live engine progress, and stream termination at the
// terminal state.
func TestJobsEventsSSE(t *testing.T) {
	path := filepath.Join(t.TempDir(), "srv.db")
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	putDataset(t, db, "demo", 80)
	// Gate the run until the SSE client is attached, so live progress and
	// the terminal transition are observed on the wire, not just replayed.
	release := make(chan struct{})
	gate := func(exec jobs.Executor) jobs.Executor {
		return func(ctx context.Context, j jobs.Job, progress func(core.TraceStep)) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return exec(ctx, j, progress)
		}
	}
	s, err := New(db, func(s *Server) { s.jobExecWrap = gate })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", jobSpecBody(map[string]float64{"LanguageTest": 1, "ApprovalRate": 1}, 3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d (%s)", resp.StatusCode, body)
	}
	var j jobs.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}

	stream, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// The stream closes by itself at the terminal event; collect it all.
	// The gate opens once the first replayed event proves we are attached.
	var states []jobs.State
	var progress int
	released := false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if !released {
			close(release)
			released = true
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		switch ev.Type {
		case jobs.EventState:
			states = append(states, ev.State)
		case jobs.EventProgress:
			if ev.Step == nil {
				t.Fatalf("progress event without step: %q", line)
			}
			progress++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != jobs.StateDone {
		t.Fatalf("states over SSE = %v, want trailing done", states)
	}
	if progress == 0 {
		t.Fatal("no engine progress events on the stream")
	}
	// Unknown job: 404, not an empty stream.
	if resp, err := http.Get(ts.URL + "/v1/jobs/job-424242/events"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job: %v %d", err, resp.StatusCode)
	}
}
