// Package explain turns an audit into an explanation: how much does each
// protected attribute contribute to the unfairness of a scoring function?
// The paper's output is a partitioning; a platform owner's next question is
// "which attribute do I need to worry about?". Two complementary views are
// computed:
//
//   - Solo: the unfairness of splitting the population on that attribute
//     alone — how much disparity the attribute explains by itself.
//   - Marginal: the drop in full-split unfairness when the attribute is
//     removed from the audit — how much the attribute adds on top of all
//     the others (interaction-aware, leave-one-out).
package explain

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"fairrank/internal/core"
	"fairrank/internal/partition"
)

// AttributeImportance quantifies one protected attribute's contribution.
type AttributeImportance struct {
	// Attribute is the protected attribute's name.
	Attribute string
	// Solo is the unfairness of the partitioning that splits only on
	// this attribute.
	Solo float64
	// Marginal is allUnfairness - unfairness(all attributes except this
	// one); higher means the attribute explains disparity the others do
	// not. It can be slightly negative when the attribute only dilutes
	// partitions (adds noise).
	Marginal float64
}

// Attributes computes the importance of every protected attribute for the
// evaluator's (dataset, scoring function) pair, sorted by Solo descending
// (ties by name for determinism).
func Attributes(e *core.Evaluator) []AttributeImportance {
	out, _ := AttributesContext(context.Background(), e)
	return out
}

// AttributesContext is Attributes under a context: the per-attribute
// leave-one-out evaluations check ctx between attributes, so a cancelled
// explanation stops after the current attribute and returns ctx.Err().
func AttributesContext(ctx context.Context, e *core.Evaluator) ([]AttributeImportance, error) {
	ds := e.Dataset()
	schema := ds.Schema()
	all := e.Attrs()

	fullSplit := func(attrs []int) float64 {
		parts := []*partition.Partition{partition.Root(ds)}
		for _, a := range attrs {
			parts = partition.SplitAll(ds, parts, a)
		}
		return e.AvgPairwise(parts)
	}
	allUnfairness := fullSplit(all)

	out := make([]AttributeImportance, 0, len(all))
	for _, a := range all {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		without := make([]int, 0, len(all)-1)
		for _, x := range all {
			if x != a {
				without = append(without, x)
			}
		}
		out = append(out, AttributeImportance{
			Attribute: schema.Protected[a].Name,
			Solo:      fullSplit([]int{a}),
			Marginal:  allUnfairness - fullSplit(without),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Solo != out[j].Solo {
			return out[i].Solo > out[j].Solo
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out, nil
}

// Report renders the importances as an aligned text table.
func Report(w io.Writer, imps []AttributeImportance) error {
	if len(imps) == 0 {
		return fmt.Errorf("explain: nothing to report")
	}
	width := len("attribute")
	for _, im := range imps {
		if len(im.Attribute) > width {
			width = len(im.Attribute)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %8s  %9s\n", width, "attribute", "solo", "marginal")
	for _, im := range imps {
		fmt.Fprintf(&b, "%-*s  %8.4f  %9.4f\n", width, im.Attribute, im.Solo, im.Marginal)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
