package explain

import (
	"context"
	"strings"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

func evaluatorFor(t *testing.T, f scoring.Func, n int, seed uint64) *core.Evaluator {
	t.Helper()
	ds, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEvaluator(ds, f, core.Config{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func genderBiasedFunc(t *testing.T, seed uint64) scoring.Func {
	t.Helper()
	f, err := scoring.NewRuleFunc("f6", seed, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGenderDominatesOnF6(t *testing.T) {
	e := evaluatorFor(t, genderBiasedFunc(t, 1), 800, 1)
	imps := Attributes(e)
	if len(imps) != 6 {
		t.Fatalf("%d importances, want 6", len(imps))
	}
	if imps[0].Attribute != "Gender" {
		t.Fatalf("top attribute = %s, want Gender", imps[0].Attribute)
	}
	if imps[0].Solo < 0.75 {
		t.Fatalf("Gender solo = %v, want ~0.8", imps[0].Solo)
	}
	// Every other attribute explains almost nothing on its own.
	for _, im := range imps[1:] {
		if im.Solo > 0.1 {
			t.Errorf("%s solo = %v, want near 0", im.Attribute, im.Solo)
		}
	}
	// Gender's marginal contribution must also dominate.
	for _, im := range imps[1:] {
		if imps[0].Marginal <= im.Marginal {
			t.Errorf("Gender marginal %v not above %s's %v",
				imps[0].Marginal, im.Attribute, im.Marginal)
		}
	}
}

func TestTwoAttributeBias(t *testing.T) {
	// f7-style: gender × country. Both attributes should rank above the
	// unrelated ones on Solo.
	male := scoring.AttrIs("Gender", "Male")
	female := scoring.AttrIs("Gender", "Female")
	american := scoring.AttrIs("Country", "America")
	f7, err := scoring.NewRuleFunc("f7", 2, []scoring.Rule{
		{When: scoring.And(male, american), Lo: 0.8, Hi: 1.0},
		{When: scoring.And(female, american), Lo: 0.0, Hi: 0.2},
		{When: scoring.AttrIs("Country", "India"), Lo: 0.5, Hi: 0.7},
		{When: female, Lo: 0.8, Hi: 1.0},
		{When: male, Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := evaluatorFor(t, f7, 800, 2)
	imps := Attributes(e)
	rank := map[string]int{}
	bySolo := map[string]float64{}
	for i, im := range imps {
		rank[im.Attribute] = i
		bySolo[im.Attribute] = im.Solo
	}
	if rank["Country"] != 0 {
		t.Errorf("Country ranked %d on f7: %+v", rank["Country"], imps)
	}
	// f7 is gerrymandered: within each gender the high/low halves cancel,
	// so a gender-only audit sees (almost) nothing. This is precisely the
	// subgroup-fairness motivation — single-attribute importance cannot
	// expose it...
	if bySolo["Gender"] > 0.15 {
		t.Errorf("Gender solo = %v; f7 should hide from a gender-only audit", bySolo["Gender"])
	}
	// ...while the combination audit over Gender × Country sees the full
	// designed disparity.
	gender := e.Dataset().Schema().ProtectedIndex("Gender")
	country := e.Dataset().Schema().ProtectedIndex("Country")
	combined, err := core.Run(context.Background(), core.Spec{Evaluator: e, Attrs: []int{gender, country}})
	if err != nil {
		t.Fatal(err)
	}
	if combined.Unfairness < bySolo["Gender"]+0.2 {
		t.Errorf("combined audit %v did not expose the hidden interaction (gender solo %v)",
			combined.Unfairness, bySolo["Gender"])
	}
}

func TestUnbiasedFunctionFlatImportance(t *testing.T) {
	f, err := scoring.NewLinear("f1", map[string]float64{"LanguageTest": 0.5, "ApprovalRate": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	e := evaluatorFor(t, f, 800, 3)
	imps := Attributes(e)
	for _, im := range imps {
		if im.Solo > 0.12 {
			t.Errorf("%s solo = %v on random scores", im.Attribute, im.Solo)
		}
	}
}

func TestReport(t *testing.T) {
	e := evaluatorFor(t, genderBiasedFunc(t, 4), 300, 4)
	imps := Attributes(e)
	var b strings.Builder
	if err := Report(&b, imps); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"attribute", "solo", "marginal", "Gender"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "Gender") > strings.Index(out, "Country") {
		t.Error("Gender not listed first for f6")
	}
	if err := Report(&b, nil); err == nil {
		t.Error("empty importances accepted")
	}
}
