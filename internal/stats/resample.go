package stats

import (
	"errors"
	"sort"

	"fairrank/internal/rng"
)

// PermutationTest estimates the probability, under the null hypothesis that
// group labels are exchangeable, of observing a statistic at least as large
// as the observed one. statistic receives a labeling (len == len(values))
// assigning each value to a group in [0, groups) and returns the test
// statistic — in fairrank typically the average pairwise EMD between the
// groups' score histograms.
//
// It returns the one-sided p-value with the +1 small-sample correction
// (Phipson & Smyth), so the p-value is never exactly zero.
func PermutationTest(values []float64, labels []int, groups, rounds int, seed uint64,
	statistic func(values []float64, labels []int, groups int) float64) (pValue, observed float64, err error) {
	if len(values) == 0 || len(values) != len(labels) {
		return 0, 0, errors.New("stats: values and labels must have equal non-zero length")
	}
	if groups < 2 {
		return 0, 0, errors.New("stats: need at least two groups")
	}
	if rounds < 1 {
		return 0, 0, errors.New("stats: need at least one permutation round")
	}
	for _, l := range labels {
		if l < 0 || l >= groups {
			return 0, 0, errors.New("stats: label out of range")
		}
	}
	observed = statistic(values, labels, groups)
	r := rng.New(seed)
	perm := make([]int, len(labels))
	copy(perm, labels)
	extreme := 0
	for i := 0; i < rounds; i++ {
		r.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		if statistic(values, perm, groups) >= observed {
			extreme++
		}
	}
	pValue = (float64(extreme) + 1) / (float64(rounds) + 1)
	return pValue, observed, nil
}

// BenjaminiHochberg applies the Benjamini-Hochberg step-up procedure to a
// set of p-values, controlling the false discovery rate at level alpha. It
// returns, for each input p-value (in input order), whether the
// corresponding hypothesis is rejected. Use it when auditing many scoring
// functions or many groupings at once: testing 20 functions at p<0.05 finds
// one "unfair" function by luck alone.
func BenjaminiHochberg(pValues []float64, alpha float64) ([]bool, error) {
	if len(pValues) == 0 {
		return nil, ErrEmpty
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, errors.New("stats: alpha must be in (0,1)")
	}
	type indexed struct {
		p float64
		i int
	}
	sorted := make([]indexed, len(pValues))
	for i, p := range pValues {
		if p < 0 || p > 1 || p != p {
			return nil, errors.New("stats: p-values must be in [0,1]")
		}
		sorted[i] = indexed{p, i}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].p < sorted[b].p })
	m := float64(len(sorted))
	cutoff := -1
	for k := len(sorted) - 1; k >= 0; k-- {
		if sorted[k].p <= float64(k+1)/m*alpha {
			cutoff = k
			break
		}
	}
	out := make([]bool, len(pValues))
	for k := 0; k <= cutoff; k++ {
		out[sorted[k].i] = true
	}
	return out, nil
}

// Bootstrap resamples xs with replacement `rounds` times, applies statistic
// to each resample, and returns the (lo, hi) percentile confidence interval
// of the statistic at the given confidence level (e.g. 0.95).
func Bootstrap(xs []float64, rounds int, confidence float64, seed uint64,
	statistic func([]float64) float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if rounds < 2 {
		return 0, 0, errors.New("stats: need at least two bootstrap rounds")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("stats: confidence must be in (0,1)")
	}
	r := rng.New(seed)
	stats := make([]float64, rounds)
	sample := make([]float64, len(xs))
	for i := 0; i < rounds; i++ {
		for j := range sample {
			sample[j] = xs[r.Intn(len(xs))]
		}
		stats[i] = statistic(sample)
	}
	alpha := (1 - confidence) / 2
	lo, _ = Quantile(stats, alpha)
	hi, _ = Quantile(stats, 1-alpha)
	return lo, hi, nil
}
