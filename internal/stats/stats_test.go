package stats

import (
	"math"
	"testing"
	"testing/quick"

	"fairrank/internal/rng"
)

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v", err)
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 2, 2})
	if err != nil || v != 0 {
		t.Errorf("Variance const = %v, %v", v, err)
	}
	v, _ = Variance([]float64{1, 3})
	if v != 1 {
		t.Errorf("Variance{1,3} = %v, want 1", v)
	}
	sd, _ := StdDev([]float64{1, 3})
	if sd != 1 {
		t.Errorf("StdDev{1,3} = %v, want 1", sd)
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Errorf("StdDev(nil) err = %v", err)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v, %v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("q>1 accepted")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("empty sample accepted")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v", err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	c, err := Correlation(xs, ys)
	if err != nil || math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect corr = %v, %v", c, err)
	}
	neg := []float64{8, 6, 4, 2}
	c, _ = Correlation(xs, neg)
	if math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorr = %v", c)
	}
	c, _ = Correlation(xs, []float64{5, 5, 5, 5})
	if c != 0 {
		t.Errorf("zero-variance corr = %v", c)
	}
	if _, err := Correlation(xs, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestGini(t *testing.T) {
	if _, err := Gini(nil); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Gini([]float64{-1, 2}); err == nil {
		t.Error("negative values accepted")
	}
	g, err := Gini([]float64{5, 5, 5, 5})
	if err != nil || math.Abs(g) > 1e-12 {
		t.Errorf("equal Gini = %v, %v", g, err)
	}
	g, _ = Gini([]float64{0, 0, 0, 0})
	if g != 0 {
		t.Errorf("all-zero Gini = %v", g)
	}
	// One holder of everything among n: Gini = (n-1)/n.
	g, _ = Gini([]float64{0, 0, 0, 100})
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("winner-take-all Gini = %v, want 0.75", g)
	}
	// Known worked value: {1,2,3,4} → Gini = 0.25.
	g, _ = Gini([]float64{1, 2, 3, 4})
	if math.Abs(g-0.25) > 1e-12 {
		t.Errorf("Gini{1..4} = %v, want 0.25", g)
	}
	// Order invariance.
	a, _ := Gini([]float64{4, 1, 3, 2})
	if math.Abs(a-0.25) > 1e-12 {
		t.Errorf("shuffled Gini = %v", a)
	}
}

func TestCohensD(t *testing.T) {
	if _, err := CohensD(nil, []float64{1}); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	d, err := CohensD([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || d != 0 {
		t.Errorf("identical d = %v, %v", d, err)
	}
	// Means 0 vs 1, each sample has population SD 1 → d = -1.
	d, _ = CohensD([]float64{-1, 0, 1}, []float64{0, 1, 2})
	if math.Abs(d+1.2247) > 1e-3 { // pooled sd = sqrt(2/3)
		t.Errorf("d = %v", d)
	}
	// Sign follows mean difference.
	dPos, _ := CohensD([]float64{2, 3}, []float64{0, 1})
	if dPos <= 0 {
		t.Errorf("positive-gap d = %v", dPos)
	}
	// Zero variance, different means → ±Inf.
	d, _ = CohensD([]float64{1, 1}, []float64{2, 2})
	if !math.IsInf(d, -1) {
		t.Errorf("degenerate d = %v, want -Inf", d)
	}
	d, _ = CohensD([]float64{1, 1}, []float64{1, 1})
	if d != 0 {
		t.Errorf("degenerate equal d = %v", d)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		min, max, _ := MinMax(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v, err := Quantile(xs, qq)
			if err != nil || v < prev-1e-12 || v < min-1e-12 || v > max+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPermutationTestDetectsSeparation(t *testing.T) {
	// Group 0 values near 0, group 1 values near 1 — the gap statistic
	// should be highly significant.
	values := make([]float64, 40)
	labels := make([]int, 40)
	for i := range values {
		if i < 20 {
			values[i] = 0.1
		} else {
			values[i] = 0.9
			labels[i] = 1
		}
	}
	gap := func(vs []float64, ls []int, groups int) float64 {
		sums := make([]float64, groups)
		counts := make([]float64, groups)
		for i, v := range vs {
			sums[ls[i]] += v
			counts[ls[i]]++
		}
		return math.Abs(sums[0]/counts[0] - sums[1]/counts[1])
	}
	p, obs, err := PermutationTest(values, labels, 2, 500, 7, gap)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obs-0.8) > 1e-12 {
		t.Fatalf("observed = %v, want 0.8", obs)
	}
	if p > 0.01 {
		t.Fatalf("p = %v, want < 0.01", p)
	}
}

func TestPermutationTestNullUniformish(t *testing.T) {
	// Random labels on identical values: p should not be small.
	r := rng.New(3)
	values := make([]float64, 60)
	labels := make([]int, 60)
	for i := range values {
		values[i] = r.Float64()
		labels[i] = r.Intn(2)
	}
	gap := func(vs []float64, ls []int, groups int) float64 {
		sums := make([]float64, groups)
		counts := make([]float64, groups)
		for i, v := range vs {
			sums[ls[i]] += v
			counts[ls[i]]++
		}
		if counts[0] == 0 || counts[1] == 0 {
			return 0
		}
		return math.Abs(sums[0]/counts[0] - sums[1]/counts[1])
	}
	p, _, err := PermutationTest(values, labels, 2, 500, 11, gap)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.02 {
		t.Fatalf("null p = %v, suspiciously small", p)
	}
}

func TestPermutationTestValidation(t *testing.T) {
	stat := func(vs []float64, ls []int, g int) float64 { return 0 }
	if _, _, err := PermutationTest(nil, nil, 2, 10, 1, stat); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := PermutationTest([]float64{1}, []int{0}, 1, 10, 1, stat); err == nil {
		t.Error("groups<2 accepted")
	}
	if _, _, err := PermutationTest([]float64{1}, []int{0}, 2, 0, 1, stat); err == nil {
		t.Error("rounds<1 accepted")
	}
	if _, _, err := PermutationTest([]float64{1}, []int{5}, 2, 10, 1, stat); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	// Classic worked example: with alpha=0.05 and these p-values, the
	// first three are rejected (p3=0.03 <= 3/5*0.05 = 0.03).
	ps := []float64{0.01, 0.02, 0.03, 0.5, 0.9}
	rej, err := BenjaminiHochberg(ps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, false, false}
	for i := range want {
		if rej[i] != want[i] {
			t.Fatalf("rejections = %v, want %v", rej, want)
		}
	}
	// Order independence: shuffled input gives the same decisions per
	// hypothesis.
	shuffled := []float64{0.9, 0.03, 0.5, 0.01, 0.02}
	rej2, err := BenjaminiHochberg(shuffled, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want2 := []bool{false, true, false, true, true}
	for i := range want2 {
		if rej2[i] != want2[i] {
			t.Fatalf("shuffled rejections = %v, want %v", rej2, want2)
		}
	}
}

func TestBenjaminiHochbergStepUp(t *testing.T) {
	// The step-up property: a large p-value can be rejected if a later
	// rank satisfies the threshold.
	ps := []float64{0.04, 0.045, 0.049}
	rej, err := BenjaminiHochberg(ps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// k=3: 0.049 <= 3/3*0.05, so ALL are rejected despite 0.04 > 1/3*0.05.
	for i, r := range rej {
		if !r {
			t.Fatalf("hypothesis %d not rejected: %v", i, rej)
		}
	}
}

func TestBenjaminiHochbergNoneRejected(t *testing.T) {
	rej, err := BenjaminiHochberg([]float64{0.5, 0.8, 0.9}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rej {
		if r {
			t.Fatalf("rejected under null: %v", rej)
		}
	}
}

func TestBenjaminiHochbergValidation(t *testing.T) {
	if _, err := BenjaminiHochberg(nil, 0.05); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := BenjaminiHochberg([]float64{0.5}, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := BenjaminiHochberg([]float64{0.5}, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := BenjaminiHochberg([]float64{1.5}, 0.05); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := BenjaminiHochberg([]float64{math.NaN()}, 0.05); err == nil {
		t.Error("NaN p accepted")
	}
}

func TestBootstrapCoversTruth(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64() // true mean 0.5
	}
	mean := func(s []float64) float64 { m, _ := Mean(s); return m }
	lo, hi, err := Bootstrap(xs, 400, 0.95, 13, mean)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.5 || hi < 0.5 {
		t.Fatalf("95%% CI [%v,%v] misses 0.5", lo, hi)
	}
	if hi-lo > 0.1 {
		t.Fatalf("CI [%v,%v] too wide for n=500", lo, hi)
	}
}

func TestBootstrapValidation(t *testing.T) {
	mean := func(s []float64) float64 { m, _ := Mean(s); return m }
	if _, _, err := Bootstrap(nil, 10, 0.95, 1, mean); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, _, err := Bootstrap([]float64{1}, 1, 0.95, 1, mean); err == nil {
		t.Error("rounds<2 accepted")
	}
	if _, _, err := Bootstrap([]float64{1}, 10, 1.5, 1, mean); err == nil {
		t.Error("confidence>1 accepted")
	}
}
