// Package stats provides the descriptive statistics, resampling tests and
// confidence intervals fairrank uses to report and sanity-check unfairness
// measurements. The paper reports point estimates of average pairwise EMD;
// this package additionally offers permutation significance tests and
// bootstrap intervals so a platform auditor can tell sampling noise from
// real disparity — a gap the paper itself notes when discussing the random
// fluctuation of its simulated functions.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or an error when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest value in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	min, max, _ := MinMax(xs)
	q1, _ := Quantile(xs, 0.25)
	med, _ := Median(xs)
	q3, _ := Quantile(xs, 0.75)
	return Summary{
		N: len(xs), Mean: m, StdDev: sd,
		Min: min, Q25: q1, Median: med, Q75: q3, Max: max,
	}, nil
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for
// perfect equality, approaching 1 when one member holds everything. It is
// the standard summary of income inequality, used by the marketplace
// simulator to measure how assignment policies distribute earnings.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return 0, errors.New("stats: Gini needs non-negative values")
	}
	n := float64(len(sorted))
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0, nil
	}
	return (2*cum)/(n*total) - (n+1)/n, nil
}

// CohensD returns Cohen's d effect size between two samples: the
// difference of means in units of the pooled standard deviation. |d| ≈ 0.2
// is conventionally "small", 0.8 "large". Zero pooled variance yields 0
// for equal means and ±Inf otherwise.
func CohensD(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	ma, _ := Mean(a)
	mb, _ := Mean(b)
	va, _ := Variance(a)
	vb, _ := Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	pooled := (na*va + nb*vb) / (na + nb)
	if pooled == 0 {
		if ma == mb {
			return 0, nil
		}
		return math.Inf(sign(ma - mb)), nil
	}
	return (ma - mb) / math.Sqrt(pooled), nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Correlation returns the Pearson correlation coefficient of paired samples
// xs and ys, which must have equal, non-zero length. A zero-variance input
// yields 0 (no linear relationship detectable).
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, errors.New("stats: correlation needs equal-length non-empty samples")
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
