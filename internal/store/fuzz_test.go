package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay ensures that opening a store over arbitrary file contents
// never panics and always yields a usable (possibly empty) store: the
// crash-recovery path must be total.
func FuzzReplay(f *testing.F) {
	// Seed with a real log prefix.
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.db")
	db, err := Open(seedPath, Options{})
	if err != nil {
		f.Fatal(err)
	}
	db.Put("b", "k1", []byte("v1"))
	db.Put("b", "k2", []byte("v2"))
	db.Delete("b", "k1")
	db.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(seed[:len(seed)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.db")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(path, Options{})
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// The opened store must accept writes and survive reopen.
		if err := db.Put("fuzz", "k", []byte("v")); err != nil {
			t.Fatalf("post-recovery put failed: %v", err)
		}
		db.Close()
		db2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen after recovery failed: %v", err)
		}
		if _, ok := db2.Get("fuzz", "k"); !ok {
			t.Fatal("post-recovery write lost")
		}
		db2.Close()
	})
}
