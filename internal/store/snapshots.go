package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Snapshots manages columnar dataset snapshot files alongside a DB. The
// WAL stays small — it holds only JSON refs (name → file, size) in the
// bucketSnapshots bucket — while the column data lives in ordinary files
// under dir, sized for mmap rather than for the log's record limit. This
// replaces the old scheme of inlining whole binary datasets as WAL values,
// which both bloated replay and capped datasets at maxRecordSize.
//
// Crash safety is temp+rename: a snapshot file becomes visible under its
// final name only when fully written and fsynced, and the WAL ref is
// written after the rename. The only crash residue is an unreferenced
// file, which Sweep removes at boot.
const bucketSnapshots = "snapshots"

// SnapshotRef is the WAL-resident record describing one snapshot file.
type SnapshotRef struct {
	// Name is the logical dataset name.
	Name string `json:"name"`
	// File is the snapshot's filename within the manager's directory.
	File string `json:"file"`
	// Size is the file's byte length at registration.
	Size int64 `json:"size"`
}

// Snapshots is safe for concurrent use.
type Snapshots struct {
	db  *DB
	dir string
	mu  sync.Mutex
}

// NewSnapshots returns a manager storing snapshot files under dir
// (created if absent) and refs in db.
func NewSnapshots(db *DB, dir string) (*Snapshots, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: snapshot dir: %w", err)
	}
	return &Snapshots{db: db, dir: dir}, nil
}

// Dir returns the directory holding the snapshot files.
func (s *Snapshots) Dir() string { return s.dir }

// fileFor derives a filesystem-safe, collision-free filename for a logical
// name: unsafe runes are flattened to '_' and a checksum of the raw name
// keeps distinct names distinct after flattening.
func fileFor(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return fmt.Sprintf("%s-%08x.snap", b.String(), crc32.ChecksumIEEE([]byte(name)))
}

// Save streams a new snapshot for name through write into a temp file,
// fsyncs, renames it into place, and registers the ref. An existing
// snapshot under the same name is replaced; its old file is removed. The
// final path is returned.
func (s *Snapshots) Save(name string, write func(io.Writer) error) (string, error) {
	if name == "" {
		return "", fmt.Errorf("store: empty snapshot name")
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return "", fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: snapshot close: %w", err)
	}
	return s.adoptFile(name, tmp.Name())
}

// Adopt registers an already-written snapshot file (e.g. a finalized
// streaming-upload spill) under name, moving it into the manager's
// directory. The source file must be complete; callers are expected to
// have validated it (dataset.OpenSnapshot succeeds) first.
func (s *Snapshots) Adopt(name, srcPath string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("store: empty snapshot name")
	}
	return s.adoptFile(name, srcPath)
}

func (s *Snapshots) adoptFile(name, srcPath string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	file := fileFor(name)
	final := filepath.Join(s.dir, file)
	if err := rename(srcPath, final); err != nil {
		return "", fmt.Errorf("store: snapshot rename: %w", err)
	}
	st, err := os.Stat(final)
	if err != nil {
		return "", fmt.Errorf("store: snapshot stat: %w", err)
	}
	// Fsync the directory so the rename itself survives a crash.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	raw, err := json.Marshal(SnapshotRef{Name: name, File: file, Size: st.Size()})
	if err != nil {
		return "", err
	}
	if err := s.db.Put(bucketSnapshots, name, raw); err != nil {
		return "", err
	}
	return final, nil
}

// rename moves src to dst, falling back to copy+remove across filesystems
// (a spill directory on another mount).
func rename(src, dst string) error {
	if err := os.Rename(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(dst)
		return err
	}
	return os.Remove(src)
}

// Ref returns the registered ref for name.
func (s *Snapshots) Ref(name string) (SnapshotRef, bool) {
	raw, ok := s.db.Get(bucketSnapshots, name)
	if !ok {
		return SnapshotRef{}, false
	}
	var ref SnapshotRef
	if err := json.Unmarshal(raw, &ref); err != nil {
		return SnapshotRef{}, false
	}
	return ref, true
}

// Open returns a read handle on name's snapshot file plus its ref —
// the export side of cluster snapshot shipping (http.ServeContent wants
// an io.ReadSeeker). The caller closes the file. A concurrent replace of
// the same name leaves the handle valid: the old inode lives until the
// last fd drops.
func (s *Snapshots) Open(name string) (*os.File, SnapshotRef, error) {
	ref, ok := s.Ref(name)
	if !ok {
		return nil, SnapshotRef{}, fmt.Errorf("store: no snapshot %q", name)
	}
	f, err := os.Open(filepath.Join(s.dir, ref.File))
	if err != nil {
		return nil, SnapshotRef{}, err
	}
	return f, ref, nil
}

// Path returns the file path of name's snapshot.
func (s *Snapshots) Path(name string) (string, bool) {
	ref, ok := s.Ref(name)
	if !ok {
		return "", false
	}
	return filepath.Join(s.dir, ref.File), true
}

// Names returns the registered snapshot names, sorted.
func (s *Snapshots) Names() []string {
	return s.db.Keys(bucketSnapshots)
}

// Delete removes name's ref and file. The ref goes first: a crash between
// the two leaves an orphan file for Sweep, never a ref pointing nowhere.
func (s *Snapshots) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.Ref(name)
	if !ok {
		return nil
	}
	if err := s.db.Delete(bucketSnapshots, name); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, ref.File)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Sweep removes files in the snapshot directory that no ref points at:
// crash residue from interrupted Save/Adopt/Delete calls (including stale
// temp files). It returns the removed filenames. Meant for boot, after the
// DB has replayed.
func (s *Snapshots) Sweep() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	referenced := map[string]bool{}
	for _, name := range s.db.Keys(bucketSnapshots) {
		if ref, ok := s.Ref(name); ok {
			referenced[ref.File] = true
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fn := e.Name()
		orphanSnap := strings.HasSuffix(fn, ".snap") && !referenced[fn]
		staleTmp := strings.HasPrefix(fn, ".tmp-")
		if !orphanSnap && !staleTmp {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, fn)); err != nil {
			return removed, err
		}
		removed = append(removed, fn)
	}
	return removed, nil
}
