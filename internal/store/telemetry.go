package store

import "fairrank/internal/telemetry"

// Store metric names, exported on the registry passed via Options.Metrics.
const (
	MetricPuts            = "fairrank_store_puts_total"
	MetricDeletes         = "fairrank_store_deletes_total"
	MetricBytesWritten    = "fairrank_store_bytes_written_total"
	MetricCompactions     = "fairrank_store_compactions_total"
	MetricCompactionBytes = "fairrank_store_compaction_bytes_total"
	MetricTruncatedBytes  = "fairrank_store_truncated_bytes_total"
	MetricReplayRecords   = "fairrank_store_replay_records_total"
	MetricLiveRecords     = "fairrank_store_live_records"
	MetricDeadRecords     = "fairrank_store_dead_records"
)

// storeMetrics holds the DB's telemetry handles; the zero value (all nil)
// is the disabled state and every operation no-ops.
type storeMetrics struct {
	puts            *telemetry.Counter // successful Put records appended
	deletes         *telemetry.Counter // successful Delete records appended
	bytesWritten    *telemetry.Counter // log bytes appended (headers + bodies)
	compactions     *telemetry.Counter // completed Compact calls
	compactionBytes *telemetry.Counter // log bytes written by compaction rewrites
	truncatedBytes  *telemetry.Counter // torn-tail bytes dropped at Open
	replayRecords   *telemetry.Counter // records replayed at Open

	live *telemetry.Gauge // current live record count
	dead *telemetry.Gauge // current dead (overwritten/deleted) record count
}

// newStoreMetrics get-or-creates the store's series on reg; a nil registry
// yields the zero (disabled) storeMetrics.
func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	return storeMetrics{
		puts:            reg.Counter(MetricPuts),
		deletes:         reg.Counter(MetricDeletes),
		bytesWritten:    reg.Counter(MetricBytesWritten),
		compactions:     reg.Counter(MetricCompactions),
		compactionBytes: reg.Counter(MetricCompactionBytes),
		truncatedBytes:  reg.Counter(MetricTruncatedBytes),
		replayRecords:   reg.Counter(MetricReplayRecords),
		live:            reg.Gauge(MetricLiveRecords),
		dead:            reg.Gauge(MetricDeadRecords),
	}
}

// sync publishes the live/dead gauges; called with db.mu held.
func (sm *storeMetrics) sync(db *DB) {
	sm.live.Set(float64(db.live))
	sm.dead.Set(float64(db.dead))
}
