// Package store implements the platform's embedded persistence: an
// append-only, checksummed key-value log with buckets, crash-safe replay,
// and compaction. The marketplace server uses it to keep tasks, audit
// results and dataset references durable across restarts.
//
// Every record is length-prefixed and CRC32-protected; on open, the log is
// replayed and a torn or corrupt tail (the classic crash signature of an
// append-only store) is truncated away, keeping the longest valid prefix.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"fairrank/internal/telemetry"
)

const (
	opPut    byte = 1
	opDelete byte = 2
	// maxRecordSize bounds a single record; larger values must be stored
	// as dataset snapshots, not KV entries.
	maxRecordSize = 64 << 20
)

// Options configures a DB.
type Options struct {
	// Sync forces an fsync after every write. Slower, but a crash loses
	// at most the in-flight record rather than the OS write-back window.
	Sync bool
	// Metrics, when non-nil, receives the store's telemetry: put/delete
	// and byte counters, compaction and torn-tail truncation totals, and
	// live/dead record gauges. See the Metric* names in this package.
	Metrics *telemetry.Registry
}

// DB is a bucketed key-value store backed by an append-only log.
// It is safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	f       *os.File
	path    string
	opts    Options
	data    map[string]map[string][]byte // bucket → key → value
	dead    int                          // overwritten/deleted records, for compaction heuristics
	live    int
	closed  bool
	replayN int
	met     storeMetrics
}

// Open opens (or creates) the log at path and replays it. A corrupt tail
// is truncated; corruption in the middle of the log is an error.
func Open(path string, opts Options) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	db := &DB{
		f: f, path: path, opts: opts,
		data: map[string]map[string][]byte{},
		met:  newStoreMetrics(opts.Metrics),
	}
	validEnd, err := db.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	db.met.replayRecords.Add(int64(db.replayN))
	// Truncate a torn tail so future appends start on a record boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > validEnd {
		db.met.truncatedBytes.Add(fi.Size() - validEnd)
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	db.met.sync(db)
	return db, nil
}

// replay scans the log, applying records until EOF or a corrupt record,
// and returns the offset of the end of the last valid record.
func (db *DB) replay() (int64, error) {
	if _, err := db.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var offset int64
	var header [8]byte
	for {
		if _, err := io.ReadFull(db.f, header[:]); err != nil {
			// Clean EOF or torn length prefix: stop here.
			return offset, nil
		}
		recLen := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if recLen == 0 || recLen > maxRecordSize {
			return offset, nil // corrupt length: treat as torn tail
		}
		body := make([]byte, recLen)
		if _, err := io.ReadFull(db.f, body); err != nil {
			return offset, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return offset, nil // corrupt body
		}
		if err := db.apply(body); err != nil {
			return 0, fmt.Errorf("store: replay: %w", err)
		}
		offset += int64(8 + recLen)
		db.replayN++
	}
}

// apply interprets one record body and mutates the in-memory state.
func (db *DB) apply(body []byte) error {
	if len(body) < 1 {
		return errors.New("empty record")
	}
	op := body[0]
	rest := body[1:]
	bucket, rest, err := readString(rest)
	if err != nil {
		return err
	}
	key, rest, err := readString(rest)
	if err != nil {
		return err
	}
	switch op {
	case opPut:
		b := db.data[bucket]
		if b == nil {
			b = map[string][]byte{}
			db.data[bucket] = b
		}
		if _, existed := b[key]; existed {
			db.dead++
		} else {
			db.live++
		}
		val := make([]byte, len(rest))
		copy(val, rest)
		b[key] = val
	case opDelete:
		if b := db.data[bucket]; b != nil {
			if _, existed := b[key]; existed {
				delete(b, key)
				db.dead += 2 // the put and the delete record
				db.live--
			}
		}
	default:
		return fmt.Errorf("unknown op %d", op)
	}
	return nil
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("short string header")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, errors.New("short string body")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

func appendString(dst []byte, s string) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

// writeRecord appends one framed record, reporting how many log bytes it
// wrote so callers can attribute them (appends vs. compaction rewrites).
func (db *DB) writeRecord(op byte, bucket, key string, value []byte) (int, error) {
	if len(bucket) > math.MaxUint16 || len(key) > math.MaxUint16 {
		return 0, errors.New("store: bucket or key too long")
	}
	body := make([]byte, 0, 1+4+len(bucket)+len(key)+len(value))
	body = append(body, op)
	body = appendString(body, bucket)
	body = appendString(body, key)
	body = append(body, value...)
	if len(body) > maxRecordSize {
		return 0, fmt.Errorf("store: record of %d bytes exceeds limit", len(body))
	}
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(body))
	if _, err := db.f.Write(header[:]); err != nil {
		return 0, fmt.Errorf("store: append: %w", err)
	}
	if _, err := db.f.Write(body); err != nil {
		return 0, fmt.Errorf("store: append: %w", err)
	}
	if db.opts.Sync {
		if err := db.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: sync: %w", err)
		}
	}
	return 8 + len(body), nil
}

// Path returns the log file's path — the anchor for sibling storage such
// as the snapshot directory.
func (db *DB) Path() string { return db.path }

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("store: database is closed")

// Put stores value under (bucket, key), overwriting any previous value.
func (db *DB) Put(bucket, key string, value []byte) error {
	if bucket == "" || key == "" {
		return errors.New("store: empty bucket or key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	n, err := db.writeRecord(opPut, bucket, key, value)
	if err != nil {
		return err
	}
	b := db.data[bucket]
	if b == nil {
		b = map[string][]byte{}
		db.data[bucket] = b
	}
	if _, existed := b[key]; existed {
		db.dead++
	} else {
		db.live++
	}
	val := make([]byte, len(value))
	copy(val, value)
	b[key] = val
	db.met.puts.Inc()
	db.met.bytesWritten.Add(int64(n))
	db.met.sync(db)
	return nil
}

// Get returns the value under (bucket, key). The returned slice is a copy.
func (db *DB) Get(bucket, key string) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	b := db.data[bucket]
	if b == nil {
		return nil, false
	}
	v, ok := b[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Delete removes (bucket, key); deleting a missing key is a no-op.
func (db *DB) Delete(bucket, key string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	b := db.data[bucket]
	if b == nil {
		return nil
	}
	if _, ok := b[key]; !ok {
		return nil
	}
	n, err := db.writeRecord(opDelete, bucket, key, nil)
	if err != nil {
		return err
	}
	delete(b, key)
	db.dead += 2
	db.live--
	db.met.deletes.Inc()
	db.met.bytesWritten.Add(int64(n))
	db.met.sync(db)
	return nil
}

// Keys returns the sorted keys of a bucket.
func (db *DB) Keys(bucket string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	b := db.data[bucket]
	out := make([]string, 0, len(b))
	for k := range b {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys in a bucket.
func (db *DB) Len(bucket string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data[bucket])
}

// Stats reports live and dead (overwritten/deleted) record counts; a high
// dead count suggests compaction.
func (db *DB) Stats() (live, dead int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.live, db.dead
}

// Compact rewrites the log to contain only the live records, atomically
// replacing the old file via rename.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	tmpPath := db.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	old := db.f
	db.f = tmp
	ok := false
	defer func() {
		if !ok {
			db.f = old
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()

	buckets := make([]string, 0, len(db.data))
	for b := range db.data {
		buckets = append(buckets, b)
	}
	sort.Strings(buckets)
	var rewritten int64
	for _, bucket := range buckets {
		keys := make([]string, 0, len(db.data[bucket]))
		for k := range db.data[bucket] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n, err := db.writeRecord(opPut, bucket, k, db.data[bucket][k])
			if err != nil {
				return err
			}
			rewritten += int64(n)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, db.path); err != nil {
		return fmt.Errorf("store: compact rename: %w", err)
	}
	old.Close()
	ok = true
	db.dead = 0
	db.met.compactions.Inc()
	db.met.compactionBytes.Add(rewritten)
	db.met.sync(db)
	return nil
}

// Sync flushes buffered log writes to stable storage. With Options.Sync
// unset, writes only reach the OS write-back cache; graceful shutdown
// calls Sync so an orderly exit never loses acknowledged records even
// when per-write fsync was traded away for throughput.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// Close releases the underlying file. Further operations fail with
// ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	return db.f.Close()
}
