package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T) (*DB, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, path
}

func TestPutGetDelete(t *testing.T) {
	db, _ := openTemp(t)
	if err := db.Put("tasks", "t1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok := db.Get("tasks", "t1")
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := db.Get("tasks", "missing"); ok {
		t.Error("missing key found")
	}
	if _, ok := db.Get("nobucket", "t1"); ok {
		t.Error("missing bucket found")
	}
	if err := db.Put("tasks", "t1", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	v, _ = db.Get("tasks", "t1")
	if string(v) != "updated" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if err := db.Delete("tasks", "t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get("tasks", "t1"); ok {
		t.Error("deleted key still present")
	}
	if err := db.Delete("tasks", "t1"); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

func TestValidation(t *testing.T) {
	db, _ := openTemp(t)
	if err := db.Put("", "k", nil); err == nil {
		t.Error("empty bucket accepted")
	}
	if err := db.Put("b", "", nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db, _ := openTemp(t)
	db.Put("b", "k", []byte("abc"))
	v, _ := db.Get("b", "k")
	v[0] = 'X'
	v2, _ := db.Get("b", "k")
	if string(v2) != "abc" {
		t.Fatal("Get leaked internal storage")
	}
}

func TestKeysSortedAndLen(t *testing.T) {
	db, _ := openTemp(t)
	for _, k := range []string{"c", "a", "b"} {
		db.Put("b", k, []byte(k))
	}
	keys := db.Keys("b")
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	if db.Len("b") != 3 || db.Len("empty") != 0 {
		t.Fatal("Len wrong")
	}
}

func TestReplayAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put("b", fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete("b", "k050")
	db.Put("b", "k001", []byte("rewritten"))
	db.Close()

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len("b") != 99 {
		t.Fatalf("replayed %d keys, want 99", db2.Len("b"))
	}
	if _, ok := db2.Get("b", "k050"); ok {
		t.Error("deleted key resurrected")
	}
	v, _ := db2.Get("b", "k001")
	if string(v) != "rewritten" {
		t.Errorf("k001 = %q", v)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put("b", "good1", []byte("v1"))
	db.Put("b", "good2", []byte("v2"))
	db.Close()

	// Simulate a crash mid-append: chop off the last few bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db2.Get("b", "good1"); !ok {
		t.Error("prefix record lost")
	}
	if _, ok := db2.Get("b", "good2"); ok {
		t.Error("torn record survived")
	}
	// The store must be appendable again after truncation.
	if err := db2.Put("b", "after", []byte("x")); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if _, ok := db3.Get("b", "after"); !ok {
		t.Error("post-truncation append lost")
	}
}

func TestCorruptTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put("b", "keep", []byte("v"))
	db.Put("b", "drop", []byte("w"))
	db.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt last record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.Get("b", "keep"); !ok {
		t.Error("valid prefix record lost")
	}
	if _, ok := db2.Get("b", "drop"); ok {
		t.Error("corrupt record survived")
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 50; i++ {
		db.Put("b", "hot", payload) // 49 dead versions
	}
	db.Put("b", "cold", []byte("small"))
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, dead := db.Stats(); dead == 0 {
		t.Fatal("expected dead records")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size()/2 {
		t.Fatalf("compaction barely shrank: %d -> %d", before.Size(), after.Size())
	}
	v, ok := db.Get("b", "hot")
	if !ok || len(v) != 1000 {
		t.Fatal("live value lost by compaction")
	}
	// Post-compaction writes and reopen must work.
	db.Put("b", "new", []byte("n"))
	db.Close()
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, k := range []string{"hot", "cold", "new"} {
		if _, ok := db2.Get("b", k); !ok {
			t.Errorf("key %s lost after compaction+reopen", k)
		}
	}
}

func TestSync(t *testing.T) {
	db, _ := openTemp(t)
	if err := db.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Errorf("Sync on open db: %v", err)
	}
	db.Close()
	if err := db.Sync(); err != ErrClosed {
		t.Errorf("Sync after close err = %v, want ErrClosed", err)
	}
}

func TestClosedOperations(t *testing.T) {
	db, _ := openTemp(t)
	db.Close()
	if err := db.Put("b", "k", nil); err != ErrClosed {
		t.Errorf("Put err = %v", err)
	}
	if err := db.Delete("b", "k"); err != ErrClosed {
		t.Errorf("Delete err = %v", err)
	}
	if err := db.Compact(); err != ErrClosed {
		t.Errorf("Compact err = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db, _ := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := db.Put("b", key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := db.Get("b", key); !ok || string(v) != key {
					t.Errorf("read-your-write failed for %s", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if db.Len("b") != 400 {
		t.Fatalf("%d keys, want 400", db.Len("b"))
	}
}

func TestSyncOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.db")
	db, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Get("b", "k"); !ok || string(v) != "v" {
		t.Fatal("synced put unreadable")
	}
}

func TestDatasetSnapshotInStore(t *testing.T) {
	// Large values (binary dataset snapshots) round-trip through the KV
	// layer, integrating the two persistence pieces.
	db, _ := openTemp(t)
	big := bytes.Repeat([]byte{0xAB, 0xCD}, 1<<16)
	if err := db.Put("datasets", "snap", big); err != nil {
		t.Fatal(err)
	}
	v, ok := db.Get("datasets", "snap")
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("large value corrupted")
	}
}
