package store

import (
	"os"
	"path/filepath"
	"testing"

	"fairrank/internal/telemetry"
)

// TestStoreMetrics pins the store's telemetry surface across the write,
// delete, compaction, replay, and torn-tail truncation paths.
func TestStoreMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	reg := telemetry.NewRegistry()
	db, err := Open(path, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put("tasks", "a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("tasks", "b", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("tasks", "a", []byte("one-rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("tasks", "b"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricPuts]; got != 3 {
		t.Errorf("%s = %d, want 3", MetricPuts, got)
	}
	if got := snap.Counters[MetricDeletes]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricDeletes, got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters[MetricBytesWritten]; got != fi.Size() {
		t.Errorf("%s = %d, want log size %d", MetricBytesWritten, got, fi.Size())
	}
	live, dead := db.Stats()
	if got := snap.Gauges[MetricLiveRecords]; got != float64(live) {
		t.Errorf("live gauge = %v, want %d", got, live)
	}
	if got := snap.Gauges[MetricDeadRecords]; got != float64(dead) {
		t.Errorf("dead gauge = %v, want %d", got, dead)
	}

	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters[MetricCompactions]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricCompactions, got)
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters[MetricCompactionBytes]; got != fi.Size() {
		t.Errorf("%s = %d, want compacted size %d", MetricCompactionBytes, got, fi.Size())
	}
	if got := snap.Gauges[MetricDeadRecords]; got != 0 {
		t.Errorf("dead gauge after compaction = %v, want 0", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a torn tail: replay must count the surviving record and
	// the truncation counter the dropped bytes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const torn = 3
	if err := os.WriteFile(path, append(raw, make([]byte, torn)...), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.NewRegistry()
	db2, err := Open(path, Options{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	snap = reg2.Snapshot()
	if got := snap.Counters[MetricReplayRecords]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricReplayRecords, got)
	}
	if got := snap.Counters[MetricTruncatedBytes]; got != torn {
		t.Errorf("%s = %d, want %d", MetricTruncatedBytes, got, torn)
	}
	if got := snap.Gauges[MetricLiveRecords]; got != 1 {
		t.Errorf("live gauge after replay = %v, want 1", got)
	}
}

// TestStoreMetricsDisabled pins that a store without a registry works
// unchanged — the zero storeMetrics must be inert.
func TestStoreMetricsDisabled(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "kv.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
}
