package store

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestSnapshots(t *testing.T) (*DB, *Snapshots, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "db.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	snaps, err := NewSnapshots(db, filepath.Join(dir, "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	return db, snaps, dir
}

func TestSnapshotsSaveAndPath(t *testing.T) {
	_, snaps, _ := openTestSnapshots(t)
	payload := []byte("columnar bytes")
	path, err := snaps.Save("workers v1", func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("saved %q, want %q", got, payload)
	}
	p, ok := snaps.Path("workers v1")
	if !ok || p != path {
		t.Fatalf("Path = %q, %v; want %q, true", p, ok, path)
	}
	ref, ok := snaps.Ref("workers v1")
	if !ok || ref.Size != int64(len(payload)) {
		t.Fatalf("Ref = %+v, %v", ref, ok)
	}
	if names := snaps.Names(); len(names) != 1 || names[0] != "workers v1" {
		t.Fatalf("Names = %v", names)
	}
	// No stray temp files remain.
	entries, _ := os.ReadDir(snaps.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestSnapshotsSaveReplaces(t *testing.T) {
	_, snaps, _ := openTestSnapshots(t)
	write := func(s string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
	}
	if _, err := snaps.Save("d", write("one")); err != nil {
		t.Fatal(err)
	}
	path, err := snaps.Save("d", write("two"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "two" {
		t.Fatalf("after replace: %q", got)
	}
	if names := snaps.Names(); len(names) != 1 {
		t.Fatalf("Names = %v", names)
	}
}

func TestSnapshotsFailedWriteLeavesNothing(t *testing.T) {
	_, snaps, _ := openTestSnapshots(t)
	wantErr := io.ErrUnexpectedEOF
	if _, err := snaps.Save("broken", func(w io.Writer) error { return wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if _, ok := snaps.Path("broken"); ok {
		t.Fatal("failed save registered a ref")
	}
	entries, _ := os.ReadDir(snaps.Dir())
	if len(entries) != 0 {
		t.Fatalf("failed save left files: %v", entries)
	}
}

func TestSnapshotsAdopt(t *testing.T) {
	_, snaps, dir := openTestSnapshots(t)
	spill := filepath.Join(dir, "upload.spill")
	if err := os.WriteFile(spill, []byte("spilled"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, err := snaps.Adopt("uploaded", spill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Fatal("adopt left the source file behind")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "spilled" {
		t.Fatalf("adopted content %q", got)
	}
}

func TestSnapshotsDelete(t *testing.T) {
	_, snaps, _ := openTestSnapshots(t)
	path, err := snaps.Save("d", func(w io.Writer) error { _, err := w.Write([]byte("x")); return err })
	if err != nil {
		t.Fatal(err)
	}
	if err := snaps.Delete("d"); err != nil {
		t.Fatal(err)
	}
	if _, ok := snaps.Path("d"); ok {
		t.Fatal("ref survived delete")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("file survived delete")
	}
	if err := snaps.Delete("d"); err != nil {
		t.Fatal("double delete should be a no-op:", err)
	}
}

func TestSnapshotsSweep(t *testing.T) {
	_, snaps, _ := openTestSnapshots(t)
	kept, err := snaps.Save("keep", func(w io.Writer) error { _, err := w.Write([]byte("k")); return err })
	if err != nil {
		t.Fatal(err)
	}
	// Crash residue: an unreferenced snapshot and a stale temp file.
	orphan := filepath.Join(snaps.Dir(), "orphan-deadbeef.snap")
	stale := filepath.Join(snaps.Dir(), ".tmp-123")
	os.WriteFile(orphan, []byte("o"), 0o644)
	os.WriteFile(stale, []byte("t"), 0o644)
	removed, err := snaps.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want 2 entries", removed)
	}
	if _, err := os.Stat(kept); err != nil {
		t.Fatal("sweep removed a referenced snapshot")
	}
	for _, p := range []string{orphan, stale} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("sweep left %s", p)
		}
	}
}

func TestSnapshotsPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.log")
	db, err := Open(dbPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := NewSnapshots(db, filepath.Join(dir, "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	path, err := snaps.Save("durable", func(w io.Writer) error { _, err := w.Write([]byte("d")); return err })
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dbPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	snaps2, err := NewSnapshots(db2, filepath.Join(dir, "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := snaps2.Path("durable")
	if !ok || p != path {
		t.Fatalf("after reopen: Path = %q, %v; want %q", p, ok, path)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotsDistinctNamesDistinctFiles(t *testing.T) {
	// Names that flatten to the same safe form must not collide.
	if fileFor("a b") == fileFor("a/b") {
		t.Fatal("fileFor collision between distinct names")
	}
}
