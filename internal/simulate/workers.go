// Package simulate generates the paper's evaluation workloads: the
// simulated crowdsourcing-platform worker populations (500 and 7300 active
// workers, the latter being the estimated number of concurrently active
// Amazon Mechanical Turk workers), the five random task-qualification
// functions f1–f5, and the four carefully constructed "unfair by design"
// functions f6–f9 of the qualitative study. It also provides the experiment
// runner that regenerates Tables 1–3.
package simulate

import (
	"fmt"

	"fairrank/internal/dataset"
	"fairrank/internal/rng"
)

// Paper population sizes.
const (
	// SmallPopulation is the paper's first worker-set size.
	SmallPopulation = 500
	// LargePopulation is the paper's second worker-set size, "the
	// estimated number of Amazon Mechanical Turk workers who are active
	// at any time" (Stewart et al., 2015).
	LargePopulation = 7300
)

// PaperSchema returns the exact attribute space of the paper's simulation:
// six protected attributes — Gender {Male, Female}, Country {America,
// India, Other}, Year of Birth [1950, 2009], Language {English, Indian,
// Other}, Ethnicity {White, African-American, Indian, Other}, Years of
// Experience [0, 30] — and two observed attributes, LanguageTest [25,100]
// and ApprovalRate [25,100]. Numeric protected attributes are bucketized
// into 5 ranges ("each attribute had only a maximum of 5 values").
func PaperSchema() *dataset.Schema {
	return &dataset.Schema{
		Protected: []dataset.Attribute{
			dataset.Cat("Gender", "Male", "Female"),
			dataset.Cat("Country", "America", "India", "Other"),
			dataset.Num("YearOfBirth", 1950, 2010, 5),
			dataset.Cat("Language", "English", "Indian", "Other"),
			dataset.Cat("Ethnicity", "White", "African-American", "Indian", "Other"),
			dataset.Num("YearsExperience", 0, 31, 5),
		},
		Observed: []dataset.Attribute{
			dataset.Num("LanguageTest", 25, 100, 1),
			dataset.Num("ApprovalRate", 25, 100, 1),
		},
	}
}

// PaperWorkers generates n workers with attribute values "populated
// randomly so as to avoid injecting any bias in the data ourselves", as in
// the paper's setting. The same (n, seed) always yields the same dataset.
func PaperWorkers(n int, seed uint64) (*dataset.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simulate: population size %d must be positive", n)
	}
	r := rng.New(seed)
	b := dataset.NewBuilder(PaperSchema())
	genders := []string{"Male", "Female"}
	countries := []string{"America", "India", "Other"}
	languages := []string{"English", "Indian", "Other"}
	ethnicities := []string{"White", "African-American", "Indian", "Other"}
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("w%05d", i),
			map[string]any{
				"Gender":          rng.Pick(r, genders),
				"Country":         rng.Pick(r, countries),
				"YearOfBirth":     r.IntRange(1950, 2009),
				"Language":        rng.Pick(r, languages),
				"Ethnicity":       rng.Pick(r, ethnicities),
				"YearsExperience": r.IntRange(0, 30),
			},
			map[string]any{
				"LanguageTest": r.FloatRange(25, 100),
				"ApprovalRate": r.FloatRange(25, 100),
			})
	}
	return b.Build()
}
