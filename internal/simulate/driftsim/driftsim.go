// Package driftsim runs the population-shift drift scenario: a serving
// loop where a marketplace ranks a fixed worker pool step after step, a
// fair re-ranker mitigates each served page, and a continuous-audit
// monitor (internal/drift) observes the served pages as an event stream.
// Partway through, the scenario injects drift — one group's scores decay
// progressively, the shape the paper's static audits cannot see — and
// the question becomes operational: how many steps until the monitor's
// window-vs-baseline alarm fires, and what does the windowed unfairness
// trajectory look like under each mitigation?
//
// The headline comparison is proxy-free "randomized" (never reads the
// protected column) against group-aware "det-greedy": the scenario
// quantifies what attribute-blindness costs — or doesn't — in detection
// latency and steady-state windowed unfairness.
//
// The monitor is behind the MonitorSink interface so the same scenario
// drives an in-process drift.Watch (this package) or a fairrankd server
// over HTTP (the server's e2e tests): the scenario is the load
// generator, the sink is wherever the audit lives.
package driftsim

import (
	"fmt"
	"math"
	"sort"

	"fairrank/internal/dataset"
	"fairrank/internal/drift"
	"fairrank/internal/marketplace"
	"fairrank/internal/rerank"
	"fairrank/internal/rng"
	"fairrank/internal/simulate"
)

// Spec configures one drift scenario.
type Spec struct {
	// Population is the candidate pool size (default 500, the paper's
	// small population).
	Population int
	// Seed drives the base scores, the jitter, and nothing else — the
	// same spec always reproduces the same scenario.
	Seed uint64
	// Steps is the number of serving steps.
	Steps int
	// ShiftAt is the step at which the minority's scores begin to decay;
	// the baseline is sealed on the step before.
	ShiftAt int
	// Shift is the total score depression at full ramp, in score units
	// (scores live in [0, 1]).
	Shift float64
	// Ramp is the number of steps over which the shift reaches full
	// strength (0 = immediate).
	Ramp int
	// K is the page size served each step.
	K int
	// Attribute is the protected attribute that drifts and is audited.
	Attribute string
	// Minority is the Attribute label whose scores decay.
	Minority string
	// Mitigations are the re-ranker names RunDrift compares.
	Mitigations []string
	// Spread is the "randomized" re-ranker's jitter width (see
	// rerank.Params.Spread); 0 selects rerank.DefaultSpread. At the
	// default the jitter is narrower than the injected shift, so the
	// drifted group falls out of the served pages entirely — a
	// page-observing monitor then reads unfairness 0 (only one group
	// left in its window) and the drift goes undetected. Widening the
	// spread keeps the group visible and detectable; the scenario tests
	// pin both regimes.
	Spread float64
	// Monitor is the audit spec each mitigation's sink is built from; its
	// Attributes must be exactly {Attribute}. Zero-value selects
	// DefaultMonitorSpec.
	Monitor drift.Spec
}

// DefaultMonitorSpec is the scenario's stock audit: a window spanning
// four pages, and the three standard rules — an absolute backstop, a
// slope detector, and the window-vs-baseline drift detector that defines
// detection latency. Warmup covers the window so re-seeding after a
// restart stays silent.
func DefaultMonitorSpec(id, attribute string, k int) drift.Spec {
	window := 4 * k
	return drift.Spec{
		ID:         id,
		Dataset:    "driftsim",
		Attributes: []string{attribute},
		Weights:    map[string]float64{"ApprovalRate": 1},
		Window:     window,
		Rules: []drift.RuleSpec{
			{Name: "hard", Type: drift.RuleThreshold, Threshold: 0.5, Hysteresis: 0.2},
			{Name: "slope", Type: drift.RuleDelta, Delta: 0.3, Lookback: window, Hysteresis: 0.2},
			{Name: "drift", Type: drift.RuleBaseline, Delta: 0.1, Hysteresis: 0.25, Cooldown: window, Warmup: window},
		},
	}
}

func (s Spec) withDefaults() Spec {
	if s.Population == 0 {
		s.Population = simulate.SmallPopulation
	}
	if s.Steps == 0 {
		s.Steps = 60
	}
	if s.ShiftAt == 0 {
		s.ShiftAt = s.Steps / 3
	}
	if s.Shift == 0 {
		s.Shift = 0.5
	}
	if s.K == 0 {
		s.K = 20
	}
	if s.Attribute == "" {
		s.Attribute = "Gender"
	}
	if s.Minority == "" {
		s.Minority = "Female"
	}
	if len(s.Mitigations) == 0 {
		s.Mitigations = []string{"randomized", "det-greedy"}
	}
	if s.Monitor.ID == "" {
		s.Monitor = DefaultMonitorSpec("drift-scenario", s.Attribute, s.K)
	}
	return s
}

func (s Spec) validate() error {
	if s.Steps < 2 || s.K < 1 || s.Population < s.K {
		return fmt.Errorf("driftsim: need steps >= 2, k >= 1 and population >= k (have %d/%d/%d)",
			s.Steps, s.K, s.Population)
	}
	if s.ShiftAt < 1 || s.ShiftAt >= s.Steps {
		return fmt.Errorf("driftsim: shift step %d outside (0, %d)", s.ShiftAt, s.Steps)
	}
	if !(s.Shift > 0) || s.Shift > 1 || s.Ramp < 0 {
		return fmt.Errorf("driftsim: bad shift %v / ramp %d", s.Shift, s.Ramp)
	}
	if len(s.Monitor.Attributes) != 1 || s.Monitor.Attributes[0] != s.Attribute {
		return fmt.Errorf("driftsim: monitor must audit exactly %q", s.Attribute)
	}
	return nil
}

// MonitorSink is where a scenario's served pages are audited. The local
// implementation wraps a drift.Watch; the server e2e suite implements it
// over POST /v1/monitors/{id}/events.
type MonitorSink interface {
	// Send feeds one batch of events, returning any alarm transitions.
	Send(events []drift.Event) ([]drift.AlarmEvent, error)
	// SealBaseline freezes the current estimate as every
	// window-vs-baseline rule's comparison level.
	SealBaseline() error
	// Unfairness reads the windowed unfairness estimate.
	Unfairness() (float64, error)
}

// WatchSink is the in-process MonitorSink: a drift.Watch fed directly.
type WatchSink struct{ Watch *drift.Watch }

// NewWatchSink builds a watch over the scenario schema from spec.
func NewWatchSink(schema *dataset.Schema, spec drift.Spec) (*WatchSink, error) {
	w, err := drift.NewWatch(schema, spec)
	if err != nil {
		return nil, err
	}
	return &WatchSink{Watch: w}, nil
}

func (s *WatchSink) Send(events []drift.Event) ([]drift.AlarmEvent, error) {
	var out []drift.AlarmEvent
	for _, ev := range events {
		alarms, err := s.Watch.Apply(ev)
		if err != nil {
			return nil, err
		}
		out = append(out, alarms...)
	}
	return out, nil
}

func (s *WatchSink) SealBaseline() error {
	s.Watch.SealBaseline()
	return nil
}

func (s *WatchSink) Unfairness() (float64, error) {
	return s.Watch.Unfairness(drift.SourceWindow)
}

// Run is one mitigation's trip through the scenario.
type Run struct {
	Mitigation string
	// Trajectory is the windowed unfairness after each step.
	Trajectory []float64
	// Alarms are every transition the monitor emitted, in order.
	Alarms []drift.AlarmEvent
	// DetectionStep is the step at which the first window-vs-baseline
	// "fired" transition arrived, or -1 if the drift went undetected.
	// DetectionLatency is that step minus ShiftAt.
	DetectionStep    int
	DetectionLatency int
	// Baseline is the sealed pre-drift estimate; Final the last step's.
	Baseline float64
	Final    float64
}

// Result compares every requested mitigation over the same drift.
type Result struct {
	Spec Spec
	Runs []Run
}

// RunDrift runs the scenario once per configured mitigation, each
// against its own in-process watch built from spec.Monitor.
func RunDrift(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	res := &Result{Spec: spec}
	for _, name := range spec.Mitigations {
		sink, err := NewWatchSink(simulate.PaperSchema(), spec.Monitor)
		if err != nil {
			return nil, err
		}
		run, err := RunOne(spec, name, sink)
		if err != nil {
			return nil, fmt.Errorf("driftsim: %s: %w", name, err)
		}
		res.Runs = append(res.Runs, *run)
	}
	return res, nil
}

// RunOne drives the scenario for a single mitigation against the given
// sink. The sink's monitor must be fresh (unsealed, no events).
func RunOne(spec Spec, mitigation string, sink MonitorSink) (*Run, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	fn, err := rerank.Lookup(mitigation)
	if err != nil {
		return nil, err
	}
	ds, err := simulate.PaperWorkers(spec.Population, spec.Seed)
	if err != nil {
		return nil, err
	}
	attr := ds.Schema().ProtectedIndex(spec.Attribute)
	if attr < 0 {
		return nil, fmt.Errorf("driftsim: %q is not a protected attribute", spec.Attribute)
	}
	// Base scores are attribute-independent — the pre-drift world is fair
	// by construction, so the sealed baseline is a genuinely fair level.
	r := rng.New(spec.Seed)
	base := make([]float64, ds.N())
	for i := range base {
		base[i] = r.Float64()
	}
	minority := make([]bool, ds.N())
	for i := range minority {
		minority[i] = ds.ProtectedLabel(attr, i) == spec.Minority
	}

	run := &Run{Mitigation: mitigation, DetectionStep: -1, DetectionLatency: -1}
	scores := make([]float64, ds.N())
	for step := 0; step < spec.Steps; step++ {
		// Progressive minority shift from ShiftAt over Ramp steps.
		depress := 0.0
		if step >= spec.ShiftAt {
			progress := 1.0
			if spec.Ramp > 0 {
				progress = math.Min(1, float64(step-spec.ShiftAt+1)/float64(spec.Ramp))
			}
			depress = spec.Shift * progress
		}
		for i := range scores {
			scores[i] = base[i]
			if minority[i] {
				scores[i] = math.Max(0, base[i]-depress)
			}
		}
		pool := rankPool(scores)
		page, err := fn(ds, attr, pool, spec.K, rerank.Params{
			Seed:   spec.Seed + uint64(step)*0x9e3779b97f4a7c15,
			Spread: spec.Spread,
		})
		if err != nil {
			return nil, err
		}
		// The served page becomes this step's observed cohort: synthetic
		// ids keyed by (step, rank) so the stream never collides, carrying
		// the served worker's protected value and served score.
		events := make([]drift.Event, len(page))
		for pos, rw := range page {
			events[pos] = drift.Event{
				Type:      drift.EventJoin,
				Worker:    fmt.Sprintf("s%d-r%d", step, pos+1),
				Protected: map[string]any{spec.Attribute: ds.ProtectedLabel(attr, rw.Worker)},
				Score:     math.Min(1, math.Max(0, rw.Score)),
			}
		}
		alarms, err := sink.Send(events)
		if err != nil {
			return nil, err
		}
		run.Alarms = append(run.Alarms, alarms...)
		if run.DetectionStep < 0 {
			for _, a := range alarms {
				if a.RuleType == drift.RuleBaseline && a.Type == drift.AlarmFired {
					run.DetectionStep = step
					run.DetectionLatency = step - spec.ShiftAt
					break
				}
			}
		}
		u, err := sink.Unfairness()
		if err != nil {
			return nil, err
		}
		run.Trajectory = append(run.Trajectory, u)
		// Seal on the last pre-drift step, once the window is fully warm.
		if step == spec.ShiftAt-1 {
			if err := sink.SealBaseline(); err != nil {
				return nil, err
			}
			run.Baseline = u
		}
	}
	run.Final = run.Trajectory[len(run.Trajectory)-1]
	return run, nil
}

// rankPool turns a score vector into the full ranked candidate pool
// (score desc, worker asc — the marketplace's canonical order).
func rankPool(scores []float64) []marketplace.RankedWorker {
	pool := make([]marketplace.RankedWorker, len(scores))
	for i, s := range scores {
		pool[i] = marketplace.RankedWorker{Worker: i, Score: s}
	}
	sort.SliceStable(pool, func(a, b int) bool {
		if pool[a].Score != pool[b].Score {
			return pool[a].Score > pool[b].Score
		}
		return pool[a].Worker < pool[b].Worker
	})
	for i := range pool {
		pool[i].Rank = i + 1
	}
	return pool
}
