package driftsim

import (
	"testing"

	"fairrank/internal/drift"
)

// mildSpec is the detectable-under-both regime: the shift (0.25) is
// narrower than the randomized jitter's reach, so the drifted group
// keeps surfacing in served pages and both mitigations' monitors see
// the divergence.
func mildSpec() Spec {
	return Spec{Seed: 1, Spread: 0.5, Shift: 0.25}
}

func runByName(t *testing.T, res *Result, name string) Run {
	t.Helper()
	for _, r := range res.Runs {
		if r.Mitigation == name {
			return r
		}
	}
	t.Fatalf("no run for %q", name)
	return Run{}
}

func TestDriftScenarioDetectsUnderBothMitigations(t *testing.T) {
	res, err := RunDrift(mildSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(res.Runs))
	}
	for _, run := range res.Runs {
		if len(run.Trajectory) != res.Spec.Steps {
			t.Fatalf("%s: trajectory has %d steps, want %d", run.Mitigation, len(run.Trajectory), res.Spec.Steps)
		}
		if run.DetectionStep < res.Spec.ShiftAt {
			t.Fatalf("%s: detected at step %d, before the shift at %d", run.Mitigation, run.DetectionStep, res.Spec.ShiftAt)
		}
		if run.DetectionLatency != run.DetectionStep-res.Spec.ShiftAt {
			t.Fatalf("%s: latency %d inconsistent with detection step %d", run.Mitigation, run.DetectionLatency, run.DetectionStep)
		}
		// The drift must actually move the estimate: post-shift peak well
		// above the sealed pre-drift baseline.
		peak := 0.0
		for _, u := range run.Trajectory[res.Spec.ShiftAt:] {
			if u > peak {
				peak = u
			}
		}
		if peak < run.Baseline+0.05 {
			t.Fatalf("%s: post-shift peak %v barely above baseline %v", run.Mitigation, peak, run.Baseline)
		}
	}
	// det-greedy's group-aware pages hold the drifted group at a steady
	// depressed level: the baseline alarm fires exactly once and stays
	// latched (hysteresis keeps the plateau from flapping).
	det := runByName(t, res, "det-greedy")
	fired := 0
	for _, a := range det.Alarms {
		if a.RuleType == drift.RuleBaseline {
			if a.Type != drift.AlarmFired {
				t.Fatalf("det-greedy baseline alarm %s — plateau should stay latched", a.Type)
			}
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("det-greedy baseline alarm fired %d times, want exactly 1", fired)
	}
}

// TestRandomizedShutOutRegime pins the scenario's sharpest finding: when
// the shift exceeds the randomized jitter's reach, the drifted group
// falls out of every served page — the page-observing monitor reads
// unfairness 0 (one group left in its window) and the drift is
// undetectable, while the group-aware mitigation both serves the group
// and exposes the drift.
func TestRandomizedShutOutRegime(t *testing.T) {
	res, err := RunDrift(Spec{Seed: 1}) // default shift 0.5 > default spread's reach
	if err != nil {
		t.Fatal(err)
	}
	rand := runByName(t, res, "randomized")
	if rand.DetectionStep != -1 || rand.DetectionLatency != -1 {
		t.Fatalf("randomized detected shut-out drift at step %d", rand.DetectionStep)
	}
	if rand.Final != 0 {
		t.Fatalf("randomized final unfairness %v, want 0 (group shut out of the window)", rand.Final)
	}
	det := runByName(t, res, "det-greedy")
	if det.DetectionStep < 0 {
		t.Fatal("det-greedy failed to detect the shift")
	}
	if det.Final <= rand.Final {
		t.Fatalf("det-greedy final %v not above randomized %v — the comparison is inverted", det.Final, rand.Final)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := RunDrift(mildSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDrift(mildSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if ra.DetectionStep != rb.DetectionStep || len(ra.Alarms) != len(rb.Alarms) {
			t.Fatalf("%s: runs diverged (%d/%d alarms, detect %d/%d)",
				ra.Mitigation, len(ra.Alarms), len(rb.Alarms), ra.DetectionStep, rb.DetectionStep)
		}
		for j := range ra.Trajectory {
			if ra.Trajectory[j] != rb.Trajectory[j] {
				t.Fatalf("%s: trajectory diverged at step %d", ra.Mitigation, j)
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Seed: 1, Steps: 1},                        // too few steps
		{Seed: 1, K: 600},                          // page larger than population
		{Seed: 1, ShiftAt: 59, Steps: 59},          // shift at the end
		{Seed: 1, Shift: 2},                        // shift beyond score range
		{Seed: 1, Ramp: -1},                        // negative ramp
		{Seed: 1, Attribute: "NotAnAttr"},          // unknown attribute (monitor mismatch)
		{Seed: 1, Mitigations: []string{"bogus*"}}, // unknown re-ranker
	}
	for i, s := range bad {
		if _, err := RunDrift(s); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}
