package simulate

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/scoring"
)

// AlgorithmID names one of the paper's five algorithms.
type AlgorithmID string

// The five algorithms compared in Tables 1–3, in the paper's row order.
const (
	AlgoUnbalanced    AlgorithmID = "unbalanced"
	AlgoRUnbalanced   AlgorithmID = "r-unbalanced"
	AlgoBalanced      AlgorithmID = "balanced"
	AlgoRBalanced     AlgorithmID = "r-balanced"
	AlgoAllAttributes AlgorithmID = "all-attributes"
)

// AllAlgorithms lists the table rows in order.
var AllAlgorithms = []AlgorithmID{
	AlgoUnbalanced, AlgoRUnbalanced, AlgoBalanced, AlgoRBalanced, AlgoAllAttributes,
}

// Spec describes one experiment: a worker population, a set of scoring
// functions (table columns) and a set of algorithms (table rows).
type Spec struct {
	// Name labels the experiment, e.g. "table1".
	Name string
	// Workers is the population size.
	Workers int
	// Dataset, when non-nil, is audited directly instead of generating
	// Workers synthetic workers — e.g. a memory-mapped snapshot the caller
	// opened with dataset.OpenSnapshot. Workers and the generation half of
	// Seed are then ignored; Seed still drives the random baselines.
	Dataset *dataset.Dataset
	// Seed drives worker generation and the random-attribute baselines.
	Seed uint64
	// Funcs are the scoring functions to audit (table columns).
	Funcs []scoring.Func
	// Algorithms are the table rows; nil means AllAlgorithms.
	Algorithms []AlgorithmID
	// Config tunes the unfairness evaluator.
	Config core.Config
}

// population resolves the experiment's dataset: the injected one if set,
// a generated paper-schema population otherwise.
func (s Spec) population() (*dataset.Dataset, error) {
	if s.Dataset != nil {
		return s.Dataset, nil
	}
	return PaperWorkers(s.Workers, s.Seed)
}

// Cell is one (algorithm, function) measurement.
type Cell struct {
	// Function is the scoring function's name.
	Function string
	// AvgDistance is the unfairness of the partitioning found.
	AvgDistance float64
	// Elapsed is the algorithm's wall-clock runtime.
	Elapsed time.Duration
	// Partitions is the size of the partitioning found.
	Partitions int
	// AttributesUsed names the protected attributes the partitioning
	// splits on.
	AttributesUsed []string
}

// Row is one algorithm's measurements across all functions.
type Row struct {
	Algorithm AlgorithmID
	Cells     []Cell
}

// Result is a completed experiment.
type Result struct {
	Spec    Spec
	Dataset *dataset.Dataset
	Rows    []Row
}

// Run executes the experiment: it generates the worker population once and
// runs every algorithm on every scoring function. Runs are deterministic in
// the Spec.
func Run(spec Spec) (*Result, error) {
	if len(spec.Funcs) == 0 {
		return nil, fmt.Errorf("simulate: experiment %q has no scoring functions", spec.Name)
	}
	algos := spec.Algorithms
	if algos == nil {
		algos = AllAlgorithms
	}
	ds, err := spec.population()
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, Dataset: ds}
	rows := make(map[AlgorithmID]*Row, len(algos))
	for _, a := range algos {
		rows[a] = &Row{Algorithm: a}
	}
	for fi, f := range spec.Funcs {
		e, err := core.NewEvaluator(ds, f, spec.Config)
		if err != nil {
			return nil, fmt.Errorf("simulate: evaluator for %s: %w", f.Name(), err)
		}
		for _, a := range algos {
			r, err := runAlgorithm(e, a, spec.Seed+uint64(fi)*1000)
			if err != nil {
				return nil, err
			}
			attrs := make([]string, 0)
			for _, ai := range r.Partitioning.AttributesUsed() {
				attrs = append(attrs, ds.Schema().Protected[ai].Name)
			}
			rows[a].Cells = append(rows[a].Cells, Cell{
				Function:       f.Name(),
				AvgDistance:    r.Unfairness,
				Elapsed:        r.Elapsed,
				Partitions:     r.Partitioning.Size(),
				AttributesUsed: attrs,
			})
		}
	}
	for _, a := range algos {
		res.Rows = append(res.Rows, *rows[a])
	}
	return res, nil
}

// RunParallel is Run with the (function, algorithm) cells executed
// concurrently by at most `workers` goroutines. Results are identical to
// Run's — each cell gets its own evaluator and a seed derived only from the
// spec — but wall-clock time drops roughly by the worker count; only the
// per-cell Elapsed values may differ (they measure the same work under
// scheduler contention).
func RunParallel(spec Spec, workers int) (*Result, error) {
	if workers <= 1 {
		return Run(spec)
	}
	if len(spec.Funcs) == 0 {
		return nil, fmt.Errorf("simulate: experiment %q has no scoring functions", spec.Name)
	}
	algos := spec.Algorithms
	if algos == nil {
		algos = AllAlgorithms
	}
	ds, err := spec.population()
	if err != nil {
		return nil, err
	}

	type job struct{ fi, ai int }
	type outcome struct {
		job
		cell Cell
		err  error
	}
	jobs := make(chan job)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				f := spec.Funcs[j.fi]
				e, err := core.NewEvaluator(ds, f, spec.Config)
				if err != nil {
					results <- outcome{job: j, err: err}
					continue
				}
				r, err := runAlgorithm(e, algos[j.ai], spec.Seed+uint64(j.fi)*1000)
				if err != nil {
					results <- outcome{job: j, err: err}
					continue
				}
				attrs := make([]string, 0)
				for _, ai := range r.Partitioning.AttributesUsed() {
					attrs = append(attrs, ds.Schema().Protected[ai].Name)
				}
				results <- outcome{job: j, cell: Cell{
					Function:       f.Name(),
					AvgDistance:    r.Unfairness,
					Elapsed:        r.Elapsed,
					Partitions:     r.Partitioning.Size(),
					AttributesUsed: attrs,
				}}
			}
		}()
	}
	go func() {
		for fi := range spec.Funcs {
			for ai := range algos {
				jobs <- job{fi, ai}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	cells := make([][]Cell, len(algos))
	for ai := range cells {
		cells[ai] = make([]Cell, len(spec.Funcs))
	}
	for out := range results {
		if out.err != nil {
			return nil, out.err
		}
		cells[out.ai][out.fi] = out.cell
	}
	res := &Result{Spec: spec, Dataset: ds}
	for ai, a := range algos {
		res.Rows = append(res.Rows, Row{Algorithm: a, Cells: cells[ai]})
	}
	return res, nil
}

// runAlgorithm dispatches through the engine registry. The registry's
// baseline seed derivations (r-balanced from seed+1, r-unbalanced from
// seed+2) match the derivations this package always used, so table outputs
// are unchanged.
func runAlgorithm(e *core.Evaluator, a AlgorithmID, seed uint64) (*core.Result, error) {
	return core.Run(context.Background(), core.Spec{
		Algorithm: string(a),
		Evaluator: e,
		Seed:      seed,
	})
}

// Table1Spec reproduces Table 1: 500 workers, random functions f1–f5,
// all five algorithms.
func Table1Spec(seed uint64) (Spec, error) {
	funcs, err := RandomFunctions()
	if err != nil {
		return Spec{}, err
	}
	return Spec{Name: "table1", Workers: SmallPopulation, Seed: seed, Funcs: funcs}, nil
}

// Table2Spec reproduces Table 2: 7300 workers, random functions f1–f5.
func Table2Spec(seed uint64) (Spec, error) {
	funcs, err := RandomFunctions()
	if err != nil {
		return Spec{}, err
	}
	return Spec{Name: "table2", Workers: LargePopulation, Seed: seed, Funcs: funcs}, nil
}

// Table3Spec reproduces Table 3: 7300 workers, biased functions f6–f9.
func Table3Spec(seed uint64) (Spec, error) {
	funcs, err := BiasedFunctions(seed)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Name: "table3", Workers: LargePopulation, Seed: seed, Funcs: funcs}, nil
}
