package simulate

import (
	"context"
	"math"
	"testing"

	"fairrank/internal/core"
)

func TestSkewedWorkersValidation(t *testing.T) {
	if _, err := SkewedWorkers(0, 1, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SkewedWorkers(10, 1, Options{GenderSkew: 1.5}); err == nil {
		t.Error("skew > 1 accepted")
	}
	if _, err := SkewedWorkers(10, 1, Options{GenderSkew: -0.5}); err == nil {
		t.Error("negative skew accepted")
	}
	if _, err := SkewedWorkers(10, 1, Options{CountryWeights: [3]float64{-1, 1, 1}}); err == nil {
		t.Error("negative country weight accepted")
	}
	if _, err := SkewedWorkers(10, 1, Options{SkillBias: 10, BiasAttr: "Charisma", BiasValue: "x"}); err == nil {
		t.Error("unknown bias attribute accepted")
	}
}

func TestSkewedWorkersDefaultsMatchUniform(t *testing.T) {
	ds, err := SkewedWorkers(3000, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gender := ds.Schema().ProtectedIndex("Gender")
	males := 0
	for i := 0; i < ds.N(); i++ {
		if ds.Code(gender, i) == 0 {
			males++
		}
	}
	frac := float64(males) / float64(ds.N())
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("default male fraction = %v", frac)
	}
}

func TestSkewedWorkersGenderSkew(t *testing.T) {
	ds, err := SkewedWorkers(3000, 6, Options{GenderSkew: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	gender := ds.Schema().ProtectedIndex("Gender")
	males := 0
	for i := 0; i < ds.N(); i++ {
		if ds.Code(gender, i) == 0 {
			males++
		}
	}
	frac := float64(males) / float64(ds.N())
	if math.Abs(frac-0.8) > 0.05 {
		t.Fatalf("male fraction = %v, want ~0.8", frac)
	}
}

func TestSkewedWorkersCountryWeights(t *testing.T) {
	ds, err := SkewedWorkers(3000, 7, Options{CountryWeights: [3]float64{6, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	country := ds.Schema().ProtectedIndex("Country")
	counts := make([]int, 3)
	for i := 0; i < ds.N(); i++ {
		counts[ds.Code(country, i)]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Fatalf("country counts = %v, want descending", counts)
	}
	if frac := float64(counts[0]) / float64(ds.N()); math.Abs(frac-0.6) > 0.05 {
		t.Fatalf("America fraction = %v, want ~0.6", frac)
	}
}

func TestSkillBiasShiftsScores(t *testing.T) {
	ds, err := SkewedWorkers(3000, 8, Options{
		SkillBias: 30, BiasAttr: "Language", BiasValue: "English",
	})
	if err != nil {
		t.Fatal(err)
	}
	lang := ds.Schema().ProtectedIndex("Language")
	obs := ds.Schema().ObservedIndex("LanguageTest")
	var sumEng, sumOther, nEng, nOther float64
	for i := 0; i < ds.N(); i++ {
		if ds.Schema().Protected[lang].Values[ds.Code(lang, i)] == "English" {
			sumEng += ds.Observed(obs, i)
			nEng++
		} else {
			sumOther += ds.Observed(obs, i)
			nOther++
		}
	}
	if sumEng/nEng < sumOther/nOther+15 {
		t.Fatalf("English mean %v not clearly above others %v", sumEng/nEng, sumOther/nOther)
	}
}

// TestLatentBiasDetectedByAudit is the future-work scenario end to end: the
// scoring function is an innocent skill average, but because skills
// correlate with Language in the population, the audit must find a
// partitioning that splits on Language and measures elevated unfairness.
func TestLatentBiasDetectedByAudit(t *testing.T) {
	biased, err := SkewedWorkers(1500, 9, Options{
		SkillBias: 40, BiasAttr: "Language", BiasValue: "English",
	})
	if err != nil {
		t.Fatal(err)
	}
	neutral, err := SkewedWorkers(1500, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	funcs, _ := RandomFunctions()
	f := funcs[0] // f1 = 0.5·LanguageTest + 0.5·ApprovalRate

	eb, err := core.NewEvaluator(biased, f, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	en, err := core.NewEvaluator(neutral, f, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.Run(context.Background(), core.Spec{Evaluator: eb})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := core.Run(context.Background(), core.Spec{Evaluator: en})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Unfairness <= rn.Unfairness {
		t.Fatalf("latent bias (%v) not above neutral (%v)", rb.Unfairness, rn.Unfairness)
	}
	// The first split must be on the correlated attribute.
	langIdx := biased.Schema().ProtectedIndex("Language")
	if len(rb.Steps) == 0 || rb.Steps[0].Attribute != langIdx {
		t.Fatalf("first split attribute = %d, want Language (%d)", rb.Steps[0].Attribute, langIdx)
	}
	// And the Language grouping itself carries a large, unambiguous gap
	// on the biased population but not on the neutral one.
	langSplit := func(e *core.Evaluator) float64 {
		res, err := core.Run(context.Background(), core.Spec{Evaluator: e, Attrs: []int{langIdx}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Unfairness
	}
	if got := langSplit(eb); got < 0.25 {
		t.Fatalf("language-split unfairness on biased population = %v, want > 0.25", got)
	}
	if got := langSplit(en); got > 0.1 {
		t.Fatalf("language-split unfairness on neutral population = %v, want < 0.1", got)
	}
}

func TestSkewedWorkersDeterministic(t *testing.T) {
	opts := Options{GenderSkew: 0.7, SkillBias: 10, BiasAttr: "Gender", BiasValue: "Male"}
	a, err := SkewedWorkers(100, 11, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SkewedWorkers(100, 11, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Observed(0, i) != b.Observed(0, i) {
			t.Fatal("not deterministic")
		}
	}
}
