package simulate

import (
	"math"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/scoring"
)

func TestPaperSchemaShape(t *testing.T) {
	s := PaperSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Protected) != 6 {
		t.Fatalf("%d protected attributes, want 6", len(s.Protected))
	}
	if len(s.Observed) != 2 {
		t.Fatalf("%d observed attributes, want 2", len(s.Observed))
	}
	// "each attribute had only a maximum of 5 values"
	for _, a := range s.Protected {
		if c := a.Cardinality(); c < 2 || c > 5 {
			t.Errorf("attribute %s has cardinality %d, want 2..5", a.Name, c)
		}
	}
}

func TestPaperWorkersDeterministic(t *testing.T) {
	a, err := PaperWorkers(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperWorkers(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 100 || b.N() != 100 {
		t.Fatal("wrong sizes")
	}
	for i := 0; i < 100; i++ {
		for attr := range a.Schema().Protected {
			if a.Code(attr, i) != b.Code(attr, i) {
				t.Fatalf("worker %d attr %d differs across identical seeds", i, attr)
			}
		}
		for attr := range a.Schema().Observed {
			if a.Observed(attr, i) != b.Observed(attr, i) {
				t.Fatalf("worker %d observed %d differs", i, attr)
			}
		}
	}
	c, _ := PaperWorkers(100, 43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Code(0, i) == c.Code(0, i) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical genders")
	}
}

func TestPaperWorkersValidation(t *testing.T) {
	if _, err := PaperWorkers(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PaperWorkers(-5, 1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestPaperWorkersAttributeCoverage(t *testing.T) {
	ds, err := PaperWorkers(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every value of every protected attribute should appear in a 2000-
	// worker uniform sample.
	for a, attr := range ds.Schema().Protected {
		seen := map[int]bool{}
		for i := 0; i < ds.N(); i++ {
			seen[ds.Code(a, i)] = true
		}
		if len(seen) != attr.Cardinality() {
			t.Errorf("attribute %s: %d of %d values seen", attr.Name, len(seen), attr.Cardinality())
		}
	}
	// Observed values must respect their ranges.
	for a, attr := range ds.Schema().Observed {
		for i := 0; i < ds.N(); i++ {
			v := ds.Observed(a, i)
			if v < attr.Min || v > attr.Max {
				t.Fatalf("observed %s value %v out of [%v,%v]", attr.Name, v, attr.Min, attr.Max)
			}
		}
	}
}

func TestRandomFunctions(t *testing.T) {
	funcs, err := RandomFunctions()
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 5 {
		t.Fatalf("%d functions, want 5", len(funcs))
	}
	ds, _ := PaperWorkers(50, 1)
	for _, f := range funcs {
		for i := 0; i < ds.N(); i++ {
			s := f.Score(ds, i)
			if s < 0 || s > 1 {
				t.Fatalf("%s score %v out of [0,1]", f.Name(), s)
			}
		}
	}
	// f4 must depend only on LanguageTest, f5 only on ApprovalRate.
	f4 := funcs[3].(*scoring.Linear)
	if w := f4.Weights(); w["LanguageTest"] != 1 || w["ApprovalRate"] != 0 {
		t.Errorf("f4 weights = %v", w)
	}
	f5 := funcs[4].(*scoring.Linear)
	if w := f5.Weights(); w["ApprovalRate"] != 1 || w["LanguageTest"] != 0 {
		t.Errorf("f5 weights = %v", w)
	}
}

func TestBiasedFunctionsShapes(t *testing.T) {
	funcs, err := BiasedFunctions(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 4 {
		t.Fatalf("%d biased functions, want 4", len(funcs))
	}
	ds, _ := PaperWorkers(500, 11)
	schema := ds.Schema()
	gender := schema.ProtectedIndex("Gender")
	country := schema.ProtectedIndex("Country")

	f6, f7, f8 := funcs[0], funcs[1], funcs[2]
	for i := 0; i < ds.N(); i++ {
		male := schema.Protected[gender].Values[ds.Code(gender, i)] == "Male"
		c := schema.Protected[country].Values[ds.Code(country, i)]

		// f6: males > 0.8, females < 0.2.
		s := f6.Score(ds, i)
		if male && s < 0.8 {
			t.Fatalf("f6 male score %v", s)
		}
		if !male && s >= 0.2 {
			t.Fatalf("f6 female score %v", s)
		}

		// f7 rule table.
		s = f7.Score(ds, i)
		switch {
		case c == "India":
			if s < 0.5 || s >= 0.7 {
				t.Fatalf("f7 Indian score %v", s)
			}
		case male && c == "America", !male && c == "Other":
			if s < 0.8 {
				t.Fatalf("f7 high-rule score %v (male=%v country=%s)", s, male, c)
			}
		default:
			if s >= 0.2 {
				t.Fatalf("f7 low-rule score %v (male=%v country=%s)", s, male, c)
			}
		}

		// f8: only females are rule-scored.
		s = f8.Score(ds, i)
		if !male {
			switch c {
			case "America":
				if s < 0.8 {
					t.Fatalf("f8 female American score %v", s)
				}
			case "India":
				if s < 0.5 || s >= 0.8 {
					t.Fatalf("f8 female Indian score %v", s)
				}
			default:
				if s >= 0.2 {
					t.Fatalf("f8 female other score %v", s)
				}
			}
		}
	}
}

func TestRunExperimentSmall(t *testing.T) {
	funcs, _ := RandomFunctions()
	res, err := Run(Spec{
		Name:    "mini",
		Workers: 120,
		Seed:    3,
		Funcs:   funcs[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(AllAlgorithms) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(AllAlgorithms))
	}
	for _, row := range res.Rows {
		if len(row.Cells) != 2 {
			t.Fatalf("row %s has %d cells", row.Algorithm, len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.AvgDistance < 0 || c.AvgDistance > 1 {
				t.Errorf("%s/%s avg = %v", row.Algorithm, c.Function, c.AvgDistance)
			}
			if c.Partitions < 1 {
				t.Errorf("%s/%s partitions = %d", row.Algorithm, c.Function, c.Partitions)
			}
		}
	}
}

func TestRunExperimentDeterministic(t *testing.T) {
	funcs, _ := RandomFunctions()
	spec := Spec{Name: "det", Workers: 100, Seed: 5, Funcs: funcs[:1]}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].Cells[0].AvgDistance != b.Rows[i].Cells[0].AvgDistance {
			t.Fatalf("row %s not deterministic", a.Rows[i].Algorithm)
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	funcs, _ := RandomFunctions()
	spec := Spec{Name: "par", Workers: 150, Seed: 9, Funcs: funcs[:3]}
	seq, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Rows) != len(seq.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(par.Rows), len(seq.Rows))
	}
	for i := range seq.Rows {
		if par.Rows[i].Algorithm != seq.Rows[i].Algorithm {
			t.Fatalf("row %d algorithm differs", i)
		}
		for j := range seq.Rows[i].Cells {
			s, p := seq.Rows[i].Cells[j], par.Rows[i].Cells[j]
			if s.Function != p.Function || s.AvgDistance != p.AvgDistance || s.Partitions != p.Partitions {
				t.Fatalf("cell %d/%d differs: %+v vs %+v", i, j, s, p)
			}
		}
	}
}

func TestRunParallelDegeneratesToRun(t *testing.T) {
	funcs, _ := RandomFunctions()
	spec := Spec{Name: "one", Workers: 80, Seed: 2, Funcs: funcs[:1],
		Algorithms: []AlgorithmID{AlgoBalanced}}
	res, err := RunParallel(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Cells) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRunParallelErrors(t *testing.T) {
	if _, err := RunParallel(Spec{Name: "x", Workers: 10}, 4); err == nil {
		t.Error("no functions accepted")
	}
	funcs, _ := RandomFunctions()
	if _, err := RunParallel(Spec{Name: "x", Workers: 10, Funcs: funcs,
		Algorithms: []AlgorithmID{"bogus"}}, 4); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	funcs, _ := RandomFunctions()
	spec := Spec{Name: "agg", Workers: 100, Funcs: funcs[:2],
		Algorithms: []AlgorithmID{AlgoBalanced, AlgoUnbalanced}}
	res, err := RunSeeds(spec, []uint64{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Seeds) != 3 {
		t.Fatalf("rows=%d seeds=%d", len(res.Rows), len(res.Seeds))
	}
	for _, row := range res.Rows {
		for _, c := range row.Cells {
			if c.Runs != 3 {
				t.Fatalf("cell runs = %d", c.Runs)
			}
			if c.Min > c.Mean || c.Mean > c.Max {
				t.Fatalf("mean %v outside [%v,%v]", c.Mean, c.Min, c.Max)
			}
			if c.StdDev < 0 {
				t.Fatalf("negative stddev")
			}
			if c.Mean <= 0 || c.Mean >= 1 {
				t.Fatalf("implausible mean %v", c.Mean)
			}
		}
	}
	// Different seeds should actually vary the measurement.
	c := res.Rows[0].Cells[0]
	if c.Min == c.Max {
		t.Fatal("no variation across seeds (suspicious)")
	}
}

func TestRunSeedsValidation(t *testing.T) {
	funcs, _ := RandomFunctions()
	spec := Spec{Name: "x", Workers: 50, Funcs: funcs[:1]}
	if _, err := RunSeeds(spec, nil, 1); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := RunSeeds(Spec{Name: "x", Workers: 50}, []uint64{1}, 1); err == nil {
		t.Error("no functions accepted")
	}
}

func TestRunExperimentValidation(t *testing.T) {
	if _, err := Run(Spec{Name: "x", Workers: 10}); err == nil {
		t.Error("no functions accepted")
	}
	funcs, _ := RandomFunctions()
	if _, err := Run(Spec{Name: "x", Workers: 0, Funcs: funcs}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Run(Spec{Name: "x", Workers: 10, Funcs: funcs,
		Algorithms: []AlgorithmID{"nope"}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTableSpecs(t *testing.T) {
	t1, err := Table1Spec(1)
	if err != nil || t1.Workers != SmallPopulation || len(t1.Funcs) != 5 {
		t.Fatalf("Table1Spec = %+v, %v", t1, err)
	}
	t2, err := Table2Spec(1)
	if err != nil || t2.Workers != LargePopulation || len(t2.Funcs) != 5 {
		t.Fatalf("Table2Spec = %+v, %v", t2, err)
	}
	t3, err := Table3Spec(1)
	if err != nil || t3.Workers != LargePopulation || len(t3.Funcs) != 4 {
		t.Fatalf("Table3Spec = %+v, %v", t3, err)
	}
}

// TestTable1ShapeAtReducedScale verifies the paper's key qualitative
// finding at a CI-friendly scale: the single-attribute functions f4 and f5
// exhibit the highest unfairness among f1–f5 for the greedy algorithms.
func TestTable1ShapeAtReducedScale(t *testing.T) {
	funcs, _ := RandomFunctions()
	res, err := Run(Spec{Name: "t1-small", Workers: 500, Seed: 17, Funcs: funcs,
		Algorithms: []AlgorithmID{AlgoBalanced, AlgoUnbalanced}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		byName := map[string]float64{}
		for _, c := range row.Cells {
			byName[c.Function] = c.AvgDistance
		}
		mixedMax := math.Max(byName["f1"], math.Max(byName["f2"], byName["f3"]))
		if byName["f4"] <= mixedMax && byName["f5"] <= mixedMax {
			t.Errorf("%s: single-attribute functions not highest: %v", row.Algorithm, byName)
		}
	}
}

// TestBiasedBeatsRandomUnfairness verifies the paper's headline qualitative
// claim: designed-bias functions show much higher unfairness than random
// ones under the balanced algorithm.
func TestBiasedBeatsRandomUnfairness(t *testing.T) {
	rf, _ := RandomFunctions()
	bf, err := BiasedFunctions(19)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Name: "mix", Workers: 500, Seed: 19,
		Funcs:      append(rf[:1], bf[0]),
		Algorithms: []AlgorithmID{AlgoBalanced}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := res.Rows[0].Cells
	random, biased := cells[0].AvgDistance, cells[1].AvgDistance
	if biased < 2*random {
		t.Fatalf("f6 unfairness %v not clearly above random f1 %v", biased, random)
	}
	if biased < 0.7 {
		t.Fatalf("f6 unfairness %v, want ~0.8", biased)
	}
}

var _ = core.Config{} // keep import for documentation examples
