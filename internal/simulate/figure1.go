package simulate

import (
	"fairrank/internal/dataset"
	"fairrank/internal/scoring"
)

// Figure1Workers reconstructs the paper's Figure 1 toy example: ten workers
// of a freelancing platform whose optimum partitioning splits on Gender
// first and then only the Male branch on Language, yielding
// {Male∧English, Male∧Indian, Male∧Other, Female}. The function scores are
// carried as an observed attribute so the identity scoring function from
// Figure1Func ranks the workers exactly as the figure does.
func Figure1Workers() (*dataset.Dataset, error) {
	schema := &dataset.Schema{
		Protected: []dataset.Attribute{
			dataset.Cat("Gender", "Male", "Female"),
			dataset.Cat("Language", "English", "Indian", "Other"),
		},
		Observed: []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	type w struct {
		gender, lang string
		score        float64
	}
	workers := []w{
		{"Male", "English", 0.95},
		{"Male", "English", 0.92},
		{"Male", "Indian", 0.05},
		{"Male", "Indian", 0.08},
		{"Male", "Other", 0.35},
		{"Male", "Other", 0.35},
		{"Female", "English", 0.65},
		{"Female", "English", 0.65},
		{"Female", "Indian", 0.65},
		{"Female", "Other", 0.65},
	}
	b := dataset.NewBuilder(schema)
	for i, x := range workers {
		b.Add(id(i), map[string]any{"Gender": x.gender, "Language": x.lang},
			map[string]any{"Score": x.score})
	}
	return b.Build()
}

func id(i int) string { return string(rune('a' + i)) }

// Figure1Func returns the scoring function of the toy example: the workers'
// pre-assigned qualification scores, read straight from the dataset.
func Figure1Func() scoring.Func {
	return scoring.ScoreFunc{
		FuncName: "f",
		Fn: func(ds *dataset.Dataset, i int) float64 {
			return ds.Observed(0, i)
		},
	}
}
