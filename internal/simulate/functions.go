package simulate

import (
	"fmt"

	"fairrank/internal/scoring"
)

// RandomAlphas are the mixing weights of the paper's five random task
// qualification functions f = α·LanguageTest + (1-α)·ApprovalRate,
// α ∈ {0, 0.3, 0.5, 0.7, 1}. The assignment to names follows the paper's
// discussion: f4 relies only on LanguageTest (α=1) and f5 only on
// ApprovalRate (α=0).
var RandomAlphas = map[string]float64{
	"f1": 0.5,
	"f2": 0.3,
	"f3": 0.7,
	"f4": 1.0,
	"f5": 0.0,
}

// RandomFunctionNames lists f1..f5 in table order.
var RandomFunctionNames = []string{"f1", "f2", "f3", "f4", "f5"}

// BiasedFunctionNames lists f6..f9 in table order.
var BiasedFunctionNames = []string{"f6", "f7", "f8", "f9"}

// RandomFunctions builds f1–f5.
func RandomFunctions() ([]scoring.Func, error) {
	out := make([]scoring.Func, 0, len(RandomFunctionNames))
	for _, name := range RandomFunctionNames {
		alpha := RandomAlphas[name]
		f, err := scoring.NewLinear(name, map[string]float64{
			"LanguageTest": alpha,
			"ApprovalRate": 1 - alpha,
		})
		if err != nil {
			return nil, fmt.Errorf("simulate: build %s: %w", name, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// BiasedFunctions builds the paper's four "unfair by design" scoring
// functions (scores are deterministic in the seed):
//
//   - f6 discriminates on gender: f6(w) > 0.8 if w is male, < 0.2 if female.
//   - f7 is biased on gender and nationality: male Americans > 0.8, female
//     Americans < 0.2, Indians of either gender in (0.5, 0.7), females of
//     other nationalities > 0.8, males of other nationalities < 0.2.
//   - f8 scores only females by nationality: American > 0.8, Indian in
//     (0.5, 0.8), other < 0.2. The paper leaves males unspecified; we give
//     them unbiased uniform scores in [0, 1).
//   - f9 correlates with ethnicity, language and year of birth "similarly
//     to previous ones"; the paper gives no exact rule table, so we use a
//     reconstruction in the same spirit: white English-speakers born before
//     1980 score > 0.8, Indian-ethnicity workers land in (0.5, 0.7),
//     African-Americans score < 0.2, everyone else lands mid-range.
func BiasedFunctions(seed uint64) ([]scoring.Func, error) {
	male := scoring.AttrIs("Gender", "Male")
	female := scoring.AttrIs("Gender", "Female")
	american := scoring.AttrIs("Country", "America")
	indianCountry := scoring.AttrIs("Country", "India")

	f6, err := scoring.NewRuleFunc("f6", seed+6, []scoring.Rule{
		{When: male, Lo: 0.8, Hi: 1.0},
		{When: female, Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		return nil, err
	}

	f7, err := scoring.NewRuleFunc("f7", seed+7, []scoring.Rule{
		{When: scoring.And(male, american), Lo: 0.8, Hi: 1.0},
		{When: scoring.And(female, american), Lo: 0.0, Hi: 0.2},
		{When: indianCountry, Lo: 0.5, Hi: 0.7},
		{When: female, Lo: 0.8, Hi: 1.0}, // female, other nationality
		{When: male, Lo: 0.0, Hi: 0.2},   // male, other nationality
	})
	if err != nil {
		return nil, err
	}

	f8, err := scoring.NewRuleFunc("f8", seed+8, []scoring.Rule{
		{When: scoring.And(female, american), Lo: 0.8, Hi: 1.0},
		{When: scoring.And(female, indianCountry), Lo: 0.5, Hi: 0.8},
		{When: female, Lo: 0.0, Hi: 0.2}, // female, other nationality
		{When: scoring.Any(), Lo: 0.0, Hi: 1.0},
	})
	if err != nil {
		return nil, err
	}

	white := scoring.AttrIs("Ethnicity", "White")
	africanAmerican := scoring.AttrIs("Ethnicity", "African-American")
	indianEthnicity := scoring.AttrIs("Ethnicity", "Indian")
	english := scoring.AttrIs("Language", "English")
	bornBefore1980 := scoring.AttrInRange("YearOfBirth", 1950, 1980)

	f9, err := scoring.NewRuleFunc("f9", seed+9, []scoring.Rule{
		{When: scoring.And(white, english, bornBefore1980), Lo: 0.8, Hi: 1.0},
		{When: indianEthnicity, Lo: 0.5, Hi: 0.7},
		{When: africanAmerican, Lo: 0.0, Hi: 0.2},
		{When: scoring.Any(), Lo: 0.3, Hi: 0.6},
	})
	if err != nil {
		return nil, err
	}

	return []scoring.Func{f6, f7, f8, f9}, nil
}
