package simulate

import (
	"fmt"
	"time"

	"fairrank/internal/stats"
)

// AggregateCell is one (algorithm, function) measurement aggregated over
// multiple seeds. The paper reports single-run point estimates and remarks
// that "various runs of the experiments resulted in different behavior";
// aggregation quantifies that variation.
type AggregateCell struct {
	Function string
	// Mean and StdDev of the average pairwise distance across seeds.
	Mean, StdDev float64
	// Min and Max across seeds.
	Min, Max float64
	// MeanElapsed is the mean wall-clock runtime.
	MeanElapsed time.Duration
	// Runs is the number of seeds aggregated.
	Runs int
}

// AggregateRow is one algorithm's aggregated measurements.
type AggregateRow struct {
	Algorithm AlgorithmID
	Cells     []AggregateCell
}

// AggregateResult is a completed multi-seed experiment.
type AggregateResult struct {
	Spec  Spec
	Seeds []uint64
	Rows  []AggregateRow
}

// RunSeeds repeats the experiment once per seed (regenerating the worker
// population each time) and aggregates the per-cell unfairness across runs.
// parallel > 1 parallelizes within each run.
func RunSeeds(spec Spec, seeds []uint64, parallel int) (*AggregateResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("simulate: no seeds")
	}
	algos := spec.Algorithms
	if algos == nil {
		algos = AllAlgorithms
	}
	// values[ai][fi] collects the distance per seed.
	values := make([][][]float64, len(algos))
	elapsed := make([][]time.Duration, len(algos))
	for ai := range values {
		values[ai] = make([][]float64, len(spec.Funcs))
		elapsed[ai] = make([]time.Duration, len(spec.Funcs))
	}
	var funcNames []string
	for _, seed := range seeds {
		s := spec
		s.Seed = seed
		res, err := RunParallel(s, parallel)
		if err != nil {
			return nil, err
		}
		if funcNames == nil {
			for _, c := range res.Rows[0].Cells {
				funcNames = append(funcNames, c.Function)
			}
		}
		for ai, row := range res.Rows {
			for fi, c := range row.Cells {
				values[ai][fi] = append(values[ai][fi], c.AvgDistance)
				elapsed[ai][fi] += c.Elapsed
			}
		}
	}
	out := &AggregateResult{Spec: spec, Seeds: append([]uint64(nil), seeds...)}
	for ai, a := range algos {
		row := AggregateRow{Algorithm: a}
		for fi := range spec.Funcs {
			vs := values[ai][fi]
			mean, _ := stats.Mean(vs)
			sd, _ := stats.StdDev(vs)
			min, max, _ := stats.MinMax(vs)
			row.Cells = append(row.Cells, AggregateCell{
				Function:    funcNames[fi],
				Mean:        mean,
				StdDev:      sd,
				Min:         min,
				Max:         max,
				MeanElapsed: elapsed[ai][fi] / time.Duration(len(seeds)),
				Runs:        len(seeds),
			})
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
