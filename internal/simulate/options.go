package simulate

import (
	"fmt"

	"fairrank/internal/dataset"
	"fairrank/internal/rng"
)

// Options shapes a synthetic population beyond the paper's uniform draws.
// The paper generates all attribute values uniformly "so as to avoid
// injecting any bias in the data ourselves"; its future work is to audit
// real platforms (Qapa, TaskRabbit), whose data has demographic skew and
// skill-demographic correlations. Options simulates those real-world
// effects so the audit pipeline can be exercised on realistic populations:
// when skills correlate with a protected attribute, even an "innocent"
// skill-based scoring function becomes unfair toward the correlated groups,
// which is exactly the latent bias an auditor needs to surface.
type Options struct {
	// GenderSkew is the probability of drawing Male (default 0.5).
	GenderSkew float64
	// CountryWeights are relative draw weights for America, India, Other
	// (default uniform).
	CountryWeights [3]float64
	// SkillBias adds a correlation between observed skills and a
	// protected attribute: workers whose attribute BiasAttr has value
	// BiasValue get their observed attributes shifted by SkillBias (in
	// raw attribute units, may be negative). Zero means no correlation.
	SkillBias float64
	// BiasAttr and BiasValue select the advantaged (or penalized) group,
	// e.g. "Language" / "English". Required when SkillBias != 0.
	BiasAttr  string
	BiasValue string
}

// SkewedWorkers generates n workers with the paper's schema under the
// given Options. Same (n, seed, opts) always yields the same dataset.
func SkewedWorkers(n int, seed uint64, opts Options) (*dataset.Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simulate: population size %d must be positive", n)
	}
	if opts.GenderSkew == 0 {
		opts.GenderSkew = 0.5
	}
	if opts.GenderSkew < 0 || opts.GenderSkew > 1 {
		return nil, fmt.Errorf("simulate: gender skew %v outside [0,1]", opts.GenderSkew)
	}
	cw := opts.CountryWeights
	if cw[0]+cw[1]+cw[2] == 0 {
		cw = [3]float64{1, 1, 1}
	}
	for _, w := range cw {
		if w < 0 {
			return nil, fmt.Errorf("simulate: negative country weight %v", w)
		}
	}
	schema := PaperSchema()
	if opts.SkillBias != 0 {
		if schema.ProtectedIndex(opts.BiasAttr) < 0 {
			return nil, fmt.Errorf("simulate: bias attribute %q is not protected", opts.BiasAttr)
		}
	}

	r := rng.New(seed)
	b := dataset.NewBuilder(schema)
	countries := []string{"America", "India", "Other"}
	languages := []string{"English", "Indian", "Other"}
	ethnicities := []string{"White", "African-American", "Indian", "Other"}
	total := cw[0] + cw[1] + cw[2]
	for i := 0; i < n; i++ {
		gender := "Female"
		if r.Float64() < opts.GenderSkew {
			gender = "Male"
		}
		x := r.Float64() * total
		country := countries[2]
		switch {
		case x < cw[0]:
			country = countries[0]
		case x < cw[0]+cw[1]:
			country = countries[1]
		}
		prot := map[string]any{
			"Gender":          gender,
			"Country":         country,
			"YearOfBirth":     r.IntRange(1950, 2009),
			"Language":        rng.Pick(r, languages),
			"Ethnicity":       rng.Pick(r, ethnicities),
			"YearsExperience": r.IntRange(0, 30),
		}
		lang := r.FloatRange(25, 100)
		appr := r.FloatRange(25, 100)
		if opts.SkillBias != 0 && matchesBias(prot, opts) {
			lang = clampRange(lang+opts.SkillBias, 25, 100)
			appr = clampRange(appr+opts.SkillBias, 25, 100)
		}
		b.Add(fmt.Sprintf("w%05d", i), prot, map[string]any{
			"LanguageTest": lang,
			"ApprovalRate": appr,
		})
	}
	return b.Build()
}

func matchesBias(prot map[string]any, opts Options) bool {
	v, ok := prot[opts.BiasAttr]
	if !ok {
		return false
	}
	s, ok := v.(string)
	return ok && s == opts.BiasValue
}

func clampRange(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}
