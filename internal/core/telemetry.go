package core

import (
	"strconv"
	"sync"

	"fairrank/internal/telemetry"
)

// This file bridges the engine to internal/telemetry. An Evaluator
// always carries an engineMetrics; when Config.Metrics is nil every
// field is a nil metric whose operations no-op, so the hot paths are
// instrumented unconditionally at the cost of a predicted branch.
//
// Counters are incremented at the existing batch sites (where the
// engine already accounts pairCache misses), never per-EMD inside the
// distance kernels — telemetry must not add an atomic op per
// evaluation. Cache occupancy is exported as gauges synced at run
// boundaries (syncGauges), including the per-shard distributions of
// both sharded caches.

// Engine metric names, exported on Config.Metrics registries.
const (
	MetricEMDEvaluations  = "fairrank_engine_emd_evaluations_total"
	MetricPairCacheHits   = "fairrank_engine_pair_cache_hits_total"
	MetricPairCacheMisses = "fairrank_engine_pair_cache_misses_total"
	MetricPairsCopied     = "fairrank_engine_pairs_copied_total"
	MetricPairsPruned     = "fairrank_engine_pairs_pruned_total"
	MetricBoundProbes     = "fairrank_engine_bound_probes_total"
	MetricBoundExactified = "fairrank_engine_bound_exactified_total"
	MetricBoundWidth      = "fairrank_engine_bound_width"
	MetricProbes          = "fairrank_engine_probes_total"
	MetricRuns            = "fairrank_engine_runs_total"
	MetricReps            = "fairrank_engine_reps"
	MetricPairEntries     = "fairrank_engine_pair_cache_entries"
	MetricPairShard       = "fairrank_engine_pair_cache_shard_entries"
	MetricRepShard        = "fairrank_engine_rep_cache_shard_entries"
)

// engineMetrics holds the engine's telemetry handles. The zero value
// (all nil) is the disabled state.
type engineMetrics struct {
	emdEvals        *telemetry.Counter // distances actually computed
	cacheHits       *telemetry.Counter // pair-cache lookups served
	cacheMisses     *telemetry.Counter // pair-cache lookups that computed
	pairsCopied     *telemetry.Counter // triangle entries copied by delta paths
	pairsPruned     *telemetry.Counter // pair slots skipped by the bound cascade
	boundProbes     *telemetry.Counter // fixed-point bound kernel invocations
	boundExactified *telemetry.Counter // bounded candidates that survived to exact evaluation
	probes          *telemetry.Counter // candidate-attribute probes evaluated
	runs            *telemetry.Counter // completed core.Run sessions

	boundWidth  *telemetry.Gauge   // width of the most recent bound interval
	reps        *telemetry.Gauge   // distinct representations interned
	pairEntries *telemetry.Gauge   // distances held in the shared cache
	pairShards  []*telemetry.Gauge // per-shard pair-cache occupancy
	repShards   []*telemetry.Gauge // per-shard rep-cache occupancy
}

// engineMetricsByReg memoizes the resolved handle set per registry.
// Resolving the ~140 series (two 64-shard gauge vectors plus the
// counters) costs tens of microseconds — fine once per process, but
// fairserve builds a fresh Evaluator per audit request against one
// shared registry, so the lookup result is cached by registry identity.
// A registry entry is retained for the registry's lifetime, which in
// every caller here is the process lifetime.
var engineMetricsByReg sync.Map // *telemetry.Registry → *engineMetrics

// engineMetricsFor returns the engine's metric handles on reg, resolving
// them on first use per registry. A nil registry yields the zero
// (disabled) engineMetrics.
func engineMetricsFor(reg *telemetry.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	if v, ok := engineMetricsByReg.Load(reg); ok {
		return *v.(*engineMetrics)
	}
	m := newEngineMetrics(reg)
	v, _ := engineMetricsByReg.LoadOrStore(reg, &m)
	return *v.(*engineMetrics)
}

// newEngineMetrics get-or-creates the engine's series on reg. A nil
// registry yields the zero (disabled) engineMetrics — telemetry.Registry
// methods are nil-safe, so no branching is needed here either.
func newEngineMetrics(reg *telemetry.Registry) engineMetrics {
	m := engineMetrics{
		emdEvals:        reg.Counter(MetricEMDEvaluations),
		cacheHits:       reg.Counter(MetricPairCacheHits),
		cacheMisses:     reg.Counter(MetricPairCacheMisses),
		pairsCopied:     reg.Counter(MetricPairsCopied),
		pairsPruned:     reg.Counter(MetricPairsPruned),
		boundProbes:     reg.Counter(MetricBoundProbes),
		boundExactified: reg.Counter(MetricBoundExactified),
		probes:          reg.Counter(MetricProbes),
		runs:            reg.Counter(MetricRuns),
		boundWidth:      reg.Gauge(MetricBoundWidth),
		reps:            reg.Gauge(MetricReps),
		pairEntries:     reg.Gauge(MetricPairEntries),
	}
	if reg != nil {
		m.pairShards = make([]*telemetry.Gauge, cacheShards)
		m.repShards = make([]*telemetry.Gauge, cacheShards)
		for i := 0; i < cacheShards; i++ {
			shard := telemetry.Label{Key: "shard", Value: strconv.Itoa(i)}
			m.pairShards[i] = reg.Gauge(MetricPairShard, shard)
			m.repShards[i] = reg.Gauge(MetricRepShard, shard)
		}
	}
	return m
}

// enabled reports whether any registry is attached (the per-shard
// slices double as the sentinel).
func (m *engineMetrics) enabled() bool { return m.pairShards != nil }

// computed records n freshly computed pair distances — every site that
// feeds pairCache.misses mirrors here.
func (m *engineMetrics) computed(n int64) {
	m.emdEvals.Add(n)
	m.cacheMisses.Add(n)
}

// syncGauges publishes the caches' occupancy — aggregate and per shard.
// Called at run boundaries, not on the hot path: 2·cacheShards mutex
// hops per run is noise next to a partitioning search.
func (m *engineMetrics) syncGauges(e *Evaluator) {
	if !m.enabled() {
		return
	}
	m.reps.Set(float64(e.reps.count()))
	total := 0
	for i, n := range e.pairs.shardLens() {
		m.pairShards[i].Set(float64(n))
		total += n
	}
	m.pairEntries.Set(float64(total))
	for i, n := range e.reps.shardLens() {
		m.repShards[i].Set(float64(n))
	}
}

// PreregisterMetrics creates the engine's metric series on reg with
// zero values, so scrape endpoints expose them from process start
// instead of after the first audit. Safe to call repeatedly; no-op on
// a nil registry.
func PreregisterMetrics(reg *telemetry.Registry) {
	engineMetricsFor(reg)
}

// ShardStats reports the per-shard occupancy of the evaluator's two
// sharded caches: repShards[i] is how many interned representations
// live in rep-cache shard i (both key layers), pairShards[i] how many
// cached distances live in pair-cache shard i. Aggregate totals remain
// available via CacheStats; the distribution is what the telemetry
// gauges export.
func (e *Evaluator) ShardStats() (repShards, pairShards []int) {
	return e.reps.shardLens(), e.pairs.shardLens()
}
