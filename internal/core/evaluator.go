// Package core implements the paper's contribution: the Most Unfair
// Partitioning problem (Definitions 1 and 2) and the algorithms that
// navigate the exponential space of partitionings — balanced and unbalanced
// (Algorithms 1 and 2), their random-attribute baselines r-balanced and
// r-unbalanced, the all-attributes full split, and an exhaustive solver
// with an explicit enumeration budget.
//
// Unfairness of a partitioning P under scoring function f is the average
// pairwise Earth Mover's Distance between the per-partition score
// histograms: unfairness(P, f) = avg_{i<j} EMD(h(p_i,f), h(p_j,f)).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/histogram"
	"fairrank/internal/partition"
	"fairrank/internal/scoring"
	"fairrank/internal/telemetry"
)

// Config tunes how unfairness is measured.
type Config struct {
	// Bins is the number of equal-width histogram bins over [0,1].
	// Defaults to 10.
	Bins int
	// Ground selects the EMD ground distance (score units by default).
	Ground emd.Ground
	// Metric selects the histogram distance; MetricEMD (the paper's
	// choice) by default. Non-EMD metrics ignore Ground.
	Metric emd.Metric
	// Parallelism bounds the goroutines used for candidate-attribute
	// scans and large pairwise-distance computations. Defaults to
	// GOMAXPROCS. 1 forces serial evaluation. Results are bit-identical
	// at every parallelism level: distances are computed concurrently but
	// always reduced in canonical pair order.
	Parallelism int
	// MinPartitionSize blocks splits that would create a partition with
	// fewer workers than this, both to protect against sampling noise in
	// tiny groups and as a k-anonymity guard when audit results are
	// published. The default (1) reproduces the paper's behavior.
	MinPartitionSize int
	// Exact computes the bin-free EMD between the partitions' empirical
	// score distributions (L1 distance of empirical CDFs) instead of the
	// binned histogram EMD. More faithful, somewhat slower; ignores Bins,
	// Ground and Metric.
	Exact bool
	// Prune enables the branch-and-bound pruning cascade (DESIGN.md §9):
	// candidate-attribute scans bracket each probe's average with
	// fixed-point lower/upper bound kernels and evaluate exactly only the
	// candidates whose interval can still affect the argmax; the
	// exhaustive solvers skip candidates provably below the running best;
	// and very large pairwise averages bypass the shared pair cache.
	// Results are bit-identical with pruning on or off — the bounds carry
	// their quantization-error term, the winner of every decision is
	// always evaluated exactly, and the differential suite pins the
	// equivalence — so the knob trades nothing but bookkeeping detail
	// (RunStats.PairsPruned vs computed/hit counts) for speed. Off by
	// default; a no-op in Exact mode and under non-EMD metrics, whose
	// distances the bounds do not cover. Excluded from Spec.Hash.
	Prune bool
	// Metrics, when non-nil, receives engine telemetry: EMD-evaluation
	// and cache hit/miss counters, probe counts, and cache-occupancy
	// gauges (aggregate and per shard). Several evaluators may share one
	// registry — counters accumulate across them, gauges reflect the
	// most recently synced evaluator. Nil disables metrics at the cost
	// of a predicted nil-check on the already-batched accounting sites.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = 10
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MinPartitionSize < 1 {
		c.MinPartitionSize = 1
	}
	return c
}

// Evaluator computes and caches unfairness measurements for one (dataset,
// scoring function) pair. It is safe for concurrent use: all caches are
// sharded, so parallel candidate probes populate and reuse them instead
// of serializing on a single mutex.
type Evaluator struct {
	ds     *dataset.Dataset
	f      scoring.Func
	cfg    Config
	scores []float64
	unit   float64 // EMD ground distance between adjacent bins
	binIdx []int   // precomputed histogram bin per worker (binned mode)

	reps  *repCache
	pairs *pairCache
	tel   engineMetrics

	// prune is the effective pruning gate: Config.Prune restricted to the
	// modes the bound kernels cover (binned histograms under MetricEMD).
	prune bool
	// pruned and copied are always-on run-accounting counters (unlike the
	// nil-gated telemetry mirrors): pair slots the cascade skipped, and
	// triangle entries the delta paths copied. The session layer reports
	// their per-run deltas; together with pair-cache hits and misses they
	// satisfy the slot conservation law pinned by the accounting tests.
	pruned atomic.Int64
	copied atomic.Int64
	// boundScratch pools the fixed-point kernel's per-candidate scratch
	// (column buffer + row-pointer slice) so concurrent bound probes stay
	// allocation-free in steady state.
	boundScratch sync.Pool
}

// NewEvaluator precomputes all worker scores for f and returns an
// Evaluator. The scoring function must return values in [0,1]; out-of-range
// values are clamped into the edge bins by the histogram.
func NewEvaluator(ds *dataset.Dataset, f scoring.Func, cfg Config) (*Evaluator, error) {
	if ds == nil || ds.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if f == nil {
		return nil, fmt.Errorf("core: nil scoring function")
	}
	cfg = cfg.withDefaults()
	e := &Evaluator{
		ds:     ds,
		f:      f,
		cfg:    cfg,
		scores: scoring.Scores(ds, f),
		reps:   newRepCache(),
		pairs:  newPairCache(),
		tel:    engineMetricsFor(cfg.Metrics),
	}
	switch cfg.Ground {
	case emd.GroundIndex:
		if cfg.Bins > 1 {
			e.unit = 1 / float64(cfg.Bins-1)
		}
	default:
		e.unit = 1 / float64(cfg.Bins)
	}
	if !cfg.Exact {
		e.binIdx = histogram.MustNew(cfg.Bins, 0, 1).BinIndices(e.scores)
	}
	e.prune = cfg.Prune && !cfg.Exact && cfg.Metric == emd.MetricEMD
	if e.prune {
		// Quantize every rep's CDF at intern time, before publication, so
		// the bound kernels always find qcdf present and race-free.
		e.reps.quant = func(data []float64) []int64 {
			q, ok := emd.FixedCDF(data, emd.FixedScale)
			if !ok {
				return nil // non-finite payload: bound paths fall back to exact
			}
			return q
		}
	}
	return e, nil
}

// Dataset returns the dataset under audit.
func (e *Evaluator) Dataset() *dataset.Dataset { return e.ds }

// Func returns the scoring function under audit.
func (e *Evaluator) Func() scoring.Func { return e.f }

// Config returns the effective (defaulted) configuration.
func (e *Evaluator) Config() Config { return e.cfg }

// Scores returns the precomputed score column. Callers must not mutate it.
func (e *Evaluator) Scores() []float64 { return e.scores }

// Attrs returns all protected attribute indices, the default attribute set
// for every algorithm.
func (e *Evaluator) Attrs() []int {
	out := make([]int, len(e.ds.Schema().Protected))
	for i := range out {
		out[i] = i
	}
	return out
}

// Histogram builds (uncached) the score histogram of a partition; exported
// for reporting and figures.
func (e *Evaluator) Histogram(p *partition.Partition) *histogram.Histogram {
	h := histogram.MustNew(e.cfg.Bins, 0, 1)
	for _, i := range p.Indices {
		h.Add(e.scores[i])
	}
	return h
}

// buildData materializes the comparison payload of a partition given its
// row indices: the normalized PMF (binned mode) or the sorted score
// sample (Exact mode).
func (e *Evaluator) buildData(indices []int) []float64 {
	if e.cfg.Exact {
		s := make([]float64, len(indices))
		for k, i := range indices {
			s[k] = e.scores[i]
		}
		sort.Float64s(s)
		return s
	}
	counts := make([]float64, e.cfg.Bins)
	for _, i := range indices {
		counts[e.binIdx[i]]++
	}
	return histogram.NormalizeCounts(counts)
}

// repFor interns a partition's representation under its canonical
// constraint key, returning the dense-handle rep.
func (e *Evaluator) repFor(p *partition.Partition) *rep {
	return e.reps.internKey(p.Key(), func() []float64 { return e.buildData(p.Indices) })
}

// dist computes the configured distance between two PMFs.
func (e *Evaluator) dist(p, q []float64) float64 {
	switch e.cfg.Metric {
	case emd.MetricL1:
		return emd.L1(p, q)
	case emd.MetricTV:
		return emd.L1(p, q) / 2
	case emd.MetricChiSquare:
		return emd.ChiSquare(p, q)
	case emd.MetricJS:
		return emd.JensenShannon(p, q)
	case emd.MetricKS:
		return emd.KolmogorovSmirnov(p, q)
	case emd.MetricHellinger:
		return emd.Hellinger(p, q)
	default:
		return emd.PMFDistance(p, q, e.unit)
	}
}

// distOf computes the configured distance between two representation
// payloads (mode-aware), without touching any cache.
func (e *Evaluator) distOf(p, q []float64) float64 {
	if e.cfg.Exact {
		return emd.Exact1DSorted(p, q)
	}
	return e.dist(p, q)
}

func packPair(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// pairOf returns the distance between two interned representations, with
// symmetric caching in the sharded pair cache.
func (e *Evaluator) pairOf(ra, rb *rep) float64 {
	key := packPair(ra.id, rb.id)
	if d, ok := e.pairs.get(key); ok {
		e.tel.cacheHits.Inc()
		return d
	}
	d := e.distOf(ra.data, rb.data)
	e.pairs.put(key, d)
	e.pairs.misses.Add(1)
	e.tel.computed(1)
	return d
}

// PairDistance returns the configured distance between two partitions'
// score distributions, with symmetric caching.
func (e *Evaluator) PairDistance(a, b *partition.Partition) float64 {
	return e.pairOf(e.repFor(a), e.repFor(b))
}

// parallelFillThreshold is the number of missing pair distances above
// which AvgPairwise computes them concurrently.
const parallelFillThreshold = 256

// AvgPairwise computes unfairness(P, f) — the average pairwise distance
// over all unordered pairs of parts. Fewer than two partitions yield 0.
//
// Distances missing from the pair cache are computed concurrently under
// Config.Parallelism, but the reduction always runs serially in (i, j)
// pair order, so the result is bit-identical at every parallelism level
// (and the cache is populated and accounted either way).
func (e *Evaluator) AvgPairwise(parts []*partition.Partition) float64 {
	k := len(parts)
	if k < 2 {
		return 0
	}
	reps := make([]*rep, k)
	for i, p := range parts {
		reps[i] = e.repFor(p)
	}
	return e.avgReps(reps)
}

// pairRef identifies one missing pair: its slot in the flat triangle
// plus the two representation indices.
type pairRef struct {
	slot, i, j int32
}

// avgReps is AvgPairwise over already-interned representations.
func (e *Evaluator) avgReps(reps []*rep) float64 {
	return e.avgRepsCtx(nil, reps)
}

// avgRepsCtx is avgReps with cooperative cancellation: when ctx is non-nil
// both the cache scan and the parallel missing-pair fill poll it every
// ctxCheckStride pairs and abandon the remaining work. The returned value
// is only meaningful when ctx was not cancelled; distances computed before
// the cancellation still land in the shared cache.
func (e *Evaluator) avgRepsCtx(ctx context.Context, reps []*rep) float64 {
	k := len(reps)
	n := k * (k - 1) / 2
	d := make([]float64, n)
	var missing []pairRef
	m := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if v, ok := e.pairs.get(packPair(reps[i].id, reps[j].id)); ok {
				d[m] = v
			} else {
				missing = append(missing, pairRef{int32(m), int32(i), int32(j)})
			}
			m++
			if ctx != nil && m&(ctxCheckStride-1) == 0 && ctx.Err() != nil {
				return 0
			}
		}
	}
	e.tel.cacheHits.Add(int64(n - len(missing)))
	if len(missing) > 0 {
		parfill(len(missing), e.cfg.Parallelism, func(lo, hi int) {
			for x, t := range missing[lo:hi] {
				if ctx != nil && x&(ctxCheckStride-1) == ctxCheckStride-1 && ctx.Err() != nil {
					return
				}
				ri, rj := reps[t.i], reps[t.j]
				v := e.distOf(ri.data, rj.data)
				d[t.slot] = v
				e.pairs.put(packPair(ri.id, rj.id), v)
			}
		})
		e.pairs.misses.Add(int64(len(missing)))
		e.tel.computed(int64(len(missing)))
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	return sum / float64(n)
}

// parfill runs fn over the contiguous chunks of [0, n), fanning out to at
// most `workers` goroutines; small workloads run inline. Chunks are
// disjoint, so fn may write to shared slices without synchronization.
func parfill(n, workers int, fn func(lo, hi int)) {
	if workers > n/parallelFillThreshold {
		workers = n / parallelFillThreshold
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Unfairness evaluates a whole Partitioning (Definition 2).
func (e *Evaluator) Unfairness(pt *partition.Partitioning) float64 {
	if pt == nil {
		return 0
	}
	return e.AvgPairwise(pt.Parts)
}

// unfairnessCtx is Unfairness with cooperative cancellation, used by the
// exhaustive solvers so a cancelled search aborts mid-candidate instead of
// finishing a potentially enormous pairwise evaluation. The value is only
// meaningful when ctx was not cancelled.
func (e *Evaluator) unfairnessCtx(ctx context.Context, pt *partition.Partitioning) float64 {
	if pt == nil {
		return 0
	}
	k := len(pt.Parts)
	if k < 2 {
		return 0
	}
	reps := make([]*rep, k)
	for i, p := range pt.Parts {
		if i&(ctxCheckStride-1) == ctxCheckStride-1 && ctx.Err() != nil {
			return 0
		}
		reps[i] = e.repFor(p)
	}
	return e.avgRepsCtx(ctx, reps)
}

// splitAll splits every partition on attr, subject to MinPartitionSize:
// a partition whose split would create a child smaller than the minimum is
// kept whole instead.
func (e *Evaluator) splitAll(parts []*partition.Partition, attr int) []*partition.Partition {
	if e.cfg.MinPartitionSize <= 1 {
		return partition.SplitAll(e.ds, parts, attr)
	}
	var out []*partition.Partition
	for _, p := range parts {
		children := partition.Split(e.ds, p, attr)
		ok := true
		for _, c := range children {
			if c.Size() < e.cfg.MinPartitionSize {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, children...)
		} else {
			out = append(out, p)
		}
	}
	return out
}

// CacheStats reports cache sizes, used by the ablation benchmarks:
// distinct partition representations materialized, pair distances held in
// the shared cache, and total distance computations (cache misses plus
// probe-local incremental evaluations).
func (e *Evaluator) CacheStats() (histograms, pairs, misses int) {
	return e.reps.count(), e.pairs.len(), int(e.pairs.misses.Load())
}
