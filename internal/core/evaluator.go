// Package core implements the paper's contribution: the Most Unfair
// Partitioning problem (Definitions 1 and 2) and the algorithms that
// navigate the exponential space of partitionings — balanced and unbalanced
// (Algorithms 1 and 2), their random-attribute baselines r-balanced and
// r-unbalanced, the all-attributes full split, and an exhaustive solver
// with an explicit enumeration budget.
//
// Unfairness of a partitioning P under scoring function f is the average
// pairwise Earth Mover's Distance between the per-partition score
// histograms: unfairness(P, f) = avg_{i<j} EMD(h(p_i,f), h(p_j,f)).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/histogram"
	"fairrank/internal/partition"
	"fairrank/internal/scoring"
)

// Config tunes how unfairness is measured.
type Config struct {
	// Bins is the number of equal-width histogram bins over [0,1].
	// Defaults to 10.
	Bins int
	// Ground selects the EMD ground distance (score units by default).
	Ground emd.Ground
	// Metric selects the histogram distance; MetricEMD (the paper's
	// choice) by default. Non-EMD metrics ignore Ground.
	Metric emd.Metric
	// Parallelism bounds the goroutines used for large pairwise-distance
	// computations. Defaults to GOMAXPROCS. 1 forces serial evaluation.
	Parallelism int
	// MinPartitionSize blocks splits that would create a partition with
	// fewer workers than this, both to protect against sampling noise in
	// tiny groups and as a k-anonymity guard when audit results are
	// published. The default (1) reproduces the paper's behavior.
	MinPartitionSize int
	// Exact computes the bin-free EMD between the partitions' empirical
	// score distributions (L1 distance of empirical CDFs) instead of the
	// binned histogram EMD. More faithful, somewhat slower; ignores Bins,
	// Ground and Metric.
	Exact bool
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = 10
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MinPartitionSize < 1 {
		c.MinPartitionSize = 1
	}
	return c
}

// Evaluator computes and caches unfairness measurements for one (dataset,
// scoring function) pair. It is safe for concurrent use.
type Evaluator struct {
	ds     *dataset.Dataset
	f      scoring.Func
	cfg    Config
	scores []float64
	unit   float64 // EMD ground distance between adjacent bins

	mu     sync.Mutex
	pmfs   map[string][]float64 // partition key → PMF (binned mode)
	sorted map[string][]float64 // partition key → sorted scores (exact mode)
	ids    map[string]uint32    // partition key → dense handle
	pairs  map[uint64]float64   // packed handle pair → distance
	calls  int                  // distance computations (cache misses)
}

// NewEvaluator precomputes all worker scores for f and returns an
// Evaluator. The scoring function must return values in [0,1]; out-of-range
// values are clamped into the edge bins by the histogram.
func NewEvaluator(ds *dataset.Dataset, f scoring.Func, cfg Config) (*Evaluator, error) {
	if ds == nil || ds.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if f == nil {
		return nil, fmt.Errorf("core: nil scoring function")
	}
	cfg = cfg.withDefaults()
	e := &Evaluator{
		ds:     ds,
		f:      f,
		cfg:    cfg,
		scores: scoring.Scores(ds, f),
		pmfs:   map[string][]float64{},
		sorted: map[string][]float64{},
		ids:    map[string]uint32{},
		pairs:  map[uint64]float64{},
	}
	switch cfg.Ground {
	case emd.GroundIndex:
		if cfg.Bins > 1 {
			e.unit = 1 / float64(cfg.Bins-1)
		}
	default:
		e.unit = 1 / float64(cfg.Bins)
	}
	return e, nil
}

// Dataset returns the dataset under audit.
func (e *Evaluator) Dataset() *dataset.Dataset { return e.ds }

// Func returns the scoring function under audit.
func (e *Evaluator) Func() scoring.Func { return e.f }

// Config returns the effective (defaulted) configuration.
func (e *Evaluator) Config() Config { return e.cfg }

// Scores returns the precomputed score column. Callers must not mutate it.
func (e *Evaluator) Scores() []float64 { return e.scores }

// Attrs returns all protected attribute indices, the default attribute set
// for every algorithm.
func (e *Evaluator) Attrs() []int {
	out := make([]int, len(e.ds.Schema().Protected))
	for i := range out {
		out[i] = i
	}
	return out
}

// Histogram builds (uncached) the score histogram of a partition; exported
// for reporting and figures.
func (e *Evaluator) Histogram(p *partition.Partition) *histogram.Histogram {
	h := histogram.MustNew(e.cfg.Bins, 0, 1)
	for _, i := range p.Indices {
		h.Add(e.scores[i])
	}
	return h
}

// pmfFor returns the cached normalized histogram of a partition together
// with its dense handle.
func (e *Evaluator) pmfFor(p *partition.Partition) ([]float64, uint32) {
	key := p.Key()
	e.mu.Lock()
	if pmf, ok := e.pmfs[key]; ok {
		id := e.ids[key]
		e.mu.Unlock()
		return pmf, id
	}
	e.mu.Unlock()

	pmf := e.Histogram(p).PMF()

	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.pmfs[key]; ok {
		return existing, e.ids[key]
	}
	id := uint32(len(e.ids))
	e.pmfs[key] = pmf
	e.ids[key] = id
	return pmf, id
}

// sortedFor returns the cached sorted score sample of a partition together
// with its dense handle (exact mode).
func (e *Evaluator) sortedFor(p *partition.Partition) ([]float64, uint32) {
	key := p.Key()
	e.mu.Lock()
	if s, ok := e.sorted[key]; ok {
		id := e.ids[key]
		e.mu.Unlock()
		return s, id
	}
	e.mu.Unlock()

	s := make([]float64, len(p.Indices))
	for k, i := range p.Indices {
		s[k] = e.scores[i]
	}
	sort.Float64s(s)

	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.sorted[key]; ok {
		return existing, e.ids[key]
	}
	id, ok := e.ids[key]
	if !ok {
		id = uint32(len(e.ids))
		e.ids[key] = id
	}
	e.sorted[key] = s
	return s, id
}

// dist computes the configured distance between two PMFs.
func (e *Evaluator) dist(p, q []float64) float64 {
	switch e.cfg.Metric {
	case emd.MetricL1:
		return emd.L1(p, q)
	case emd.MetricTV:
		return emd.L1(p, q) / 2
	case emd.MetricChiSquare:
		return emd.ChiSquare(p, q)
	case emd.MetricJS:
		return emd.JensenShannon(p, q)
	case emd.MetricKS:
		return emd.KolmogorovSmirnov(p, q)
	case emd.MetricHellinger:
		return emd.Hellinger(p, q)
	default:
		return emd.PMFDistance(p, q, e.unit)
	}
}

func packPair(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// PairDistance returns the configured distance between two partitions'
// score distributions, with symmetric caching.
func (e *Evaluator) PairDistance(a, b *partition.Partition) float64 {
	var pa, pb []float64
	var ia, ib uint32
	if e.cfg.Exact {
		pa, ia = e.sortedFor(a)
		pb, ib = e.sortedFor(b)
	} else {
		pa, ia = e.pmfFor(a)
		pb, ib = e.pmfFor(b)
	}
	key := packPair(ia, ib)
	e.mu.Lock()
	if d, ok := e.pairs[key]; ok {
		e.mu.Unlock()
		return d
	}
	e.mu.Unlock()
	var d float64
	if e.cfg.Exact {
		d = emd.Exact1DSorted(pa, pb)
	} else {
		d = e.dist(pa, pb)
	}
	e.mu.Lock()
	e.pairs[key] = d
	e.calls++
	e.mu.Unlock()
	return d
}

// parallelThreshold is the partition count above which AvgPairwise fans the
// O(k²) pair loop out across goroutines instead of using the pair cache.
const parallelThreshold = 64

// AvgPairwise computes unfairness(P, f) — the average pairwise distance
// over all unordered pairs of parts. Fewer than two partitions yield 0.
func (e *Evaluator) AvgPairwise(parts []*partition.Partition) float64 {
	k := len(parts)
	if k < 2 {
		return 0
	}
	if k < parallelThreshold || e.cfg.Parallelism <= 1 {
		sum := 0.0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				sum += e.PairDistance(parts[i], parts[j])
			}
		}
		return sum / float64(k*(k-1)/2)
	}

	// Large partitionings: resolve the per-partition representations
	// once, then sum distances in parallel without touching the pair
	// cache (the cache would be pure mutex contention at this scale).
	reps := make([][]float64, k)
	for i, p := range parts {
		if e.cfg.Exact {
			reps[i], _ = e.sortedFor(p)
		} else {
			reps[i], _ = e.pmfFor(p)
		}
	}
	workers := e.cfg.Parallelism
	if workers > k {
		workers = k
	}
	sums := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := 0.0
			for i := w; i < k; i += workers {
				ri := reps[i]
				for j := i + 1; j < k; j++ {
					if e.cfg.Exact {
						local += emd.Exact1DSorted(ri, reps[j])
					} else {
						local += e.dist(ri, reps[j])
					}
				}
			}
			sums[w] = local
		}(w)
	}
	wg.Wait()
	sum := 0.0
	for _, s := range sums {
		sum += s
	}
	return sum / float64(k*(k-1)/2)
}

// Unfairness evaluates a whole Partitioning (Definition 2).
func (e *Evaluator) Unfairness(pt *partition.Partitioning) float64 {
	if pt == nil {
		return 0
	}
	return e.AvgPairwise(pt.Parts)
}

// splitAll splits every partition on attr, subject to MinPartitionSize:
// a partition whose split would create a child smaller than the minimum is
// kept whole instead.
func (e *Evaluator) splitAll(parts []*partition.Partition, attr int) []*partition.Partition {
	if e.cfg.MinPartitionSize <= 1 {
		return partition.SplitAll(e.ds, parts, attr)
	}
	var out []*partition.Partition
	for _, p := range parts {
		children := partition.Split(e.ds, p, attr)
		ok := true
		for _, c := range children {
			if c.Size() < e.cfg.MinPartitionSize {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, children...)
		} else {
			out = append(out, p)
		}
	}
	return out
}

// CacheStats reports cache sizes, used by the ablation benchmarks.
func (e *Evaluator) CacheStats() (histograms, pairs, misses int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pmfs), len(e.pairs), e.calls
}
