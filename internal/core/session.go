package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"fairrank/internal/dataset"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
	"fairrank/internal/telemetry"
)

// This file is the session layer: the single entry point every consumer of
// the engine goes through. A Spec names a registered algorithm and its
// inputs; Run resolves the algorithm, honors the caller's context
// (cancellation and deadlines propagate into the parallel attribute scan
// and the refinement loops), streams TraceSteps to an optional progress
// callback, and attaches per-run engine statistics to the result. The
// registry replaces the per-algorithm switch blocks that used to be
// duplicated in every consumer above this package.

// DefaultExhaustiveBudget caps how many partitionings the exhaustive
// solvers may enumerate when Spec.Budget is unset.
const DefaultExhaustiveBudget = 100000

// Spec describes one audit run for Run.
type Spec struct {
	// Algorithm is a registered algorithm name (see Algorithms). Empty
	// selects "balanced", the paper's primary algorithm.
	Algorithm string
	// Evaluator, when non-nil, runs the audit against an existing
	// evaluator, reusing its caches across runs. Otherwise one is built
	// from Dataset, Func and Config.
	Evaluator *Evaluator
	// Dataset and Func define the population and scoring function under
	// audit when Evaluator is nil.
	Dataset *dataset.Dataset
	Func    scoring.Func
	// Config tunes the evaluator built from Dataset/Func.
	Config Config
	// Attrs restricts the audit to these protected attribute indices;
	// nil means all protected attributes.
	Attrs []int
	// Seed drives the random-attribute baselines (r-balanced derives its
	// stream from Seed+1, r-unbalanced from Seed+2, so the two baselines
	// never share a random sequence).
	Seed uint64
	// Budget caps exhaustive enumeration; 0 means
	// DefaultExhaustiveBudget. Ignored by the heuristics.
	Budget int
	// Progress, when non-nil, receives every TraceStep as it is decided,
	// before the run completes — a hook for live dashboards and tracing.
	// It is called from the algorithm's goroutine; it must be fast and
	// must not call back into the session.
	Progress func(TraceStep)
}

func (s Spec) budget() int {
	if s.Budget > 0 {
		return s.Budget
	}
	return DefaultExhaustiveBudget
}

// RunStats reports the engine work one Run performed, as deltas over the
// evaluator's shared caches — so they are per-run even when an evaluator
// is reused across runs.
type RunStats struct {
	// RepsInterned is how many new partition representations this run
	// materialized.
	RepsInterned int
	// PairsComputed is how many pairwise distances this run actually
	// computed (cache misses plus probe-local incremental evaluations).
	PairsComputed int
	// CacheHits is how many pairwise distances this run served from the
	// shared pair cache instead of recomputing.
	CacheHits int
	// PairsCopied is how many triangle entries the incremental delta
	// paths copied from an existing state instead of recomputing or
	// re-fetching.
	PairsCopied int
	// PairsPruned is how many pair slots the branch-and-bound cascade
	// (Config.Prune) skipped outright — slots that were neither computed,
	// copied, nor served from the cache. Always 0 with pruning off. For
	// any fixed Spec, PairsComputed + CacheHits + PairsCopied +
	// PairsPruned is invariant across pruning on/off: pruning moves slots
	// between buckets, never changes the total (the conservation law the
	// accounting tests pin).
	PairsPruned int
	// Rounds is the number of splitting decisions traced (len(Steps)).
	Rounds int
}

// RunFunc executes one registered algorithm against an evaluator. It must
// return ctx.Err() when the context is cancelled mid-run.
type RunFunc func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error)

var registry = struct {
	sync.RWMutex
	m map[string]RunFunc
}{m: map[string]RunFunc{}}

// Register adds an algorithm to the registry under a canonical name.
// It panics on an empty name, a nil function, or a duplicate registration:
// all three are programming errors, not runtime conditions.
func Register(name string, fn RunFunc) {
	if name == "" || fn == nil {
		panic("core: Register requires a name and a run function")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("core: algorithm %q already registered", name))
	}
	registry.m[name] = fn
}

// Lookup resolves a registered algorithm by name. The error lists the
// registered names, so callers (e.g. HTTP handlers) can surface it
// directly without rebuilding the list.
func Lookup(name string) (RunFunc, error) {
	registry.RLock()
	fn, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (registered: %s)",
			name, strings.Join(Algorithms(), ", "))
	}
	return fn, nil
}

// Algorithms returns the registered algorithm names, sorted.
func Algorithms() []string {
	registry.RLock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	registry.RUnlock()
	sort.Strings(out)
	return out
}

// Run executes one audit: it resolves the algorithm from the registry,
// builds (or reuses) the evaluator, and runs under ctx — cancellation and
// deadlines abort the parallel attribute scan and every refinement loop
// promptly, returning ctx.Err(). On success the result carries per-run
// engine statistics.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	name := spec.Algorithm
	if name == "" {
		name = "balanced"
	}
	fn, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	e := spec.Evaluator
	if e == nil {
		if e, err = NewEvaluator(spec.Dataset, spec.Func, spec.Config); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reps0, _, miss0 := e.CacheStats()
	hits0 := int(e.pairs.hits.Load())
	copied0 := e.copied.Load()
	pruned0 := e.pruned.Load()
	// The root "run" span parents every scan/probe/split/emd/reduce span
	// the engine opens below; gauges are synced once per run, off the hot
	// path. Both no-op when no tracer/registry is attached.
	rctx, rsp := telemetry.StartSpan(ctx, "run")
	rsp.SetStr("algorithm", name)
	res, err := fn(rctx, e, spec)
	rsp.End()
	e.tel.runs.Inc()
	e.tel.syncGauges(e)
	if err != nil {
		return nil, err
	}
	reps1, _, miss1 := e.CacheStats()
	res.Stats = RunStats{
		RepsInterned:  reps1 - reps0,
		PairsComputed: miss1 - miss0,
		CacheHits:     int(e.pairs.hits.Load()) - hits0,
		PairsCopied:   int(e.copied.Load() - copied0),
		PairsPruned:   int(e.pruned.Load() - pruned0),
		Rounds:        len(res.Steps),
	}
	return res, nil
}

func init() {
	Register("balanced", func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error) {
		return balancedWith(ctx, e, spec.Attrs, e.worstChooser(), "balanced", spec.Progress)
	})
	Register("r-balanced", func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error) {
		return balancedWith(ctx, e, spec.Attrs, randomAttribute(rng.New(spec.Seed+1)), "r-balanced", spec.Progress)
	})
	Register("unbalanced", func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error) {
		return unbalancedWith(ctx, e, spec.Attrs, e.worstChooser(), "unbalanced", spec.Progress)
	})
	Register("r-unbalanced", func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error) {
		return unbalancedWith(ctx, e, spec.Attrs, randomAttribute(rng.New(spec.Seed+2)), "r-unbalanced", spec.Progress)
	})
	Register("all-attributes", func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error) {
		return allAttributesCtx(ctx, e, spec.Attrs, spec.Progress)
	})
	Register("exhaustive", func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error) {
		return exhaustiveCtx(ctx, e, spec.Attrs, spec.budget())
	})
	Register("exhaustive-cells", func(ctx context.Context, e *Evaluator, spec Spec) (*Result, error) {
		return exhaustiveCellsCtx(ctx, e, spec.Attrs, spec.budget())
	})
}
