package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"fairrank/internal/histogram"
	"fairrank/internal/partition"
	"fairrank/internal/telemetry"
)

// This file implements the incremental pairwise-EMD engine. A matState is
// one partitioning under evaluation: its parts, their interned dense-handle
// representations, and the flat upper triangle of pairwise distances whose
// canonical-order reduction is the partitioning's unfairness. Evolving a
// state — splitting every part on a candidate attribute (balanced probe),
// or replacing one part by its children against its siblings (unbalanced
// decision) — computes only distances that touch changed parts; everything
// else is copied from the existing triangle. Child representations are
// derived in the same single pass that scatters the parent's rows
// (partition.SplitObserve), so probing an attribute never re-touches the
// score column per child.
//
// Invariant: every average is reduced serially in (i, j) pair order over
// the state's own part ordering, which is exactly the order the from-
// scratch serial AvgPairwise loop would use — so incremental results are
// bit-identical to from-scratch serial evaluation regardless of
// Config.Parallelism.
type matState struct {
	e     *Evaluator
	parts []*partition.Partition
	reps  []*rep
	dist  []float64 // upper triangle: pair (i,j), i<j, at tri(k,i,j); nil until materialized
	avg   float64
	// ctx, when non-nil, lets long evaluation loops stop early on
	// cancellation. Derived states inherit it. A cancelled probe returns a
	// state whose numbers must not be consulted; the algorithm layer checks
	// ctx.Err() after every chooser call and discards such results.
	ctx context.Context
}

// canceled reports whether the state's context (if any) is done. The check
// is cheap (one atomic load in the common cases), so hot loops poll it
// every ctxCheckStride iterations.
func (s *matState) canceled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// ctxCheckStride is how many loop iterations evaluation hot paths run
// between cancellation polls.
const ctxCheckStride = 64

// tri maps pair (i, j) with i < j to its slot in the flat upper triangle
// of a k×k distance matrix.
func tri(k, i, j int) int { return i*(2*k-i-1)/2 + j - i - 1 }

// avgOf reduces a distance triangle in slot order — the canonical (i, j)
// serial order — returning 0 when there are no pairs.
func avgOf(d []float64) float64 {
	if len(d) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	return sum / float64(len(d))
}

// newMatState interns the parts' representations and materializes the
// full distance triangle (through the shared pair cache), establishing
// the running pairwise sum that later probes evolve by delta.
func newMatState(e *Evaluator, parts []*partition.Partition) *matState {
	k := len(parts)
	s := &matState{e: e, parts: parts, reps: make([]*rep, k)}
	for i, p := range parts {
		s.reps[i] = e.repFor(p)
	}
	s.dist = make([]float64, k*(k-1)/2)
	m := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			s.dist[m] = e.pairOf(s.reps[i], s.reps[j])
			m++
		}
	}
	s.avg = avgOf(s.dist)
	return s
}

// splitPart is the outcome of scatter-splitting one parent: the child
// partitions, their reps, and whether the split left the content
// unchanged (single occurring value, or a MinPartitionSize keep-whole) —
// in which case the sole child aliases the parent's rep and every
// distance involving it can be copied instead of recomputed.
type splitPart struct {
	children []*partition.Partition
	reps     []*rep
	aliased  bool
}

// scatterSplit splits p on attr in a single pass over its rows, deriving
// each child's representation from the same scan that builds its index
// slice. Child reps are interned under (parent handle, attr, value) —
// which fully determines the child's content — so re-probes of the same
// split are served from the cache without touching the score column.
func (e *Evaluator) scatterSplit(r *rep, p *partition.Partition, attr int) splitPart {
	card := e.ds.Schema().Protected[attr].Cardinality()
	var (
		counts   [][]float64 // binned mode: per-value count rows
		vals     [][]float64 // exact mode: per-value score samples
		children []*partition.Partition
	)
	if e.cfg.Exact {
		vals = make([][]float64, card)
		children = partition.SplitObserve(e.ds, p, attr, func(v, row int) {
			vals[v] = append(vals[v], e.scores[row])
		})
	} else {
		counts = make([][]float64, card)
		bins := e.cfg.Bins
		children = partition.SplitObserve(e.ds, p, attr, func(v, row int) {
			c := counts[v]
			if c == nil {
				c = make([]float64, bins)
				counts[v] = c
			}
			c[e.binIdx[row]]++
		})
	}
	if e.cfg.MinPartitionSize > 1 {
		// A split that would create a too-small child keeps the parent
		// whole, mirroring splitAll.
		for _, c := range children {
			if c.Size() < e.cfg.MinPartitionSize {
				return splitPart{children: []*partition.Partition{p}, reps: []*rep{r}, aliased: true}
			}
		}
	}
	if len(children) == 1 {
		// Single occurring value: the child is the parent's content under
		// one more constraint; alias the parent's rep.
		return splitPart{children: children, reps: []*rep{r}, aliased: true}
	}
	reps := make([]*rep, len(children))
	for ci, c := range children {
		v := c.Constraints[len(c.Constraints)-1].Value
		key := childKey(r.id, attr, v)
		if cr, ok := e.reps.lookupChild(key); ok {
			reps[ci] = cr
			continue
		}
		var data []float64
		if e.cfg.Exact {
			data = vals[v]
			sort.Float64s(data)
		} else {
			data = histogram.NormalizeCounts(counts[v])
		}
		reps[ci] = e.reps.internChild(key, data)
	}
	return splitPart{children: children, reps: reps}
}

// probe evaluates replacing every part with its children under attr — the
// balanced-round / candidate-attribute operation. Only distances touching
// changed parts are computed: a pair of two unchanged (aliased) parts
// copies its distance from this state's triangle. withDist=false skips
// the distance work entirely for callers that only need the final state
// (all-attributes); workers bounds the concurrent distance fill.
func (s *matState) probe(attr, workers int, withDist bool) *matState {
	if s.canceled() {
		// Return a structurally valid state so concurrent probeAll fan-outs
		// finish without nil checks; the caller sees ctx.Err() and discards.
		return s
	}
	e := s.e
	e.tel.probes.Inc()
	// Span phases: split (scatter pass), emd (fresh distance fill),
	// reduce (canonical-order average). Zero-cost when no tracer rides
	// the context; derived states keep s.ctx so later probes never
	// attach to this probe's ended span.
	pctx, psp := telemetry.StartSpan(s.ctx, "probe")
	psp.SetInt("attribute", int64(attr))
	k := len(s.parts)
	_, ssp := telemetry.StartSpan(pctx, "split")
	splits := make([]splitPart, k)
	for i := range s.parts {
		splits[i] = e.scatterSplit(s.reps[i], s.parts[i], attr)
	}
	ssp.SetInt("parents", int64(k))
	ssp.End()
	nk := 0
	for i := range splits {
		nk += len(splits[i].children)
	}
	ns := &matState{
		e:     e,
		parts: make([]*partition.Partition, 0, nk),
		reps:  make([]*rep, 0, nk),
		ctx:   s.ctx,
	}
	parent := make([]int32, 0, nk)
	aliased := make([]bool, 0, nk)
	for i := range splits {
		ns.parts = append(ns.parts, splits[i].children...)
		ns.reps = append(ns.reps, splits[i].reps...)
		for range splits[i].children {
			parent = append(parent, int32(i))
			aliased = append(aliased, splits[i].aliased)
		}
	}
	psp.SetInt("parts", int64(nk))
	if !withDist {
		psp.End()
		return ns
	}
	nd := make([]float64, nk*(nk-1)/2)
	var missing []pairRef
	m := 0
	for i := 0; i < nk; i++ {
		for j := i + 1; j < nk; j++ {
			if aliased[i] && aliased[j] && s.dist != nil {
				nd[m] = s.dist[tri(k, int(parent[i]), int(parent[j]))]
			} else {
				missing = append(missing, pairRef{int32(m), int32(i), int32(j)})
			}
			m++
		}
	}
	if len(missing) > 0 {
		_, esp := telemetry.StartSpan(pctx, "emd")
		parfill(len(missing), workers, func(lo, hi int) {
			for x, t := range missing[lo:hi] {
				if x&(ctxCheckStride-1) == ctxCheckStride-1 && s.canceled() {
					return
				}
				nd[t.slot] = e.distOf(ns.reps[t.i].data, ns.reps[t.j].data)
			}
		})
		esp.SetInt("pairs", int64(len(missing)))
		esp.End()
		e.pairs.misses.Add(int64(len(missing)))
		e.tel.computed(int64(len(missing)))
	}
	e.copiedAcct(int64(len(nd) - len(missing)))
	ns.dist = nd
	_, rsp := telemetry.StartSpan(pctx, "reduce")
	ns.avg = avgOf(nd)
	rsp.SetInt("pairs", int64(len(nd)))
	rsp.End()
	psp.SetInt("pairs_fresh", int64(len(missing)))
	psp.SetInt("pairs_copied", int64(len(nd)-len(missing)))
	psp.End()
	return ns
}

// probeAll probes every candidate attribute, fanning the scans across
// Config.Parallelism goroutines; leftover parallelism is handed to each
// probe's distance fill. Every probe's summation order is fixed, so the
// results are identical to a serial scan.
func (s *matState) probeAll(attrs []int) []*matState {
	out := make([]*matState, len(attrs))
	p := s.e.cfg.Parallelism
	outer := p
	if outer > len(attrs) {
		outer = len(attrs)
	}
	inner := 1
	if outer >= 1 && p > outer {
		inner = p / outer
	}
	// One "scan" span per round; the concurrent probes become its
	// children. Probing through a shallow copy whose ctx carries the
	// scan span keeps this state's ctx clean for subsequent rounds.
	src := s
	sctx, sp := telemetry.StartSpan(s.ctx, "scan")
	if sp != nil {
		sp.SetInt("attrs", int64(len(attrs)))
		sp.SetInt("parts", int64(len(s.parts)))
		cp := *s
		cp.ctx = sctx
		src = &cp
	}
	parforeach(len(attrs), outer, func(x int) {
		out[x] = src.probe(attrs[x], inner, true)
	})
	sp.End()
	if sp != nil {
		// Result states must not parent future spans under the ended
		// scan span (a cancelled probe returns src itself, hence the
		// second check).
		for _, st := range out {
			if st != nil && st != s {
				st.ctx = s.ctx
			}
		}
	}
	return out
}

// single extracts part x as a standalone one-part state, the starting
// point of the unbalanced local split decision.
func (s *matState) single(x int) *matState {
	return &matState{e: s.e, parts: s.parts[x : x+1], reps: s.reps[x : x+1], dist: []float64{}, ctx: s.ctx}
}

// group reorders the state to put part x first — the grouping a child
// node of the unbalanced recursion evaluates against its local siblings —
// re-reducing the average in the new canonical order. No distance is
// recomputed.
func (s *matState) group(x int) *matState {
	k := len(s.parts)
	perm := make([]int, 0, k)
	perm = append(perm, x)
	for i := 0; i < k; i++ {
		if i != x {
			perm = append(perm, i)
		}
	}
	ns := &matState{
		e:     s.e,
		parts: make([]*partition.Partition, k),
		reps:  make([]*rep, k),
		dist:  make([]float64, k*(k-1)/2),
		ctx:   s.ctx,
	}
	for i, pi := range perm {
		ns.parts[i] = s.parts[pi]
		ns.reps[i] = s.reps[pi]
	}
	m := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			a, b := perm[i], perm[j]
			if a > b {
				a, b = b, a
			}
			ns.dist[m] = s.dist[tri(k, a, b)]
			m++
		}
	}
	ns.avg = avgOf(ns.dist)
	return ns
}

// replaceFirst evaluates replacing part 0 of the group with the given
// children state (as produced by probing part 0 alone): the result is
// ordered [children..., siblings...]. Sibling–sibling pairs copy from
// this state's triangle and child–child pairs from the children state;
// only child–sibling pairs are fresh — the unbalanced sibling comparison
// as a pure delta. A child aliasing part 0's rep copies its sibling
// distances too.
func (s *matState) replaceFirst(children *matState) *matState {
	e := s.e
	k := len(s.parts)
	mch := len(children.parts)
	nk := mch + k - 1
	ns := &matState{
		e:     e,
		parts: make([]*partition.Partition, 0, nk),
		reps:  make([]*rep, 0, nk),
		ctx:   s.ctx,
	}
	ns.parts = append(append(ns.parts, children.parts...), s.parts[1:]...)
	ns.reps = append(append(ns.reps, children.reps...), s.reps[1:]...)
	nd := make([]float64, nk*(nk-1)/2)
	fresh := 0
	m := 0
	for i := 0; i < nk; i++ {
		for j := i + 1; j < nk; j++ {
			switch {
			case j < mch: // child–child
				nd[m] = children.dist[tri(mch, i, j)]
			case i >= mch: // sibling–sibling
				nd[m] = s.dist[tri(k, i-mch+1, j-mch+1)]
			case ns.reps[i].id == s.reps[0].id: // aliased child–sibling
				nd[m] = s.dist[tri(k, 0, j-mch+1)]
			default: // child–sibling: the only fresh distances
				nd[m] = e.distOf(ns.reps[i].data, ns.reps[j].data)
				fresh++
			}
			m++
		}
	}
	if fresh > 0 {
		e.pairs.misses.Add(int64(fresh))
		e.tel.computed(int64(fresh))
	}
	e.copiedAcct(int64(len(nd) - fresh))
	ns.dist = nd
	ns.avg = avgOf(nd)
	return ns
}

// materialize fills the distance triangle of a state produced with
// withDist=false, computing every pair concurrently when allowed.
func (s *matState) materialize(workers int) {
	if s.dist != nil {
		return
	}
	k := len(s.parts)
	n := k * (k - 1) / 2
	s.dist = make([]float64, n)
	pairs := make([]pairRef, n)
	m := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs[m] = pairRef{int32(m), int32(i), int32(j)}
			m++
		}
	}
	_, esp := telemetry.StartSpan(s.ctx, "emd")
	parfill(n, workers, func(lo, hi int) {
		for x, t := range pairs[lo:hi] {
			if x&(ctxCheckStride-1) == ctxCheckStride-1 && s.canceled() {
				return
			}
			s.dist[t.slot] = s.e.distOf(s.reps[t.i].data, s.reps[t.j].data)
		}
	})
	esp.SetInt("pairs", int64(n))
	esp.End()
	s.e.pairs.misses.Add(int64(n))
	s.e.tel.computed(int64(n))
	_, rsp := telemetry.StartSpan(s.ctx, "reduce")
	s.avg = avgOf(s.dist)
	rsp.SetInt("pairs", int64(n))
	rsp.End()
}

// parforeach runs fn(i) for every i in [0, n) across at most `workers`
// goroutines via a shared work counter; inline when workers <= 1.
func parforeach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
