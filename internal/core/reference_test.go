package core

import (
	"sort"
	"testing"

	"fairrank/internal/histogram"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
)

// This file pins the incremental engine to straight-line reference
// implementations that re-evaluate every partitioning from scratch — the
// shape of the pre-engine code. The engine must return *bit-identical*
// unfairness values and identical traces: its delta evaluation only changes
// which distances are computed, never the values or the reduction order.

// refData builds a partition's comparison payload from scratch: the
// histogram PMF in binned mode, the sorted score sample in Exact mode.
func refData(e *Evaluator, p *partition.Partition) []float64 {
	if e.cfg.Exact {
		s := make([]float64, len(p.Indices))
		for k, i := range p.Indices {
			s[k] = e.scores[i]
		}
		sort.Float64s(s)
		return s
	}
	h := histogram.MustNew(e.cfg.Bins, 0, 1)
	for _, i := range p.Indices {
		h.Add(e.scores[i])
	}
	return h.PMF()
}

// refAvg is the from-scratch serial average pairwise distance: every
// payload rebuilt, every distance recomputed, summed in (i, j) order.
func refAvg(e *Evaluator, parts []*partition.Partition) float64 {
	k := len(parts)
	if k < 2 {
		return 0
	}
	data := make([][]float64, k)
	for i, p := range parts {
		data[i] = refData(e, p)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += e.distOf(data[i], data[j])
		}
	}
	return sum / float64(k*(k-1)/2)
}

type refChooser func(e *Evaluator, parts []*partition.Partition, attrs []int) (int, []*partition.Partition, float64)

func refWorst(e *Evaluator, parts []*partition.Partition, attrs []int) (int, []*partition.Partition, float64) {
	bestAttr := -1
	var bestChildren []*partition.Partition
	bestAvg := -1.0
	for _, a := range attrs {
		children := e.splitAll(parts, a)
		avg := refAvg(e, children)
		if avg > bestAvg {
			bestAttr, bestChildren, bestAvg = a, children, avg
		}
	}
	return bestAttr, bestChildren, bestAvg
}

func refRandom(r *rng.RNG) refChooser {
	return func(e *Evaluator, parts []*partition.Partition, attrs []int) (int, []*partition.Partition, float64) {
		a := attrs[r.Intn(len(attrs))]
		children := e.splitAll(parts, a)
		return a, children, refAvg(e, children)
	}
}

func refBalanced(e *Evaluator, attrs []int, choose refChooser) *Result {
	res := &Result{}
	current := []*partition.Partition{partition.Root(e.ds)}
	if len(attrs) == 0 {
		res.Partitioning = &partition.Partitioning{Parts: current}
		return res
	}
	a, children, avg := choose(e, current, attrs)
	attrs = remove(attrs, a)
	current, currentAvg := children, avg
	res.Steps = append(res.Steps, TraceStep{Attribute: a, AvgDistance: avg, Partitions: len(children), Accepted: true})
	for len(attrs) > 0 {
		a, children, avg := choose(e, current, attrs)
		attrs = remove(attrs, a)
		step := TraceStep{Attribute: a, AvgDistance: avg, Partitions: len(children)}
		if currentAvg >= avg {
			res.Steps = append(res.Steps, step)
			break
		}
		step.Accepted = true
		res.Steps = append(res.Steps, step)
		current, currentAvg = children, avg
	}
	res.Partitioning = &partition.Partitioning{Parts: current}
	res.Unfairness = currentAvg
	return res
}

func refUnbalanced(e *Evaluator, attrs []int, choose refChooser) *Result {
	res := &Result{}
	root := partition.Root(e.ds)
	if len(attrs) == 0 {
		res.Partitioning = &partition.Partitioning{Parts: []*partition.Partition{root}}
		return res
	}
	a, parts, avg := choose(e, []*partition.Partition{root}, attrs)
	rest := remove(attrs, a)
	res.Steps = append(res.Steps, TraceStep{Attribute: a, AvgDistance: avg, Partitions: len(parts), Accepted: true})
	var output []*partition.Partition
	var recurse func(current *partition.Partition, siblings []*partition.Partition, attrs []int)
	recurse = func(current *partition.Partition, siblings []*partition.Partition, attrs []int) {
		if len(attrs) == 0 {
			output = append(output, current)
			return
		}
		group := append([]*partition.Partition{current}, siblings...)
		currentAvg := refAvg(e, group)
		a, children, _ := choose(e, []*partition.Partition{current}, attrs)
		rest := remove(attrs, a)
		childrenAvg := refAvg(e, append(append([]*partition.Partition{}, children...), siblings...))
		step := TraceStep{Attribute: a, AvgDistance: childrenAvg, Partitions: len(children)}
		if currentAvg >= childrenAvg {
			res.Steps = append(res.Steps, step)
			output = append(output, current)
			return
		}
		step.Accepted = true
		res.Steps = append(res.Steps, step)
		for k, p := range children {
			others := make([]*partition.Partition, 0, len(children)-1)
			others = append(others, children[:k]...)
			others = append(others, children[k+1:]...)
			recurse(p, others, rest)
		}
	}
	for k, p := range parts {
		others := make([]*partition.Partition, 0, len(parts)-1)
		others = append(others, parts[:k]...)
		others = append(others, parts[k+1:]...)
		recurse(p, others, rest)
	}
	res.Partitioning = &partition.Partitioning{Parts: output}
	res.Unfairness = refAvg(e, output)
	return res
}

func refAllAttributes(e *Evaluator, attrs []int) *Result {
	parts := []*partition.Partition{partition.Root(e.ds)}
	res := &Result{}
	for _, a := range attrs {
		parts = e.splitAll(parts, a)
		res.Steps = append(res.Steps, TraceStep{Attribute: a, Partitions: len(parts), Accepted: true})
	}
	res.Partitioning = &partition.Partitioning{Parts: parts}
	res.Unfairness = refAvg(e, parts)
	if len(res.Steps) > 0 {
		res.Steps[len(res.Steps)-1].AvgDistance = res.Unfairness
	}
	return res
}

func refBeam(e *Evaluator, attrs []int, width int) *Result {
	type state struct {
		parts []*partition.Partition
		avg   float64
		left  []int
	}
	res := &Result{}
	frontier := []state{{parts: []*partition.Partition{partition.Root(e.ds)}, left: attrs}}
	best := frontier[0]
	for {
		var next []state
		for _, s := range frontier {
			for _, a := range s.left {
				children := e.splitAll(s.parts, a)
				next = append(next, state{parts: children, avg: refAvg(e, children), left: remove(s.left, a)})
			}
		}
		if len(next) == 0 {
			break
		}
		sort.Slice(next, func(i, j int) bool { return next[i].avg > next[j].avg })
		if len(next) > width {
			next = next[:width]
		}
		improved := false
		for _, s := range next {
			if s.avg > best.avg {
				best = s
				improved = true
			}
		}
		res.Steps = append(res.Steps, TraceStep{Attribute: -1, AvgDistance: next[0].avg, Partitions: len(next[0].parts), Accepted: improved})
		if !improved {
			break
		}
		frontier = next
	}
	res.Partitioning = &partition.Partitioning{Parts: best.parts}
	res.Unfairness = best.avg
	return res
}

func partKeys(pt *partition.Partitioning) []string {
	out := make([]string, len(pt.Parts))
	for i, p := range pt.Parts {
		out[i] = p.Key()
	}
	return out
}

func compareResults(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Unfairness != want.Unfairness {
		t.Errorf("%s: Unfairness = %v, reference %v (must be bit-identical)", name, got.Unfairness, want.Unfairness)
	}
	gk, wk := partKeys(got.Partitioning), partKeys(want.Partitioning)
	if len(gk) != len(wk) {
		t.Fatalf("%s: %d parts, reference %d", name, len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Errorf("%s: part[%d] = %q, reference %q", name, i, gk[i], wk[i])
		}
	}
	if len(got.Steps) != len(want.Steps) {
		t.Fatalf("%s: %d steps, reference %d", name, len(got.Steps), len(want.Steps))
	}
	for i := range got.Steps {
		g, w := got.Steps[i], want.Steps[i]
		if g.Attribute != w.Attribute || g.Partitions != w.Partitions || g.Accepted != w.Accepted || g.AvgDistance != w.AvgDistance {
			t.Errorf("%s: step[%d] = %+v, reference %+v", name, i, g, w)
		}
	}
}

// TestEngineMatchesReference is the engine's equivalence gate: every
// algorithm, on several datasets and configurations (binned and Exact,
// min-size guard on and off, serial and parallel), must reproduce the
// from-scratch reference bit for bit — values, partitions, and traces.
func TestEngineMatchesReference(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"binned-serial", Config{Bins: 10, Parallelism: 1}},
		{"binned-parallel", Config{Bins: 10, Parallelism: 4}},
		{"binned-minsize", Config{Bins: 10, Parallelism: 2, MinPartitionSize: 40}},
		{"exact-serial", Config{Exact: true, Parallelism: 1}},
		{"exact-parallel", Config{Exact: true, Parallelism: 4}},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				ds := randomDataset(t, 300, seed)
				run := func(name string, engine func(e *Evaluator) *Result, ref func(e *Evaluator) *Result) {
					e := mustEval(t, ds, tc.cfg)
					re := mustEval(t, ds, tc.cfg)
					compareResults(t, name, engine(e), ref(re))
				}
				run("balanced", func(e *Evaluator) *Result { return Balanced(e, nil) },
					func(e *Evaluator) *Result { return refBalanced(e, e.Attrs(), refWorst) })
				run("unbalanced", func(e *Evaluator) *Result { return Unbalanced(e, nil) },
					func(e *Evaluator) *Result { return refUnbalanced(e, e.Attrs(), refWorst) })
				run("r-balanced", func(e *Evaluator) *Result { return RBalanced(e, nil, rng.New(seed)) },
					func(e *Evaluator) *Result { return refBalanced(e, e.Attrs(), refRandom(rng.New(seed))) })
				run("r-unbalanced", func(e *Evaluator) *Result { return RUnbalanced(e, nil, rng.New(seed)) },
					func(e *Evaluator) *Result { return refUnbalanced(e, e.Attrs(), refRandom(rng.New(seed))) })
				run("all-attributes", func(e *Evaluator) *Result { return AllAttributes(e, nil) },
					func(e *Evaluator) *Result { return refAllAttributes(e, e.Attrs()) })
				run("beam", func(e *Evaluator) *Result { r, _ := Beam(e, nil, 2); return r },
					func(e *Evaluator) *Result { return refBeam(e, e.Attrs(), 2) })
			}
		})
	}
}
