package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
	"sort"

	"fairrank/internal/dataset"
	"fairrank/internal/scoring"
)

// This file defines the canonical content hash of a Spec: the identity
// under which the job scheduler deduplicates audits and keys its result
// cache. Two specs hash equal exactly when the engine is guaranteed to
// produce bit-identical results for both, so every field that cannot
// change the result is excluded and every default is normalized before
// hashing:
//
//   - Parallelism is excluded: results are bit-identical at every level
//     (distances reduce in canonical pair order regardless).
//   - Prune is excluded: the pruning cascade is bit-identical by
//     construction (every emitted decision comes from an exact
//     evaluation; the differential suite pins it), so a pruned and an
//     unpruned run of the same audit are the same audit.
//   - Metrics and Progress are excluded: observation does not change the
//     audit.
//   - Evaluator identity is excluded: an evaluator is hashed through its
//     (dataset, func, config) content, so Spec{Evaluator: e} and the
//     equivalent Spec{Dataset, Func, Config} collapse to one hash.
//   - Algorithm "" normalizes to "balanced", Bins 0 to 10,
//     MinPartitionSize 0 to 1, Budget 0 to DefaultExhaustiveBudget, and a
//     nil Attrs to the full ascending attribute list — the values Run
//     actually uses.
//
// Attrs order is preserved (not sorted): the greedy choosers break probe
// ties toward the earliest entry of the scan list, so permuted attribute
// lists are not guaranteed bit-identical.

// Hash returns the canonical SHA-256 content hash of the audit this spec
// describes, in lowercase hex. It is stable across processes and releases
// of the same serialization version (the leading version tag below guards
// against silent drift).
//
// The dataset contributes through its full binary snapshot; the scoring
// function through its Name plus, when it exposes
// Weights() map[string]float64 (e.g. scoring.Linear), its weight table in
// sorted key order. Custom Funcs without Weights are identified by Name
// alone — callers minting ad-hoc functions must give distinct audits
// distinct names.
func (s Spec) Hash() string {
	h := sha256.New()
	w := specWriter{w: h}
	w.str("fairrank-spec-v1")

	name := s.Algorithm
	if name == "" {
		name = "balanced"
	}
	w.str("algorithm")
	w.str(name)

	ds, f, cfg := s.Dataset, s.Func, s.Config
	if s.Evaluator != nil {
		ds, f, cfg = s.Evaluator.Dataset(), s.Evaluator.Func(), s.Evaluator.Config()
	}
	cfg = cfg.withDefaults()

	w.str("config")
	w.u64(uint64(cfg.Bins))
	w.u64(uint64(cfg.Ground))
	w.str(cfg.Metric.String())
	w.u64(uint64(cfg.MinPartitionSize))
	w.bool(cfg.Exact)

	w.str("attrs")
	attrs := s.Attrs
	if attrs == nil && ds != nil {
		// nil means "all protected attributes, ascending" — expand it so
		// the explicit equivalent hashes the same.
		attrs = make([]int, len(ds.Schema().Protected))
		for i := range attrs {
			attrs[i] = i
		}
	}
	w.u64(uint64(len(attrs)))
	for _, a := range attrs {
		w.u64(uint64(a))
	}

	w.str("seed")
	w.u64(s.Seed)
	w.str("budget")
	w.u64(uint64(s.budget()))

	w.str("dataset")
	hashDataset(&w, ds)
	w.str("func")
	hashFunc(&w, f)

	return hex.EncodeToString(h.Sum(nil))
}

func hashDataset(w *specWriter, ds *dataset.Dataset) {
	if ds == nil {
		w.str("nil")
		return
	}
	w.str("binary")
	// WriteBinary is deterministic for a given dataset, so the snapshot is
	// a content address. Errors cannot occur on a hash.Hash sink.
	_ = ds.WriteBinary(w.w)
}

func hashFunc(w *specWriter, f scoring.Func) {
	if f == nil {
		w.str("nil")
		return
	}
	w.str(f.Name())
	wf, ok := f.(interface{ Weights() map[string]float64 })
	if !ok {
		return
	}
	weights := wf.Weights()
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u64(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.f64(weights[k])
	}
}

// specWriter serializes canonical fields into the hash. Every string is
// length-prefixed so field boundaries cannot be forged by concatenation
// (e.g. weights {"a":1,"ab":2} vs {"aa":...}).
type specWriter struct {
	w io.Writer
}

func (s *specWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, _ = s.w.Write(b[:])
}

func (s *specWriter) f64(v float64) { s.u64(math.Float64bits(v)) }

func (s *specWriter) bool(v bool) {
	if v {
		s.u64(1)
	} else {
		s.u64(0)
	}
}

func (s *specWriter) str(v string) {
	s.u64(uint64(len(v)))
	_, _ = io.WriteString(s.w, v)
}
