package core

import (
	"fmt"
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/scoring"
	"fairrank/internal/testkit"
)

// Differential tests: the cached/parallel/incremental evaluator against the
// testkit oracle's rebuild-everything pipeline, over generated datasets and
// partitionings. These complement reference_test.go (which pins the engine to
// an in-package reference on fixed schemas) with an out-of-package oracle and
// arbitrary index-set partitions.

// namedParts wraps bare row-index groups as uniquely named partitions.
// repFor interns representations by Partition.Key(), so arbitrary index sets
// need distinct names to avoid colliding in the cache.
func namedParts(groups [][]int) []*partition.Partition {
	out := make([]*partition.Partition, len(groups))
	for i, g := range groups {
		out[i] = &partition.Partition{Name: testkit.BlockKey([][]int{g}), Indices: g}
	}
	return out
}

// The binned evaluator over arbitrary partitions must match the oracle's
// naive histogram → PMF → pairwise-flow pipeline. Runs through the shared
// metamorphic unfairness suite, which also checks permutation and
// merge-then-split invariance.
func TestEvaluatorMatchesUnfairnessOracle(t *testing.T) {
	testkit.CheckUnfairnessOracle(t, "Evaluator.AvgPairwise", func(scores []float64, parts [][]int, bins int) float64 {
		ds, f := scoredDataset(t, scores)
		e, err := NewEvaluator(ds, f, Config{Bins: bins})
		if err != nil {
			t.Fatalf("NewEvaluator: %v", err)
		}
		return e.AvgPairwise(namedParts(parts))
	}, 60)
}

// Exact mode (bin-free empirical distributions) against the oracle's
// explicit monotone-coupling W1.
func TestEvaluatorExactMatchesOracle(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		n := g.R.IntRange(2, 150)
		scores := g.Scores(n)
		parts := testkit.RandomParts(g, n)

		ds, f := scoredDataset(t, scores)
		e, err := NewEvaluator(ds, f, Config{Exact: true})
		if err != nil {
			t.Fatalf("seed %d: NewEvaluator: %v", seed, err)
		}
		got := e.AvgPairwise(namedParts(parts))
		want := o.ExactUnfairness(scores, parts)
		if math.Abs(got-want) > testkit.Tol {
			t.Fatalf("seed %d: exact unfairness = %v, oracle %v (n=%d k=%d)", seed, got, want, n, len(parts))
		}
	}
}

// Hierarchical-split partitionings from the generator, evaluated through
// Unfairness (the constraint-keyed cache path rather than named parts),
// must also match the oracle on the induced index sets.
func TestUnfairnessOnGeneratedPartitionings(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 120))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pt := g.Partitioning(ds)
		bins := g.R.IntRange(1, 20)
		e, err := NewEvaluator(ds, testkit.ScoreFunc(), Config{Bins: bins})
		if err != nil {
			t.Fatalf("seed %d: NewEvaluator: %v", seed, err)
		}
		got := e.Unfairness(pt)
		want := o.Unfairness(e.Scores(), testkit.IndexParts(pt), bins)
		if math.Abs(got-want) > testkit.Tol {
			t.Fatalf("seed %d: unfairness = %v, oracle %v (parts=%d bins=%d)", seed, got, want, len(pt.Parts), bins)
		}
	}
}

// scoredDataset builds a one-attribute dataset whose observed column holds
// exactly the given scores, plus the identity scoring function over it.
// Observed values are stored raw, so the evaluator's score column is the
// input slice value-for-value.
func scoredDataset(t *testing.T, scores []float64) (*dataset.Dataset, scoring.Func) {
	t.Helper()
	schema := &dataset.Schema{
		Protected: []dataset.Attribute{dataset.Cat("P0", "a", "b")},
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	b := dataset.NewBuilder(schema)
	for i, s := range scores {
		b.Add(fmt.Sprintf("w%d", i), map[string]any{"P0": "a"}, map[string]any{"Score": s})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatalf("scoredDataset: %v", err)
	}
	return ds, testkit.ScoreFunc()
}
