package core

import (
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
)

func TestBeamValidation(t *testing.T) {
	ds := randomDataset(t, 50, 1)
	e := mustEval(t, ds, Config{})
	if _, err := Beam(e, nil, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestBeamValidAndAtLeastBalanced(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		ds := randomDataset(t, 120, 200+seed)
		e := mustEval(t, ds, Config{})
		bal := Balanced(e, nil)
		beam, err := Beam(e, nil, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := beam.Partitioning.Validate(ds); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// A width-3 beam explores a superset of balanced's frontier and
		// keeps the best state ever seen, so it cannot do worse.
		if beam.Unfairness < bal.Unfairness-1e-9 {
			t.Errorf("seed %d: beam %v < balanced %v", seed, beam.Unfairness, bal.Unfairness)
		}
	}
}

func TestBeamBoundedByExhaustive(t *testing.T) {
	ds := randomDataset(t, 60, 77)
	e := mustEval(t, ds, Config{})
	ex, err := Exhaustive(e, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	beam, err := Beam(e, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if beam.Unfairness > ex.Unfairness+1e-9 {
		t.Fatalf("beam %v beat exhaustive %v", beam.Unfairness, ex.Unfairness)
	}
}

func TestBeamEmptyAttrs(t *testing.T) {
	ds := randomDataset(t, 40, 3)
	e := mustEval(t, ds, Config{})
	res, err := Beam(e, []int{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioning.Size() != 1 || res.Unfairness != 0 {
		t.Fatalf("no-attr beam: %d parts, %v", res.Partitioning.Size(), res.Unfairness)
	}
}

func TestSignificanceDetectsDesignedBias(t *testing.T) {
	ds, f6 := genderBiased(t, 300, 91)
	e, err := NewEvaluator(ds, f6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := Balanced(e, nil)
	p, obs, err := Significance(e, res.Partitioning, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if obs < 0.7 {
		t.Fatalf("observed = %v", obs)
	}
	if p > 0.01 {
		t.Fatalf("p = %v for designed bias, want < 0.01", p)
	}
}

func TestSignificanceNullNotSignificant(t *testing.T) {
	// A gender split of uniformly random scores should not be significant
	// (the gender split's EMD is pure sampling noise, and the permutation
	// distribution is that same noise).
	ds := randomDataset(t, 300, 93)
	e := mustEval(t, ds, Config{})
	parts := partition.Split(ds, partition.Root(ds), 0)
	pt := &partition.Partitioning{Parts: parts}
	p, _, err := Significance(e, pt, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.02 {
		t.Fatalf("null p = %v, suspiciously significant", p)
	}
}

func TestSignificanceValidation(t *testing.T) {
	ds := randomDataset(t, 50, 95)
	e := mustEval(t, ds, Config{})
	if _, _, err := Significance(e, nil, 10, 1); err == nil {
		t.Error("nil partitioning accepted")
	}
	bad := &partition.Partitioning{Parts: []*partition.Partition{{Indices: []int{0}}}}
	if _, _, err := Significance(e, bad, 10, 1); err == nil {
		t.Error("incomplete partitioning accepted")
	}
	good := &partition.Partitioning{Parts: partition.Split(ds, partition.Root(ds), 0)}
	if _, _, err := Significance(e, good, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestExactModeCloseToFineBinned(t *testing.T) {
	// Exact EMD must approximate the limit of ever finer binning: the
	// 1000-bin evaluation should sit within a hair of the exact one,
	// while the 5-bin evaluation is visibly coarser.
	ds := randomDataset(t, 400, 301)
	exact := mustEval(t, ds, Config{Exact: true})
	fine := mustEval(t, ds, Config{Bins: 1000})
	coarse := mustEval(t, ds, Config{Bins: 5})
	parts := partition.Split(ds, partition.Root(ds), 0)
	de := exact.AvgPairwise(parts)
	df := fine.AvgPairwise(parts)
	dc := coarse.AvgPairwise(parts)
	if d := de - df; d > 0.01 || d < -0.01 {
		t.Fatalf("exact %v vs 1000-bin %v differ too much", de, df)
	}
	if dAbs(de-dc) <= dAbs(de-df) {
		t.Fatalf("coarse binning (%v) unexpectedly closer to exact (%v) than fine (%v)", dc, de, df)
	}
}

func dAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestExactModeAlgorithmsRun(t *testing.T) {
	ds, f6 := genderBiased(t, 300, 303)
	e, err := NewEvaluator(ds, f6, Config{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	res := Balanced(e, nil)
	if err := res.Partitioning.Validate(ds); err != nil {
		t.Fatal(err)
	}
	// Exact EMD on f6's gender split: mean gap ≈ 0.8.
	if res.Unfairness < 0.75 || res.Unfairness > 0.85 {
		t.Fatalf("exact f6 unfairness = %v, want ~0.8", res.Unfairness)
	}
	used := res.Partitioning.AttributesUsed()
	if len(used) != 1 || used[0] != 0 {
		t.Fatalf("exact mode used attributes %v", used)
	}
}

func TestExactModeParallelMatchesSerial(t *testing.T) {
	schema := &dataset.Schema{
		Protected: []dataset.Attribute{dataset.Num("Cell", 0, 1, 100)},
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	r := rng.New(31)
	b := dataset.NewBuilder(schema)
	for i := 0; i < 1500; i++ {
		b.Add("w", map[string]any{"Cell": r.Float64()}, map[string]any{"Score": r.Float64()})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := scoring.ScoreFunc{FuncName: "s", Fn: func(ds *dataset.Dataset, i int) float64 {
		return ds.Observed(0, i)
	}}
	serial, _ := NewEvaluator(ds, f, Config{Exact: true, Parallelism: 1})
	par, _ := NewEvaluator(ds, f, Config{Exact: true, Parallelism: 4})
	parts := partition.Split(ds, partition.Root(ds), 0)
	a := serial.AvgPairwise(parts)
	b2 := par.AvgPairwise(parts)
	if dAbs(a-b2) > 1e-9 {
		t.Fatalf("exact serial %v != parallel %v", a, b2)
	}
}

func TestExhaustiveCellsDominatesTreeExhaustive(t *testing.T) {
	// The cell-grouping space is a superset of the tree space: its
	// optimum must be >= the tree optimum, and on the Figure-1 instance
	// both see the designed optimum.
	ds := figure1Dataset(t)
	e := mustEval(t, ds, Config{Bins: 10})
	tree, err := Exhaustive(e, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := ExhaustiveCells(e, nil, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if cells.Unfairness < tree.Unfairness-1e-9 {
		t.Fatalf("cell optimum %v below tree optimum %v", cells.Unfairness, tree.Unfairness)
	}
	if err := cells.Partitioning.Validate(ds); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveCellsBudget(t *testing.T) {
	ds := randomDataset(t, 60, 305)
	e := mustEval(t, ds, Config{})
	// Gender×Language = 6 cells → Bell(6) = 203 groupings; budget 10 must
	// trip.
	if _, err := ExhaustiveCells(e, []int{0, 1}, 10); err != partition.ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestMinPartitionSizeGuard(t *testing.T) {
	ds := randomDataset(t, 100, 97)
	// With a huge minimum, nothing can ever be split: every algorithm
	// returns the root partitioning.
	e := mustEval(t, ds, Config{MinPartitionSize: 1000})
	for _, res := range []*Result{Balanced(e, nil), Unbalanced(e, nil), AllAttributes(e, nil)} {
		if res.Partitioning.Size() != 1 {
			t.Errorf("%s split despite MinPartitionSize: %d parts",
				res.Algorithm, res.Partitioning.Size())
		}
	}
	// With a moderate minimum, all partitions respect it.
	e2 := mustEval(t, ds, Config{MinPartitionSize: 10})
	for _, res := range []*Result{Balanced(e2, nil), Unbalanced(e2, nil), AllAttributes(e2, nil)} {
		if err := res.Partitioning.Validate(ds); err != nil {
			t.Fatalf("%s: %v", res.Algorithm, err)
		}
		for _, p := range res.Partitioning.Parts {
			if p.Size() < 10 {
				t.Errorf("%s produced partition of size %d < 10", res.Algorithm, p.Size())
			}
		}
	}
	// Default (0 → 1) reproduces unguarded behavior.
	e3 := mustEval(t, ds, Config{})
	e4 := mustEval(t, ds, Config{MinPartitionSize: 1})
	if Balanced(e3, nil).Unfairness != Balanced(e4, nil).Unfairness {
		t.Error("MinPartitionSize default changed behavior")
	}
}
