package core

import (
	"testing"

	"fairrank/internal/scoring"
	"fairrank/internal/testkit"
)

// TestSpecHashSemanticEquivalence pins the normalizations Hash promises:
// every spec pair that Run treats identically must collapse to one hash.
func TestSpecHashSemanticEquivalence(t *testing.T) {
	g := testkit.NewGen(7)
	ds, err := g.WorkerDataset(60)
	if err != nil {
		t.Fatal(err)
	}
	f := testkit.ScoreFunc()
	base := Spec{Dataset: ds, Func: f, Seed: 3}

	equal := func(name string, a, b Spec) {
		t.Helper()
		if ha, hb := a.Hash(), b.Hash(); ha != hb {
			t.Errorf("%s: hashes differ:\n  %s\n  %s", name, ha, hb)
		}
	}
	differ := func(name string, a, b Spec) {
		t.Helper()
		if ha, hb := a.Hash(), b.Hash(); ha == hb {
			t.Errorf("%s: hashes should differ but both are %s", name, ha)
		}
	}

	// Defaults normalize to their explicit values.
	explicit := base
	explicit.Algorithm = "balanced"
	explicit.Config.Bins = 10
	explicit.Config.MinPartitionSize = 1
	explicit.Budget = DefaultExhaustiveBudget
	explicit.Attrs = make([]int, len(ds.Schema().Protected))
	for i := range explicit.Attrs {
		explicit.Attrs[i] = i
	}
	equal("zero defaults vs explicit defaults", base, explicit)

	// Parallelism never changes results, so it never changes the hash.
	par := base
	par.Config.Parallelism = 7
	equal("parallelism excluded", base, par)

	// Progress observation does not change the audit.
	prog := base
	prog.Progress = func(TraceStep) {}
	equal("progress excluded", base, prog)

	// A prebuilt evaluator hashes through its content, not its identity.
	e, err := NewEvaluator(ds, f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	equal("evaluator vs dataset+func", base, Spec{Evaluator: e, Seed: 3})

	// Result-changing fields must change the hash.
	algo := base
	algo.Algorithm = "unbalanced"
	differ("algorithm", base, algo)
	seed := base
	seed.Seed = 4
	differ("seed", base, seed)
	bins := base
	bins.Config.Bins = 20
	differ("bins", base, bins)
	exact := base
	exact.Config.Exact = true
	differ("exact", base, exact)
	if len(ds.Schema().Protected) > 1 {
		attrs := base
		attrs.Attrs = []int{0}
		differ("attribute subset", base, attrs)
	}

	// A different population is a different audit.
	ds2, err := g.WorkerDataset(60)
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.Dataset = ds2
	differ("dataset content", base, other)
}

// TestSpecHashWeightsCanonical pins that weight tables hash by content:
// map iteration order must not leak in, and adjacent keys must not be
// confusable via concatenation.
func TestSpecHashWeightsCanonical(t *testing.T) {
	g := testkit.NewGen(11)
	ds, err := g.WorkerDataset(40)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(weights map[string]float64) Spec {
		f, err := scoring.NewLinear("fn", weights)
		if err != nil {
			t.Fatal(err)
		}
		return Spec{Dataset: ds, Func: f}
	}
	a := mk(map[string]float64{"Score": 1, "Other": 2})
	for i := 0; i < 16; i++ {
		b := mk(map[string]float64{"Other": 2, "Score": 1})
		if a.Hash() != b.Hash() {
			t.Fatalf("weight map order leaked into hash on round %d", i)
		}
	}
	// Same concatenated bytes, different field boundaries.
	x := mk(map[string]float64{"ab": 1, "c": 2})
	y := mk(map[string]float64{"a": 1, "bc": 2})
	if x.Hash() == y.Hash() {
		t.Fatal("weight key boundaries are forgeable by concatenation")
	}
}

// TestSpecHashStable guards the serialization against accidental drift:
// the hash is persisted in job records, so changing it silently would
// orphan every deduplicated result after an upgrade. Update the pinned
// value only with a version bump in the serialization tag.
func TestSpecHashStable(t *testing.T) {
	f, err := scoring.NewLinear("fn", map[string]float64{"Score": 1})
	if err != nil {
		t.Fatal(err)
	}
	// Dataset nil keeps the pin independent of generator internals.
	s := Spec{Algorithm: "balanced", Func: f, Seed: 1}
	const want = "9055ff20a3ede4b26518e577609b1890c4433e3bc8e68e71934abc69092b59f5"
	if got := s.Hash(); got != want {
		t.Fatalf("canonical hash drifted:\n  got  %s\n  want %s", got, want)
	}
}
