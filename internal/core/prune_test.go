package core

import (
	"context"
	"fmt"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/rng"
	"fairrank/internal/telemetry"
	"fairrank/internal/testkit"
)

// Tests for the branch-and-bound pruning cascade (Config.Prune): the
// differential pruned≡unpruned oracle across every registered algorithm,
// the pair-slot conservation law, the gate conditions, and the Spec.Hash
// exclusion. The equivalence checks compare exact floats and full traces —
// the contract is bit-identical, not approximately equal.

// pruneDigest is the full observable outcome of one run, compared deeply
// across the prune on/off pair.
type pruneDigest struct {
	Unfairness float64
	Steps      []TraceStep
	Parts      []string
	Err        string
}

// digestRun executes spec against a fresh evaluator (never sharing caches
// with the paired run) and digests the result.
func digestRun(t *testing.T, spec Spec) pruneDigest {
	t.Helper()
	res, err := Run(context.Background(), spec)
	if err != nil {
		return pruneDigest{Err: err.Error()}
	}
	d := pruneDigest{Unfairness: res.Unfairness, Steps: res.Steps}
	if res.Partitioning != nil {
		for _, p := range res.Partitioning.Parts {
			d.Parts = append(d.Parts, p.Key())
		}
	}
	return d
}

// pruneDataset builds a population whose score depends on every protected
// attribute with distinct weights, so greedy splits keep paying off, the
// scans go deep enough to cross pruneKernelMinParts, and the candidate
// averages separate cleanly — the regime the cascade is built for.
func pruneDataset(t *testing.T, n, nAttrs int) *dataset.Dataset {
	t.Helper()
	vals := []string{"a", "b", "c", "d"}
	prot := make([]dataset.Attribute, nAttrs)
	weights := make([]float64, nAttrs)
	totalW := 0.0
	for a := range prot {
		prot[a] = dataset.Cat(fmt.Sprintf("A%d", a), vals...)
		// Near-equal weights keep every split paying off (the average
		// pairwise distance rises as long as each attribute's effect is
		// comparable), while the slight taper separates the candidate
		// averages so the argmax is unambiguous.
		weights[a] = 1 - 0.06*float64(a)
		totalW += weights[a]
	}
	schema := &dataset.Schema{
		Protected: prot,
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	b := dataset.NewBuilder(schema)
	r := rng.New(99)
	for i := 0; i < n; i++ {
		pv := map[string]any{}
		score := 0.0
		for a := range prot {
			v := r.Intn(len(vals))
			pv[prot[a].Name] = vals[v]
			score += weights[a] / totalW * float64(v) / float64(len(vals)-1)
		}
		score = 0.92*score + 0.08*r.Float64()
		b.Add(fmt.Sprintf("w%d", i), pv, map[string]any{"Score": score})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatalf("pruneDataset: %v", err)
	}
	return ds
}

// wideDataset builds two card-6 attributes over n workers: full splits
// reach 36 parts, past exhaustiveBoundMinParts, so the exhaustive solvers'
// branch-and-bound path runs on realistically sized candidates while the
// tree space (129 candidates) stays enumerable.
func wideDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	schema := &dataset.Schema{
		Protected: []dataset.Attribute{
			dataset.Num("A0", 0, 100, 6),
			dataset.Num("A1", 0, 100, 6),
		},
		Observed: []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	b := dataset.NewBuilder(schema)
	r := rng.New(7)
	for i := 0; i < n; i++ {
		v0, v1 := r.FloatRange(0, 100), r.FloatRange(0, 100)
		score := 0.6*v0/100 + 0.25*v1/100 + 0.15*r.Float64()
		b.Add(fmt.Sprintf("w%d", i), map[string]any{"A0": v0, "A1": v1}, map[string]any{"Score": score})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatalf("wideDataset: %v", err)
	}
	return ds
}

// The differential oracle: every registered algorithm, run pruned and
// unpruned on generated datasets, must produce bit-identical results —
// unfairness, full trace, and the partitioning itself.
func TestPrunedEquivalenceAllAlgorithms(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(40, 250))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nAttrs := len(ds.Schema().Protected)
		testkit.CheckVariantEquivalence(t, "prune", Algorithms(), func(name string, on bool) any {
			spec := Spec{
				Algorithm: name,
				Dataset:   ds,
				Func:      testkit.ScoreFunc(),
				Config:    Config{Bins: 10, Prune: on},
				Seed:      seed,
			}
			if name == "exhaustive" || name == "exhaustive-cells" {
				// Bound the enumeration: tree spaces over >2 attributes and
				// cell-grouping spaces are astronomically large; both variants
				// must then fail identically with the budget error.
				attrs := nAttrs
				if attrs > 2 {
					attrs = 2
				}
				spec.Attrs = make([]int, attrs)
				for i := range spec.Attrs {
					spec.Attrs[i] = i
				}
				spec.Budget = 500
			}
			return digestRun(t, spec)
		})
	}
}

// The cascade must actually fire on a deep greedy search — and stay
// bit-identical while doing so. This pins the perf mechanism's existence,
// not just its safety: a cascade that never prunes would pass every
// equivalence test.
func TestPruneFiresOnDeepScan(t *testing.T) {
	ds := pruneDataset(t, 2000, 5)
	for _, alg := range []string{"balanced", "unbalanced"} {
		run := func(on bool) (*Result, error) {
			return Run(context.Background(), Spec{
				Algorithm: alg,
				Dataset:   ds,
				Func:      testkit.ScoreFunc(),
				Config:    Config{Bins: 10, Prune: on},
			})
		}
		base, err := run(false)
		if err != nil {
			t.Fatalf("%s unpruned: %v", alg, err)
		}
		pruned, err := run(true)
		if err != nil {
			t.Fatalf("%s pruned: %v", alg, err)
		}
		if base.Unfairness != pruned.Unfairness {
			t.Fatalf("%s: unfairness %v (unpruned) vs %v (pruned)", alg, base.Unfairness, pruned.Unfairness)
		}
		if len(base.Steps) != len(pruned.Steps) {
			t.Fatalf("%s: %d steps unpruned vs %d pruned", alg, len(base.Steps), len(pruned.Steps))
		}
		for i := range base.Steps {
			if base.Steps[i] != pruned.Steps[i] {
				t.Fatalf("%s step %d: %+v vs %+v", alg, i, base.Steps[i], pruned.Steps[i])
			}
		}
		if base.Stats.PairsPruned != 0 {
			t.Fatalf("%s: unpruned run reported %d pruned pairs", alg, base.Stats.PairsPruned)
		}
		// Candidate-scan pruning only applies to multi-part scans: balanced
		// scans the whole frontier (nk grows past pruneKernelMinParts), while
		// unbalanced always probes one part at a time (nk ≤ cardinality) and
		// gains from the lean fill and cache bypass instead.
		if alg == "balanced" {
			if pruned.Stats.PairsPruned == 0 {
				t.Fatalf("%s: pruning never fired (computed=%d) — dataset or thresholds regressed", alg, pruned.Stats.PairsComputed)
			}
			if pruned.Stats.PairsComputed >= base.Stats.PairsComputed {
				t.Fatalf("%s: pruned run computed %d pairs, unpruned %d — no work saved", alg, pruned.Stats.PairsComputed, base.Stats.PairsComputed)
			}
		}
	}
}

// The exhaustive solvers' branch-and-bound must also fire and stay exact
// on candidates past exhaustiveBoundMinParts.
func TestPruneExhaustiveBranchAndBound(t *testing.T) {
	ds := wideDataset(t, 900)
	run := func(on bool) *Result {
		res, err := Run(context.Background(), Spec{
			Algorithm: "exhaustive",
			Dataset:   ds,
			Func:      testkit.ScoreFunc(),
			Config:    Config{Bins: 10, Prune: on},
		})
		if err != nil {
			t.Fatalf("exhaustive (prune=%v): %v", on, err)
		}
		return res
	}
	base, pruned := run(false), run(true)
	if base.Unfairness != pruned.Unfairness {
		t.Fatalf("unfairness %v vs %v", base.Unfairness, pruned.Unfairness)
	}
	if len(base.Partitioning.Parts) != len(pruned.Partitioning.Parts) {
		t.Fatalf("winner has %d parts unpruned vs %d pruned", len(base.Partitioning.Parts), len(pruned.Partitioning.Parts))
	}
	for i := range base.Partitioning.Parts {
		if base.Partitioning.Parts[i].Key() != pruned.Partitioning.Parts[i].Key() {
			t.Fatalf("winner part %d differs: %s vs %s", i, base.Partitioning.Parts[i].Key(), pruned.Partitioning.Parts[i].Key())
		}
	}
	if pruned.Stats.PairsPruned == 0 {
		t.Fatal("exhaustive branch-and-bound never fired on 36-part candidates")
	}
}

// The slot conservation law: every pair slot a run touches is exactly one
// of computed, cache hit, copied, or pruned — so the four-bucket sum is
// invariant across pruning on/off for the same spec. Checked both through
// RunStats and through the telemetry registry, which must mirror the
// stats exactly.
func TestPruneSlotConservation(t *testing.T) {
	ds := pruneDataset(t, 1200, 4)
	for _, alg := range []string{"balanced", "unbalanced", "r-balanced", "r-unbalanced", "all-attributes"} {
		var sums [2]int
		for i, on := range []bool{false, true} {
			reg := telemetry.NewRegistry()
			res, err := Run(context.Background(), Spec{
				Algorithm: alg,
				Dataset:   ds,
				Func:      testkit.ScoreFunc(),
				Config:    Config{Bins: 10, Prune: on, Metrics: reg},
				Seed:      3,
			})
			if err != nil {
				t.Fatalf("%s (prune=%v): %v", alg, on, err)
			}
			s := res.Stats
			sums[i] = s.PairsComputed + s.CacheHits + s.PairsCopied + s.PairsPruned
			snap := reg.Snapshot()
			// Fresh evaluator and registry per run, so run deltas and
			// counter totals coincide.
			for metric, want := range map[string]int{
				MetricEMDEvaluations: s.PairsComputed,
				MetricPairCacheHits:  s.CacheHits,
				MetricPairsCopied:    s.PairsCopied,
				MetricPairsPruned:    s.PairsPruned,
			} {
				if got := snap.Counters[metric]; got != int64(want) {
					t.Fatalf("%s (prune=%v): %s = %d, RunStats says %d", alg, on, metric, got, want)
				}
			}
			if on && s.PairsPruned > 0 {
				if snap.Counters[MetricBoundProbes] == 0 {
					t.Fatalf("%s: pairs pruned without any bound probes", alg)
				}
			}
		}
		if sums[0] != sums[1] {
			t.Fatalf("%s: slot total %d unpruned vs %d pruned — conservation violated", alg, sums[0], sums[1])
		}
	}
}

// unfairnessBounded's skip contract, pinned directly: a candidate bounded
// under an unbeatable best is skipped with its full slot count pruned; the
// same candidate against a losing best evaluates to the exact unfairness.
func TestUnfairnessBoundedContract(t *testing.T) {
	ds := wideDataset(t, 600)
	e, err := NewEvaluator(ds, testkit.ScoreFunc(), Config{Bins: 10, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	res := AllAttributes(e, nil) // the 36-part full split
	pt := res.Partitioning
	k := len(pt.Parts)
	if k < exhaustiveBoundMinParts {
		t.Fatalf("full split has only %d parts, below the bound threshold", k)
	}
	exact := e.Unfairness(pt)
	ctx := context.Background()

	u, skipped := e.unfairnessBounded(ctx, pt, -1)
	if skipped {
		t.Fatal("candidate skipped against best=-1")
	}
	if u != exact {
		t.Fatalf("bounded evaluation %v != exact %v", u, exact)
	}

	before := e.pruned.Load()
	if _, skipped := e.unfairnessBounded(ctx, pt, exact+1); !skipped {
		t.Fatal("candidate not skipped against an unbeatable best")
	}
	if got, want := e.pruned.Load()-before, int64(k)*int64(k-1)/2; got != want {
		t.Fatalf("skip pruned %d slots, want %d", got, want)
	}
}

// The gate: Prune is inert outside binned-EMD mode and off by default.
func TestPruneGate(t *testing.T) {
	g := testkit.NewGen(5)
	ds, err := g.WorkerDataset(60)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"default-off", Config{}, false},
		{"on", Config{Prune: true}, true},
		{"exact-mode", Config{Prune: true, Exact: true}, false},
		{"non-emd-metric", Config{Prune: true, Metric: emd.MetricL1}, false},
	}
	for _, c := range cases {
		e, err := NewEvaluator(ds, testkit.ScoreFunc(), c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if e.prune != c.want {
			t.Fatalf("%s: prune gate = %v, want %v", c.name, e.prune, c.want)
		}
		if got := e.reps.quant != nil; got != c.want {
			t.Fatalf("%s: quantizer installed = %v, want %v", c.name, got, c.want)
		}
	}
}

// Prune cannot affect results, so it must not affect the audit identity.
func TestSpecHashIgnoresPrune(t *testing.T) {
	g := testkit.NewGen(9)
	ds, err := g.WorkerDataset(40)
	if err != nil {
		t.Fatal(err)
	}
	base := Spec{Dataset: ds, Func: testkit.ScoreFunc(), Config: Config{Bins: 10}}
	withPrune := base
	withPrune.Config.Prune = true
	if base.Hash() != withPrune.Hash() {
		t.Fatal("Spec.Hash changed with Config.Prune")
	}
	other := base
	other.Config.Bins = 12
	if base.Hash() == other.Hash() {
		t.Fatal("Spec.Hash ignored Config.Bins (sanity check)")
	}
}
