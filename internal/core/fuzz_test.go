package core

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// FuzzEvaluatorOracle drives the cached/parallel evaluator with fuzzer-shaped
// score columns and arbitrary (possibly lopsided or empty) index groups and
// checks it against the testkit oracle's rebuild-everything pipeline, in both
// binned and Exact modes. Layout: data[0] picks the bin count, data[1] the
// group count, then alternating score/assignment bytes.
func FuzzEvaluatorOracle(f *testing.F) {
	f.Add([]byte{10, 2, 10, 0, 200, 1, 30, 0, 180, 1})
	f.Add([]byte{1, 5, 100, 0, 100, 1, 100, 2, 100, 3, 100, 4})
	f.Add([]byte{16, 3, 0, 0, 255, 1, 128, 2, 64, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		bins := int(data[0])%20 + 1
		k := int(data[1])%6 + 2
		body := data[2:]
		if len(body) > 128 {
			body = body[:128]
		}
		n := len(body) / 2
		if n < 1 {
			return
		}
		scores := make([]float64, n)
		parts := make([][]int, k)
		for i := 0; i < n; i++ {
			scores[i] = float64(body[2*i]) / 255
			g := int(body[2*i+1]) % k
			parts[g] = append(parts[g], i)
		}

		var o testkit.Oracle
		ds, fn := scoredDataset(t, scores)

		e, err := NewEvaluator(ds, fn, Config{Bins: bins})
		if err != nil {
			t.Fatalf("NewEvaluator: %v", err)
		}
		got := e.AvgPairwise(namedParts(parts))
		want := o.Unfairness(scores, parts, bins)
		if math.Abs(got-want) > testkit.Tol {
			t.Fatalf("binned: evaluator %v, oracle %v (n=%d k=%d bins=%d)", got, want, n, k, bins)
		}

		ex, err := NewEvaluator(ds, fn, Config{Exact: true})
		if err != nil {
			t.Fatalf("NewEvaluator(exact): %v", err)
		}
		gotEx := ex.AvgPairwise(namedParts(parts))
		wantEx := o.ExactUnfairness(scores, parts)
		if math.Abs(gotEx-wantEx) > testkit.Tol {
			t.Fatalf("exact: evaluator %v, oracle %v (n=%d k=%d)", gotEx, wantEx, n, k)
		}
	})
}
