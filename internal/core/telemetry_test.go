package core

import (
	"context"
	"encoding/json"
	"testing"

	"fairrank/internal/telemetry"
)

// TestRunSpanTreeCoversPhases pins the tentpole tracing contract: a
// core.Run under a tracer-enabled context yields a span tree whose root
// is "run" and whose descendants cover every engine phase — attribute
// scan, per-attribute probe, scatter split, EMD evaluation, and the
// canonical-order reduce.
func TestRunSpanTreeCoversPhases(t *testing.T) {
	ds := randomDataset(t, 400, 11)
	ctx, tr := telemetry.WithTracer(context.Background(), "audit")
	res, err := Run(ctx, Spec{Algorithm: "balanced", Dataset: ds, Func: scoreFunc})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Steps) == 0 {
		t.Fatal("balanced run produced no steps")
	}
	tree := tr.Finish()
	if tree == nil || tree.Name != "audit" {
		t.Fatalf("root tree = %+v, want name audit", tree)
	}
	seen := map[string]int{}
	tree.Walk(func(st *telemetry.SpanTree) { seen[st.Name]++ })
	for _, phase := range []string{"run", "scan", "probe", "split", "emd", "reduce"} {
		if seen[phase] == 0 {
			t.Errorf("span tree missing phase %q (saw %v)", phase, seen)
		}
	}
	if seen["probe"] < seen["scan"] {
		t.Errorf("fewer probe spans (%d) than scan rounds (%d)", seen["probe"], seen["scan"])
	}

	// The run span must carry the algorithm attribute and nest under the
	// caller's root.
	if len(tree.Children) != 1 || tree.Children[0].Name != "run" {
		t.Fatalf("root children = %+v, want single run span", tree.Children)
	}
	if got := tree.Children[0].Attrs["algorithm"]; got != "balanced" {
		t.Errorf("run span algorithm attr = %v, want balanced", got)
	}

	// The tree must survive a JSON round-trip (the -telemetry-json path).
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.SpanTree
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("span JSON does not round-trip: %v", err)
	}
	if back.Name != "audit" {
		t.Errorf("decoded root = %q, want audit", back.Name)
	}
}

// TestRunSpanTreeWithoutTracer pins that tracing is strictly opt-in: a
// plain context produces no spans and the run still succeeds.
func TestRunSpanTreeWithoutTracer(t *testing.T) {
	ds := randomDataset(t, 200, 12)
	if _, err := Run(context.Background(), Spec{Dataset: ds, Func: scoreFunc}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTelemetryCounters pins the counter contract against RunStats:
// on a fresh evaluator the EMD-evaluation counter equals the run's
// PairsComputed (every pairCache.misses site mirrors into telemetry),
// cache-miss and EMD counters agree, and probes/runs are recorded.
func TestRunTelemetryCounters(t *testing.T) {
	ds := randomDataset(t, 400, 13)
	reg := telemetry.NewRegistry()
	res, err := Run(context.Background(), Spec{
		Dataset: ds, Func: scoreFunc, Config: Config{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricEMDEvaluations]; got != int64(res.Stats.PairsComputed) {
		t.Errorf("%s = %d, want PairsComputed = %d", MetricEMDEvaluations, got, res.Stats.PairsComputed)
	}
	if snap.Counters[MetricEMDEvaluations] != snap.Counters[MetricPairCacheMisses] {
		t.Errorf("emd evals %d != cache misses %d",
			snap.Counters[MetricEMDEvaluations], snap.Counters[MetricPairCacheMisses])
	}
	if got := snap.Counters[MetricPairCacheHits]; got != int64(res.Stats.CacheHits) {
		t.Errorf("%s = %d, want CacheHits = %d", MetricPairCacheHits, got, res.Stats.CacheHits)
	}
	if snap.Counters[MetricProbes] == 0 {
		t.Error("probe counter stayed zero across a balanced run")
	}
	if got := snap.Counters[MetricRuns]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricRuns, got)
	}

	// The unbalanced recursion replaces one part against its siblings and
	// copies every untouched pair — the delta path the copied counter
	// observes.
	if _, err := Run(context.Background(), Spec{
		Algorithm: "unbalanced", Dataset: ds, Func: scoreFunc, Config: Config{Metrics: reg},
	}); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot().Counters[MetricPairsCopied] == 0 {
		t.Error("pairs-copied counter stayed zero: delta paths not instrumented")
	}
}

// TestRunSharedRegistryAccumulates pins the shared-registry semantics the
// server relies on: two evaluators configured with the same registry
// accumulate into the same counters instead of clobbering each other.
func TestRunSharedRegistryAccumulates(t *testing.T) {
	ds := randomDataset(t, 300, 14)
	reg := telemetry.NewRegistry()
	spec := Spec{Dataset: ds, Func: scoreFunc, Config: Config{Metrics: reg}}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	first := reg.Snapshot().Counters[MetricEMDEvaluations]
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricEMDEvaluations] <= first {
		t.Errorf("second run did not accumulate: %d then %d",
			first, snap.Counters[MetricEMDEvaluations])
	}
	if got := snap.Counters[MetricRuns]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricRuns, got)
	}
}

// TestShardStats pins ShardStats against the aggregate CacheStats and the
// shard count: distributions must sum to the totals.
func TestShardStats(t *testing.T) {
	ds := randomDataset(t, 400, 15)
	e := mustEval(t, ds, Config{})
	if _, err := Run(context.Background(), Spec{Evaluator: e}); err != nil {
		t.Fatal(err)
	}
	repShards, pairShards := e.ShardStats()
	if len(repShards) != cacheShards || len(pairShards) != cacheShards {
		t.Fatalf("shard slice lengths = %d, %d, want %d", len(repShards), len(pairShards), cacheShards)
	}
	reps, pairs, _ := e.CacheStats()
	sum := func(xs []int) (n int) {
		for _, x := range xs {
			n += x
		}
		return
	}
	if got := sum(repShards); got != reps {
		t.Errorf("rep shard sum = %d, want CacheStats reps = %d", got, reps)
	}
	if got := sum(pairShards); got != pairs {
		t.Errorf("pair shard sum = %d, want CacheStats pairs = %d", got, pairs)
	}
}

// TestSyncGaugesPublishesOccupancy pins the gauge surface: after a run
// with a registry attached, the aggregate gauges match CacheStats and the
// per-shard gauge series sum to the aggregates.
func TestSyncGaugesPublishesOccupancy(t *testing.T) {
	ds := randomDataset(t, 400, 16)
	reg := telemetry.NewRegistry()
	e := mustEval(t, ds, Config{Metrics: reg})
	if _, err := Run(context.Background(), Spec{Evaluator: e}); err != nil {
		t.Fatal(err)
	}
	reps, pairs, _ := e.CacheStats()
	snap := reg.Snapshot()
	if got := snap.Gauges[MetricReps]; got != float64(reps) {
		t.Errorf("%s = %v, want %d", MetricReps, got, reps)
	}
	if got := snap.Gauges[MetricPairEntries]; got != float64(pairs) {
		t.Errorf("%s = %v, want %d", MetricPairEntries, got, pairs)
	}
	pairSum, repSum, pairSeries, repSeries := 0.0, 0.0, 0, 0
	for id, v := range snap.Gauges {
		switch {
		case len(id) > len(MetricPairShard) && id[:len(MetricPairShard)] == MetricPairShard:
			pairSum += v
			pairSeries++
		case len(id) > len(MetricRepShard) && id[:len(MetricRepShard)] == MetricRepShard:
			repSum += v
			repSeries++
		}
	}
	if pairSeries != cacheShards || repSeries != cacheShards {
		t.Fatalf("per-shard series = %d, %d, want %d each", pairSeries, repSeries, cacheShards)
	}
	if pairSum != float64(pairs) {
		t.Errorf("pair shard gauges sum to %v, want %d", pairSum, pairs)
	}
	if repSum != float64(reps) {
		t.Errorf("rep shard gauges sum to %v, want %d", repSum, reps)
	}
}

// TestPreregisterMetrics pins that a scrape endpoint exposes every engine
// series (zero-valued) before the first audit runs.
func TestPreregisterMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	PreregisterMetrics(reg)
	snap := reg.Snapshot()
	for _, name := range []string{
		MetricEMDEvaluations, MetricPairCacheHits, MetricPairCacheMisses,
		MetricPairsCopied, MetricProbes, MetricRuns,
	} {
		if v, ok := snap.Counters[name]; !ok || v != 0 {
			t.Errorf("preregistered counter %s = %d, %v; want 0, true", name, v, ok)
		}
	}
	if _, ok := snap.Gauges[MetricReps]; !ok {
		t.Errorf("preregistered gauge %s missing", MetricReps)
	}
}

// TestTelemetryIdenticalResults pins that attaching telemetry never
// changes the audit outcome: same unfairness trajectory, traced or not.
func TestTelemetryIdenticalResults(t *testing.T) {
	ds := randomDataset(t, 400, 17)
	plain, err := Run(context.Background(), Spec{Dataset: ds, Func: scoreFunc})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ctx, tr := telemetry.WithTracer(context.Background(), "audit")
	traced, err := Run(ctx, Spec{Dataset: ds, Func: scoreFunc, Config: Config{Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if len(plain.Steps) != len(traced.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(plain.Steps), len(traced.Steps))
	}
	for i := range plain.Steps {
		if plain.Steps[i].AvgDistance != traced.Steps[i].AvgDistance {
			t.Fatalf("step %d avg distance differs: %v vs %v",
				i, plain.Steps[i].AvgDistance, traced.Steps[i].AvgDistance)
		}
	}
}

// BenchmarkTelemetryOverhead measures the full audit path under the
// three telemetry configurations; cmd/benchdiff compares them in CI and
// fails the build when an enabled path exceeds its overhead budget. A
// fresh evaluator per iteration keeps cache state identical across
// variants.
//
//   - telemetry=off      — no registry, no tracer: the baseline.
//   - telemetry=metrics  — counters + gauges, the always-on production
//     configuration (what fairserve enables for every audit request);
//     gated at 5%.
//   - telemetry=trace    — metrics plus span tracing, the opt-in
//     -telemetry-json diagnostic path. Spans cost two clock reads and a
//     few allocations each, which a deliberately tiny benchmark audit
//     makes visible; gated loosely to catch regressions only.
func BenchmarkTelemetryOverhead(b *testing.B) {
	ds := randomDataset(b, 4000, 21)
	audit := func(b *testing.B, reg *telemetry.Registry, trace bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := NewEvaluator(ds, scoreFunc, Config{Metrics: reg})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var tr *telemetry.Tracer
			if trace {
				ctx, tr = telemetry.WithTracer(ctx, "bench")
			}
			if _, err := Run(ctx, Spec{Evaluator: e}); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	}
	b.Run("telemetry=off", func(b *testing.B) { audit(b, nil, false) })
	b.Run("telemetry=metrics", func(b *testing.B) { audit(b, telemetry.NewRegistry(), false) })
	b.Run("telemetry=trace", func(b *testing.B) { audit(b, telemetry.NewRegistry(), true) })
}
