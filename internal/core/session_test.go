package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/rng"
)

func TestAlgorithmsSortedAndComplete(t *testing.T) {
	names := Algorithms()
	for _, want := range []string{
		"all-attributes", "balanced", "exhaustive", "exhaustive-cells",
		"r-balanced", "r-unbalanced", "unbalanced",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q: %v", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Algorithms not sorted: %v", names)
		}
	}
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	if _, err := Lookup("balanced"); err != nil {
		t.Fatal(err)
	}
	_, err := Lookup("quantum")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !strings.Contains(err.Error(), "balanced") || !strings.Contains(err.Error(), "exhaustive") {
		t.Errorf("error does not list registered names: %v", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn RunFunc) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(name, fn)
	}
	noop := func(context.Context, *Evaluator, Spec) (*Result, error) { return nil, nil }
	mustPanic("", noop)
	mustPanic("x", nil)
	mustPanic("balanced", noop) // duplicate
}

// TestRunMatchesDirect pins the registry dispatch to the direct entry
// points, including the documented seed derivations for the random
// baselines (r-balanced from Seed+1, r-unbalanced from Seed+2).
func TestRunMatchesDirect(t *testing.T) {
	ds := randomDataset(t, 300, 5)
	direct := map[string]func(e *Evaluator) *Result{
		"balanced":       func(e *Evaluator) *Result { return Balanced(e, nil) },
		"unbalanced":     func(e *Evaluator) *Result { return Unbalanced(e, nil) },
		"all-attributes": func(e *Evaluator) *Result { return AllAttributes(e, nil) },
		"r-balanced":     func(e *Evaluator) *Result { return RBalanced(e, nil, rng.New(8)) },
		"r-unbalanced":   func(e *Evaluator) *Result { return RUnbalanced(e, nil, rng.New(9)) },
	}
	for name, run := range direct {
		want := run(mustEval(t, ds, Config{}))
		got, err := Run(context.Background(), Spec{
			Algorithm: name,
			Evaluator: mustEval(t, ds, Config{}),
			Seed:      7, // r-balanced reads 7+1, r-unbalanced 7+2
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Unfairness != want.Unfairness {
			t.Errorf("%s: Run %v != direct %v", name, got.Unfairness, want.Unfairness)
		}
		if got.Partitioning.Size() != want.Partitioning.Size() {
			t.Errorf("%s: Run found %d parts, direct %d",
				name, got.Partitioning.Size(), want.Partitioning.Size())
		}
		if got.Algorithm != want.Algorithm {
			t.Errorf("%s: algorithm label %q != %q", name, got.Algorithm, want.Algorithm)
		}
	}
}

func TestRunDefaults(t *testing.T) {
	ds := randomDataset(t, 100, 2)
	// Empty algorithm selects balanced; nil ctx is Background; the
	// evaluator is built from Dataset/Func/Config when absent.
	res, err := Run(nil, Spec{Dataset: ds, Func: scoreFunc, Config: Config{Bins: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "balanced" {
		t.Errorf("default algorithm = %q, want balanced", res.Algorithm)
	}
	want := Balanced(mustEval(t, ds, Config{Bins: 10}), nil)
	if res.Unfairness != want.Unfairness {
		t.Errorf("built-evaluator run %v != direct %v", res.Unfairness, want.Unfairness)
	}
}

func TestRunErrors(t *testing.T) {
	ds := randomDataset(t, 50, 3)
	if _, err := Run(context.Background(), Spec{Algorithm: "quantum", Dataset: ds, Func: scoreFunc}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(context.Background(), Spec{}); err == nil {
		t.Error("nil dataset and evaluator accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Spec{Dataset: ds, Func: scoreFunc}); err != context.Canceled {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestRunStats(t *testing.T) {
	ds := randomDataset(t, 300, 4)
	res, err := Run(context.Background(), Spec{Evaluator: mustEval(t, ds, Config{})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RepsInterned <= 0 || res.Stats.PairsComputed <= 0 {
		t.Errorf("run stats empty: %+v", res.Stats)
	}
	if res.Stats.Rounds != len(res.Steps) {
		t.Errorf("Rounds = %d, len(Steps) = %d", res.Stats.Rounds, len(res.Steps))
	}
}

// TestRunStatsAreDeltas reuses one evaluator across two identical runs:
// the second is served from the shared caches, so its per-run deltas must
// show cache hits instead of fresh pair computations.
func TestRunStatsAreDeltas(t *testing.T) {
	ds := randomDataset(t, 120, 4)
	e := mustEval(t, ds, Config{})
	spec := Spec{Algorithm: "exhaustive", Evaluator: e}
	first, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.RepsInterned <= 0 || first.Stats.PairsComputed <= 0 {
		t.Errorf("cold run stats empty: %+v", first.Stats)
	}
	second, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.PairsComputed >= first.Stats.PairsComputed {
		t.Errorf("warm run computed %d pairs, cold %d",
			second.Stats.PairsComputed, first.Stats.PairsComputed)
	}
	if second.Stats.CacheHits <= 0 {
		t.Errorf("warm run reported no cache hits: %+v", second.Stats)
	}
	if second.Stats.RepsInterned != 0 {
		t.Errorf("warm run interned %d new reps", second.Stats.RepsInterned)
	}
}

func TestRunProgressStreamsSteps(t *testing.T) {
	ds := randomDataset(t, 200, 6)
	var seen []TraceStep
	res, err := Run(context.Background(), Spec{
		Evaluator: mustEval(t, ds, Config{}),
		Progress:  func(s TraceStep) { seen = append(seen, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Steps) {
		t.Fatalf("progress saw %d steps, result has %d", len(seen), len(res.Steps))
	}
	for i := range seen {
		if seen[i] != res.Steps[i] {
			t.Errorf("step %d: progress %+v != result %+v", i, seen[i], res.Steps[i])
		}
	}
}

// TestRunCancelViaProgress cancels deterministically mid-run, from inside
// the first splitting decision's progress callback.
func TestRunCancelViaProgress(t *testing.T) {
	ds := randomDataset(t, 300, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, Spec{
		Evaluator: mustEval(t, ds, Config{}),
		Progress:  func(TraceStep) { cancel() },
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// bigDataset builds a population over eight ternary protected attributes —
// a tree space far too large to enumerate — for the cancellation tests.
func bigDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	attrs := make([]dataset.Attribute, 8)
	for i := range attrs {
		attrs[i] = dataset.Cat(fmt.Sprintf("A%d", i), "x", "y", "z")
	}
	schema := &dataset.Schema{
		Protected: attrs,
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	r := rng.New(17)
	b := dataset.NewBuilder(schema)
	vals := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		prot := map[string]any{}
		for j := range attrs {
			prot[fmt.Sprintf("A%d", j)] = rng.Pick(r, vals)
		}
		b.Add("w", prot, map[string]any{"Score": r.Float64()})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRunCancellationPrompt cancels an exhaustive search that would
// otherwise run for hours and requires Run to return ctx.Err() promptly,
// with every engine goroutine gone afterwards. It drives exhaustive-cells
// because that solver streams candidates (the tree solver materializes its
// option lists up front, so it only observes ctx from the first yield on).
func TestRunCancellationPrompt(t *testing.T) {
	ds := bigDataset(t, 2000)
	e, err := NewEvaluator(ds, scoreFunc, Config{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Spec{Algorithm: "exhaustive-cells", Evaluator: e, Budget: 1 << 40})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return within 5s of cancellation")
	}

	// The engine's scan workers must all have exited; poll briefly since
	// goroutine teardown is asynchronous.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	ds := bigDataset(t, 1500)
	e, err := NewEvaluator(ds, scoreFunc, Config{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = Run(ctx, Spec{Algorithm: "exhaustive-cells", Evaluator: e, Budget: 1 << 40})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
}
