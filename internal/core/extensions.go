package core

import (
	"errors"
	"sort"
	"time"

	"fairrank/internal/histogram"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
)

// Beam generalizes the balanced algorithm into a beam search: instead of
// committing to the single worst attribute each round, it keeps the `width`
// best frontier partitionings and expands each with every remaining
// attribute, returning the best partitioning ever seen. width = 1 explores
// the same path as Balanced (it may still return an earlier, better
// frontier). This is an extension beyond the paper, motivated by its
// observation that the greedy stopping condition can trap the search.
func Beam(e *Evaluator, attrs []int, width int) (*Result, error) {
	start := time.Now()
	if width < 1 {
		return nil, errors.New("core: beam width must be >= 1")
	}
	if attrs == nil {
		attrs = e.Attrs()
	}
	type state struct {
		st   *matState
		left []int
	}
	res := &Result{Algorithm: "beam"}
	frontier := []state{{st: newMatState(e, []*partition.Partition{partition.Root(e.ds)}), left: attrs}}
	best := frontier[0]

	for {
		// Expand every (frontier state, remaining attribute) pair. The
		// expansions are independent incremental probes, so they fan out
		// across Config.Parallelism; results land at fixed slots and every
		// probe reduces in canonical order, keeping the search identical to
		// a serial run.
		type task struct {
			st   *matState
			a    int
			left []int
		}
		var tasks []task
		for _, s := range frontier {
			for _, a := range s.left {
				tasks = append(tasks, task{st: s.st, a: a, left: s.left})
			}
		}
		if len(tasks) == 0 {
			break
		}
		p := e.cfg.Parallelism
		inner := 1
		if p > len(tasks) {
			inner = p / len(tasks)
		}
		probes := make([]*matState, len(tasks))
		parforeach(len(tasks), p, func(i int) {
			probes[i] = tasks[i].st.probe(tasks[i].a, inner, true)
		})
		next := make([]state, len(tasks))
		for i, t := range tasks {
			next[i] = state{st: probes[i], left: remove(t.left, t.a)}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].st.avg > next[j].st.avg })
		if len(next) > width {
			next = next[:width]
		}
		improved := false
		for _, s := range next {
			if s.st.avg > best.st.avg {
				best = s
				improved = true
			}
		}
		res.Steps = append(res.Steps, TraceStep{
			Attribute:   -1,
			AvgDistance: next[0].st.avg,
			Partitions:  len(next[0].st.parts),
			Accepted:    improved,
		})
		if !improved {
			break
		}
		frontier = next
	}
	res.Partitioning = &partition.Partitioning{Parts: best.st.parts}
	res.Unfairness = best.st.avg
	res.Elapsed = time.Since(start)
	return res, nil
}

// Significance runs a permutation test of the hypothesis that the observed
// unfairness of a partitioning could arise with exchangeable scores: it
// shuffles the score column `rounds` times, recomputes the average pairwise
// distance over the same group sizes each time, and reports the fraction of
// shuffles at least as unfair as the observation (with the +1 correction,
// so the p-value is never exactly 0). A small p-value means the disparity
// is not explainable by sampling noise — a check the paper's point
// estimates do not provide.
func Significance(e *Evaluator, pt *partition.Partitioning, rounds int, seed uint64) (pValue, observed float64, err error) {
	if pt == nil || len(pt.Parts) == 0 {
		return 0, 0, errors.New("core: empty partitioning")
	}
	if rounds < 1 {
		return 0, 0, errors.New("core: need at least one permutation round")
	}
	if err := pt.Validate(e.ds); err != nil {
		return 0, 0, err
	}
	observed = e.Unfairness(pt)

	// Flatten group sizes; under the null, scores are exchangeable, so we
	// shuffle the score column and re-slice it into the same group sizes.
	sizes := make([]int, len(pt.Parts))
	for i, p := range pt.Parts {
		sizes[i] = p.Size()
	}
	scores := make([]float64, len(e.scores))
	copy(scores, e.scores)
	r := rng.New(seed)
	extreme := 0
	for round := 0; round < rounds; round++ {
		r.Shuffle(len(scores), func(i, j int) { scores[i], scores[j] = scores[j], scores[i] })
		if permutedUnfairness(scores, sizes, e.cfg.Bins, e) >= observed {
			extreme++
		}
	}
	pValue = (float64(extreme) + 1) / (float64(rounds) + 1)
	return pValue, observed, nil
}

// permutedUnfairness computes the average pairwise distance of a shuffled
// score column sliced into consecutive groups of the given sizes.
func permutedUnfairness(scores []float64, sizes []int, bins int, e *Evaluator) float64 {
	pmfs := make([][]float64, len(sizes))
	off := 0
	for g, n := range sizes {
		h := histogram.MustNew(bins, 0, 1)
		for i := off; i < off+n; i++ {
			h.Add(scores[i])
		}
		off += n
		pmfs[g] = h.PMF()
	}
	if len(pmfs) < 2 {
		return 0
	}
	sum, pairs := 0.0, 0
	for i := 0; i < len(pmfs); i++ {
		for j := i + 1; j < len(pmfs); j++ {
			sum += e.dist(pmfs[i], pmfs[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}
