package core

import (
	"math"
	"sort"
	"strings"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
)

// figure1Dataset reconstructs the shape of the paper's Figure 1 toy
// example: 10 workers where the optimum partitioning splits on Gender first
// and then only the Male branch on Language, yielding
// {Male∧English, Male∧Indian, Male∧Other, Female}.
func figure1Dataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder(testSchema())
	// Males: score determined by language.
	addWorker(b, "Male", "English", 0.95)
	addWorker(b, "Male", "English", 0.92)
	addWorker(b, "Male", "Indian", 0.05)
	addWorker(b, "Male", "Indian", 0.08)
	addWorker(b, "Male", "Other", 0.35)
	addWorker(b, "Male", "Other", 0.35)
	// Females: homogeneous scores regardless of language.
	addWorker(b, "Female", "English", 0.65)
	addWorker(b, "Female", "English", 0.65)
	addWorker(b, "Female", "Indian", 0.65)
	addWorker(b, "Female", "Other", 0.65)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func labelsOf(pt *partition.Partitioning, s *dataset.Schema) []string {
	out := make([]string, len(pt.Parts))
	for i, p := range pt.Parts {
		out[i] = p.Label(s)
	}
	sort.Strings(out)
	return out
}

func TestFigure1UnbalancedFindsOptimum(t *testing.T) {
	ds := figure1Dataset(t)
	e := mustEval(t, ds, Config{Bins: 10})
	res := Unbalanced(e, nil)
	want := []string{
		"Gender=Female",
		"Gender=Male ∧ Language=English",
		"Gender=Male ∧ Language=Indian",
		"Gender=Male ∧ Language=Other",
	}
	got := labelsOf(res.Partitioning, ds.Schema())
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("unbalanced partitioning = %v, want %v", got, want)
	}
	if math.Abs(res.Unfairness-0.5) > 1e-9 {
		t.Fatalf("unfairness = %v, want 0.5", res.Unfairness)
	}
	if err := res.Partitioning.Validate(ds); err != nil {
		t.Fatalf("invalid partitioning: %v", err)
	}
}

func TestFigure1ExhaustiveAgrees(t *testing.T) {
	ds := figure1Dataset(t)
	e := mustEval(t, ds, Config{Bins: 10})
	ex, err := Exhaustive(e, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.Unfairness-0.5) > 1e-9 {
		t.Fatalf("exhaustive optimum = %v, want 0.5", ex.Unfairness)
	}
	// The heuristic must match the exact optimum on this instance.
	ub := Unbalanced(e, nil)
	if math.Abs(ub.Unfairness-ex.Unfairness) > 1e-9 {
		t.Fatalf("unbalanced %v != exhaustive %v", ub.Unfairness, ex.Unfairness)
	}
}

func TestFigure1BalancedStopsAtGender(t *testing.T) {
	// balanced splits every partition on the same attribute, so it cannot
	// express the Figure 1 optimum; it should split Gender (avg 0.4) and
	// stop, because also splitting Language lowers the average to 0.36.
	ds := figure1Dataset(t)
	e := mustEval(t, ds, Config{Bins: 10})
	res := Balanced(e, nil)
	got := labelsOf(res.Partitioning, ds.Schema())
	want := []string{"Gender=Female", "Gender=Male"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("balanced partitioning = %v, want %v", got, want)
	}
	if math.Abs(res.Unfairness-0.4) > 1e-9 {
		t.Fatalf("balanced unfairness = %v, want 0.4", res.Unfairness)
	}
	// Trace: first step accepted (Gender), second rejected (Language).
	if len(res.Steps) != 2 || !res.Steps[0].Accepted || res.Steps[1].Accepted {
		t.Fatalf("trace = %+v", res.Steps)
	}
}

// genderBiased builds a dataset scored by the paper's f6: males > 0.8,
// females < 0.2, independent of every other attribute.
func genderBiased(t *testing.T, n int, seed uint64) (*dataset.Dataset, scoring.Func) {
	t.Helper()
	r := rng.New(seed)
	b := dataset.NewBuilder(testSchema())
	for i := 0; i < n; i++ {
		addWorker(b, rng.Pick(r, []string{"Male", "Female"}),
			rng.Pick(r, []string{"English", "Indian", "Other"}), 0)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := scoring.NewRuleFunc("f6", seed, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, f6
}

func TestBalancedRecoversDesignedBias(t *testing.T) {
	// Table 3 / qualitative result: "for f6, balanced partitions the
	// workers on only gender" with average EMD ≈ 0.8.
	ds, f6 := genderBiased(t, 500, 21)
	e, err := NewEvaluator(ds, f6, Config{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := Balanced(e, nil)
	used := res.Partitioning.AttributesUsed()
	if len(used) != 1 || used[0] != 0 {
		t.Fatalf("balanced used attributes %v, want only Gender", used)
	}
	if res.Unfairness < 0.75 || res.Unfairness > 0.85 {
		t.Fatalf("f6 unfairness = %v, want ~0.8", res.Unfairness)
	}
}

func TestBalancedBeatsRandomOnBias(t *testing.T) {
	// On a designed-bias function the greedy choice must do at least as
	// well as the random baselines and all-attributes (Table 3 shape).
	ds, f6 := genderBiased(t, 400, 23)
	e, err := NewEvaluator(ds, f6, Config{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	bal := Balanced(e, nil)
	all := AllAttributes(e, nil)
	rb := RBalanced(e, nil, rng.New(99))
	if bal.Unfairness < all.Unfairness-1e-9 {
		t.Errorf("balanced %v < all-attributes %v", bal.Unfairness, all.Unfairness)
	}
	if bal.Unfairness < rb.Unfairness-1e-9 {
		t.Errorf("balanced %v < r-balanced %v", bal.Unfairness, rb.Unfairness)
	}
}

func TestAllAttributesFullSplit(t *testing.T) {
	ds := randomDataset(t, 200, 31)
	e := mustEval(t, ds, Config{})
	res := AllAttributes(e, nil)
	if err := res.Partitioning.Validate(ds); err != nil {
		t.Fatal(err)
	}
	// Every partition must be constrained on both attributes.
	for _, p := range res.Partitioning.Parts {
		if len(p.Constraints) != 2 {
			t.Fatalf("partition %v not fully split", p.Constraints)
		}
	}
	if got := res.Partitioning.Size(); got > 6 {
		t.Fatalf("%d partitions from a 2x3 attribute cross", got)
	}
}

func TestAllResultsValid(t *testing.T) {
	ds := randomDataset(t, 300, 37)
	e := mustEval(t, ds, Config{})
	r := rng.New(5)
	results := []*Result{
		Balanced(e, nil),
		Unbalanced(e, nil),
		RBalanced(e, nil, r),
		RUnbalanced(e, nil, r),
		AllAttributes(e, nil),
	}
	names := map[string]bool{}
	for _, res := range results {
		if err := res.Partitioning.Validate(ds); err != nil {
			t.Errorf("%s: invalid partitioning: %v", res.Algorithm, err)
		}
		if res.Unfairness < 0 {
			t.Errorf("%s: negative unfairness", res.Algorithm)
		}
		if res.Elapsed < 0 {
			t.Errorf("%s: negative elapsed", res.Algorithm)
		}
		names[res.Algorithm] = true
	}
	for _, want := range []string{"balanced", "unbalanced", "r-balanced", "r-unbalanced", "all-attributes"} {
		if !names[want] {
			t.Errorf("missing algorithm %q", want)
		}
	}
}

func TestUnfairnessMatchesReportedResult(t *testing.T) {
	// Result.Unfairness must equal re-evaluating the partitioning.
	ds := randomDataset(t, 250, 41)
	e := mustEval(t, ds, Config{})
	for _, res := range []*Result{Balanced(e, nil), Unbalanced(e, nil), AllAttributes(e, nil)} {
		if got := e.Unfairness(res.Partitioning); math.Abs(got-res.Unfairness) > 1e-12 {
			t.Errorf("%s: reported %v, re-evaluated %v", res.Algorithm, res.Unfairness, got)
		}
	}
}

func TestEmptyAttributeSet(t *testing.T) {
	ds := randomDataset(t, 50, 43)
	e := mustEval(t, ds, Config{})
	for _, res := range []*Result{
		Balanced(e, []int{}),
		Unbalanced(e, []int{}),
		AllAttributes(e, []int{}),
	} {
		if res.Partitioning.Size() != 1 || res.Unfairness != 0 {
			t.Errorf("%s with no attrs: size=%d unfairness=%v",
				res.Algorithm, res.Partitioning.Size(), res.Unfairness)
		}
		if err := res.Partitioning.Validate(ds); err != nil {
			t.Errorf("%s: %v", res.Algorithm, err)
		}
	}
}

func TestSingleAttribute(t *testing.T) {
	ds := randomDataset(t, 100, 47)
	e := mustEval(t, ds, Config{})
	res := Balanced(e, []int{0})
	if got := len(res.Partitioning.AttributesUsed()); got != 1 {
		t.Fatalf("used %d attributes, want 1", got)
	}
	res2 := Unbalanced(e, []int{0})
	if err := res2.Partitioning.Validate(ds); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	ds := randomDataset(t, 200, 53)
	e1 := mustEval(t, ds, Config{})
	e2 := mustEval(t, ds, Config{})
	a := Balanced(e1, nil)
	b := Balanced(e2, nil)
	if a.Unfairness != b.Unfairness || a.Partitioning.Size() != b.Partitioning.Size() {
		t.Fatal("balanced is not deterministic")
	}
	ra := RBalanced(e1, nil, rng.New(7))
	rb := RBalanced(e2, nil, rng.New(7))
	if ra.Unfairness != rb.Unfairness {
		t.Fatal("r-balanced with equal seeds differs")
	}
}

func TestExhaustiveBudget(t *testing.T) {
	ds := randomDataset(t, 50, 59)
	e := mustEval(t, ds, Config{})
	if _, err := Exhaustive(e, nil, 2); err != partition.ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestExhaustiveDominatesHeuristics(t *testing.T) {
	// On instances small enough to enumerate, the exact optimum is an
	// upper bound for every heuristic.
	for seed := uint64(0); seed < 5; seed++ {
		ds := randomDataset(t, 60, 100+seed)
		e := mustEval(t, ds, Config{})
		ex, err := Exhaustive(e, nil, 100000)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		for _, res := range []*Result{
			Balanced(e, nil), Unbalanced(e, nil),
			RBalanced(e, nil, r), RUnbalanced(e, nil, r), AllAttributes(e, nil),
		} {
			if res.Unfairness > ex.Unfairness+1e-9 {
				t.Errorf("seed %d: %s (%v) beat exhaustive (%v)",
					seed, res.Algorithm, res.Unfairness, ex.Unfairness)
			}
		}
	}
}

func TestTraceSteps(t *testing.T) {
	ds := randomDataset(t, 150, 61)
	e := mustEval(t, ds, Config{})
	res := Balanced(e, nil)
	if len(res.Steps) == 0 {
		t.Fatal("no trace steps")
	}
	if !res.Steps[0].Accepted {
		t.Fatal("first split must always be accepted")
	}
	for _, s := range res.Steps {
		if s.Attribute < 0 || s.Attribute >= len(ds.Schema().Protected) {
			t.Errorf("step attribute %d out of range", s.Attribute)
		}
	}
}
