package core

import (
	"sync"
	"sync/atomic"
)

// cacheShards is the shard count of every concurrent cache in the
// evaluator. A power of two so shard selection is a mask.
const cacheShards = 64

// rep is the interned representation of one partition's score
// distribution: a dense handle plus the payload the configured mode
// compares — the normalized PMF in binned mode, the sorted score sample
// in Exact mode. Reps are immutable once published.
type rep struct {
	id   uint32
	data []float64
	// qcdf is the fixed-point quantized CDF of data, filled at intern time
	// when the evaluator's pruning cascade is active (binned EMD mode) so
	// the bound kernels never touch float payloads. Nil when pruning is
	// off; immutable once published like the rest of the rep.
	qcdf []int64
}

// repCache interns partition representations behind dense handles. Two
// keyed layers share one handle space:
//
//   - a string layer for arbitrary partitions, keyed by the canonical
//     constraint key (Partition.Key), used by the public entry points;
//   - an integer layer for children derived by the scatter-split path,
//     keyed by (parent handle, attribute, value) — which fully determines
//     the child's content — so probe loops never build string keys.
//
// Both layers are sharded so concurrent candidate probes do not
// serialize on a single mutex (the old evaluator's single map+mutex made
// the parallel path bypass the cache entirely).
type repCache struct {
	next atomic.Uint32 // dense handles handed out so far
	// quant, when non-nil, derives a rep's fixed-point quantized CDF from
	// its payload at intern time. It is set once, before any intern, by
	// evaluators whose pruning cascade is enabled; reps published while it
	// is set carry a non-nil qcdf.
	quant   func([]float64) []int64
	byKey   [cacheShards]repKeyShard
	byChild [cacheShards]repChildShard
}

type repKeyShard struct {
	mu sync.RWMutex
	m  map[string]*rep
}

type repChildShard struct {
	mu sync.RWMutex
	m  map[uint64]*rep
}

func newRepCache() *repCache {
	c := &repCache{}
	for i := range c.byKey {
		c.byKey[i].m = make(map[string]*rep)
	}
	for i := range c.byChild {
		c.byChild[i].m = make(map[uint64]*rep)
	}
	return c
}

// fnv1a hashes a string for shard selection.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix spreads an integer key across shards (Fibonacci hashing).
func mix(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

// internKey returns the rep interned under the canonical partition key,
// building its payload at most once per content via build.
func (c *repCache) internKey(key string, build func() []float64) *rep {
	s := &c.byKey[fnv1a(key)&(cacheShards-1)]
	s.mu.RLock()
	r, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return r
	}
	data := build()
	var q []int64
	if c.quant != nil {
		q = c.quant(data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.m[key]; ok {
		return r
	}
	r = &rep{id: c.next.Add(1) - 1, data: data, qcdf: q}
	s.m[key] = r
	return r
}

// childKey packs a scatter-split child identity. Attribute indices and
// value codes are both far below 16 bits (codes are uint16 in the
// dataset), so the triple fits one word.
func childKey(parent uint32, attr, value int) uint64 {
	return uint64(parent)<<32 | uint64(attr)<<16 | uint64(value)
}

// lookupChild returns the interned rep of a scatter-split child, if any.
func (c *repCache) lookupChild(key uint64) (*rep, bool) {
	s := &c.byChild[mix(key)&(cacheShards-1)]
	s.mu.RLock()
	r, ok := s.m[key]
	s.mu.RUnlock()
	return r, ok
}

// internChild publishes a scatter-split child rep, keeping the first
// writer's rep on a race so handles stay stable.
func (c *repCache) internChild(key uint64, data []float64) *rep {
	var q []int64
	if c.quant != nil {
		q = c.quant(data)
	}
	s := &c.byChild[mix(key)&(cacheShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.m[key]; ok {
		return r
	}
	r := &rep{id: c.next.Add(1) - 1, data: data, qcdf: q}
	s.m[key] = r
	return r
}

// count reports how many distinct representations were materialized.
func (c *repCache) count() int { return int(c.next.Load()) }

// shardLens reports the per-shard occupancy of both keyed layers
// combined: shardLens()[i] is how many interned reps shard i holds.
func (c *repCache) shardLens() []int {
	out := make([]int, cacheShards)
	for i := range out {
		c.byKey[i].mu.RLock()
		n := len(c.byKey[i].m)
		c.byKey[i].mu.RUnlock()
		c.byChild[i].mu.RLock()
		n += len(c.byChild[i].m)
		c.byChild[i].mu.RUnlock()
		out[i] = n
	}
	return out
}

// pairCache caches distances between interned representations, keyed by
// the packed ordered handle pair, sharded like repCache. misses counts
// every distance actually computed by the evaluator — including ones the
// incremental engine resolves into probe-local matrices without storing
// here — so CacheStats reflects real work done. hits counts lookups
// served from the cache; the session layer reports the delta of both as
// per-run stats.
type pairCache struct {
	misses atomic.Int64
	hits   atomic.Int64
	shards [cacheShards]pairShard
}

type pairShard struct {
	mu sync.Mutex
	m  map[uint64]float64
}

func newPairCache() *pairCache {
	c := &pairCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]float64)
	}
	return c
}

func (c *pairCache) get(key uint64) (float64, bool) {
	s := &c.shards[mix(key)&(cacheShards-1)]
	s.mu.Lock()
	d, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return d, ok
}

func (c *pairCache) put(key uint64, d float64) {
	s := &c.shards[mix(key)&(cacheShards-1)]
	s.mu.Lock()
	s.m[key] = d
	s.mu.Unlock()
}

func (c *pairCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// shardLens reports per-shard occupancy: shardLens()[i] is how many
// cached distances shard i holds — the distribution (not just the
// aggregate) is what reveals a bad hash or a hot shard.
func (c *pairCache) shardLens() []int {
	out := make([]int, cacheShards)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = len(s.m)
		s.mu.Unlock()
	}
	return out
}
