package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
)

// quickDataset is randomDataset without a *testing.T, for testing/quick
// properties.
func quickDataset(n int, seed uint64) (*dataset.Dataset, error) {
	r := rng.New(seed)
	b := dataset.NewBuilder(testSchema())
	for i := 0; i < n; i++ {
		b.Add("w", map[string]any{
			"Gender":   rng.Pick(r, []string{"Male", "Female"}),
			"Language": rng.Pick(r, []string{"English", "Indian", "Other"}),
		}, map[string]any{"Score": r.Float64()})
	}
	return b.Build()
}

// TestQuickIncrementalDelta is the property-based gate on the delta
// engine: for random datasets, random split sequences, and random
// configurations (binned and Exact, serial and parallel, with and without
// the min-size guard), the incrementally maintained average of every
// intermediate state — balanced probes, unbalanced groupings, and
// replaceFirst merges — agrees with a from-scratch AvgPairwise evaluation
// to 1e-12.
func TestQuickIncrementalDelta(t *testing.T) {
	prop := func(seed uint64, exact bool, minSize uint8) bool {
		n := 150 + int(seed%150)
		ds, err := quickDataset(n, seed)
		if err != nil {
			return false
		}
		cfg := Config{Bins: 8, Parallelism: 1 + int(seed%4), Exact: exact}
		if minSize%2 == 0 {
			cfg.MinPartitionSize = 2 + int(minSize)%40
		}
		e, err := NewEvaluator(ds, scoreFunc, cfg)
		if err != nil {
			return false
		}
		// Fresh evaluator for the from-scratch side so no cache is shared.
		ref, err := NewEvaluator(ds, scoreFunc, cfg)
		if err != nil {
			return false
		}
		close := func(got, want float64) bool { return math.Abs(got-want) <= 1e-12 }

		r := rng.New(seed ^ 0x9E3779B9)
		attrs := e.Attrs()
		r.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })

		// Balanced-style chain: probe each attribute in sequence, checking
		// the running average at every step.
		s := newMatState(e, []*partition.Partition{partition.Root(ds)})
		for _, a := range attrs {
			s = s.probe(a, e.cfg.Parallelism, true)
			if !close(s.avg, refAvg(ref, s.parts)) {
				return false
			}
		}

		// Unbalanced-style delta: from a first split, regroup around a
		// random part, locally split it, and merge against the siblings.
		s = newMatState(e, []*partition.Partition{partition.Root(ds)})
		s = s.probe(attrs[0], e.cfg.Parallelism, true)
		if len(s.parts) > 1 && len(attrs) > 1 {
			g := s.group(r.Intn(len(s.parts)))
			if !close(g.avg, refAvg(ref, g.parts)) {
				return false
			}
			children := g.single(0).probe(attrs[1], e.cfg.Parallelism, true)
			if !close(children.avg, refAvg(ref, children.parts)) {
				return false
			}
			merged := g.replaceFirst(children)
			if !close(merged.avg, refAvg(ref, merged.parts)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
