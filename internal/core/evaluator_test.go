package core

import (
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Protected: []dataset.Attribute{
			dataset.Cat("Gender", "Male", "Female"),
			dataset.Cat("Language", "English", "Indian", "Other"),
		},
		Observed: []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
}

// scoreFunc reads the "Score" observed attribute directly.
var scoreFunc = scoring.ScoreFunc{
	FuncName: "identity",
	Fn: func(ds *dataset.Dataset, i int) float64 {
		return ds.Observed(0, i)
	},
}

func addWorker(b *dataset.Builder, gender, lang string, score float64) {
	b.Add("w", map[string]any{"Gender": gender, "Language": lang},
		map[string]any{"Score": score})
}

func randomDataset(t testing.TB, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	r := rng.New(seed)
	b := dataset.NewBuilder(testSchema())
	for i := 0; i < n; i++ {
		addWorker(b, rng.Pick(r, []string{"Male", "Female"}),
			rng.Pick(r, []string{"English", "Indian", "Other"}), r.Float64())
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mustEval(t *testing.T, ds *dataset.Dataset, cfg Config) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(ds, scoreFunc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil, scoreFunc, Config{}); err == nil {
		t.Error("nil dataset accepted")
	}
	ds := randomDataset(t, 10, 1)
	if _, err := NewEvaluator(ds, nil, Config{}); err == nil {
		t.Error("nil function accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	ds := randomDataset(t, 10, 1)
	e := mustEval(t, ds, Config{})
	cfg := e.Config()
	if cfg.Bins != 10 || cfg.Parallelism < 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	ds := randomDataset(t, 10, 2)
	e := mustEval(t, ds, Config{})
	if e.Dataset() != ds || e.Func().Name() != "identity" {
		t.Error("accessors wrong")
	}
	if len(e.Scores()) != 10 {
		t.Error("scores not precomputed")
	}
	if got := e.Attrs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Attrs = %v", got)
	}
}

func TestHistogramMatchesScores(t *testing.T) {
	b := dataset.NewBuilder(testSchema())
	addWorker(b, "Male", "English", 0.05)
	addWorker(b, "Male", "English", 0.95)
	ds, _ := b.Build()
	e := mustEval(t, ds, Config{Bins: 10})
	h := e.Histogram(partition.Root(ds))
	if h.Count(0) != 1 || h.Count(9) != 1 || h.Total() != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestPairDistanceKnown(t *testing.T) {
	b := dataset.NewBuilder(testSchema())
	addWorker(b, "Male", "English", 0.05)   // bin 0
	addWorker(b, "Female", "English", 0.95) // bin 9
	ds, _ := b.Build()
	e := mustEval(t, ds, Config{Bins: 10})
	parts := partition.Split(ds, partition.Root(ds), 0)
	if len(parts) != 2 {
		t.Fatal("expected two gender partitions")
	}
	d := e.PairDistance(parts[0], parts[1])
	if math.Abs(d-0.9) > 1e-12 {
		t.Fatalf("pair distance = %v, want 0.9", d)
	}
	// Second call must hit the cache (no new misses).
	_, _, misses := e.CacheStats()
	_ = e.PairDistance(parts[1], parts[0])
	_, _, misses2 := e.CacheStats()
	if misses2 != misses {
		t.Fatal("symmetric pair not cached")
	}
}

func TestAvgPairwiseDegenerate(t *testing.T) {
	ds := randomDataset(t, 10, 3)
	e := mustEval(t, ds, Config{})
	if got := e.AvgPairwise(nil); got != 0 {
		t.Errorf("AvgPairwise(nil) = %v", got)
	}
	if got := e.AvgPairwise([]*partition.Partition{partition.Root(ds)}); got != 0 {
		t.Errorf("single partition = %v", got)
	}
	if got := e.Unfairness(nil); got != 0 {
		t.Errorf("Unfairness(nil) = %v", got)
	}
}

func TestAvgPairwiseSerialMatchesParallel(t *testing.T) {
	// Force a partitioning with enough parts that the missing-pair fill
	// actually fans out (well past parallelFillThreshold pairs), using a
	// schema with one high-cardinality attribute.
	schema := &dataset.Schema{
		Protected: []dataset.Attribute{dataset.Num("Cell", 0, 1, 100)},
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	r := rng.New(11)
	b := dataset.NewBuilder(schema)
	for i := 0; i < 2000; i++ {
		b.Add("w", map[string]any{"Cell": r.Float64()}, map[string]any{"Score": r.Float64()})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := scoring.ScoreFunc{FuncName: "s", Fn: func(ds *dataset.Dataset, i int) float64 { return ds.Observed(0, i) }}

	serial, _ := NewEvaluator(ds, f, Config{Parallelism: 1})
	par, _ := NewEvaluator(ds, f, Config{Parallelism: 4})
	parts := partition.Split(ds, partition.Root(ds), 0)
	if pairs := len(parts) * (len(parts) - 1) / 2; pairs < parallelFillThreshold {
		t.Fatalf("only %d pairs; need >= %d for this test", pairs, parallelFillThreshold)
	}
	a := serial.AvgPairwise(parts)
	b2 := par.AvgPairwise(parts)
	if a != b2 {
		t.Fatalf("serial %v != parallel %v (must be bit-identical)", a, b2)
	}
}

func TestCacheStatsParallelAccounting(t *testing.T) {
	// The old evaluator's parallel branch bypassed the pair cache and never
	// counted its distance computations, so CacheStats lied for exactly the
	// runs the ablation benchmarks care about. Pin the fixed behavior: a
	// parallel AvgPairwise over many parts populates the cache and counts
	// every computed distance as a miss, and a repeat run computes nothing.
	schema := &dataset.Schema{
		Protected: []dataset.Attribute{dataset.Num("Cell", 0, 1, 100)},
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	r := rng.New(5)
	b := dataset.NewBuilder(schema)
	for i := 0; i < 2000; i++ {
		b.Add("w", map[string]any{"Cell": r.Float64()}, map[string]any{"Score": r.Float64()})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := scoring.ScoreFunc{FuncName: "s", Fn: func(ds *dataset.Dataset, i int) float64 { return ds.Observed(0, i) }}
	e, err := NewEvaluator(ds, f, Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	parts := partition.Split(ds, partition.Root(ds), 0)
	k := len(parts)
	if k < 64 {
		t.Fatalf("only %d parts; need a large partitioning", k)
	}
	_ = e.AvgPairwise(parts)
	wantPairs := k * (k - 1) / 2
	hists, pairs, misses := e.CacheStats()
	if hists != k {
		t.Errorf("histograms = %d, want %d", hists, k)
	}
	if pairs != wantPairs {
		t.Errorf("cached pairs = %d, want %d", pairs, wantPairs)
	}
	if misses != wantPairs {
		t.Errorf("misses = %d, want %d", misses, wantPairs)
	}
	_ = e.AvgPairwise(parts)
	if _, _, again := e.CacheStats(); again != misses {
		t.Errorf("repeat run computed %d new distances, want 0", again-misses)
	}
}

func TestMetricSelection(t *testing.T) {
	b := dataset.NewBuilder(testSchema())
	addWorker(b, "Male", "English", 0.05)
	addWorker(b, "Female", "English", 0.95)
	ds, _ := b.Build()
	parts := partition.Split(ds, partition.Root(ds), 0)

	metrics := map[emd.Metric]float64{
		emd.MetricEMD:       0.9,
		emd.MetricL1:        2,
		emd.MetricTV:        1,
		emd.MetricChiSquare: 2,
		emd.MetricJS:        1,
		emd.MetricKS:        1,
		emd.MetricHellinger: 1,
	}
	for m, want := range metrics {
		e := mustEval(t, ds, Config{Bins: 10, Metric: m})
		got := e.PairDistance(parts[0], parts[1])
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("metric %v distance = %v, want %v", m, got, want)
		}
	}
}

func TestGroundIndexUnit(t *testing.T) {
	b := dataset.NewBuilder(testSchema())
	addWorker(b, "Male", "English", 0.05)
	addWorker(b, "Female", "English", 0.95)
	ds, _ := b.Build()
	parts := partition.Split(ds, partition.Root(ds), 0)
	e := mustEval(t, ds, Config{Bins: 10, Ground: emd.GroundIndex})
	if d := e.PairDistance(parts[0], parts[1]); math.Abs(d-1) > 1e-12 {
		t.Fatalf("index-ground distance = %v, want 1", d)
	}
}
