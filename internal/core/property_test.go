package core

import (
	"testing"
	"testing/quick"

	"fairrank/internal/partition"
	"fairrank/internal/rng"
)

// Property: AvgPairwise is invariant under the order of the partitions.
func TestAvgPairwiseOrderInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ds := randomDataset(&testing.T{}, 40+r.Intn(100), seed)
		e, err := NewEvaluator(ds, scoreFunc, Config{})
		if err != nil {
			return false
		}
		parts := partition.SplitAll(ds, partition.Split(ds, partition.Root(ds), 0), 1)
		base := e.AvgPairwise(parts)
		shuffled := make([]*partition.Partition, len(parts))
		copy(shuffled, parts)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Equal up to floating-point summation order.
		diff := e.AvgPairwise(shuffled) - base
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every accepted balanced step strictly increases the average
// pairwise distance (by construction of the stopping rule).
func TestBalancedTraceMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		ds := randomDataset(&testing.T{}, 60+int(seed%150), seed)
		e, err := NewEvaluator(ds, scoreFunc, Config{})
		if err != nil {
			return false
		}
		res := Balanced(e, nil)
		prev := -1.0
		for _, s := range res.Steps {
			if !s.Accepted {
				// A rejected step must not improve on the running value.
				if s.AvgDistance > prev {
					return false
				}
				continue
			}
			if prev >= 0 && s.AvgDistance <= prev {
				return false
			}
			prev = s.AvgDistance
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: all five algorithms always return valid full partitionings
// whose reported unfairness matches re-evaluation, on arbitrary seeds.
func TestAlgorithmsAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ds := randomDataset(&testing.T{}, 30+r.Intn(120), seed)
		e, err := NewEvaluator(ds, scoreFunc, Config{Bins: 5 + r.Intn(20)})
		if err != nil {
			return false
		}
		results := []*Result{
			Balanced(e, nil),
			Unbalanced(e, nil),
			RBalanced(e, nil, r),
			RUnbalanced(e, nil, r),
			AllAttributes(e, nil),
		}
		for _, res := range results {
			if res.Partitioning.Validate(ds) != nil {
				return false
			}
			diff := e.Unfairness(res.Partitioning) - res.Unfairness
			if diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the MinPartitionSize guard is respected for every algorithm
// and random minimum.
func TestMinSizeGuardProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(150)
		min := 2 + r.Intn(20)
		ds := randomDataset(&testing.T{}, n, seed)
		e, err := NewEvaluator(ds, scoreFunc, Config{MinPartitionSize: min})
		if err != nil {
			return false
		}
		for _, res := range []*Result{Balanced(e, nil), Unbalanced(e, nil), AllAttributes(e, nil)} {
			for _, p := range res.Partitioning.Parts {
				if p.Size() < min && p.Size() != n {
					// The root itself may be smaller than min only if
					// the whole population is.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
