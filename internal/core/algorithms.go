package core

import (
	"time"

	"fairrank/internal/partition"
	"fairrank/internal/rng"
)

// Result is the outcome of running one algorithm.
type Result struct {
	// Algorithm is the canonical algorithm name (e.g. "balanced").
	Algorithm string
	// Partitioning is the most unfair partitioning found.
	Partitioning *partition.Partitioning
	// Unfairness is the average pairwise distance of Partitioning.
	Unfairness float64
	// Elapsed is the wall-clock time the algorithm took.
	Elapsed time.Duration
	// Steps traces the splitting decisions for explainability.
	Steps []TraceStep
}

// TraceStep records one splitting decision.
type TraceStep struct {
	// Attribute is the protected attribute index split on (-1 for the
	// final stop decision).
	Attribute int
	// AvgDistance is the average pairwise distance after the split.
	AvgDistance float64
	// Partitions is the partition count after the split.
	Partitions int
	// Accepted reports whether the split improved unfairness and was kept.
	Accepted bool
}

// chooser selects the attribute to split a state's partitions on, returning
// the attribute and the incrementally evaluated state after splitting every
// partition on it.
type chooser func(s *matState, attrs []int) (attr int, children *matState)

// worstAttribute is the paper's greedy choice: probe every remaining
// attribute (concurrently, under Config.Parallelism) and keep the one whose
// split yields the highest average pairwise distance. Ties break toward the
// lowest attribute index, making runs deterministic regardless of the scan
// order.
func worstAttribute(s *matState, attrs []int) (int, *matState) {
	probes := s.probeAll(attrs)
	best := 0
	for x := 1; x < len(probes); x++ {
		if probes[x].avg > probes[best].avg {
			best = x
		}
	}
	return attrs[best], probes[best]
}

// randomAttribute is the baseline choice used by r-balanced and
// r-unbalanced: a uniformly random remaining attribute.
func randomAttribute(r *rng.RNG) chooser {
	return func(s *matState, attrs []int) (int, *matState) {
		a := attrs[r.Intn(len(attrs))]
		return a, s.probe(a, s.e.cfg.Parallelism, true)
	}
}

// remove returns attrs without a (non-destructively).
func remove(attrs []int, a int) []int {
	out := make([]int, 0, len(attrs)-1)
	for _, x := range attrs {
		if x != a {
			out = append(out, x)
		}
	}
	return out
}

// Balanced runs Algorithm 1: repeatedly split every current partition on
// the worst remaining attribute, stopping when the average pairwise
// distance no longer improves. attrs nil means all protected attributes.
func Balanced(e *Evaluator, attrs []int) *Result {
	return balancedWith(e, attrs, worstAttribute, "balanced")
}

// RBalanced is Balanced with random attribute choice (baseline).
func RBalanced(e *Evaluator, attrs []int, r *rng.RNG) *Result {
	return balancedWith(e, attrs, randomAttribute(r), "r-balanced")
}

func balancedWith(e *Evaluator, attrs []int, choose chooser, name string) *Result {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: name}
	state := newMatState(e, []*partition.Partition{partition.Root(e.ds)})
	if len(attrs) == 0 {
		res.Partitioning = &partition.Partitioning{Parts: state.parts}
		res.Elapsed = time.Since(start)
		return res
	}

	// First split is unconditional (lines 1–4 of Algorithm 1).
	a, children := choose(state, attrs)
	attrs = remove(attrs, a)
	state = children
	res.Steps = append(res.Steps, TraceStep{Attribute: a, AvgDistance: children.avg, Partitions: len(children.parts), Accepted: true})

	for len(attrs) > 0 {
		a, children := choose(state, attrs)
		attrs = remove(attrs, a)
		step := TraceStep{Attribute: a, AvgDistance: children.avg, Partitions: len(children.parts)}
		if state.avg >= children.avg {
			res.Steps = append(res.Steps, step)
			break
		}
		step.Accepted = true
		res.Steps = append(res.Steps, step)
		state = children
	}
	res.Partitioning = &partition.Partitioning{Parts: state.parts}
	res.Unfairness = state.avg
	res.Elapsed = time.Since(start)
	return res
}

// Unbalanced runs Algorithm 2: after an initial split on the worst
// attribute, each partition locally decides whether replacing itself by its
// children (split on its locally worst attribute) increases the average
// pairwise distance against its siblings. attrs nil means all protected
// attributes.
func Unbalanced(e *Evaluator, attrs []int) *Result {
	return unbalancedWith(e, attrs, worstAttribute, "unbalanced")
}

// RUnbalanced is Unbalanced with random attribute choice (baseline).
func RUnbalanced(e *Evaluator, attrs []int, r *rng.RNG) *Result {
	return unbalancedWith(e, attrs, randomAttribute(r), "r-unbalanced")
}

func unbalancedWith(e *Evaluator, attrs []int, choose chooser, name string) *Result {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: name}
	root := partition.Root(e.ds)
	if len(attrs) == 0 {
		res.Partitioning = &partition.Partitioning{Parts: []*partition.Partition{root}}
		res.Elapsed = time.Since(start)
		return res
	}

	a, parts := choose(newMatState(e, []*partition.Partition{root}), attrs)
	rest := remove(attrs, a)
	res.Steps = append(res.Steps, TraceStep{Attribute: a, AvgDistance: parts.avg, Partitions: len(parts.parts), Accepted: true})

	// Each recursion node receives its local group as a matState with the
	// deciding partition first: the group's running average is Algorithm 2's
	// "current" side, and replaceFirst evaluates the "split" side by delta —
	// only child–sibling distances are computed fresh.
	var output []*partition.Partition
	var recurse func(group *matState, attrs []int)
	recurse = func(group *matState, attrs []int) {
		current := group.parts[0]
		if len(attrs) == 0 {
			output = append(output, current)
			return
		}
		currentAvg := group.avg
		a, children := choose(group.single(0), attrs)
		rest := remove(attrs, a)
		merged := group.replaceFirst(children)
		step := TraceStep{Attribute: a, AvgDistance: merged.avg, Partitions: len(children.parts)}
		if currentAvg >= merged.avg {
			res.Steps = append(res.Steps, step)
			output = append(output, current)
			return
		}
		step.Accepted = true
		res.Steps = append(res.Steps, step)
		for x := range children.parts {
			recurse(children.group(x), rest)
		}
	}
	for x := range parts.parts {
		recurse(parts.group(x), rest)
	}

	res.Partitioning = &partition.Partitioning{Parts: output}
	res.Unfairness = e.AvgPairwise(output)
	res.Elapsed = time.Since(start)
	return res
}

// AllAttributes is the full-partitioning baseline: split on every protected
// attribute unconditionally.
func AllAttributes(e *Evaluator, attrs []int) *Result {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	state := newMatState(e, []*partition.Partition{partition.Root(e.ds)})
	res := &Result{Algorithm: "all-attributes"}
	for _, a := range attrs {
		// Every split is unconditional, so intermediate averages are never
		// consulted: scatter-only probes skip the distance work entirely and
		// the triangle is materialized once at the end.
		state = state.probe(a, e.cfg.Parallelism, false)
		res.Steps = append(res.Steps, TraceStep{Attribute: a, Partitions: len(state.parts), Accepted: true})
	}
	state.materialize(e.cfg.Parallelism)
	res.Partitioning = &partition.Partitioning{Parts: state.parts}
	res.Unfairness = state.avg
	if len(res.Steps) > 0 {
		res.Steps[len(res.Steps)-1].AvgDistance = res.Unfairness
	}
	res.Elapsed = time.Since(start)
	return res
}

// ExhaustiveCells solves the optimization problem exactly over the full
// set-partition space: every grouping of the non-empty cells of the
// attribute cross-product, a strict superset of the hierarchical tree space
// Exhaustive searches (and of everything the heuristics can return). The
// space size is the Bell number of the cell count, so this is only usable
// on tiny instances; it exists to quantify how much optimum the tree-shaped
// formulations leave on the table.
func ExhaustiveCells(e *Evaluator, attrs []int, budget int) (*Result, error) {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: "exhaustive-cells", Unfairness: -1}
	err := partition.EnumerateCellGroupings(e.ds, attrs, budget, func(pt *partition.Partitioning) bool {
		u := e.Unfairness(pt)
		if u > res.Unfairness {
			res.Unfairness = u
			res.Partitioning = pt
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if res.Unfairness < 0 {
		res.Unfairness = 0
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Exhaustive solves the optimization problem exactly by enumerating every
// hierarchical split partitioning, subject to a budget on the number of
// partitionings. It returns partition.ErrBudgetExceeded beyond the budget —
// the expected outcome at realistic attribute counts, mirroring the paper's
// brute-force solver that "failed to terminate after running for two days".
func Exhaustive(e *Evaluator, attrs []int, budget int) (*Result, error) {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: "exhaustive", Unfairness: -1}
	err := partition.EnumerateTrees(e.ds, attrs, budget, func(pt *partition.Partitioning) bool {
		u := e.Unfairness(pt)
		if u > res.Unfairness {
			res.Unfairness = u
			res.Partitioning = pt
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if res.Unfairness < 0 {
		res.Unfairness = 0
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
