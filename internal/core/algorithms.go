package core

import (
	"context"
	"time"

	"fairrank/internal/partition"
	"fairrank/internal/rng"
)

// Result is the outcome of running one algorithm.
type Result struct {
	// Algorithm is the canonical algorithm name (e.g. "balanced").
	Algorithm string
	// Partitioning is the most unfair partitioning found.
	Partitioning *partition.Partitioning
	// Unfairness is the average pairwise distance of Partitioning.
	Unfairness float64
	// Elapsed is the wall-clock time the algorithm took.
	Elapsed time.Duration
	// Steps traces the splitting decisions for explainability.
	Steps []TraceStep
	// Stats reports the engine work this run performed; populated by
	// Run, zero when an algorithm function is called directly.
	Stats RunStats
}

// TraceStep records one splitting decision.
type TraceStep struct {
	// Attribute is the protected attribute index split on (-1 for the
	// final stop decision).
	Attribute int
	// AvgDistance is the average pairwise distance after the split.
	AvgDistance float64
	// Partitions is the partition count after the split.
	Partitions int
	// Accepted reports whether the split improved unfairness and was kept.
	Accepted bool
}

// chooser selects the attribute to split a state's partitions on, returning
// the attribute and the incrementally evaluated state after splitting every
// partition on it.
type chooser func(s *matState, attrs []int) (attr int, children *matState)

// worstAttribute is the paper's greedy choice: probe every remaining
// attribute (concurrently, under Config.Parallelism) and keep the one whose
// split yields the highest average pairwise distance. Ties break toward the
// lowest attribute index, making runs deterministic regardless of the scan
// order.
func worstAttribute(s *matState, attrs []int) (int, *matState) {
	probes := s.probeAll(attrs)
	best := 0
	for x := 1; x < len(probes); x++ {
		if probes[x].avg > probes[best].avg {
			best = x
		}
	}
	return attrs[best], probes[best]
}

// randomAttribute is the baseline choice used by r-balanced and
// r-unbalanced: a uniformly random remaining attribute. A single random
// candidate offers nothing to prune, but under Config.Prune the probe
// routes through the lean allocation-free fill (probeLean) so the random
// baselines share the pruned runs' constant factors.
func randomAttribute(r *rng.RNG) chooser {
	return func(s *matState, attrs []int) (int, *matState) {
		a := attrs[r.Intn(len(attrs))]
		if s.e.prune {
			return a, s.probeLean(a, s.e.cfg.Parallelism)
		}
		return a, s.probe(a, s.e.cfg.Parallelism, true)
	}
}

// remove returns attrs without a (non-destructively).
func remove(attrs []int, a int) []int {
	out := make([]int, 0, len(attrs)-1)
	for _, x := range attrs {
		if x != a {
			out = append(out, x)
		}
	}
	return out
}

// Balanced runs Algorithm 1: repeatedly split every current partition on
// the worst remaining attribute, stopping when the average pairwise
// distance no longer improves. attrs nil means all protected attributes.
//
// Balanced, Unbalanced and the other exported algorithm functions are the
// uncancellable direct entry points; session consumers go through Run,
// which adds context cancellation, progress callbacks and per-run stats.
func Balanced(e *Evaluator, attrs []int) *Result {
	res, _ := balancedWith(context.Background(), e, attrs, e.worstChooser(), "balanced", nil)
	return res
}

// RBalanced is Balanced with random attribute choice (baseline).
func RBalanced(e *Evaluator, attrs []int, r *rng.RNG) *Result {
	res, _ := balancedWith(context.Background(), e, attrs, randomAttribute(r), "r-balanced", nil)
	return res
}

func balancedWith(ctx context.Context, e *Evaluator, attrs []int, choose chooser, name string, progress func(TraceStep)) (*Result, error) {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: name}
	emit := func(step TraceStep) {
		res.Steps = append(res.Steps, step)
		if progress != nil {
			progress(step)
		}
	}
	state := newMatState(e, []*partition.Partition{partition.Root(e.ds)})
	state.ctx = ctx
	if len(attrs) == 0 {
		res.Partitioning = &partition.Partitioning{Parts: state.parts}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// First split is unconditional (lines 1–4 of Algorithm 1).
	a, children := choose(state, attrs)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	attrs = remove(attrs, a)
	state = children
	emit(TraceStep{Attribute: a, AvgDistance: children.avg, Partitions: len(children.parts), Accepted: true})

	for len(attrs) > 0 {
		a, children := choose(state, attrs)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		attrs = remove(attrs, a)
		step := TraceStep{Attribute: a, AvgDistance: children.avg, Partitions: len(children.parts)}
		if state.avg >= children.avg {
			emit(step)
			break
		}
		step.Accepted = true
		emit(step)
		state = children
	}
	res.Partitioning = &partition.Partitioning{Parts: state.parts}
	res.Unfairness = state.avg
	res.Elapsed = time.Since(start)
	return res, nil
}

// Unbalanced runs Algorithm 2: after an initial split on the worst
// attribute, each partition locally decides whether replacing itself by its
// children (split on its locally worst attribute) increases the average
// pairwise distance against its siblings. attrs nil means all protected
// attributes.
func Unbalanced(e *Evaluator, attrs []int) *Result {
	res, _ := unbalancedWith(context.Background(), e, attrs, e.worstChooser(), "unbalanced", nil)
	return res
}

// RUnbalanced is Unbalanced with random attribute choice (baseline).
func RUnbalanced(e *Evaluator, attrs []int, r *rng.RNG) *Result {
	res, _ := unbalancedWith(context.Background(), e, attrs, randomAttribute(r), "r-unbalanced", nil)
	return res
}

func unbalancedWith(ctx context.Context, e *Evaluator, attrs []int, choose chooser, name string, progress func(TraceStep)) (*Result, error) {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: name}
	emit := func(step TraceStep) {
		res.Steps = append(res.Steps, step)
		if progress != nil {
			progress(step)
		}
	}
	root := partition.Root(e.ds)
	if len(attrs) == 0 {
		res.Partitioning = &partition.Partitioning{Parts: []*partition.Partition{root}}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	first := newMatState(e, []*partition.Partition{root})
	first.ctx = ctx
	a, parts := choose(first, attrs)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rest := remove(attrs, a)
	emit(TraceStep{Attribute: a, AvgDistance: parts.avg, Partitions: len(parts.parts), Accepted: true})

	// Each recursion node receives its local group as a matState with the
	// deciding partition first: the group's running average is Algorithm 2's
	// "current" side, and replaceFirst evaluates the "split" side by delta —
	// only child–sibling distances are computed fresh.
	var output []*partition.Partition
	var recurse func(group *matState, attrs []int) error
	recurse = func(group *matState, attrs []int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		current := group.parts[0]
		if len(attrs) == 0 {
			output = append(output, current)
			return nil
		}
		currentAvg := group.avg
		a, children := choose(group.single(0), attrs)
		if err := ctx.Err(); err != nil {
			return err
		}
		rest := remove(attrs, a)
		merged := group.replaceFirst(children)
		step := TraceStep{Attribute: a, AvgDistance: merged.avg, Partitions: len(children.parts)}
		if currentAvg >= merged.avg {
			emit(step)
			output = append(output, current)
			return nil
		}
		step.Accepted = true
		emit(step)
		for x := range children.parts {
			if err := recurse(children.group(x), rest); err != nil {
				return err
			}
		}
		return nil
	}
	for x := range parts.parts {
		if err := recurse(parts.group(x), rest); err != nil {
			return nil, err
		}
	}

	res.Partitioning = &partition.Partitioning{Parts: output}
	res.Unfairness = e.avgPairwiseAuto(output)
	res.Elapsed = time.Since(start)
	return res, nil
}

// AllAttributes is the full-partitioning baseline: split on every protected
// attribute unconditionally.
func AllAttributes(e *Evaluator, attrs []int) *Result {
	res, _ := allAttributesCtx(context.Background(), e, attrs, nil)
	return res
}

func allAttributesCtx(ctx context.Context, e *Evaluator, attrs []int, progress func(TraceStep)) (*Result, error) {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	state := newMatState(e, []*partition.Partition{partition.Root(e.ds)})
	state.ctx = ctx
	res := &Result{Algorithm: "all-attributes"}
	for _, a := range attrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Every split is unconditional, so intermediate averages are never
		// consulted: scatter-only probes skip the distance work entirely and
		// the triangle is materialized once at the end.
		state = state.probe(a, e.cfg.Parallelism, false)
		step := TraceStep{Attribute: a, Partitions: len(state.parts), Accepted: true}
		res.Steps = append(res.Steps, step)
		if progress != nil {
			progress(step)
		}
	}
	state.materialize(e.cfg.Parallelism)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Partitioning = &partition.Partitioning{Parts: state.parts}
	res.Unfairness = state.avg
	if len(res.Steps) > 0 {
		res.Steps[len(res.Steps)-1].AvgDistance = res.Unfairness
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// ExhaustiveCells solves the optimization problem exactly over the full
// set-partition space: every grouping of the non-empty cells of the
// attribute cross-product, a strict superset of the hierarchical tree space
// Exhaustive searches (and of everything the heuristics can return). The
// space size is the Bell number of the cell count, so this is only usable
// on tiny instances; it exists to quantify how much optimum the tree-shaped
// formulations leave on the table.
func ExhaustiveCells(e *Evaluator, attrs []int, budget int) (*Result, error) {
	return exhaustiveCellsCtx(context.Background(), e, attrs, budget)
}

func exhaustiveCellsCtx(ctx context.Context, e *Evaluator, attrs []int, budget int) (*Result, error) {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: "exhaustive-cells", Unfairness: -1}
	err := partition.EnumerateCellGroupings(e.ds, attrs, budget, func(pt *partition.Partitioning) bool {
		if ctx.Err() != nil {
			return false
		}
		u, skipped := e.unfairnessBounded(ctx, pt, res.Unfairness)
		if skipped {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		if u > res.Unfairness {
			res.Unfairness = u
			res.Partitioning = pt
		}
		return true
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	if res.Unfairness < 0 {
		res.Unfairness = 0
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Exhaustive solves the optimization problem exactly by enumerating every
// hierarchical split partitioning, subject to a budget on the number of
// partitionings. It returns partition.ErrBudgetExceeded beyond the budget —
// the expected outcome at realistic attribute counts, mirroring the paper's
// brute-force solver that "failed to terminate after running for two days".
func Exhaustive(e *Evaluator, attrs []int, budget int) (*Result, error) {
	return exhaustiveCtx(context.Background(), e, attrs, budget)
}

// exhaustiveCtx checks ctx before and during every candidate evaluation.
// Note that EnumerateTrees materializes its option lists before the first
// yield, so with budgets far above the default the solver observes ctx only
// once candidates start flowing; exhaustiveCellsCtx streams from the start.
func exhaustiveCtx(ctx context.Context, e *Evaluator, attrs []int, budget int) (*Result, error) {
	start := time.Now()
	if attrs == nil {
		attrs = e.Attrs()
	}
	res := &Result{Algorithm: "exhaustive", Unfairness: -1}
	err := partition.EnumerateTrees(e.ds, attrs, budget, func(pt *partition.Partitioning) bool {
		if ctx.Err() != nil {
			return false
		}
		u, skipped := e.unfairnessBounded(ctx, pt, res.Unfairness)
		if skipped {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		if u > res.Unfairness {
			res.Unfairness = u
			res.Partitioning = pt
		}
		return true
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	if res.Unfairness < 0 {
		res.Unfairness = 0
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
