package core_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// Differential test for the zero-copy snapshot backing: for every
// registered algorithm, an audit over an mmap-backed dataset must be
// bit-identical to the same audit over the in-memory dataset it was
// serialized from — same unfairness bits, same partitioning, same trace,
// and (serially) the same pair-accounting stats. This is the contract that
// lets fairserve audit spilled uploads without ever materializing the
// columns on the heap.

// mappedCopy round-trips ds through a snapshot file and opens it mmap'd.
func mappedCopy(t *testing.T, ds *dataset.Dataset) *dataset.Dataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mapped, err := dataset.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mapped.Close() })
	return mapped
}

func sameResult(t *testing.T, label string, mem, mmapped *core.Result, wantStats bool) {
	t.Helper()
	if math.Float64bits(mmapped.Unfairness) != math.Float64bits(mem.Unfairness) {
		t.Errorf("%s: unfairness %v (mmap) != %v (mem)", label, mmapped.Unfairness, mem.Unfairness)
	}
	schema := simulate.PaperSchema()
	if got, want := mmapped.Partitioning.Describe(schema), mem.Partitioning.Describe(schema); got != want {
		t.Errorf("%s: partitioning differs\nmmap:\n%s\nmem:\n%s", label, got, want)
	}
	if len(mmapped.Steps) != len(mem.Steps) {
		t.Fatalf("%s: %d trace steps (mmap) != %d (mem)", label, len(mmapped.Steps), len(mem.Steps))
	}
	for i := range mem.Steps {
		ms, ws := mmapped.Steps[i], mem.Steps[i]
		if ms.Attribute != ws.Attribute || ms.Partitions != ws.Partitions || ms.Accepted != ws.Accepted ||
			math.Float64bits(ms.AvgDistance) != math.Float64bits(ws.AvgDistance) {
			t.Errorf("%s: trace step %d differs: %+v (mmap) != %+v (mem)", label, i, ms, ws)
		}
	}
	if wantStats && mmapped.Stats != mem.Stats {
		t.Errorf("%s: stats differ: %+v (mmap) != %+v (mem)", label, mmapped.Stats, mem.Stats)
	}
}

func TestSnapshotAuditBitIdentical(t *testing.T) {
	mem, err := simulate.PaperWorkers(simulate.SmallPopulation, 7)
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedCopy(t, mem)
	f, err := scoring.NewLinear("f", map[string]float64{"LanguageTest": 0.6, "ApprovalRate": 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range core.Algorithms() {
		for _, cfg := range []struct {
			name      string
			config    core.Config
			wantStats bool // serial runs have fully deterministic pair accounting
		}{
			{"serial", core.Config{Parallelism: 1}, true},
			{"serial-prune", core.Config{Parallelism: 1, Prune: true}, true},
			{"parallel", core.Config{}, false},
		} {
			spec := core.Spec{
				Algorithm: algo,
				Func:      f,
				Config:    cfg.config,
				Seed:      11,
			}
			if strings.HasPrefix(algo, "exhaustive") {
				// Gender × Country keeps the enumeration space within the
				// default budget; the heuristics cover all six attributes.
				spec.Attrs = []int{0, 1}
			}
			memSpec, mmapSpec := spec, spec
			memSpec.Dataset = mem
			mmapSpec.Dataset = mapped
			memRes, err := core.Run(context.Background(), memSpec)
			if err != nil {
				t.Fatalf("%s/%s mem: %v", algo, cfg.name, err)
			}
			mmapRes, err := core.Run(context.Background(), mmapSpec)
			if err != nil {
				t.Fatalf("%s/%s mmap: %v", algo, cfg.name, err)
			}
			sameResult(t, algo+"/"+cfg.name, memRes, mmapRes, cfg.wantStats)
		}
	}
}

// TestSnapshotSpecHashIdentical: the dedup/cache key of a job must not
// depend on where the dataset's columns live — the same population hashes
// the same whether heap-backed or mapped.
func TestSnapshotSpecHashIdentical(t *testing.T) {
	mem, err := simulate.PaperWorkers(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedCopy(t, mem)
	f, err := scoring.NewLinear("f", map[string]float64{"LanguageTest": 0.5, "ApprovalRate": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a := core.Spec{Dataset: mem, Func: f}
	b := core.Spec{Dataset: mapped, Func: f}
	ha, hb := a.Hash(), b.Hash()
	if ha != hb {
		t.Errorf("spec hash differs: mem %s, mmap %s", ha, hb)
	}
}
