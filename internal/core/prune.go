package core

import (
	"context"

	"fairrank/internal/emd"
	"fairrank/internal/partition"
	"fairrank/internal/telemetry"
)

// This file implements the branch-and-bound pruning cascade (Config.Prune,
// DESIGN.md §9). The paper's greedy choosers and exhaustive solvers only
// ever consult a candidate partitioning's average pairwise EMD through
// order comparisons — argmax over a candidate scan, or "does it beat the
// running best". The cascade brackets each candidate's average with the
// fixed-point kernels of internal/emd ([lo, hi] guaranteed to contain the
// engine's float result, quantization error included) and evaluates
// exactly only the candidates whose interval can still win the
// comparison. Every decision the algorithms emit — chosen attributes,
// trace averages, final unfairness — comes from an exact evaluation, so
// pruned and unpruned runs are bit-identical; the differential suite
// pins this across every registered algorithm.
//
// Accounting follows a conservation law: a candidate's pair-slot count
// nk·(nk−1)/2 is fixed by its partition structure, and every slot lands
// in exactly one of {computed, cache hit, copied, pruned}. Pruning moves
// slots between the buckets but never changes the per-candidate total,
// which the accounting tests pin by comparing pruned and unpruned runs.

const (
	// pruneKernelMinParts is the child-part count below which a candidate
	// scan skips the bound kernel and evaluates exactly right away: tiny
	// triangles cost less than the bound would, and routing them through
	// the exact path keeps small unit-test workloads exercising it.
	pruneKernelMinParts = 48
	// cacheBypassPairs is the pair count above which a pruned final
	// average skips the shared pair cache entirely: at that size the
	// per-pair mutex+map traffic dominates the distance arithmetic
	// (pairCache.put was 65% of the unbalanced Table 2 profile), and a
	// terminal average has no later consumer for the cached entries.
	cacheBypassPairs = 1 << 16
	// exhaustiveBoundMinParts is the candidate part count above which the
	// exhaustive solvers bound before evaluating. Below it the exact
	// evaluation is mostly cache hits and beats the kernel.
	exhaustiveBoundMinParts = 24
)

// pruneScratch is the reusable buffer set of one bound computation.
type pruneScratch struct {
	rows [][]int64
	col  []int64
}

func (e *Evaluator) getScratch() *pruneScratch {
	if v := e.boundScratch.Get(); v != nil {
		return v.(*pruneScratch)
	}
	return &pruneScratch{}
}

func (e *Evaluator) putScratch(ps *pruneScratch) { e.boundScratch.Put(ps) }

// copiedAcct records n triangle entries copied by a delta path, in both
// the always-on run counter and the telemetry mirror.
func (e *Evaluator) copiedAcct(n int64) {
	e.copied.Add(n)
	e.tel.pairsCopied.Add(n)
}

// prunedAcct records n pair slots skipped by the cascade.
func (e *Evaluator) prunedAcct(n int64) {
	e.pruned.Add(n)
	e.tel.pairsPruned.Add(n)
}

// worstChooser returns the greedy attribute chooser honoring the
// evaluator's pruning gate.
func (e *Evaluator) worstChooser() chooser {
	if e.prune {
		return worstAttributePruned
	}
	return worstAttribute
}

// scatterAll runs the scatter-split pass of a probe — every part split on
// attr — without any distance work, returning the splits and the total
// child count.
func (s *matState) scatterAll(attr int) ([]splitPart, int) {
	_, ssp := telemetry.StartSpan(s.ctx, "split")
	splits := make([]splitPart, len(s.parts))
	for i := range s.parts {
		splits[i] = s.e.scatterSplit(s.reps[i], s.parts[i], attr)
	}
	nk := 0
	for i := range splits {
		nk += len(splits[i].children)
	}
	ssp.SetInt("parents", int64(len(s.parts)))
	ssp.End()
	return splits, nk
}

// boundOfSplits brackets the average pairwise distance of the state that
// exactProbe would build from splits, via the fixed-point kernel over the
// children's quantized CDFs. ok is false when any rep lacks a quantized
// CDF (non-finite payload — never the case for histogram PMFs, but the
// bound refuses rather than guesses).
func (s *matState) boundOfSplits(splits []splitPart) (lo, hi float64, ok bool) {
	e := s.e
	ps := e.getScratch()
	defer e.putScratch(ps)
	rows := ps.rows[:0]
	for i := range splits {
		for _, r := range splits[i].reps {
			if r.qcdf == nil {
				ps.rows = rows
				return 0, 0, false
			}
			rows = append(rows, r.qcdf)
		}
	}
	ps.rows = rows
	lo, hi, ps.col = emd.FixedAvgInterval(rows, e.unit, emd.FixedScale, ps.col)
	e.tel.boundProbes.Inc()
	e.tel.boundWidth.Set(hi - lo)
	return lo, hi, true
}

// exactProbe is probe's exact-fill half over precomputed splits, with a
// leaner inner loop: rows of the fresh triangle are filled in place under
// parforeach — no per-pair work list (whose append-driven growth was 40%
// of the balanced Table 2 profile as runtime.growslice memmove). Distances
// and accounting are identical to probe: aliased×aliased pairs copy from
// this state's triangle, everything else goes through distOf, and the
// average reduces serially in canonical slot order — bit-identical results.
func (s *matState) exactProbe(attr int, splits []splitPart, nk, workers int) *matState {
	if s.canceled() {
		return s
	}
	e := s.e
	pctx, psp := telemetry.StartSpan(s.ctx, "probe")
	psp.SetInt("attribute", int64(attr))
	k := len(s.parts)
	ns := &matState{
		e:     e,
		parts: make([]*partition.Partition, 0, nk),
		reps:  make([]*rep, 0, nk),
		ctx:   s.ctx,
	}
	parent := make([]int32, 0, nk)
	aliased := make([]bool, 0, nk)
	nAliased := 0
	for i := range splits {
		ns.parts = append(ns.parts, splits[i].children...)
		ns.reps = append(ns.reps, splits[i].reps...)
		for range splits[i].children {
			parent = append(parent, int32(i))
			aliased = append(aliased, splits[i].aliased)
			if splits[i].aliased {
				nAliased++
			}
		}
	}
	psp.SetInt("parts", int64(nk))
	n := nk * (nk - 1) / 2
	nd := make([]float64, n)
	canCopy := s.dist != nil
	_, esp := telemetry.StartSpan(pctx, "emd")
	parforeach(nk-1, workers, func(i int) {
		if s.canceled() {
			return
		}
		m := tri(nk, i, i+1)
		ai := canCopy && aliased[i]
		ri := ns.reps[i]
		for j := i + 1; j < nk; j++ {
			if ai && aliased[j] {
				nd[m] = s.dist[tri(k, int(parent[i]), int(parent[j]))]
			} else {
				nd[m] = e.distOf(ri.data, ns.reps[j].data)
			}
			m++
		}
	})
	copied := 0
	if canCopy {
		copied = nAliased * (nAliased - 1) / 2
	}
	fresh := n - copied
	if fresh > 0 {
		e.pairs.misses.Add(int64(fresh))
		e.tel.computed(int64(fresh))
	}
	e.copiedAcct(int64(copied))
	esp.SetInt("pairs", int64(fresh))
	esp.End()
	ns.dist = nd
	_, rsp := telemetry.StartSpan(pctx, "reduce")
	ns.avg = avgOf(nd)
	rsp.SetInt("pairs", int64(n))
	rsp.End()
	psp.SetInt("pairs_fresh", int64(fresh))
	psp.SetInt("pairs_copied", int64(copied))
	psp.End()
	return ns
}

// probeLean is probe (scatter + exact fill + reduce) through the lean
// exactProbe path; used by the random choosers when pruning is on — a
// single random candidate offers nothing to prune, but the allocation-free
// fill still applies.
func (s *matState) probeLean(attr, workers int) *matState {
	if s.canceled() {
		return s
	}
	s.e.tel.probes.Inc()
	splits, nk := s.scatterAll(attr)
	return s.exactProbe(attr, splits, nk, workers)
}

// worstAttributePruned is worstAttribute under the pruning cascade. Phase
// one scatters every candidate and brackets large ones with the
// fixed-point kernel (small ones evaluate exactly right away). Phase two
// takes maxLo — the highest candidate lower bound, where exactified
// candidates contribute their exact average — and skips every candidate
// whose upper bound is strictly below it: such a candidate's float
// average is provably below some other candidate's, so the strict->
// earliest-index argmax cannot select it, not even on a tie. Survivors
// are evaluated exactly in scan order; the returned state is always an
// exact evaluation, so downstream decisions and traces are bit-identical
// to the unpruned scan.
func worstAttributePruned(s *matState, attrs []int) (int, *matState) {
	e := s.e
	p := e.cfg.Parallelism
	outer := p
	if outer > len(attrs) {
		outer = len(attrs)
	}
	inner := 1
	if outer >= 1 && p > outer {
		inner = p / outer
	}
	src := s
	sctx, sp := telemetry.StartSpan(s.ctx, "scan")
	if sp != nil {
		sp.SetInt("attrs", int64(len(attrs)))
		sp.SetInt("parts", int64(len(s.parts)))
		cp := *s
		cp.ctx = sctx
		src = &cp
	}
	type cand struct {
		splits []splitPart
		nk     int
		lo, hi float64
		state  *matState
	}
	cands := make([]cand, len(attrs))
	parforeach(len(attrs), outer, func(x int) {
		c := &cands[x]
		c.splits, c.nk = src.scatterAll(attrs[x])
		if src.canceled() {
			return
		}
		e.tel.probes.Inc()
		if len(attrs) > 1 && c.nk >= pruneKernelMinParts {
			if lo, hi, ok := src.boundOfSplits(c.splits); ok {
				c.lo, c.hi = lo, hi
				return
			}
		}
		c.state = src.exactProbe(attrs[x], c.splits, c.nk, inner)
		c.lo, c.hi = c.state.avg, c.state.avg
	})
	sp.End()
	if sp != nil {
		for x := range cands {
			if st := cands[x].state; st != nil && st != s {
				st.ctx = s.ctx
			}
		}
	}
	if s.canceled() {
		// Structurally valid return; the algorithm layer sees ctx.Err()
		// and discards it, mirroring probe's cancellation contract.
		return attrs[0], s
	}
	maxLo := cands[0].lo
	for x := 1; x < len(cands); x++ {
		if cands[x].lo > maxLo {
			maxLo = cands[x].lo
		}
	}
	for x := range cands {
		c := &cands[x]
		if c.state != nil {
			continue
		}
		if c.hi < maxLo {
			c.splits = nil
			e.prunedAcct(int64(c.nk) * int64(c.nk-1) / 2)
			continue
		}
		e.tel.boundExactified.Inc()
		c.state = s.exactProbe(attrs[x], c.splits, c.nk, p)
		if s.canceled() {
			return attrs[0], s
		}
	}
	best := -1
	for x := range cands {
		if cands[x].state == nil {
			continue
		}
		if best < 0 || cands[x].state.avg > cands[best].state.avg {
			best = x
		}
	}
	if best < 0 {
		return attrs[0], s
	}
	return attrs[best], cands[best].state
}

// avgPairwiseAuto is AvgPairwise that bypasses the shared pair cache for
// very large terminal averages when pruning is on. The bypass computes
// every distance directly (same distOf, same canonical serial reduction),
// so the value is bit-identical; only the accounting split differs — all
// slots count as computed instead of hit-or-computed — which the slot
// conservation law still balances.
func (e *Evaluator) avgPairwiseAuto(parts []*partition.Partition) float64 {
	k := len(parts)
	if !e.prune || k*(k-1)/2 < cacheBypassPairs {
		return e.AvgPairwise(parts)
	}
	reps := make([]*rep, k)
	for i, p := range parts {
		reps[i] = e.repFor(p)
	}
	return e.avgRepsDirect(reps)
}

// avgRepsDirect is avgReps without cache lookups or stores: rows of the
// triangle fill in place under parforeach, then reduce serially in
// canonical order.
func (e *Evaluator) avgRepsDirect(reps []*rep) float64 {
	k := len(reps)
	n := k * (k - 1) / 2
	if n == 0 {
		return 0
	}
	d := make([]float64, n)
	parforeach(k-1, e.cfg.Parallelism, func(i int) {
		m := tri(k, i, i+1)
		ri := reps[i].data
		for j := i + 1; j < k; j++ {
			d[m] = e.distOf(ri, reps[j].data)
			m++
		}
	})
	e.pairs.misses.Add(int64(n))
	e.tel.computed(int64(n))
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	return sum / float64(n)
}

// unfairnessBounded is unfairnessCtx with branch-and-bound for the
// exhaustive solvers: when pruning is on and the candidate is large
// enough, its average is bracketed first, and a candidate whose upper
// bound is ≤ best is skipped (the solvers keep a candidate only on
// u > best, and u ≤ hi ≤ best makes that impossible — ties included, so
// the earliest-wins selection is preserved exactly). skipped=true means
// the candidate cannot beat best and u is meaningless.
func (e *Evaluator) unfairnessBounded(ctx context.Context, pt *partition.Partitioning, best float64) (u float64, skipped bool) {
	if pt == nil {
		return 0, false
	}
	k := len(pt.Parts)
	if k < 2 {
		return 0, false
	}
	reps := make([]*rep, k)
	for i, p := range pt.Parts {
		if i&(ctxCheckStride-1) == ctxCheckStride-1 && ctx.Err() != nil {
			return 0, false
		}
		reps[i] = e.repFor(p)
	}
	if e.prune && k >= exhaustiveBoundMinParts {
		if _, hi, ok := e.boundOfReps(reps); ok && hi <= best {
			e.prunedAcct(int64(k) * int64(k-1) / 2)
			return 0, true
		}
	}
	return e.avgRepsCtx(ctx, reps), false
}

// boundOfReps brackets the average pairwise distance of a rep set via the
// fixed-point kernel; ok is false when any rep lacks a quantized CDF.
func (e *Evaluator) boundOfReps(reps []*rep) (lo, hi float64, ok bool) {
	ps := e.getScratch()
	defer e.putScratch(ps)
	rows := ps.rows[:0]
	for _, r := range reps {
		if r.qcdf == nil {
			ps.rows = rows
			return 0, 0, false
		}
		rows = append(rows, r.qcdf)
	}
	ps.rows = rows
	lo, hi, ps.col = emd.FixedAvgInterval(rows, e.unit, emd.FixedScale, ps.col)
	e.tel.boundProbes.Inc()
	e.tel.boundWidth.Set(hi - lo)
	return lo, hi, true
}
