package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("all-zero state after seeding with 0")
	}
	// Must still produce varied output.
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct values in 10 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d: %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	lo, hi := 1950, 2009
	seenLo, seenHi := false, false
	for i := 0; i < 50000; i++ {
		v := r.IntRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seenLo = seenLo || v == lo
		seenHi = seenHi || v == hi
	}
	if !seenLo || !seenHi {
		t.Fatalf("endpoints never drawn: lo=%v hi=%v", seenLo, seenHi)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) did not panic")
		}
	}()
	New(1).IntRange(2, 1)
}

func TestFloatRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.FloatRange(25, 100)
		if v < 25 || v >= 100 {
			t.Fatalf("FloatRange out of bounds: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPick(t *testing.T) {
	r := New(23)
	choices := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(r, choices)]++
	}
	for _, c := range choices {
		if counts[c] < 800 {
			t.Fatalf("choice %q drawn only %d/3000 times", c, counts[c])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(29)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64MatchesBig(t *testing.T) {
	// Property: low 64 bits of the product must equal wrapping multiply.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleCoverage(t *testing.T) {
	// All 6 permutations of 3 elements should occur.
	r := New(31)
	seen := map[[3]int]bool{}
	for i := 0; i < 600; i++ {
		arr := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		seen[arr] = true
	}
	if len(seen) != 6 {
		t.Fatalf("only %d/6 permutations observed", len(seen))
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
