// Package rng provides a small, deterministic pseudo-random number
// generator used throughout fairrank so that every simulation, dataset and
// experiment is exactly reproducible from a seed, independent of the Go
// version's math/rand implementation details.
//
// The generator is xoshiro256++ seeded via splitmix64, the combination
// recommended by Blackman & Vigna. It is not cryptographically secure; it is
// meant for simulation workloads only.
package rng

import "math"

// RNG is a deterministic xoshiro256++ pseudo-random number generator.
// The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed using splitmix64 so
// that even small or similar seeds produce well-mixed initial state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// IntRange returns a uniformly distributed int in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// FloatRange returns a uniformly distributed float64 in [lo, hi).
// It panics if hi < lo.
func (r *RNG) FloatRange(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: FloatRange with hi < lo")
	}
	return lo + r.Float64()*(hi-lo)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of choices.
// It panics if choices is empty.
func Pick[T any](r *RNG, choices []T) T {
	return choices[r.Intn(len(choices))]
}

// Split returns a new generator deterministically derived from r's stream,
// useful for giving independent substreams to parallel components.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}
