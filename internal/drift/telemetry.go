package drift

import "fairrank/internal/telemetry"

// Drift metric names, exported on the registry passed to SetMetrics.
const (
	// MetricEvents counts processed events, labeled {type}.
	MetricEvents = "fairrank_drift_events_total"
	// MetricEventSeconds is the per-event latency histogram: estimator
	// updates plus alarm evaluation, end to end.
	MetricEventSeconds = "fairrank_drift_event_seconds"
	// MetricWindowLive gauges window occupancy (live effective events).
	MetricWindowLive = "fairrank_drift_window_live"
	// MetricRetractions counts window span retractions.
	MetricRetractions = "fairrank_drift_window_retractions_total"
	// MetricTransitions counts alarm transitions, labeled {type}.
	MetricTransitions = "fairrank_drift_alarm_transitions_total"
	// MetricAlarmsActive gauges currently firing rules.
	MetricAlarmsActive = "fairrank_drift_alarms_active"
	// MetricWatches gauges live server-side monitors (set by the server,
	// not by individual watches).
	MetricWatches = "fairrank_drift_watches"
)

// driftMetrics holds a watch's telemetry handles; the zero value (all
// nil) is the disabled state and every operation no-ops.
type driftMetrics struct {
	joins    *telemetry.Counter
	leaves   *telemetry.Counter
	rescores *telemetry.Counter

	fired   *telemetry.Counter
	cleared *telemetry.Counter

	windowLive   *telemetry.Gauge
	retractions  *telemetry.Counter
	alarmsActive *telemetry.Gauge

	latency *telemetry.Histogram

	// lastRetractions turns the window's monotone retraction count into
	// counter increments.
	lastRetractions int64
}

func (dm *driftMetrics) event(typ string) {
	switch typ {
	case EventJoin:
		dm.joins.Inc()
	case EventLeave:
		dm.leaves.Inc()
	case EventRescore:
		dm.rescores.Inc()
	}
}

func (dm *driftMetrics) transition(kind string) {
	if kind == AlarmFired {
		dm.fired.Inc()
	} else {
		dm.cleared.Inc()
	}
}

// sync publishes the gauges at event time, like the monitor's telemetry:
// a concurrent /metrics scrape never touches the watch's state. Disabled
// metrics skip it entirely — the gauge inputs (ActiveAlarms, window
// occupancy) are per-event loops that would otherwise run for nothing.
func (dm *driftMetrics) sync(w *Watch) {
	if dm.alarmsActive == nil {
		return
	}
	if w.window != nil {
		dm.windowLive.Set(float64(w.window.Live()))
		if r := w.window.Retractions(); r > dm.lastRetractions {
			dm.retractions.Add(r - dm.lastRetractions)
			dm.lastRetractions = r
		}
	}
	dm.alarmsActive.Set(float64(w.ActiveAlarms()))
}

// SetMetrics attaches a telemetry registry: event rates and latency,
// window occupancy and retractions, and alarm transitions become
// observable. Counters accumulate across watches sharing one registry;
// gauges reflect the most recently synced watch. A nil registry leaves
// metrics disabled.
func (w *Watch) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	w.met = driftMetrics{
		joins:        reg.Counter(MetricEvents, telemetry.Label{Key: "type", Value: "join"}),
		leaves:       reg.Counter(MetricEvents, telemetry.Label{Key: "type", Value: "leave"}),
		rescores:     reg.Counter(MetricEvents, telemetry.Label{Key: "type", Value: "rescore"}),
		fired:        reg.Counter(MetricTransitions, telemetry.Label{Key: "type", Value: AlarmFired}),
		cleared:      reg.Counter(MetricTransitions, telemetry.Label{Key: "type", Value: AlarmCleared}),
		windowLive:   reg.Gauge(MetricWindowLive),
		retractions:  reg.Counter(MetricRetractions),
		alarmsActive: reg.Gauge(MetricAlarmsActive),
		latency:      reg.Histogram(MetricEventSeconds, telemetry.ExpBuckets(1e-7, 4, 12)),
	}
	w.met.sync(w)
}
