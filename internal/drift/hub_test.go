package drift

import "testing"

func TestHubReplayAndLive(t *testing.T) {
	h := NewHub()
	for i := 0; i < 3; i++ {
		h.Publish(AlarmEvent{Rule: "r", Type: AlarmFired})
	}
	replay, live, cancel := h.Subscribe()
	defer cancel()
	if len(replay) != 3 {
		t.Fatalf("replay %d events, want 3", len(replay))
	}
	for i, ev := range replay {
		if ev.Seq != int64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	pub := h.Publish(AlarmEvent{Rule: "r", Type: AlarmCleared})
	if pub.Seq != 4 {
		t.Fatalf("published Seq %d, want 4", pub.Seq)
	}
	got := <-live
	if got.Seq != 4 || got.Type != AlarmCleared {
		t.Fatalf("live event %+v", got)
	}
}

func TestHubBoundedReplay(t *testing.T) {
	h := NewHub()
	for i := 0; i < hubReplay+50; i++ {
		h.Publish(AlarmEvent{Rule: "r"})
	}
	replay, _, cancel := h.Subscribe()
	defer cancel()
	if len(replay) != hubReplay {
		t.Fatalf("replay %d events, want %d", len(replay), hubReplay)
	}
	if replay[0].Seq != 51 {
		t.Fatalf("oldest replayed Seq %d, want 51", replay[0].Seq)
	}
}

func TestHubSlowSubscriberDrops(t *testing.T) {
	h := NewHub()
	_, _, cancel := h.Subscribe()
	defer cancel()
	for i := 0; i < hubSubBuffer+10; i++ {
		h.Publish(AlarmEvent{Rule: "r"})
	}
	if h.Dropped() != 10 {
		t.Fatalf("dropped %d, want 10", h.Dropped())
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub()
	_, live, cancel := h.Subscribe()
	defer cancel()
	h.Close()
	if _, ok := <-live; ok {
		t.Fatal("live channel not closed on hub close")
	}
	// Post-close publishes and subscribes are inert, not panics.
	h.Publish(AlarmEvent{Rule: "r"})
	replay, live2, cancel2 := h.Subscribe()
	defer cancel2()
	if len(replay) != 0 {
		t.Fatalf("post-close replay %d events", len(replay))
	}
	if _, ok := <-live2; ok {
		t.Fatal("post-close subscription channel open")
	}
	// Double cancel is safe.
	cancel()
	cancel()
}
