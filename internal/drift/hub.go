package drift

import "sync"

const (
	// hubReplay bounds how many past alarm events a new subscriber gets
	// replayed. Alarm transitions are rare by construction (hysteresis and
	// cooldown), so a small buffer covers any realistic reconnect gap.
	hubReplay = 256
	// hubSubBuffer is each subscriber's channel depth; a subscriber that
	// falls further behind loses events (counted) instead of blocking the
	// ingest path.
	hubSubBuffer = 64
)

// Hub fans one monitor's alarm events out to SSE subscribers: bounded
// replay of recent history on subscribe, then live delivery. Unlike the
// job event hub there is no terminal state — a monitor's stream outlives
// any one subscriber and closes only when the monitor is deleted.
type Hub struct {
	mu      sync.Mutex
	seq     int64
	buf     []AlarmEvent // last hubReplay events, oldest first
	subs    map[int]chan AlarmEvent
	nextSub int
	dropped int64
	closed  bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[int]chan AlarmEvent{}}
}

// Publish assigns the event its sequence number, appends it to the replay
// buffer and delivers it to every subscriber without blocking: a full
// subscriber drops the event (counted in Dropped).
func (h *Hub) Publish(ev AlarmEvent) AlarmEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ev
	}
	h.seq++
	ev.Seq = h.seq
	h.buf = append(h.buf, ev)
	if len(h.buf) > hubReplay {
		h.buf = h.buf[len(h.buf)-hubReplay:]
	}
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped++
		}
	}
	return ev
}

// Subscribe returns the replayable history, a live channel, and a cancel
// func the subscriber must call. The live channel is closed when the hub
// closes (monitor deleted).
func (h *Hub) Subscribe() (replay []AlarmEvent, live <-chan AlarmEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([]AlarmEvent(nil), h.buf...)
	ch := make(chan AlarmEvent, hubSubBuffer)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := h.nextSub
	h.nextSub++
	h.subs[id] = ch
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
		}
	}
}

// Close ends the stream: every subscriber's channel closes and further
// publishes are ignored.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

// Dropped returns how many events were lost to slow subscribers.
func (h *Hub) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
