package drift

import (
	"errors"
	"fmt"

	"fairrank/internal/dataset"
	"fairrank/internal/monitor"
)

// entryKind discriminates the effective events held in the window ring.
type entryKind uint8

const (
	entryJoin entryKind = iota
	entryLeave
	entryRescore
)

// entry is one effective event in the window ring. Entries for the same
// worker's membership span form a chain through next pointers rooted at
// the span's Join, so retracting the Join can tombstone the whole span in
// one walk.
type entry struct {
	kind      entryKind
	id        string
	protected map[string]any // Join entries only: the replayable attributes
	score     float64
	next      int // seq of the next entry in this worker's span, -1 if last
	dead      bool
}

// Window is the sliding-window unfairness estimator: its value is, by
// definition, the unfairness a fresh monitor would report after replaying
// only the last Capacity *effective* events from empty. Instead of
// replaying, it maintains that state incrementally — admissions reuse the
// monitor's O(k + log k) delta path and retractions undo the aged-out
// event through the same machinery — so the estimate is O(1) to read after
// every event and bit-identical to the replay (the differential suite in
// window_diff_test.go pins this).
//
// Raw stream events are normalized at admission so the window's contents
// always replay cleanly from empty:
//
//   - a Rescore whose Join already aged out re-enters the worker as a
//     Join, using the protected attributes remembered in the registry;
//   - a Leave whose Join already aged out admits nothing — the worker's
//     absence is already reflected in the windowed population;
//   - retracting a Join tombstones every later entry of that membership
//     span (its Rescores, and its Leave if one was admitted), because
//     those entries are meaningless without the Join they modify.
//
// Consequently the oldest live entry is always a span-opening Join: a live
// Leave or Rescore always has its span's Join alive at a strictly older
// position (if the Join had been retracted the entry would be dead), so
// retraction never has to undo a bare Leave/Rescore.
//
// Window is not safe for concurrent use.
type Window struct {
	mon      *monitor.Monitor
	capacity int
	// ring is a power-of-two buffer indexed by seq & (len(ring)-1); seqs
	// are monotonic, head..tail is the occupied span. Tombstoned entries
	// linger until head passes them, so the ring can transiently hold more
	// than capacity slots and grows on demand.
	ring        []entry
	head, tail  int
	live        int // non-dead entries in [head, tail)
	retractions int64
	// registry remembers every worker's protected attributes for the life
	// of the stream, so an aged-out worker's Rescore can re-enter it.
	registry map[string]map[string]any
	// chainTail maps each worker currently in the windowed population to
	// the seq of its newest live entry; a worker is in the inner monitor
	// iff it has a chainTail entry.
	chainTail map[string]int
}

// NewWindow creates a sliding-window estimator over the partitioning
// induced by the named protected attributes, holding the last capacity
// effective events. bins defaults to 10 when <= 0.
func NewWindow(schema *dataset.Schema, attrs []string, bins, capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, errors.New("drift: window capacity must be positive")
	}
	m, err := monitor.New(schema, attrs, bins, 0)
	if err != nil {
		return nil, err
	}
	return &Window{
		mon:       m,
		capacity:  capacity,
		ring:      make([]entry, 16),
		registry:  map[string]map[string]any{},
		chainTail: map[string]int{},
	}, nil
}

func (w *Window) slot(seq int) *entry { return &w.ring[seq&(len(w.ring)-1)] }

// push appends an entry at the tail, growing the ring if every slot
// between head and tail is occupied.
func (w *Window) push(e entry) int {
	if w.tail-w.head == len(w.ring) {
		grown := make([]entry, 2*len(w.ring))
		for s := w.head; s < w.tail; s++ {
			grown[s&(len(grown)-1)] = w.ring[s&(len(w.ring)-1)]
		}
		w.ring = grown
	}
	seq := w.tail
	*w.slot(seq) = e
	w.tail++
	w.live++
	return seq
}

// retractOldest ages out the oldest live entry — always a span-opening
// Join, see the type comment — tombstoning its span and, if the span was
// still open, removing the worker from the windowed population.
func (w *Window) retractOldest() {
	for w.head < w.tail && w.slot(w.head).dead {
		w.head++
	}
	if w.head == w.tail {
		return
	}
	e := w.slot(w.head)
	if e.kind != entryJoin {
		panic("drift: window retraction reached a non-Join span head")
	}
	closed := false
	for cur := e.next; cur != -1; {
		s := w.slot(cur)
		if s.kind == entryLeave {
			closed = true
		}
		s.dead = true
		w.live--
		cur = s.next
	}
	e.dead = true
	w.live--
	w.head++
	w.retractions++
	if !closed {
		// Span still open: the worker ages out of the windowed population.
		// A removal failure here is a bookkeeping bug; the inner monitor
		// records it and UnfairnessErr surfaces it.
		_ = w.mon.Leave(e.id)
		delete(w.chainTail, e.id)
	}
}

func (w *Window) trim() {
	for w.live > w.capacity {
		w.retractOldest()
	}
}

// Join records a worker arriving with the given protected attributes and
// score. The caller must not mutate protected afterwards: the window keeps
// a reference for replay and re-admission.
func (w *Window) Join(id string, protected map[string]any, score float64) error {
	if _, in := w.chainTail[id]; in {
		return fmt.Errorf("drift: worker %q already present", id)
	}
	if err := w.mon.Join(id, protected, score); err != nil {
		return err
	}
	w.registry[id] = protected
	w.chainTail[id] = w.push(entry{kind: entryJoin, id: id, protected: protected, score: score, next: -1})
	w.trim()
	return nil
}

// Leave records a worker departing. If the worker's span already aged out
// of the window, the departure is already reflected and admits nothing.
func (w *Window) Leave(id string) error {
	tailSeq, in := w.chainTail[id]
	if !in {
		if _, known := w.registry[id]; !known {
			return fmt.Errorf("drift: unknown worker %q", id)
		}
		return nil
	}
	if err := w.mon.Leave(id); err != nil {
		return err
	}
	seq := w.push(entry{kind: entryLeave, id: id, next: -1})
	w.slot(tailSeq).next = seq
	delete(w.chainTail, id)
	w.trim()
	return nil
}

// Rescore updates a worker's score. If the worker's span aged out of the
// window it re-enters as a Join with its registered protected attributes —
// the rescore proves the worker is still on the platform.
func (w *Window) Rescore(id string, score float64) error {
	tailSeq, in := w.chainTail[id]
	if !in {
		prot, known := w.registry[id]
		if !known {
			return fmt.Errorf("drift: unknown worker %q", id)
		}
		if err := w.mon.Join(id, prot, score); err != nil {
			return err
		}
		w.chainTail[id] = w.push(entry{kind: entryJoin, id: id, protected: prot, score: score, next: -1})
		w.trim()
		return nil
	}
	if err := w.mon.Rescore(id, score); err != nil {
		return err
	}
	seq := w.push(entry{kind: entryRescore, id: id, score: score, next: -1})
	w.slot(tailSeq).next = seq
	w.chainTail[id] = seq
	w.trim()
	return nil
}

// UnfairnessErr returns the windowed unfairness estimate, with any pending
// inner-monitor bookkeeping error.
func (w *Window) UnfairnessErr() (float64, error) { return w.mon.UnfairnessErr() }

// Unfairness is the lossy wrapper: 0 when an error is pending.
func (w *Window) Unfairness() float64 { return w.mon.Unfairness() }

// Workers returns the windowed population size.
func (w *Window) Workers() int { return w.mon.Workers() }

// Groups returns the number of non-empty windowed groups.
func (w *Window) Groups() int { return w.mon.Groups() }

// Live returns the window occupancy: the number of live (non-tombstoned)
// effective events currently held, at most Capacity.
func (w *Window) Live() int { return w.live }

// Capacity returns the window size W.
func (w *Window) Capacity() int { return w.capacity }

// Retractions returns how many span heads have aged out.
func (w *Window) Retractions() int64 { return w.retractions }

// Snapshot returns a deep copy of the windowed monitor state, detached
// from the stream — cheap offline inspection without pausing ingest.
func (w *Window) Snapshot() *monitor.Monitor { return w.mon.Clone() }

// Contents returns the window's live effective events in admission order,
// as wire events. Replaying them into a fresh monitor reconstructs the
// windowed state exactly; the differential suite leans on this.
func (w *Window) Contents() []Event {
	out := make([]Event, 0, w.live)
	for s := w.head; s < w.tail; s++ {
		e := w.slot(s)
		if e.dead {
			continue
		}
		switch e.kind {
		case entryJoin:
			out = append(out, Event{Type: EventJoin, Worker: e.id, Protected: e.protected, Score: e.score})
		case entryLeave:
			out = append(out, Event{Type: EventLeave, Worker: e.id})
		case entryRescore:
			out = append(out, Event{Type: EventRescore, Worker: e.id, Score: e.score})
		}
	}
	return out
}
