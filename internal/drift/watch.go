package drift

import (
	"fmt"
	"time"

	"fairrank/internal/dataset"
	"fairrank/internal/monitor"
)

// Watch is one live continuous audit: the configured estimators (sliding
// window, exponential decay, and always the unbounded-history monitor)
// fed in lockstep from one event stream, with the alarm rules evaluated
// after every event. It is the engine behind a server-side monitor; the
// CLIs drive it directly. Not safe for concurrent use.
type Watch struct {
	spec   Spec
	window *Window
	decay  *Decay
	total  *monitor.Monitor
	// alarms live in one contiguous slice — the per-event rule scan walks
	// them in cache order. needSrc marks which estimator values the rule
	// set reads, so evaluate computes each at most once per event.
	alarms  []alarm
	needSrc [3]bool
	events  int64
	met     driftMetrics
}

// NewWatch builds a watch from a validated spec and the dataset schema
// its attributes refer to.
func NewWatch(schema *dataset.Schema, spec Spec) (*Watch, error) {
	spec = spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	total, err := monitor.New(schema, spec.Attributes, spec.Bins, 0)
	if err != nil {
		return nil, err
	}
	w := &Watch{spec: spec, total: total}
	if spec.Window > 0 {
		w.window, err = NewWindow(schema, spec.Attributes, spec.Bins, spec.Window)
		if err != nil {
			return nil, err
		}
	}
	if spec.HalfLife > 0 {
		w.decay, err = NewDecay(schema, spec.Attributes, spec.Bins, spec.HalfLife)
		if err != nil {
			return nil, err
		}
	}
	for _, r := range spec.Rules {
		a := newAlarm(r)
		w.alarms = append(w.alarms, *a)
		w.needSrc[a.srcIdx] = true
	}
	return w, nil
}

// Spec returns the watch's (normalized) spec.
func (w *Watch) Spec() Spec { return w.spec }

// Events returns how many events the watch has processed.
func (w *Watch) Events() int64 { return w.events }

// Apply feeds one event through every estimator and then evaluates the
// alarm rules, returning any transitions. The event is rejected — and
// counts for nothing — if the unbounded monitor rejects it (duplicate
// join, unknown worker, bad attributes), so the estimators never diverge.
func (w *Watch) Apply(ev Event) ([]AlarmEvent, error) {
	if w.met.latency == nil {
		// Metrics disabled (CLIs, tests): skip the clock reads and the
		// telemetry bookkeeping, not just the final no-op publishes.
		if err := w.applyEstimators(ev); err != nil {
			return nil, err
		}
		w.events++
		return w.evaluate(), nil
	}
	start := time.Now()
	if err := w.applyEstimators(ev); err != nil {
		return nil, err
	}
	w.events++
	out := w.evaluate()
	w.met.event(ev.Type)
	w.met.sync(w)
	w.met.latency.ObserveSince(start)
	return out, nil
}

// Seed applies one event to the estimators WITHOUT evaluating alarm
// rules. Seeding is reconstruction, not observation: when a watch is
// (re)built from a population snapshot, the replay must bring the
// estimators to a truthful state without the rules interpreting the
// transient — on a restart, a restored active alarm would otherwise be
// spuriously cleared (or re-fired) partway through a seed longer than
// its warmup. Seeded events do not count toward Events(), rule warmups,
// or the delta rule's lookback ring.
func (w *Watch) Seed(ev Event) error {
	return w.applyEstimators(ev)
}

// applyEstimators validates and applies one event to every estimator.
// The unbounded monitor is the strictest view — it goes first so a
// rejected event mutates nothing else.
func (w *Watch) applyEstimators(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	var err error
	switch ev.Type {
	case EventJoin:
		err = w.total.Join(ev.Worker, ev.Protected, ev.Score)
	case EventLeave:
		err = w.total.Leave(ev.Worker)
	case EventRescore:
		err = w.total.Rescore(ev.Worker, ev.Score)
	}
	if err != nil {
		return err
	}
	if w.window != nil {
		switch ev.Type {
		case EventJoin:
			err = w.window.Join(ev.Worker, ev.Protected, ev.Score)
		case EventLeave:
			err = w.window.Leave(ev.Worker)
		case EventRescore:
			err = w.window.Rescore(ev.Worker, ev.Score)
		}
		if err != nil {
			return err
		}
	}
	if w.decay != nil {
		switch ev.Type {
		case EventJoin:
			err = w.decay.Join(ev.Worker, ev.Protected, ev.Score)
		case EventLeave:
			err = w.decay.Leave(ev.Worker)
		case EventRescore:
			err = w.decay.Rescore(ev.Worker, ev.Score)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// evaluate runs every alarm rule against this event's estimator values.
// Each source is read at most once per event; no allocation happens
// unless a rule transitions.
func (w *Watch) evaluate() []AlarmEvent {
	var vals [3]float64
	if w.needSrc[srcIdxTotal] {
		vals[srcIdxTotal] = w.total.Unfairness()
	}
	if w.needSrc[srcIdxWindow] {
		vals[srcIdxWindow] = w.window.Unfairness()
	}
	if w.needSrc[srcIdxDecay] {
		vals[srcIdxDecay] = w.decay.Unfairness()
	}
	var out []AlarmEvent
	for i := range w.alarms {
		a := &w.alarms[i]
		v := vals[a.srcIdx]
		var signal float64
		var crossed bool
		if a.kind == kindDelta {
			signal, crossed = a.stepDelta(v)
		} else {
			signal, crossed = a.step(v)
		}
		if !crossed {
			continue
		}
		kind, ok := a.transition(w.events)
		if !ok {
			continue
		}
		out = append(out, AlarmEvent{
			Monitor:  w.spec.ID,
			Rule:     a.spec.Name,
			RuleType: a.spec.Type,
			Type:     kind,
			Value:    v,
			Signal:   signal,
			Limit:    a.limit,
			Event:    w.events,
		})
		w.met.transition(kind)
	}
	return out
}

// Unfairness reads one estimator's current value.
func (w *Watch) Unfairness(src Source) (float64, error) {
	switch src {
	case SourceTotal, "":
		return w.total.Unfairness(), nil
	case SourceWindow:
		if w.window == nil {
			return 0, fmt.Errorf("drift: no window estimator configured")
		}
		return w.window.Unfairness(), nil
	case SourceDecay:
		if w.decay == nil {
			return 0, fmt.Errorf("drift: no decay estimator configured")
		}
		return w.decay.Unfairness(), nil
	}
	return 0, fmt.Errorf("drift: unknown source %q", src)
}

// SealBaseline records the current estimator value as every
// window-vs-baseline rule's comparison level, returning the sealed values
// by rule name. Call it once the seeded (pre-drift) population is in.
func (w *Watch) SealBaseline() map[string]float64 {
	out := map[string]float64{}
	for i := range w.alarms {
		a := &w.alarms[i]
		if a.spec.Type != RuleBaseline {
			continue
		}
		v, _ := w.Unfairness(a.spec.Source)
		a.baseline = v
		a.baselineSet = true
		out[a.spec.Name] = v
	}
	return out
}

// AlarmStates snapshots every rule's persistable state, in rule order.
func (w *Watch) AlarmStates() []AlarmState {
	out := make([]AlarmState, 0, len(w.alarms))
	for _, a := range w.alarms {
		out = append(out, AlarmState{
			Rule:        a.spec.Name,
			Active:      a.active,
			Fired:       a.fired,
			Baseline:    a.baseline,
			BaselineSet: a.baselineSet,
		})
	}
	return out
}

// RestoreAlarms re-applies persisted alarm state after a restart: active
// flags, fired counts and sealed baselines survive; evaluation counters do
// not, so each rule's Warmup re-applies while the window re-seeds — that
// is what makes a restart neither lose nor re-fire an active alarm.
func (w *Watch) RestoreAlarms(states []AlarmState) {
	byName := map[string]AlarmState{}
	for _, st := range states {
		byName[st.Rule] = st
	}
	for i := range w.alarms {
		a := &w.alarms[i]
		st, ok := byName[a.spec.Name]
		if !ok {
			continue
		}
		a.active = st.Active
		a.fired = st.Fired
		a.baseline = st.Baseline
		a.baselineSet = st.BaselineSet
	}
}

// EstimatorStatus is one estimator's slice of a Status.
type EstimatorStatus struct {
	Unfairness float64 `json:"unfairness"`
	Workers    int     `json:"workers"`
	Groups     int     `json:"groups"`
	// Live and Retractions describe window occupancy; window only.
	Live        int   `json:"live,omitempty"`
	Retractions int64 `json:"retractions,omitempty"`
}

// AlarmStatus is one rule's slice of a Status.
type AlarmStatus struct {
	Rule     string   `json:"rule"`
	Type     RuleType `json:"type"`
	Source   Source   `json:"source"`
	Active   bool     `json:"active"`
	Fired    int64    `json:"fired"`
	Baseline float64  `json:"baseline,omitempty"`
}

// Status is the queryable snapshot of a watch.
type Status struct {
	ID     string           `json:"id"`
	Events int64            `json:"events"`
	Total  EstimatorStatus  `json:"total"`
	Window *EstimatorStatus `json:"window,omitempty"`
	Decay  *EstimatorStatus `json:"decay,omitempty"`
	Alarms []AlarmStatus    `json:"alarms"`
}

// Status snapshots the watch for the HTTP surface.
func (w *Watch) Status() Status {
	st := Status{
		ID:     w.spec.ID,
		Events: w.events,
		Total: EstimatorStatus{
			Unfairness: w.total.Unfairness(),
			Workers:    w.total.Workers(),
			Groups:     w.total.Groups(),
		},
		Alarms: []AlarmStatus{},
	}
	if w.window != nil {
		st.Window = &EstimatorStatus{
			Unfairness:  w.window.Unfairness(),
			Workers:     w.window.Workers(),
			Groups:      w.window.Groups(),
			Live:        w.window.Live(),
			Retractions: w.window.Retractions(),
		}
	}
	if w.decay != nil {
		st.Decay = &EstimatorStatus{
			Unfairness: w.decay.Unfairness(),
			Workers:    w.decay.Workers(),
			Groups:     w.decay.Groups(),
		}
	}
	for _, a := range w.alarms {
		s := AlarmStatus{
			Rule:   a.spec.Name,
			Type:   a.spec.Type,
			Source: a.spec.Source,
			Active: a.active,
			Fired:  a.fired,
		}
		if a.baselineSet {
			s.Baseline = a.baseline
		}
		st.Alarms = append(st.Alarms, s)
	}
	return st
}

// ActiveAlarms returns how many rules are currently firing.
func (w *Watch) ActiveAlarms() int {
	n := 0
	for _, a := range w.alarms {
		if a.active {
			n++
		}
	}
	return n
}

// Window returns the sliding-window estimator, or nil.
func (w *Watch) Window() *Window { return w.window }

// Decay returns the decay estimator, or nil.
func (w *Watch) Decay() *Decay { return w.decay }

// Total returns the unbounded-history monitor.
func (w *Watch) Total() *monitor.Monitor { return w.total }
