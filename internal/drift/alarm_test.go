package drift

import (
	"testing"
)

// observeAll feeds a value sequence through an alarm, returning the
// transition kinds in order.
func observeAll(a *alarm, values []float64) []string {
	var out []string
	for i, v := range values {
		if kind, _, _, ok := a.observe(v, int64(i+1)); ok {
			out = append(out, kind)
		}
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestThresholdHysteresis(t *testing.T) {
	a := newAlarm(RuleSpec{Name: "t", Type: RuleThreshold, Threshold: 0.5, Hysteresis: 0.2})
	// Fires above 0.5; clears only below 0.5·(1−0.2) = 0.4. The dips to
	// 0.45 sit inside the hysteresis band and must not flap.
	got := observeAll(a, []float64{0.3, 0.6, 0.45, 0.55, 0.45, 0.35, 0.6})
	want := []string{AlarmFired, AlarmCleared, AlarmFired}
	if !eq(got, want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	if a.fired != 2 {
		t.Fatalf("fired count %d, want 2", a.fired)
	}
}

func TestThresholdCooldown(t *testing.T) {
	a := newAlarm(RuleSpec{Name: "t", Type: RuleThreshold, Threshold: 0.5, Cooldown: 3})
	// After firing at event 2, the clear-worthy values at events 3–4 are
	// inside the cooldown and suppressed; event 5 clears.
	got := observeAll(a, []float64{0.3, 0.6, 0.1, 0.1, 0.1, 0.6})
	want := []string{AlarmFired, AlarmCleared}
	if !eq(got, want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	// The re-fire at event 6 is within cooldown of the clear at event 5.
	if a.active {
		t.Fatal("re-fired inside cooldown")
	}
}

func TestWarmupSuppresses(t *testing.T) {
	a := newAlarm(RuleSpec{Name: "t", Type: RuleThreshold, Threshold: 0.5, Warmup: 3})
	got := observeAll(a, []float64{0.9, 0.9, 0.9, 0.9})
	want := []string{AlarmFired} // only the 4th observation evaluates
	if !eq(got, want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
}

func TestDeltaOverWindow(t *testing.T) {
	a := newAlarm(RuleSpec{Name: "d", Type: RuleDelta, Delta: 0.2, Lookback: 2})
	// Signal is v − v[t−2]: primed after 2 values; 0.45−0.1 = 0.35 > 0.2
	// fires; the plateau's slope 0 clears immediately (no hysteresis).
	got := observeAll(a, []float64{0.1, 0.1, 0.45, 0.45, 0.45})
	want := []string{AlarmFired, AlarmCleared}
	if !eq(got, want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
}

func TestBaselineRule(t *testing.T) {
	a := newAlarm(RuleSpec{Name: "b", Type: RuleBaseline, Delta: 0.1, Hysteresis: 0.5})
	// Unsealed: never evaluates.
	if got := observeAll(a, []float64{0.9, 0.9}); got != nil {
		t.Fatalf("unsealed baseline rule transitioned: %v", got)
	}
	a.baseline, a.baselineSet = 0.3, true
	// signal = v − 0.3 vs delta 0.1, clear below 0.1·0.5 = 0.05.
	got := observeAll(a, []float64{0.35, 0.45, 0.38, 0.34, 0.45})
	want := []string{AlarmFired, AlarmCleared, AlarmFired}
	if !eq(got, want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
}

// TestRestoreNoRefire is the restart contract at the alarm level: an
// active restored alarm must not emit a second "fired" when the signal is
// still high, and warmup re-applies so a re-seeding estimator's transient
// values emit nothing at all.
func TestRestoreNoRefire(t *testing.T) {
	spec := RuleSpec{Name: "b", Type: RuleBaseline, Delta: 0.1, Hysteresis: 0.3, Warmup: 5}
	a := newAlarm(spec)
	a.baseline, a.baselineSet = 0.2, true
	fired := observeAll(a, []float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5})
	if !eq(fired, []string{AlarmFired}) {
		t.Fatalf("pre-restart transitions %v", fired)
	}
	// "Restart": fresh alarm, restore persisted state.
	st := AlarmState{Rule: "b", Active: a.active, Fired: a.fired,
		Baseline: a.baseline, BaselineSet: a.baselineSet}
	b := newAlarm(spec)
	b.active, b.fired = st.Active, st.Fired
	b.baseline, b.baselineSet = st.Baseline, st.BaselineSet
	// While re-seeding, the estimate climbs from 0 back to 0.5: without
	// warmup this would emit a spurious clear + re-fire pair.
	got := observeAll(b, []float64{0.0, 0.1, 0.3, 0.5, 0.5, 0.5, 0.5})
	if got != nil {
		t.Fatalf("restored alarm transitioned during re-seed: %v", got)
	}
	if !b.active || b.fired != 1 {
		t.Fatalf("restored alarm lost state: active=%v fired=%d", b.active, b.fired)
	}
	// Once warm, a genuine drop clears exactly once.
	got = observeAll(b, []float64{0.2, 0.2})
	if !eq(got, []string{AlarmCleared}) {
		t.Fatalf("post-warmup transitions %v", got)
	}
}

func TestRuleSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		r    RuleSpec
		ok   bool
	}{
		{"threshold ok", RuleSpec{Name: "a", Type: RuleThreshold, Threshold: 0.1}, true},
		{"no name", RuleSpec{Type: RuleThreshold, Threshold: 0.1}, false},
		{"zero threshold", RuleSpec{Name: "a", Type: RuleThreshold}, false},
		{"unknown type", RuleSpec{Name: "a", Type: "spike", Threshold: 0.1}, false},
		{"delta ok", RuleSpec{Name: "a", Type: RuleDelta, Delta: 0.1, Lookback: 5}, true},
		{"delta no lookback", RuleSpec{Name: "a", Type: RuleDelta, Delta: 0.1}, false},
		{"baseline ok", RuleSpec{Name: "a", Type: RuleBaseline, Delta: 0.1}, true},
		{"baseline no delta", RuleSpec{Name: "a", Type: RuleBaseline}, false},
		{"bad hysteresis", RuleSpec{Name: "a", Type: RuleThreshold, Threshold: 0.1, Hysteresis: 1}, false},
		{"negative cooldown", RuleSpec{Name: "a", Type: RuleThreshold, Threshold: 0.1, Cooldown: -1}, false},
		{"window source without window", RuleSpec{Name: "a", Type: RuleThreshold, Threshold: 0.1, Source: SourceWindow}, false},
		{"decay source without decay", RuleSpec{Name: "a", Type: RuleThreshold, Threshold: 0.1, Source: SourceDecay}, false},
		{"bad source", RuleSpec{Name: "a", Type: RuleThreshold, Threshold: 0.1, Source: "psychic"}, false},
	}
	for _, tc := range cases {
		err := tc.r.Validate(false, false)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
