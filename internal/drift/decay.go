package drift

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"fairrank/internal/dataset"
	"fairrank/internal/emd"
)

// rescaleAbove bounds the growing observation weight: when the next
// observation's weight passes it, every stored weight is divided by it so
// the float range is never exhausted. Normalization cancels the common
// scale, so rescaling is invisible in the estimate (up to float rounding).
const rescaleAbove = 1e200

// Decay is the exponential-decay (half-life) unfairness estimator for
// unbounded streams: every stored observation loses half its weight each
// halfLife events, so the estimate tracks the recent past without the
// window's explicit retraction bookkeeping. Implemented with growing
// weights — the observation admitted at event t carries weight 2^(t/h) —
// so decaying N old observations costs nothing per event; per-group
// weighted bin masses are kept incrementally and unfairness is the
// average pairwise EMD over their normalized PMFs, recomputed on read in
// O(k²·bins).
//
// Every event (Join, Leave, Rescore) advances time by one. A Rescore
// refreshes the worker's weight to the present — the observation is
// re-made now. Unlike Window, Decay has no bit-identity replay contract:
// the differential suite compares it against a literal-math oracle within
// a float tolerance.
//
// Decay is not safe for concurrent use.
type Decay struct {
	schema   *dataset.Schema
	attrs    []int
	halfLife float64
	bins     int
	unit     float64
	growth   float64 // per-event weight multiplier, 2^(1/halfLife)
	weight   float64 // weight the next observation will carry
	events   int64

	groups  map[string]*decayGroup
	order   []*decayGroup // sorted by key: deterministic pair iteration
	workers map[string]decayWorker

	keyBuf []byte
	pmfBuf []float64 // k·bins scratch for Unfairness reads
}

type decayGroup struct {
	key  string
	bins []float64 // decayed weighted mass per score bin
	live int       // live workers contributing mass
}

type decayWorker struct {
	g      *decayGroup
	bin    int
	weight float64
}

// NewDecay creates a half-life estimator over the partitioning induced by
// the named protected attributes. halfLife is in events and must be
// positive; bins defaults to 10 when <= 0.
func NewDecay(schema *dataset.Schema, attrs []string, bins int, halfLife float64) (*Decay, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(attrs) == 0 {
		return nil, errors.New("drift: need at least one attribute")
	}
	if !(halfLife > 0) || math.IsInf(halfLife, 1) {
		return nil, fmt.Errorf("drift: half-life must be positive and finite, got %v", halfLife)
	}
	if bins <= 0 {
		bins = 10
	}
	d := &Decay{
		schema:   schema.Clone(),
		halfLife: halfLife,
		bins:     bins,
		unit:     1 / float64(bins),
		growth:   math.Exp2(1 / halfLife),
		weight:   1,
		groups:   map[string]*decayGroup{},
		workers:  map[string]decayWorker{},
	}
	for _, name := range attrs {
		i := schema.ProtectedIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("drift: %q is not a protected attribute", name)
		}
		d.attrs = append(d.attrs, i)
	}
	return d, nil
}

// appendGroupKey mirrors the monitor's group keying (attribute index =
// code, joined by '|') into the reusable scratch.
func (d *Decay) appendGroupKey(dst []byte, protected map[string]any) ([]byte, error) {
	for _, a := range d.attrs {
		attr := d.schema.Protected[a]
		v, ok := protected[attr.Name]
		if !ok {
			return nil, fmt.Errorf("drift: missing attribute %q", attr.Name)
		}
		var code int
		switch attr.Kind {
		case dataset.Categorical:
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("drift: attribute %q wants a string, got %T", attr.Name, v)
			}
			code = attr.CategoryIndex(s)
			if code < 0 {
				return nil, fmt.Errorf("drift: attribute %q has no value %q", attr.Name, s)
			}
		case dataset.Numeric:
			f, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("drift: attribute %q wants a number, got %T", attr.Name, v)
			}
			code = attr.BucketIndex(f)
		}
		dst = strconv.AppendInt(dst, int64(a), 10)
		dst = append(dst, '=')
		dst = strconv.AppendInt(dst, int64(code), 10)
		dst = append(dst, '|')
	}
	return dst, nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}

// binIndex clamps like histogram.BinIndex over [0, 1].
func (d *Decay) binIndex(score float64) int {
	if math.IsNaN(score) {
		return 0
	}
	f := math.Floor(score * float64(d.bins))
	if f < 0 {
		return 0
	}
	if f >= float64(d.bins) {
		return d.bins - 1
	}
	return int(f)
}

// tick advances time one event: the next observation weighs growth× more,
// which is exactly "everything stored decays by 2^(-1/halfLife)" after
// normalization. Rescales all stored mass when the weight nears the top
// of the float range.
func (d *Decay) tick() {
	d.events++
	d.weight *= d.growth
	if d.weight < rescaleAbove {
		return
	}
	f := d.weight
	for _, g := range d.order {
		for i := range g.bins {
			g.bins[i] /= f
		}
	}
	for id, st := range d.workers {
		st.weight /= f
		d.workers[id] = st
	}
	d.weight = 1
}

func (d *Decay) insertGroup(key string) *decayGroup {
	g := &decayGroup{key: key, bins: make([]float64, d.bins)}
	d.groups[key] = g
	pos := sort.Search(len(d.order), func(i int) bool { return d.order[i].key >= key })
	d.order = append(d.order, nil)
	copy(d.order[pos+1:], d.order[pos:])
	d.order[pos] = g
	return g
}

func (d *Decay) removeGroup(g *decayGroup) {
	delete(d.groups, g.key)
	pos := sort.Search(len(d.order), func(i int) bool { return d.order[i].key >= g.key })
	d.order = append(d.order[:pos], d.order[pos+1:]...)
}

// Join records a worker arriving with the given protected attributes and
// score, at the present weight.
func (d *Decay) Join(id string, protected map[string]any, score float64) error {
	if _, dup := d.workers[id]; dup {
		return fmt.Errorf("drift: worker %q already present", id)
	}
	buf, err := d.appendGroupKey(d.keyBuf[:0], protected)
	if err != nil {
		return err
	}
	d.keyBuf = buf
	g := d.groups[string(buf)]
	if g == nil {
		g = d.insertGroup(string(buf))
	}
	bin := d.binIndex(score)
	g.bins[bin] += d.weight
	g.live++
	d.workers[id] = decayWorker{g: g, bin: bin, weight: d.weight}
	d.tick()
	return nil
}

// Leave removes a worker's remaining (decayed) mass. A group with no live
// workers is dropped outright — its residual float dust would otherwise
// keep a departed population in the pairwise average forever.
func (d *Decay) Leave(id string) error {
	st, ok := d.workers[id]
	if !ok {
		return fmt.Errorf("drift: unknown worker %q", id)
	}
	d.subtract(st)
	delete(d.workers, id)
	d.tick()
	return nil
}

// Rescore re-makes the worker's observation at the present weight.
func (d *Decay) Rescore(id string, score float64) error {
	st, ok := d.workers[id]
	if !ok {
		return fmt.Errorf("drift: unknown worker %q", id)
	}
	g := st.g
	d.subtract(st)
	bin := d.binIndex(score)
	if g.live == 0 {
		// The worker was its group's last member; subtract dropped the
		// group, so re-insert it for the refreshed observation.
		g = d.groups[st.g.key]
		if g == nil {
			g = d.insertGroup(st.g.key)
		}
	}
	g.bins[bin] += d.weight
	g.live++
	d.workers[id] = decayWorker{g: g, bin: bin, weight: d.weight}
	d.tick()
	return nil
}

// subtract removes a worker's stored mass, clamping float dust at zero,
// and drops the group when its last live worker goes.
func (d *Decay) subtract(st decayWorker) {
	g := st.g
	g.bins[st.bin] -= st.weight
	if g.bins[st.bin] < 0 {
		g.bins[st.bin] = 0
	}
	g.live--
	if g.live == 0 {
		d.removeGroup(g)
	}
}

// Workers returns the tracked population size.
func (d *Decay) Workers() int { return len(d.workers) }

// Groups returns the number of groups with live workers.
func (d *Decay) Groups() int { return len(d.groups) }

// Events returns how many events have been processed.
func (d *Decay) Events() int64 { return d.events }

// Unfairness returns the average pairwise EMD between the groups'
// decay-weighted score PMFs. O(k²·bins), allocation-free after the first
// read at a given group count.
func (d *Decay) Unfairness() float64 {
	k := len(d.order)
	if k < 2 {
		return 0
	}
	if cap(d.pmfBuf) < k*d.bins {
		d.pmfBuf = make([]float64, k*d.bins)
	}
	pmfs := d.pmfBuf[:k*d.bins]
	for i, g := range d.order {
		dst := pmfs[i*d.bins : (i+1)*d.bins]
		total := 0.0
		for _, c := range g.bins {
			total += c
		}
		if total == 0 {
			u := 1 / float64(d.bins)
			for j := range dst {
				dst[j] = u
			}
			continue
		}
		for j, c := range g.bins {
			dst[j] = c / total
		}
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += emd.PMFDistance(pmfs[i*d.bins:(i+1)*d.bins], pmfs[j*d.bins:(j+1)*d.bins], d.unit)
		}
	}
	return sum / float64(k*(k-1)/2)
}
