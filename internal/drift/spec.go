package drift

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"regexp"
)

// Bounds enforced by Spec.Validate.
const (
	// MaxBins bounds the histogram resolution of the estimators.
	MaxBins = 10000
	// MaxWindow bounds the sliding-window capacity; the ring holds O(W)
	// entries per monitor.
	MaxWindow = 1 << 24
	// MaxRules bounds the per-monitor rule count.
	MaxRules = 64
)

var idPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// Spec is the wire-format monitor specification a client submits to
// POST /v1/monitors. The server seeds the watch from the named dataset
// (every worker joins, scored by the linear weights), seals baseline
// rules, and then feeds it live events from POST /v1/monitors/{id}/events.
type Spec struct {
	// ID names the monitor; it addresses the event stream and the WAL
	// record, so it is restricted to a URL- and key-safe alphabet.
	ID string `json:"id"`
	// Dataset names the registered dataset whose population seeds the
	// watch and whose schema defines the protected attributes.
	Dataset string `json:"dataset"`
	// Attributes are the protected attributes whose induced partitioning
	// is monitored.
	Attributes []string `json:"attributes"`
	// Weights defines the linear scoring function used to seed worker
	// scores from the dataset snapshot.
	Weights map[string]float64 `json:"weights"`
	// Bins is the histogram bin count (0 = default 10).
	Bins int `json:"bins,omitempty"`
	// Window is the sliding-window capacity in effective events; 0
	// disables the window estimator.
	Window int `json:"window,omitempty"`
	// HalfLife enables the exponential-decay estimator (in events); 0
	// disables it.
	HalfLife float64 `json:"half_life,omitempty"`
	// Rules are the alarm rules evaluated after every event.
	Rules []RuleSpec `json:"rules,omitempty"`
}

// DecodeSpec parses and validates a submitted monitor spec. It is strict —
// unknown fields and trailing garbage are rejected — because specs are
// persisted and revived at boot: a typo silently ignored at creation would
// come back as a surprising monitor after a restart.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("drift: bad spec json: %w", err)
	}
	if dec.More() {
		return Spec{}, errors.New("drift: trailing data after spec json")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s.normalize(), nil
}

// Validate checks the spec's self-contained invariants. Dataset existence
// and attribute names are checked against live server state, not here.
func (s Spec) Validate() error {
	if !idPattern.MatchString(s.ID) {
		return fmt.Errorf("drift: bad monitor id %q", s.ID)
	}
	if s.Dataset == "" {
		return errors.New("drift: spec needs a dataset")
	}
	if len(s.Attributes) == 0 {
		return errors.New("drift: spec needs at least one attribute")
	}
	for _, a := range s.Attributes {
		if a == "" {
			return errors.New("drift: empty attribute name")
		}
	}
	if len(s.Weights) == 0 {
		return errors.New("drift: spec needs scoring weights")
	}
	for attr, w := range s.Weights {
		if attr == "" {
			return errors.New("drift: empty weight attribute name")
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("drift: invalid weight %v for %q", w, attr)
		}
	}
	if s.Bins < 0 || s.Bins > MaxBins {
		return fmt.Errorf("drift: bins %d out of range [0, %d]", s.Bins, MaxBins)
	}
	if s.Window < 0 || s.Window > MaxWindow {
		return fmt.Errorf("drift: window %d out of range [0, %d]", s.Window, MaxWindow)
	}
	if s.HalfLife < 0 || math.IsNaN(s.HalfLife) || math.IsInf(s.HalfLife, 0) {
		return fmt.Errorf("drift: invalid half_life %v", s.HalfLife)
	}
	if len(s.Rules) > MaxRules {
		return fmt.Errorf("drift: %d rules exceeds limit %d", len(s.Rules), MaxRules)
	}
	seen := map[string]bool{}
	for _, r := range s.Rules {
		if err := r.Validate(s.Window > 0, s.HalfLife > 0); err != nil {
			return err
		}
		if seen[r.Name] {
			return fmt.Errorf("drift: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// normalize collapses representations that decode differently but mean
// the same thing, and fills rule-source defaults, so a decoded spec
// round-trips through Marshal/Decode unchanged (pinned by
// FuzzMonitorSpecJSON).
func (s Spec) normalize() Spec {
	if len(s.Attributes) == 0 {
		s.Attributes = nil
	}
	if len(s.Rules) == 0 {
		s.Rules = nil
	}
	for i, r := range s.Rules {
		if r.Source == "" {
			if s.Window > 0 {
				s.Rules[i].Source = SourceWindow
			} else {
				s.Rules[i].Source = SourceTotal
			}
		}
	}
	return s
}

// Wire event types carried on Event.Type.
const (
	EventJoin    = "join"
	EventLeave   = "leave"
	EventRescore = "rescore"
)

// Event is one worker lifecycle event on the wire: the body of
// POST /v1/monitors/{id}/events carries a batch of these.
type Event struct {
	Type   string `json:"type"`
	Worker string `json:"worker"`
	// Protected carries the worker's protected attribute values; join
	// events only.
	Protected map[string]any `json:"protected,omitempty"`
	// Score is the worker's score; join and rescore events only.
	Score float64 `json:"score,omitempty"`
}

// Validate checks the event's shape.
func (e Event) Validate() error {
	if e.Worker == "" {
		return errors.New("drift: event needs a worker id")
	}
	switch e.Type {
	case EventJoin:
		if len(e.Protected) == 0 {
			return fmt.Errorf("drift: join for %q needs protected attributes", e.Worker)
		}
	case EventLeave, EventRescore:
	default:
		return fmt.Errorf("drift: unknown event type %q", e.Type)
	}
	if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
		return fmt.Errorf("drift: non-finite score for %q", e.Worker)
	}
	return nil
}

// MaxEventBatch bounds one POST /v1/monitors/{id}/events body.
const MaxEventBatch = 10000

// eventBatch is the wire shape of an ingest body.
type eventBatch struct {
	Events []Event `json:"events"`
}

// DecodeEvents parses and validates an ingest batch, strictly.
func DecodeEvents(data []byte) ([]Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b eventBatch
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("drift: bad events json: %w", err)
	}
	if dec.More() {
		return nil, errors.New("drift: trailing data after events json")
	}
	if len(b.Events) == 0 {
		return nil, errors.New("drift: empty event batch")
	}
	if len(b.Events) > MaxEventBatch {
		return nil, fmt.Errorf("drift: batch of %d exceeds limit %d", len(b.Events), MaxEventBatch)
	}
	for i, e := range b.Events {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("drift: event %d: %w", i, err)
		}
	}
	return b.Events, nil
}
