package drift

import (
	"fmt"
	"math"
)

// RuleType discriminates the watch rules the alarm engine evaluates.
type RuleType string

const (
	// RuleThreshold fires while the estimate exceeds a fixed level.
	RuleThreshold RuleType = "threshold"
	// RuleDelta ("delta-over-window") fires while the estimate has risen
	// by more than Delta relative to its own value Lookback events ago —
	// a slope detector that catches fast drift regardless of level.
	RuleDelta RuleType = "delta-over-window"
	// RuleBaseline ("window-vs-baseline") fires while the estimate
	// exceeds a sealed baseline by more than Delta — the drift detector:
	// seal after warmup, alarm when the present diverges from it.
	RuleBaseline RuleType = "window-vs-baseline"
)

// Source selects which estimator a rule reads.
type Source string

const (
	// SourceWindow reads the sliding-window estimate.
	SourceWindow Source = "window"
	// SourceDecay reads the exponential-decay estimate.
	SourceDecay Source = "decay"
	// SourceTotal reads the unbounded-history monitor.
	SourceTotal Source = "total"
)

// RuleSpec is one named watch rule. Hysteresis, cooldown and warmup make
// the alarm lifecycle flap-resistant: a firing rule clears only when the
// signal drops below Limit·(1−Hysteresis), transitions are at least
// Cooldown events apart, and nothing is evaluated until Warmup events
// have been observed (re-applied after a restart, so a re-seeding window
// never emits spurious transitions).
type RuleSpec struct {
	Name string   `json:"name"`
	Type RuleType `json:"type"`
	// Source defaults to "window" when the watch has one, else "total".
	Source Source `json:"source,omitempty"`
	// Threshold is the fixed level for "threshold" rules.
	Threshold float64 `json:"threshold,omitempty"`
	// Delta is the rise that trips "delta-over-window" and
	// "window-vs-baseline" rules.
	Delta float64 `json:"delta,omitempty"`
	// Lookback is the comparison distance in events for
	// "delta-over-window" rules.
	Lookback int `json:"lookback,omitempty"`
	// Hysteresis in [0, 1): the cleared level is Limit·(1−Hysteresis).
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// Cooldown is the minimum number of events between transitions.
	Cooldown int `json:"cooldown,omitempty"`
	// Warmup is the number of events observed before the rule evaluates.
	Warmup int `json:"warmup,omitempty"`
}

// Validate checks one rule against the watch's configured estimators.
func (r RuleSpec) Validate(hasWindow, hasDecay bool) error {
	if r.Name == "" {
		return fmt.Errorf("drift: rule needs a name")
	}
	switch r.Type {
	case RuleThreshold:
		if !(r.Threshold > 0) {
			return fmt.Errorf("drift: rule %q: threshold must be positive", r.Name)
		}
	case RuleDelta:
		if !(r.Delta > 0) {
			return fmt.Errorf("drift: rule %q: delta must be positive", r.Name)
		}
		if r.Lookback < 1 {
			return fmt.Errorf("drift: rule %q: lookback must be positive", r.Name)
		}
	case RuleBaseline:
		if !(r.Delta > 0) {
			return fmt.Errorf("drift: rule %q: delta must be positive", r.Name)
		}
	default:
		return fmt.Errorf("drift: rule %q: unknown type %q", r.Name, r.Type)
	}
	switch r.Source {
	case SourceWindow:
		if !hasWindow {
			return fmt.Errorf("drift: rule %q reads the window but none is configured", r.Name)
		}
	case SourceDecay:
		if !hasDecay {
			return fmt.Errorf("drift: rule %q reads the decay estimator but none is configured", r.Name)
		}
	case SourceTotal, "":
	default:
		return fmt.Errorf("drift: rule %q: unknown source %q", r.Name, r.Source)
	}
	if r.Hysteresis < 0 || r.Hysteresis >= 1 || math.IsNaN(r.Hysteresis) {
		return fmt.Errorf("drift: rule %q: hysteresis must be in [0, 1)", r.Name)
	}
	if r.Cooldown < 0 {
		return fmt.Errorf("drift: rule %q: negative cooldown", r.Name)
	}
	if r.Warmup < 0 {
		return fmt.Errorf("drift: rule %q: negative warmup", r.Name)
	}
	return nil
}

// Alarm transition types carried on AlarmEvent.Type.
const (
	AlarmFired   = "fired"
	AlarmCleared = "cleared"
)

// AlarmEvent is one alarm transition, published into the monitor's event
// hub for SSE delivery. Seq is hub-assigned.
type AlarmEvent struct {
	Seq      int64    `json:"seq"`
	Monitor  string   `json:"monitor"`
	Rule     string   `json:"rule"`
	RuleType RuleType `json:"rule_type"`
	Type     string   `json:"type"` // "fired" | "cleared"
	// Value is the estimator reading, Signal the compared quantity (the
	// value itself, or its rise over lookback/baseline) and Limit the
	// level it crossed.
	Value  float64 `json:"value"`
	Signal float64 `json:"signal"`
	Limit  float64 `json:"limit"`
	// Event is the watch's event index at the transition.
	Event int64 `json:"event"`
}

// AlarmState is the persistable slice of one rule's runtime state: enough
// for a restarted watch to neither lose nor re-fire an active alarm, and
// nothing that would couple the WAL to evaluation internals.
type AlarmState struct {
	Rule        string  `json:"rule"`
	Active      bool    `json:"active"`
	Fired       int64   `json:"fired"`
	Baseline    float64 `json:"baseline,omitempty"`
	BaselineSet bool    `json:"baseline_set,omitempty"`
}

// Integer discriminants for the per-event hot path: alarms are evaluated
// after every stream event, and switching on small ints there is
// measurably cheaper than re-comparing the spec's type/source strings.
const (
	kindThreshold = iota
	kindDelta
	kindBaseline
)

const (
	srcIdxTotal = iota
	srcIdxWindow
	srcIdxDecay
)

func (t RuleType) kind() uint8 {
	switch t {
	case RuleDelta:
		return kindDelta
	case RuleBaseline:
		return kindBaseline
	}
	return kindThreshold
}

func (s Source) index() uint8 {
	switch s {
	case SourceWindow:
		return srcIdxWindow
	case SourceDecay:
		return srcIdxDecay
	}
	return srcIdxTotal
}

// alarm is one rule's runtime state machine.
type alarm struct {
	spec RuleSpec
	// kind and srcIdx are the spec's type and source as integers.
	kind   uint8
	srcIdx uint8
	active bool
	fired  int64
	// lastTransition is the event index of the last transition (0 =
	// never), enforcing the cooldown.
	lastTransition int64
	// seen counts events observed by this rule instance; it is never
	// restored, so Warmup re-applies after a restart.
	seen int64
	// hist is the delta-over-window value ring; histIdx is the cursor of
	// the value Lookback events ago once primed (histN observations in).
	hist    []float64
	histIdx int
	histN   int64
	// baseline is the sealed comparison level for window-vs-baseline.
	baseline    float64
	baselineSet bool
	// limit is the fire level (Threshold or Delta, fixed by the spec);
	// clearLimit is the precomputed hysteresis floor an active alarm must
	// drop below to clear.
	limit      float64
	clearLimit float64
}

func newAlarm(spec RuleSpec) *alarm {
	a := &alarm{spec: spec, kind: spec.Type.kind(), srcIdx: spec.Source.index()}
	if spec.Type == RuleDelta {
		a.hist = make([]float64, spec.Lookback)
	}
	if spec.Type == RuleThreshold {
		a.limit = spec.Threshold
	} else {
		a.limit = spec.Delta
	}
	a.clearLimit = a.limit - spec.Hysteresis*math.Abs(a.limit)
	return a
}

// step is the per-event hot path for threshold and baseline rules: it
// updates the rule's rolling state and reports whether the signal crossed
// the rule's fire level (inactive) or cleared level (active). Almost
// every event resolves here in a handful of compares; only a crossing
// goes on to transition, which applies the warmup and cooldown
// suppressions. Delta rules go through stepDelta instead — the two are
// split (with the caller dispatching on kind) so each stays within the
// compiler's inlining budget; a single function with the ring arm inside
// does not inline, and these run per rule per event.
func (a *alarm) step(v float64) (signal float64, crossed bool) {
	a.seen++
	signal = v
	if a.kind == kindBaseline {
		if !a.baselineSet {
			return 0, false
		}
		signal = v - a.baseline
	}
	if a.active {
		return signal, signal < a.clearLimit
	}
	return signal, signal > a.limit
}

// stepDelta is the per-event hot path for delta-over-window rules: it
// rotates the lookback ring and compares the rise. See step.
func (a *alarm) stepDelta(v float64) (signal float64, crossed bool) {
	a.seen++
	primed := a.histN >= int64(len(a.hist))
	old := a.hist[a.histIdx]
	a.hist[a.histIdx] = v
	a.histN++
	if a.histIdx++; a.histIdx == len(a.hist) {
		a.histIdx = 0
	}
	if !primed {
		return 0, false // lookback ring not primed yet
	}
	signal = v - old
	if a.active {
		return signal, signal < a.clearLimit
	}
	return signal, signal > a.limit
}

// transition is the cold path behind step: the signal crossed a level,
// but warmup (rule too young) or cooldown (too soon after the last
// transition) may still suppress the flip.
func (a *alarm) transition(eventIdx int64) (kind string, ok bool) {
	if a.seen <= int64(a.spec.Warmup) {
		return "", false
	}
	if a.lastTransition != 0 && eventIdx-a.lastTransition < int64(a.spec.Cooldown) {
		return "", false
	}
	a.lastTransition = eventIdx
	if a.active {
		a.active = false
		return AlarmCleared, true
	}
	a.active = true
	a.fired++
	return AlarmFired, true
}

// observe feeds one event's estimator value through the state machine
// and reports a transition, if any. eventIdx is the watch's 1-based
// event index. Unit-test entry point; Watch.evaluate drives step and
// transition directly.
func (a *alarm) observe(v float64, eventIdx int64) (kind string, signal, limit float64, ok bool) {
	var crossed bool
	if a.kind == kindDelta {
		signal, crossed = a.stepDelta(v)
	} else {
		signal, crossed = a.step(v)
	}
	if !crossed {
		return "", 0, 0, false
	}
	kind, ok = a.transition(eventIdx)
	if !ok {
		return "", 0, 0, false
	}
	return kind, signal, a.limit, true
}
