// Package drift is the continuous-audit subsystem: it turns the
// point-in-time unfairness score of the paper — already incremental in
// internal/monitor, but with unbounded history — into windowed estimates
// a long-running marketplace can alarm on.
//
// Two estimators bound the history. Window replays, incrementally, only
// the last W effective events: admissions and retractions both go through
// the monitor's O(k + log k) delta machinery, and the windowed value is
// bit-identical to rebuilding a fresh monitor from the window's contents
// (the differential suite pins this). Decay keeps an exponentially
// decayed view with a configurable half-life in events — no retraction
// bookkeeping, O(1) per event — for unbounded streams where "recent"
// should fade smoothly rather than fall off a cliff.
//
// Watch drives both (plus the unbounded monitor) from one event stream
// and evaluates named alarm rules after every event: "threshold" (fixed
// level), "delta-over-window" (rise against the estimate Lookback events
// ago) and "window-vs-baseline" (divergence from a sealed baseline).
// Hysteresis, cooldown and warmup make the alarm lifecycle
// flap-resistant; AlarmState round-trips through the server's WAL so a
// restart neither loses nor re-fires an active alarm. Transitions are
// published through Hub to SSE subscribers of
// GET /v1/monitors/{id}/events.
package drift
