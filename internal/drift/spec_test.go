package drift

import (
	"testing"
)

func validSpecJSON() string {
	return `{
		"id": "gender-watch",
		"dataset": "workers",
		"attributes": ["Gender"],
		"weights": {"ApprovalRate": 1},
		"window": 512,
		"half_life": 1000,
		"rules": [
			{"name": "hard", "type": "threshold", "threshold": 0.4},
			{"name": "slope", "type": "delta-over-window", "delta": 0.05, "lookback": 200},
			{"name": "drift", "type": "window-vs-baseline", "delta": 0.08, "hysteresis": 0.25, "cooldown": 50, "warmup": 100}
		]
	}`
}

func TestDecodeSpec(t *testing.T) {
	s, err := DecodeSpec([]byte(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "gender-watch" || s.Window != 512 || len(s.Rules) != 3 {
		t.Fatalf("decoded %+v", s)
	}
	// Source defaults fill toward the window when one is configured.
	for _, r := range s.Rules {
		if r.Source != SourceWindow {
			t.Fatalf("rule %q source %q, want window default", r.Name, r.Source)
		}
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"surprise":1}`,
		"trailing data":  validSpecJSON() + `{"again":true}`,
		"bad id":         `{"id":"NOT OK","dataset":"d","attributes":["A"],"weights":{"w":1}}`,
		"no dataset":     `{"id":"m","attributes":["A"],"weights":{"w":1}}`,
		"no attributes":  `{"id":"m","dataset":"d","weights":{"w":1}}`,
		"no weights":     `{"id":"m","dataset":"d","attributes":["A"]}`,
		"negative bins":  `{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"bins":-1}`,
		"nan weight":     `{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":"nan"}}`,
		"huge window":    `{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"window":999999999}`,
		"inf half life":  `{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"half_life":1e999}`,
		"duplicate rule": `{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"rules":[{"name":"r","type":"threshold","threshold":0.1},{"name":"r","type":"threshold","threshold":0.2}]}`,
		"window rule without window": `{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"rules":[{"name":"r","type":"threshold","threshold":0.1,"source":"window"}]}`,
	}
	for name, body := range cases {
		if _, err := DecodeSpec([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

func TestDecodeEvents(t *testing.T) {
	evs, err := DecodeEvents([]byte(`{"events":[
		{"type":"join","worker":"w1","protected":{"Gender":"Female"},"score":0.7},
		{"type":"rescore","worker":"w1","score":0.4},
		{"type":"leave","worker":"w1"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 || evs[0].Type != EventJoin || evs[2].Worker != "w1" {
		t.Fatalf("decoded %+v", evs)
	}
	bad := map[string]string{
		"empty batch":       `{"events":[]}`,
		"unknown field":     `{"events":[{"type":"join","worker":"w","protected":{"G":"g"},"banana":1}]}`,
		"no worker":         `{"events":[{"type":"join","protected":{"G":"g"}}]}`,
		"join no protected": `{"events":[{"type":"join","worker":"w"}]}`,
		"unknown type":      `{"events":[{"type":"promote","worker":"w"}]}`,
		"trailing":          `{"events":[{"type":"leave","worker":"w"}]} true`,
	}
	for name, body := range bad {
		if _, err := DecodeEvents([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}
