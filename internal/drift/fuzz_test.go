package drift

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzMonitorSpecJSON pins the monitor spec's decode/encode round trip.
// Specs are persisted in WAL monitor records and revived at every boot,
// so every spec DecodeSpec accepts must survive Marshal → DecodeSpec as
// the identical value, and the marshaled form must be a fixed point —
// representation drift would change monitor records across a restart.
// Strictness is part of the contract: unknown fields and trailing garbage
// must be rejected, never silently dropped.
func FuzzMonitorSpecJSON(f *testing.F) {
	f.Add([]byte(`{"id":"m1","dataset":"workers","attributes":["Gender"],"weights":{"ApprovalRate":1}}`))
	f.Add([]byte(`{"id":"gender-watch","dataset":"d","attributes":["Gender","Country"],"weights":{"a":0.5,"b":2},"bins":20,"window":512,"half_life":1000,"rules":[{"name":"hard","type":"threshold","threshold":0.4},{"name":"slope","type":"delta-over-window","delta":0.05,"lookback":200,"source":"decay"},{"name":"drift","type":"window-vs-baseline","delta":0.08,"hysteresis":0.25,"cooldown":50,"warmup":100}]}`))
	f.Add([]byte(`{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"rules":[]}`))
	f.Add([]byte(`{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"unknown":true}`))
	f.Add([]byte(`{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1}}{"trailing":1}`))
	f.Add([]byte(`{"id":"BAD ID","dataset":"d","attributes":["A"],"weights":{"w":1}}`))
	f.Add([]byte(`{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":-1}}`))
	f.Add([]byte(`{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"window":-5}`))
	f.Add([]byte(`{"id":"m","dataset":"d","attributes":["A"],"weights":{"w":1},"rules":[{"name":"r","type":"threshold","threshold":0.1,"source":"window"}]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return // rejected input: only the accept path has invariants
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("DecodeSpec returned an invalid spec: %v\ninput: %q", err, data)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v\nspec: %+v", err, s)
		}
		s2, err := DecodeSpec(out)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nencoding: %s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("spec round trip changed the value:\n  first  %+v\n  second %+v\ninput: %q", s, s2, data)
		}
		out2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("encoding is not a fixed point:\n  first  %s\n  second %s", out, out2)
		}
	})
}
