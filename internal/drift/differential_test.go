package drift

import (
	"fmt"
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/monitor"
	"fairrank/internal/testkit"
)

const streamGroups = 4

func streamSchema() *dataset.Schema {
	return &dataset.Schema{
		Protected: []dataset.Attribute{dataset.Cat("G", "g0", "g1", "g2", "g3")},
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
}

// groupAttrMaps are shared per-group attribute maps: the window keeps
// references to them, and reusing one map per group mirrors how a real
// ingest path would intern attribute rows.
var groupAttrMaps = func() []map[string]any {
	out := make([]map[string]any, streamGroups)
	for g := range out {
		out[g] = map[string]any{"G": fmt.Sprintf("g%d", g)}
	}
	return out
}()

func applyToWindow(t *testing.T, w *Window, ev testkit.Event) {
	t.Helper()
	var err error
	switch ev.Kind {
	case testkit.EventJoin:
		err = w.Join(ev.ID, groupAttrMaps[ev.Group], ev.Score)
	case testkit.EventLeave:
		err = w.Leave(ev.ID)
	case testkit.EventRescore:
		err = w.Rescore(ev.ID, ev.Score)
	}
	if err != nil {
		t.Fatalf("window apply %+v: %v", ev, err)
	}
}

// replayContents rebuilds a fresh monitor from the window's live contents
// — the definitionally correct windowed state.
func replayContents(t *testing.T, w *Window) *monitor.Monitor {
	t.Helper()
	m, err := monitor.New(streamSchema(), []string{"G"}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range w.Contents() {
		switch ev.Type {
		case EventJoin:
			err = m.Join(ev.Worker, ev.Protected, ev.Score)
		case EventLeave:
			err = m.Leave(ev.Worker)
		case EventRescore:
			err = m.Rescore(ev.Worker, ev.Score)
		}
		if err != nil {
			t.Fatalf("replay %+v: %v", ev, err)
		}
	}
	return m
}

// TestWindowBitIdenticalToReplay is the window's differential gate:
// across random valid streams and window capacities, the incrementally
// maintained windowed state must agree bit-for-bit with a from-scratch
// monitor.New + replay over the window's contents — same unfairness (the
// sum-tree reduction is a pure function of the leaf count and values),
// same population, same group count.
func TestWindowBitIdenticalToReplay(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		g := testkit.NewGen(seed)
		n := g.R.IntRange(20, 300)
		capacity := g.R.IntRange(3, 80)
		events := g.Events(streamGroups, n)
		w, err := NewWindow(streamSchema(), []string{"G"}, 10, capacity)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range events {
			applyToWindow(t, w, ev)
			if i%17 != 16 && i != len(events)-1 {
				continue
			}
			ref := replayContents(t, w)
			inc, err := w.UnfairnessErr()
			if err != nil {
				t.Fatalf("seed %d cap %d event %d: %v", seed, capacity, i, err)
			}
			want, err := ref.UnfairnessErr()
			if err != nil {
				t.Fatalf("seed %d cap %d event %d: replay: %v", seed, capacity, i, err)
			}
			if inc != want {
				t.Fatalf("seed %d cap %d event %d: window %v != replay %v",
					seed, capacity, i, inc, want)
			}
			if w.Workers() != ref.Workers() || w.Groups() != ref.Groups() {
				t.Fatalf("seed %d cap %d event %d: population %d/%d != replay %d/%d",
					seed, capacity, i, w.Workers(), w.Groups(), ref.Workers(), ref.Groups())
			}
			if w.Live() > capacity {
				t.Fatalf("seed %d event %d: live %d exceeds capacity %d", seed, i, w.Live(), capacity)
			}
		}
	}
}

// TestWholeStreamWindowEqualsUnbounded is the metamorphic identity: a
// window large enough to cover the whole stream never retracts, so its
// estimate must equal the unbounded monitor's bit-for-bit at every
// checkpoint.
func TestWholeStreamWindowEqualsUnbounded(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		g := testkit.NewGen(seed)
		n := g.R.IntRange(10, 200)
		events := g.Events(streamGroups, n)
		w, err := NewWindow(streamSchema(), []string{"G"}, 10, n+1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := monitor.New(streamSchema(), []string{"G"}, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range events {
			applyToWindow(t, w, ev)
			var merr error
			switch ev.Kind {
			case testkit.EventJoin:
				merr = m.Join(ev.ID, groupAttrMaps[ev.Group], ev.Score)
			case testkit.EventLeave:
				merr = m.Leave(ev.ID)
			case testkit.EventRescore:
				merr = m.Rescore(ev.ID, ev.Score)
			}
			if merr != nil {
				t.Fatalf("seed %d event %d: %v", seed, i, merr)
			}
			a, errA := w.UnfairnessErr()
			b, errB := m.UnfairnessErr()
			if errA != nil || errB != nil {
				t.Fatalf("seed %d event %d: %v / %v", seed, i, errA, errB)
			}
			if a != b {
				t.Fatalf("seed %d event %d: whole-stream window %v != unbounded %v", seed, i, a, b)
			}
		}
		if w.Retractions() != 0 {
			t.Fatalf("seed %d: whole-stream window retracted %d times", seed, w.Retractions())
		}
	}
}

// TestDecayMatchesOracle pins the growing-scale decay estimator against
// the literal-math oracle — textbook 2^((t−T)/halfLife) weights computed
// by replaying the stream — within a float tolerance (the two use
// different weight scales and summation orders, so bit-identity is not
// the contract here).
func TestDecayMatchesOracle(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		g := testkit.NewGen(seed)
		n := g.R.IntRange(10, 300)
		halfLife := g.R.FloatRange(5, 200)
		events := g.Events(streamGroups, n)
		d, err := NewDecay(streamSchema(), []string{"G"}, 10, halfLife)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range events {
			switch ev.Kind {
			case testkit.EventJoin:
				err = d.Join(ev.ID, groupAttrMaps[ev.Group], ev.Score)
			case testkit.EventLeave:
				err = d.Leave(ev.ID)
			case testkit.EventRescore:
				err = d.Rescore(ev.ID, ev.Score)
			}
			if err != nil {
				t.Fatalf("seed %d event %d: %v", seed, i, err)
			}
			if i%23 != 22 && i != len(events)-1 {
				continue
			}
			var o testkit.Oracle
			want := o.DecayUnfairness(events[:i+1], streamGroups, 10, halfLife)
			got := d.Unfairness()
			if math.Abs(got-want) > 1e-8 {
				t.Fatalf("seed %d event %d halfLife %.1f: decay %v, oracle %v",
					seed, i, halfLife, got, want)
			}
		}
	}
}

// TestWindowAgedOutSemantics pins the stream normalization rules one by
// one: an aged-out worker's Rescore re-enters it as a Join, its Leave
// admits nothing, and a retracted Join tombstones its whole span.
func TestWindowAgedOutSemantics(t *testing.T) {
	w, err := NewWindow(streamSchema(), []string{"G"}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Join("a", groupAttrMaps[0], 0.1))
	must(w.Join("b", groupAttrMaps[1], 0.2))
	must(w.Join("c", groupAttrMaps[2], 0.3)) // retracts a's span
	if w.Workers() != 2 {
		t.Fatalf("after retraction: %d workers, want 2", w.Workers())
	}
	// a is off the window but still on the platform: its rescore re-joins.
	must(w.Rescore("a", 0.5)) // retracts b's span
	if w.Workers() != 2 {
		t.Fatalf("after rescore re-admission: %d workers, want 2", w.Workers())
	}
	// b's span aged out: its leave admits nothing and changes nothing.
	live := w.Live()
	must(w.Leave("b"))
	if w.Live() != live || w.Workers() != 2 {
		t.Fatalf("aged-out leave mutated the window: live %d→%d workers %d",
			live, w.Live(), w.Workers())
	}
	// A worker never seen at all is still an error.
	if err := w.Leave("ghost"); err == nil {
		t.Fatal("leave of unknown worker succeeded")
	}
	if err := w.Rescore("ghost", 0.4); err == nil {
		t.Fatal("rescore of unknown worker succeeded")
	}
	// A live leave closes the span: retracting its Join later must not
	// double-remove the worker.
	must(w.Leave("c"))                       // c live → effective leave admitted
	must(w.Join("d", groupAttrMaps[3], 0.7)) // forces retractions
	must(w.Join("e", groupAttrMaps[0], 0.9))
	ref := replayContents(t, w)
	if w.Workers() != ref.Workers() {
		t.Fatalf("population %d != replay %d", w.Workers(), ref.Workers())
	}
	a, _ := w.UnfairnessErr()
	b, err := ref.UnfairnessErr()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("window %v != replay %v", a, b)
	}
}
