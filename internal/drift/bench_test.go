package drift

import (
	"fmt"
	"testing"

	"fairrank/internal/monitor"
)

// benchStream builds a steady-state workload over a fixed worker
// population split across two groups: a prelude that joins every worker
// once, and a cyclic stream where each worker in turn leaves, rejoins,
// and is rescored twice. Looping the cyclic slice is always a valid
// stream for both the unbounded monitor and the window, the population
// never dips by more than one, and no group ever empties — so the
// steady state has no structural rebuilds, only delta-path work.
func benchStream(workers int) (prelude, cycle []Event) {
	id := func(i int) string { return fmt.Sprintf("bw%d", i) }
	score := func(i, salt int) float64 { return float64((i*salt+7)%97) / 97 }
	for i := 0; i < workers; i++ {
		prelude = append(prelude, Event{Type: EventJoin, Worker: id(i), Protected: groupAttrMaps[i%2], Score: score(i, 1)})
	}
	for i := 0; i < workers; i++ {
		cycle = append(cycle,
			Event{Type: EventLeave, Worker: id(i)},
			Event{Type: EventJoin, Worker: id(i), Protected: groupAttrMaps[i%2], Score: score(i, 13)},
			Event{Type: EventRescore, Worker: id(i), Score: score(i, 31)},
			Event{Type: EventRescore, Worker: id(i), Score: score(i, 57)},
		)
	}
	return prelude, cycle
}

func seedAnchors(tb testing.TB, join func(string, map[string]any, float64) error) {
	tb.Helper()
	for g := 0; g < 2; g++ {
		for i := 0; i < 2; i++ {
			if err := join(fmt.Sprintf("anchor%d-%d", g, i), groupAttrMaps[g], 0.25+0.5*float64(g)); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

func applyWindowEvent(w *Window, ev Event) error {
	switch ev.Type {
	case EventJoin:
		return w.Join(ev.Worker, ev.Protected, ev.Score)
	case EventLeave:
		return w.Leave(ev.Worker)
	default:
		return w.Rescore(ev.Worker, ev.Score)
	}
}

// BenchmarkDriftPerEvent compares the per-event cost of the sliding
// window against the raw unbounded monitor on the same steady-state
// stream — the CI gate (bench-drift) holds the window within 2×: an
// admission is one monitor delta op, and only retractions of still-open
// spans pay a second one.
func BenchmarkDriftPerEvent(b *testing.B) {
	prelude, cycle := benchStream(64)
	b.Run("estimator=unbounded", func(b *testing.B) {
		m, err := monitor.New(streamSchema(), []string{"G"}, 10, 0)
		if err != nil {
			b.Fatal(err)
		}
		seedAnchors(b, m.Join)
		apply := func(ev Event) error {
			switch ev.Type {
			case EventJoin:
				return m.Join(ev.Worker, ev.Protected, ev.Score)
			case EventLeave:
				return m.Leave(ev.Worker)
			default:
				return m.Rescore(ev.Worker, ev.Score)
			}
		}
		for _, ev := range prelude {
			if err := apply(ev); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 2*len(cycle); i++ { // warm maps before measuring
			if err := apply(cycle[i%len(cycle)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := apply(cycle[i%len(cycle)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("estimator=window", func(b *testing.B) {
		w, err := NewWindow(streamSchema(), []string{"G"}, 10, 96)
		if err != nil {
			b.Fatal(err)
		}
		seedAnchors(b, w.Join)
		for _, ev := range prelude {
			if err := applyWindowEvent(w, ev); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 4*len(cycle); i++ { // reach capacity and ring steady state
			if err := applyWindowEvent(w, cycle[i%len(cycle)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := applyWindowEvent(w, cycle[i%len(cycle)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDriftAlarm measures what rule evaluation adds to a watch's
// event path: the same estimators with zero rules vs the full three-rule
// set (none of which transition, the steady-state case). The CI gate
// holds the overhead within 5%.
func BenchmarkDriftAlarm(b *testing.B) {
	prelude, cycle := benchStream(64)
	run := func(b *testing.B, rules []RuleSpec) {
		w, err := NewWatch(streamSchema(), Spec{
			ID: "bench", Dataset: "bench", Attributes: []string{"G"},
			Weights: map[string]float64{"Score": 1},
			Window:  96, Rules: rules,
		})
		if err != nil {
			b.Fatal(err)
		}
		seedAnchors(b, func(id string, prot map[string]any, score float64) error {
			_, err := w.Apply(Event{Type: EventJoin, Worker: id, Protected: prot, Score: score})
			return err
		})
		for _, ev := range prelude {
			if _, err := w.Apply(ev); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 4*len(cycle); i++ {
			if _, err := w.Apply(cycle[i%len(cycle)]); err != nil {
				b.Fatal(err)
			}
		}
		w.SealBaseline()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Apply(cycle[i%len(cycle)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("alarms=off", func(b *testing.B) { run(b, nil) })
	b.Run("alarms=on", func(b *testing.B) {
		run(b, []RuleSpec{
			// Limits far above any reachable signal: the steady state is
			// "armed but silent", which is what production watches do
			// almost all of the time.
			{Name: "hard", Type: RuleThreshold, Threshold: 10, Hysteresis: 0.1},
			{Name: "slope", Type: RuleDelta, Delta: 10, Lookback: 64, Hysteresis: 0.1},
			{Name: "drift", Type: RuleBaseline, Delta: 10, Hysteresis: 0.1, Cooldown: 10},
		})
	})
}

// TestWindowSteadyStateAllocs is the zero-alloc gate: once the window is
// at capacity over a stable population and group set, feeding events must
// not allocate — the ring, the key scratch, the worker maps and the
// monitor's delta path are all reused storage.
func TestWindowSteadyStateAllocs(t *testing.T) {
	prelude, cycle := benchStream(64)
	w, err := NewWindow(streamSchema(), []string{"G"}, 10, 96)
	if err != nil {
		t.Fatal(err)
	}
	seedAnchors(t, w.Join)
	for _, ev := range prelude {
		if err := applyWindowEvent(w, ev); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4*len(cycle); i++ {
		if err := applyWindowEvent(w, cycle[i%len(cycle)]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(5, func() {
		for range cycle {
			if err := applyWindowEvent(w, cycle[i%len(cycle)]); err != nil {
				t.Fatal(err)
			}
			i++
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state window path allocates: %v allocs per %d-event cycle", avg, len(cycle))
	}
}
