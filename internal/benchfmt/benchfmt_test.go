package benchfmt

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		want Result
		ok   bool
	}{
		{
			"BenchmarkTelemetryOverhead/telemetry=off-8 \t 12\t  95102458 ns/op\t 1024 B/op\t 17 allocs/op",
			Result{Name: "BenchmarkTelemetryOverhead/telemetry=off", Procs: 8,
				Iterations: 12, NsPerOp: 95102458, BytesPerOp: 1024, AllocsPerOp: 17},
			true,
		},
		{
			"BenchmarkEMDPair 100 250.5 ns/op",
			Result{Name: "BenchmarkEMDPair", Procs: 1, Iterations: 100,
				NsPerOp: 250.5, BytesPerOp: -1, AllocsPerOp: -1},
			true,
		},
		{
			"BenchmarkCodec-4 50 1000 ns/op 256.00 MB/s",
			Result{Name: "BenchmarkCodec", Procs: 4, Iterations: 50,
				NsPerOp: 1000, BytesPerOp: -1, AllocsPerOp: -1, MBPerSec: 256},
			true,
		},
		{"goos: linux", Result{}, false},
		{"PASS", Result{}, false},
		{"ok  \tfairrank\t1.2s", Result{}, false},
		{"BenchmarkBroken x ns/op", Result{}, false},
		{"BenchmarkNoUnit 10 123", Result{}, false},
	}
	for _, c := range cases {
		got, ok := ParseLine(c.line)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseLine(%q) = %+v, %v; want %+v, %v", c.line, got, ok, c.want, c.ok)
		}
	}
}

func TestParseKeepsRepeats(t *testing.T) {
	out := "goos: linux\n" +
		"BenchmarkX-8 10 100 ns/op\n" +
		"BenchmarkX-8 10 110 ns/op\n" +
		"BenchmarkY-8 10 50 ns/op\n" +
		"PASS\n"
	res, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(res), res)
	}
	if res[0].Name != "BenchmarkX" || res[1].NsPerOp != 110 || res[2].Name != "BenchmarkY" {
		t.Errorf("unexpected results: %+v", res)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
