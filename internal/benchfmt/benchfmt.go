// Package benchfmt parses the text output of `go test -bench`, the
// common input of cmd/benchjson (benchmark → JSON artifact) and
// cmd/benchdiff (telemetry-overhead gate). Only the stable benchmark
// result lines are interpreted; everything else (goos/goarch headers,
// PASS/ok trailers, log noise) is skipped.
package benchfmt

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line, e.g.
//
//	BenchmarkTelemetryOverhead/telemetry=off-8  12  95102458 ns/op  1024 B/op  17 allocs/op
type Result struct {
	Name        string  `json:"name"`       // without the trailing -GOMAXPROCS
	Procs       int     `json:"procs"`      // GOMAXPROCS suffix, 1 if absent
	Iterations  int64   `json:"iterations"` // b.N
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`   // -1 when run without -benchmem
	AllocsPerOp int64   `json:"allocs_per_op"`  // -1 when run without -benchmem
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// ParseLine parses a single benchmark result line. The second return is
// false for lines that are not benchmark results.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	// The -N suffix is GOMAXPROCS; sub-benchmark names may themselves
	// contain dashes, so only a trailing all-digit segment counts.
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil && p > 0 {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || n <= 0 {
		return Result{}, false
	}
	r.Iterations = n
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "MB/s":
			r.MBPerSec = v
		}
	}
	if !sawNs {
		return Result{}, false
	}
	return r, true
}

// Parse reads `go test -bench` output and returns every benchmark
// result, in input order. Repeated names (from -count) are kept as
// separate entries.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if res, ok := ParseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// Median returns the median of xs, or 0 for an empty slice. The input
// is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
