package dataset

import (
	"math"
	"strings"
	"testing"
)

func TestProfile(t *testing.T) {
	ds := buildOne(t) // w1: Male/India/1984, 80/55; w2: Female/America/1999, 90/70
	profiles := Profile(ds)
	if len(profiles) != 5 { // 3 protected + 2 observed
		t.Fatalf("%d profiles", len(profiles))
	}
	byName := map[string]AttributeProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}
	g := byName["Gender"]
	if !g.Protected || g.Counts["Male"] != 1 || g.Counts["Female"] != 1 {
		t.Fatalf("gender profile = %+v", g)
	}
	y := byName["YearOfBirth"]
	if y.Min != 1984 || y.Max != 1999 || math.Abs(y.Mean-1991.5) > 1e-9 {
		t.Fatalf("year profile = %+v", y)
	}
	lt := byName["LanguageTest"]
	if lt.Protected || lt.Min != 80 || lt.Max != 90 || lt.Mean != 85 {
		t.Fatalf("language test profile = %+v", lt)
	}
}

func TestWriteProfile(t *testing.T) {
	ds := buildOne(t)
	var b strings.Builder
	if err := WriteProfile(&b, ds); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"2 workers", "Gender", "Male", "(50.0%)", "LanguageTest", "mean 85"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q:\n%s", want, out)
		}
	}
}
