package dataset

import (
	"math"
	"strings"
	"testing"
)

// testSchema returns a small schema reminiscent of the paper's.
func testSchema() *Schema {
	return &Schema{
		Protected: []Attribute{
			Cat("Gender", "Male", "Female"),
			Cat("Country", "America", "India", "Other"),
			Num("YearOfBirth", 1950, 2010, 5),
		},
		Observed: []Attribute{
			Num("LanguageTest", 25, 100, 1),
			Num("ApprovalRate", 25, 100, 1),
		},
	}
}

func buildOne(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewBuilder(testSchema()).
		Add("w1", map[string]any{"Gender": "Male", "Country": "India", "YearOfBirth": 1984},
			map[string]any{"LanguageTest": 80.0, "ApprovalRate": 55.0}).
		Add("w2", map[string]any{"Gender": "Female", "Country": "America", "YearOfBirth": 1999.0},
			map[string]any{"LanguageTest": 90, "ApprovalRate": 70}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestKindString(t *testing.T) {
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" {
		t.Error("Kind.String wrong")
	}
}

func TestAttributeValidate(t *testing.T) {
	cases := []struct {
		name string
		a    Attribute
		ok   bool
	}{
		{"good cat", Cat("G", "a", "b"), true},
		{"good num", Num("Y", 0, 1, 3), true},
		{"empty name", Cat("", "a"), false},
		{"no values", Cat("G"), false},
		{"empty value", Cat("G", "a", ""), false},
		{"dup value", Cat("G", "a", "a"), false},
		{"empty range", Num("Y", 1, 1, 3), false},
		{"inverted range", Num("Y", 2, 1, 3), false},
		{"zero buckets", Num("Y", 0, 1, 0), false},
		{"bad kind", Attribute{Name: "X", Kind: Kind(9)}, false},
	}
	for _, c := range cases {
		err := c.a.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, ok=%v", c.name, err, c.ok)
		}
	}
}

func TestAttributeCardinalityAndLabels(t *testing.T) {
	g := Cat("Gender", "Male", "Female")
	if g.Cardinality() != 2 {
		t.Errorf("cat cardinality = %d", g.Cardinality())
	}
	if g.ValueLabel(0) != "Male" || g.ValueLabel(1) != "Female" {
		t.Error("cat labels wrong")
	}
	if !strings.Contains(g.ValueLabel(5), "?") {
		t.Error("out-of-range label should be marked")
	}
	y := Num("Year", 1950, 2010, 5)
	if y.Cardinality() != 5 {
		t.Errorf("num cardinality = %d", y.Cardinality())
	}
	if got := y.ValueLabel(0); got != "[1950,1962)" {
		t.Errorf("bucket label = %q", got)
	}
	lo, hi := y.BucketBounds(4)
	if lo != 1998 || hi != 2010 {
		t.Errorf("bucket 4 bounds = %v,%v", lo, hi)
	}
}

func TestBucketIndex(t *testing.T) {
	y := Num("Year", 1950, 2010, 5) // width 12
	cases := []struct {
		v    float64
		want int
	}{
		{1950, 0}, {1961.9, 0}, {1962, 1}, {1997, 3}, {1998, 4}, {2010, 4},
		{1900, 0}, {2050, 4}, // clamped
	}
	for _, c := range cases {
		if got := y.BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	zero := Attribute{Name: "Z", Kind: Numeric, Min: 0, Max: 1, Buckets: 0}
	if zero.BucketIndex(0.5) != 0 {
		t.Error("zero-bucket attribute should map to 0")
	}
}

func TestCategoryIndex(t *testing.T) {
	g := Cat("Gender", "Male", "Female")
	if g.CategoryIndex("Female") != 1 {
		t.Error("CategoryIndex(Female) != 1")
	}
	if g.CategoryIndex("X") != -1 {
		t.Error("unknown category should be -1")
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	var nilSchema *Schema
	if err := nilSchema.Validate(); err == nil {
		t.Error("nil schema accepted")
	}
	if err := (&Schema{Observed: []Attribute{Num("O", 0, 1, 1)}}).Validate(); err == nil {
		t.Error("no protected accepted")
	}
	if err := (&Schema{Protected: []Attribute{Cat("G", "a")}}).Validate(); err == nil {
		t.Error("no observed accepted")
	}
	dup := &Schema{
		Protected: []Attribute{Cat("X", "a")},
		Observed:  []Attribute{Num("X", 0, 1, 1)},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate name accepted")
	}
	catObs := &Schema{
		Protected: []Attribute{Cat("G", "a")},
		Observed:  []Attribute{Cat("O", "x")},
	}
	if err := catObs.Validate(); err == nil {
		t.Error("categorical observed accepted")
	}
}

func TestSchemaIndexLookups(t *testing.T) {
	s := testSchema()
	if s.ProtectedIndex("Country") != 1 {
		t.Error("ProtectedIndex(Country) wrong")
	}
	if s.ProtectedIndex("Nope") != -1 {
		t.Error("missing protected should be -1")
	}
	if s.ObservedIndex("ApprovalRate") != 1 {
		t.Error("ObservedIndex(ApprovalRate) wrong")
	}
	if s.ObservedIndex("Gender") != -1 {
		t.Error("Gender is not observed")
	}
}

func TestSchemaCloneIndependent(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Protected[0].Values[0] = "Mutated"
	if s.Protected[0].Values[0] != "Male" {
		t.Error("Clone shares Values backing array")
	}
}

func TestBuilderHappyPath(t *testing.T) {
	ds := buildOne(t)
	if ds.N() != 2 {
		t.Fatalf("N = %d", ds.N())
	}
	if ds.ID(0) != "w1" || ds.ID(1) != "w2" {
		t.Error("IDs wrong")
	}
	if ds.Code(0, 0) != 0 || ds.Code(0, 1) != 1 {
		t.Error("Gender codes wrong")
	}
	if ds.Code(2, 0) != 2 { // 1984 → bucket [1974,1986)
		t.Errorf("YearOfBirth code = %d, want 2", ds.Code(2, 0))
	}
	if !math.IsNaN(ds.RawProtected(0, 0)) {
		t.Error("categorical raw should be NaN")
	}
	if ds.RawProtected(2, 0) != 1984 {
		t.Error("numeric raw wrong")
	}
	if ds.Observed(0, 0) != 80 || ds.Observed(1, 1) != 70 {
		t.Error("observed values wrong")
	}
	if ds.ProtectedLabel(0, 1) != "Female" {
		t.Error("ProtectedLabel wrong")
	}
	if got := ds.ObservedColumn(0); len(got) != 2 || got[0] != 80 {
		t.Error("ObservedColumn wrong")
	}
	idx := ds.AllIndices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Error("AllIndices wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	prot := map[string]any{"Gender": "Male", "Country": "India", "YearOfBirth": 1984}
	obs := map[string]any{"LanguageTest": 80.0, "ApprovalRate": 55.0}

	cases := []struct {
		name string
		mod  func(p, o map[string]any)
	}{
		{"missing protected", func(p, o map[string]any) { delete(p, "Gender") }},
		{"missing observed", func(p, o map[string]any) { delete(o, "ApprovalRate") }},
		{"unknown category", func(p, o map[string]any) { p["Gender"] = "Robot" }},
		{"wrong type for cat", func(p, o map[string]any) { p["Gender"] = 5 }},
		{"wrong type for num", func(p, o map[string]any) { p["YearOfBirth"] = "old" }},
		{"numeric out of range", func(p, o map[string]any) { p["YearOfBirth"] = 1800 }},
		{"NaN observed", func(p, o map[string]any) { o["LanguageTest"] = math.NaN() }},
		{"inf observed", func(p, o map[string]any) { o["LanguageTest"] = math.Inf(1) }},
	}
	for _, c := range cases {
		p := map[string]any{}
		o := map[string]any{}
		for k, v := range prot {
			p[k] = v
		}
		for k, v := range obs {
			o[k] = v
		}
		c.mod(p, o)
		if _, err := NewBuilder(testSchema()).Add("w", p, o).Build(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBuilderEmptyAndInvalidSchema(t *testing.T) {
	if _, err := NewBuilder(testSchema()).Build(); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := &Schema{}
	if _, err := NewBuilder(bad).Build(); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	b := NewBuilder(testSchema())
	b.Add("bad", map[string]any{}, map[string]any{})
	b.Add("good", map[string]any{"Gender": "Male", "Country": "India", "YearOfBirth": 1984},
		map[string]any{"LanguageTest": 80.0, "ApprovalRate": 55.0})
	if _, err := b.Build(); err == nil {
		t.Error("first error did not stick")
	}
}

func TestSubset(t *testing.T) {
	ds := buildOne(t)
	sub, err := ds.Subset([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 1 || sub.ID(0) != "w2" {
		t.Fatalf("subset = %d workers, id %s", sub.N(), sub.ID(0))
	}
	if sub.Code(0, 0) != ds.Code(0, 1) || sub.Observed(1, 0) != ds.Observed(1, 1) {
		t.Fatal("subset values wrong")
	}
	// Duplicates allowed.
	dup, err := ds.Subset([]int{0, 0})
	if err != nil || dup.N() != 2 {
		t.Fatalf("dup subset: %v, %v", dup, err)
	}
	// Errors.
	if _, err := ds.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := ds.Subset([]int{99}); err == nil {
		t.Error("out-of-range subset accepted")
	}
	// Schema independence.
	sub.Schema().Protected[0].Values[0] = "Mutated"
	if ds.Schema().Protected[0].Values[0] != "Male" {
		t.Error("subset shares schema storage")
	}
}

func TestConcat(t *testing.T) {
	a := buildOne(t)
	b := buildOne(t)
	out, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != 4 {
		t.Fatalf("N = %d", out.N())
	}
	if out.ID(0) != "w1" || out.ID(2) != "w1" {
		t.Fatal("ids not concatenated in order")
	}
	if out.Code(0, 1) != a.Code(0, 1) || out.Code(0, 3) != b.Code(0, 1) {
		t.Fatal("codes wrong after concat")
	}
	if out.Observed(0, 2) != b.Observed(0, 0) {
		t.Fatal("observed wrong after concat")
	}
	// Independence: mutating the concat's schema must not touch inputs.
	out.Schema().Protected[0].Values[0] = "Mutated"
	if a.Schema().Protected[0].Values[0] != "Male" {
		t.Fatal("concat shares schema storage")
	}
	// Errors.
	if _, err := Concat(nil, a); err == nil {
		t.Error("nil input accepted")
	}
	other := &Schema{
		Protected: []Attribute{Cat("Team", "Red", "Blue")},
		Observed:  []Attribute{Num("Skill", 0, 1, 1)},
	}
	odd, err := NewBuilder(other).
		Add("x", map[string]any{"Team": "Red"}, map[string]any{"Skill": 0.5}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Concat(a, odd); err == nil {
		t.Error("mismatched schemas accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := buildOne(t)
	var buf strings.Builder
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() {
		t.Fatalf("round-trip N = %d", back.N())
	}
	for i := 0; i < ds.N(); i++ {
		if back.ID(i) != ds.ID(i) {
			t.Errorf("worker %d id mismatch", i)
		}
		for a := range ds.Schema().Protected {
			if back.Code(a, i) != ds.Code(a, i) {
				t.Errorf("worker %d protected %d code mismatch", i, a)
			}
		}
		for a := range ds.Schema().Observed {
			if back.Observed(a, i) != ds.Observed(a, i) {
				t.Errorf("worker %d observed %d mismatch", i, a)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := testSchema()
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"wrong column count", "id,Gender\nw,Male\n"},
		{"bad first column", "x,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\n"},
		{"wrong protected name", "id,Sex,Country,YearOfBirth,LanguageTest,ApprovalRate\n"},
		{"wrong observed name", "id,Gender,Country,YearOfBirth,LangTest,ApprovalRate\n"},
		{"bad numeric protected", "id,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\nw,Male,India,old,80,55\n"},
		{"bad observed number", "id,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\nw,Male,India,1984,eighty,55\n"},
		{"unknown category", "id,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\nw,Alien,India,1984,80,55\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), s); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := buildOne(t)
	var buf strings.Builder
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() {
		t.Fatalf("round-trip N = %d", back.N())
	}
	for i := 0; i < ds.N(); i++ {
		for a := range ds.Schema().Protected {
			if back.Code(a, i) != ds.Code(a, i) {
				t.Errorf("worker %d protected %d code mismatch", i, a)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	s := testSchema()
	if _, err := ReadJSON(strings.NewReader("{not json"), s); err == nil {
		t.Error("malformed json accepted")
	}
	if _, err := ReadJSON(strings.NewReader("[]"), s); err == nil {
		t.Error("empty json dataset accepted")
	}
	missing := `[{"id":"w","protected":{"Gender":"Male"},"observed":{"LanguageTest":80,"ApprovalRate":55}}]`
	if _, err := ReadJSON(strings.NewReader(missing), s); err == nil {
		t.Error("missing protected attribute accepted")
	}
}
