package dataset

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// AttributeProfile summarizes one attribute's values across a population —
// the data-exploration step before an audit ("is my population balanced at
// all?").
type AttributeProfile struct {
	// Name and Kind identify the attribute.
	Name string
	Kind Kind
	// Protected reports whether it is a protected attribute.
	Protected bool
	// Counts maps value labels to their frequencies. For numeric
	// attributes the labels are the partitioning buckets.
	Counts map[string]int
	// Min, Max and Mean describe numeric attributes (zero for
	// categorical).
	Min, Max, Mean float64
}

// Profile computes per-attribute summaries of the whole population.
func Profile(d *Dataset) []AttributeProfile {
	var out []AttributeProfile
	for a, attr := range d.schema.Protected {
		p := AttributeProfile{Name: attr.Name, Kind: attr.Kind, Protected: true, Counts: map[string]int{}}
		sum := 0.0
		p.Min, p.Max = math.Inf(1), math.Inf(-1)
		for i := 0; i < d.n; i++ {
			p.Counts[attr.ValueLabel(d.Code(a, i))]++
			if attr.Kind == Numeric {
				v := d.rawProtected[a][i]
				sum += v
				if v < p.Min {
					p.Min = v
				}
				if v > p.Max {
					p.Max = v
				}
			}
		}
		if attr.Kind == Numeric {
			p.Mean = sum / float64(d.n)
		} else {
			p.Min, p.Max = 0, 0
		}
		out = append(out, p)
	}
	for a, attr := range d.schema.Observed {
		p := AttributeProfile{Name: attr.Name, Kind: Numeric, Counts: map[string]int{}}
		sum := 0.0
		p.Min, p.Max = math.Inf(1), math.Inf(-1)
		for i := 0; i < d.n; i++ {
			v := d.observed[a][i]
			sum += v
			if v < p.Min {
				p.Min = v
			}
			if v > p.Max {
				p.Max = v
			}
		}
		p.Mean = sum / float64(d.n)
		out = append(out, p)
	}
	return out
}

// WriteProfile renders the population profile as aligned text.
func WriteProfile(w io.Writer, d *Dataset) error {
	profiles := Profile(d)
	var b strings.Builder
	fmt.Fprintf(&b, "population: %d workers\n", d.N())
	for _, p := range profiles {
		role := "observed"
		if p.Protected {
			role = "protected"
		}
		fmt.Fprintf(&b, "\n%s (%s, %s)\n", p.Name, p.Kind, role)
		if p.Kind == Numeric {
			fmt.Fprintf(&b, "  range [%g, %g], mean %.4g\n", p.Min, p.Max, p.Mean)
		}
		if p.Protected {
			labels := make([]string, 0, len(p.Counts))
			for l := range p.Counts {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				n := p.Counts[l]
				fmt.Fprintf(&b, "  %-20s %6d  (%.1f%%)\n", l, n, 100*float64(n)/float64(d.N()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
