package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary snapshot format. Unlike CSV/JSON, the binary form is
// self-describing (the schema travels with the data), column-oriented, and
// integrity-checked: a trailing CRC32 covers everything after the magic,
// so truncation and bit rot are detected at load time.
//
// Layout (little-endian):
//
//	magic   [8]byte  "FRNKDS1\n"
//	schema  uint32 length + JSON bytes
//	n       uint32 worker count
//	ids     per worker: uint16 length + bytes
//	perProt codes []uint16, raw []float64
//	perObs  values []float64
//	crc32   uint32 (IEEE, of everything after the magic)
const binaryMagic = "FRNKDS1\n"

// ErrCorrupt is returned when a binary snapshot fails its integrity check.
var ErrCorrupt = errors.New("dataset: corrupt binary snapshot")

type binarySchema struct {
	Protected []Attribute `json:"protected"`
	Observed  []Attribute `json:"observed"`
}

// WriteBinary serializes the dataset in the binary snapshot format.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	schemaJSON, err := json.Marshal(binarySchema{Protected: d.schema.Protected, Observed: d.schema.Observed})
	if err != nil {
		return fmt.Errorf("dataset: encode schema: %w", err)
	}
	if err := binary.Write(out, binary.LittleEndian, uint32(len(schemaJSON))); err != nil {
		return err
	}
	if _, err := out.Write(schemaJSON); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint32(d.n)); err != nil {
		return err
	}
	for i := 0; i < d.n; i++ {
		id := d.ID(i)
		if len(id) > math.MaxUint16 {
			return fmt.Errorf("dataset: worker id longer than %d bytes", math.MaxUint16)
		}
		if err := binary.Write(out, binary.LittleEndian, uint16(len(id))); err != nil {
			return err
		}
		if _, err := out.Write([]byte(id)); err != nil {
			return err
		}
	}
	for a := range d.schema.Protected {
		if err := binary.Write(out, binary.LittleEndian, d.codes[a]); err != nil {
			return err
		}
		if err := binary.Write(out, binary.LittleEndian, d.rawProtected[a]); err != nil {
			return err
		}
	}
	for a := range d.schema.Observed {
		if err := binary.Write(out, binary.LittleEndian, d.observed[a]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary loads a dataset from its binary snapshot form, verifying the
// trailing checksum. It returns ErrCorrupt (possibly wrapped) on any
// integrity failure.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrCorrupt, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)

	var schemaLen uint32
	if err := binary.Read(in, binary.LittleEndian, &schemaLen); err != nil {
		return nil, fmt.Errorf("%w: schema length: %v", ErrCorrupt, err)
	}
	if schemaLen > 1<<20 {
		return nil, fmt.Errorf("%w: absurd schema length %d", ErrCorrupt, schemaLen)
	}
	schemaJSON := make([]byte, schemaLen)
	if _, err := io.ReadFull(in, schemaJSON); err != nil {
		return nil, fmt.Errorf("%w: schema: %v", ErrCorrupt, err)
	}
	var bs binarySchema
	if err := json.Unmarshal(schemaJSON, &bs); err != nil {
		return nil, fmt.Errorf("%w: schema json: %v", ErrCorrupt, err)
	}
	schema := &Schema{Protected: bs.Protected, Observed: bs.Observed}
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	var n uint32
	if err := binary.Read(in, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: worker count: %v", ErrCorrupt, err)
	}
	if n == 0 || n > 1<<28 {
		return nil, fmt.Errorf("%w: absurd worker count %d", ErrCorrupt, n)
	}
	d := &memSource{
		schema:       schema,
		n:            int(n),
		ids:          make([]string, n),
		codes:        make([][]uint16, len(schema.Protected)),
		rawProtected: make([][]float64, len(schema.Protected)),
		observed:     make([][]float64, len(schema.Observed)),
	}
	for i := range d.ids {
		var idLen uint16
		if err := binary.Read(in, binary.LittleEndian, &idLen); err != nil {
			return nil, fmt.Errorf("%w: id length: %v", ErrCorrupt, err)
		}
		buf := make([]byte, idLen)
		if _, err := io.ReadFull(in, buf); err != nil {
			return nil, fmt.Errorf("%w: id bytes: %v", ErrCorrupt, err)
		}
		d.ids[i] = string(buf)
	}
	for a, attr := range schema.Protected {
		d.codes[a] = make([]uint16, n)
		if err := binary.Read(in, binary.LittleEndian, d.codes[a]); err != nil {
			return nil, fmt.Errorf("%w: codes: %v", ErrCorrupt, err)
		}
		card := attr.Cardinality()
		for _, c := range d.codes[a] {
			if int(c) >= card {
				return nil, fmt.Errorf("%w: code %d out of range for %s", ErrCorrupt, c, attr.Name)
			}
		}
		d.rawProtected[a] = make([]float64, n)
		if err := binary.Read(in, binary.LittleEndian, d.rawProtected[a]); err != nil {
			return nil, fmt.Errorf("%w: raw values: %v", ErrCorrupt, err)
		}
	}
	for a := range schema.Observed {
		d.observed[a] = make([]float64, n)
		if err := binary.Read(in, binary.LittleEndian, d.observed[a]); err != nil {
			return nil, fmt.Errorf("%w: observed values: %v", ErrCorrupt, err)
		}
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCorrupt, err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, got, want)
	}
	return FromSource(d)
}
