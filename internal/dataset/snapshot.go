package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// Columnar snapshot format — the mmap-able successor of the legacy stream
// format in binary.go. The legacy format interleaves variable-width records
// and can only be decoded front to back into fresh heap slices; this format
// lays every column out as one contiguous, 8-byte-aligned, fixed-width
// block so a reader can map the file and hand the engine direct views of
// the mapped bytes — no decode pass, no copy, RAM cost independent of
// dataset size.
//
// Layout (all integers little-endian):
//
//	header   magic [8]byte "FRSNAP2\n", version uint32, flags uint32 (0)
//	blocks   each padded to start on an 8-byte boundary:
//	           0            schema JSON
//	           1            id offsets []uint32, n+1 entries
//	           2            id bytes (ids[i] = bytes[off[i]:off[i+1]])
//	           3+2a, 4+2a   protected a: codes []uint16, raw []float64
//	           3+2P+a       observed a: values []float64
//	footer   n uint64, blockCount uint32, pad uint32,
//	         per block {off uint64, len uint64, crc32 uint32, pad uint32},
//	         crc32 of the preceding footer bytes
//	trailer  footerLen uint32, tail magic [8]byte "FRSNAP2\n"
//
// The file is parsed from the end: the fixed-size trailer locates the
// footer, the footer locates and checksums every block. That makes the
// format appendable to streams (the writer never seeks) while still giving
// readers random access. Every block CRC is verified once at open; the
// mapped views handed out afterwards are immutable by contract.
const (
	snapshotMagic   = "FRSNAP2\n"
	snapshotVersion = 1

	// snapTrailerLen is the fixed byte length of the trailer.
	snapTrailerLen = 4 + len(snapshotMagic)
	// snapFooterEntryLen is the byte length of one block-table entry.
	snapFooterEntryLen = 24
	// snapFooterFixedLen is the byte length of the footer before the block
	// table (n, blockCount, pad) plus the trailing footer CRC.
	snapFooterFixedLen = 16 + 4

	// snapMaxSchemaLen bounds the schema JSON block; real schemas are a few
	// hundred bytes.
	snapMaxSchemaLen = 1 << 20
	// snapMaxWorkers mirrors the legacy reader's sanity bound.
	snapMaxWorkers = 1 << 28
)

// snapshotBlockCount returns the number of blocks a snapshot of the schema
// carries: schema JSON, id offsets, id bytes, codes+raw per protected
// attribute, values per observed attribute.
func snapshotBlockCount(s *Schema) int {
	return 3 + 2*len(s.Protected) + len(s.Observed)
}

// hostLittleEndian reports whether the host stores integers little-endian —
// the precondition for viewing mapped snapshot bytes as typed slices
// without a decode copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// snapshotWriter tracks offsets and per-block checksums while streaming
// blocks to an io.Writer without seeking.
type snapshotWriter struct {
	w   *bufio.Writer
	off uint64
	tab []snapBlock
	err error
}

// snapBlock is one entry of the footer's block table.
type snapBlock struct {
	off uint64
	len uint64
	crc uint32
}

func (sw *snapshotWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(p)
	sw.off += uint64(len(p))
}

var snapPad [8]byte

// block writes one block: pads to 8-byte alignment, then streams the bytes
// produced by emit while recording offset, length and CRC32.
func (sw *snapshotWriter) block(emit func(w io.Writer) error) {
	if sw.err != nil {
		return
	}
	if pad := (8 - sw.off%8) % 8; pad != 0 {
		sw.write(snapPad[:pad])
	}
	start := sw.off
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(sw.w, crc)}
	if err := emit(cw); err != nil {
		sw.err = err
		return
	}
	sw.off += cw.n
	sw.tab = append(sw.tab, snapBlock{off: start, len: cw.n, crc: crc.Sum32()})
}

type countWriter struct {
	w io.Writer
	n uint64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// writeU16LE streams v little-endian. On little-endian hosts the slice's
// bytes are written directly; otherwise values are encoded through a small
// buffer.
func writeU16LE(w io.Writer, v []uint16) error {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 2*len(v)))
		return err
	}
	var buf [2]byte
	for _, x := range v {
		binary.LittleEndian.PutUint16(buf[:], x)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func writeU32LE(w io.Writer, v []uint32) error {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
		return err
	}
	var buf [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(buf[:], x)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func writeF64LE(w io.Writer, v []float64) error {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)))
		return err
	}
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot serializes the dataset in the columnar snapshot format.
// The write is a single sequential stream (no seeking), so it works on
// sockets and pipes as well as files; datasets opened with OpenSnapshot
// re-serialize from their mapped views without materializing copies beyond
// the writer's buffer.
func (d *Dataset) WriteSnapshot(w io.Writer) error {
	sw := &snapshotWriter{w: bufio.NewWriterSize(w, 1<<16)}

	var hdr [16]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapshotVersion)
	sw.write(hdr[:])

	schemaJSON, err := json.Marshal(binarySchema{Protected: d.schema.Protected, Observed: d.schema.Observed})
	if err != nil {
		return fmt.Errorf("dataset: encode schema: %w", err)
	}
	sw.block(func(w io.Writer) error {
		_, err := w.Write(schemaJSON)
		return err
	})

	// id offsets then id bytes. Offsets are built in one pass; the byte
	// block streams each id directly so the ids are never concatenated in
	// memory.
	idOff := make([]uint32, d.n+1)
	total := uint64(0)
	for i := 0; i < d.n; i++ {
		total += uint64(len(d.ID(i)))
		if total > math.MaxUint32 {
			return fmt.Errorf("dataset: worker ids exceed %d bytes total", uint32(math.MaxUint32))
		}
		idOff[i+1] = uint32(total)
	}
	sw.block(func(w io.Writer) error { return writeU32LE(w, idOff) })
	sw.block(func(w io.Writer) error {
		for i := 0; i < d.n; i++ {
			if _, err := io.WriteString(w, d.ID(i)); err != nil {
				return err
			}
		}
		return nil
	})

	for a := range d.schema.Protected {
		codes, raw := d.codes[a], d.rawProtected[a]
		sw.block(func(w io.Writer) error { return writeU16LE(w, codes) })
		sw.block(func(w io.Writer) error { return writeF64LE(w, raw) })
	}
	for a := range d.schema.Observed {
		col := d.observed[a]
		sw.block(func(w io.Writer) error { return writeF64LE(w, col) })
	}
	if sw.err != nil {
		return sw.err
	}

	footer := make([]byte, 16+snapFooterEntryLen*len(sw.tab))
	binary.LittleEndian.PutUint64(footer[0:8], uint64(d.n))
	binary.LittleEndian.PutUint32(footer[8:12], uint32(len(sw.tab)))
	for i, b := range sw.tab {
		e := footer[16+snapFooterEntryLen*i:]
		binary.LittleEndian.PutUint64(e[0:8], b.off)
		binary.LittleEndian.PutUint64(e[8:16], b.len)
		binary.LittleEndian.PutUint32(e[16:20], b.crc)
	}
	sw.write(footer)
	var tail [4 + 4 + len(snapshotMagic)]byte
	binary.LittleEndian.PutUint32(tail[0:4], crc32.ChecksumIEEE(footer))
	binary.LittleEndian.PutUint32(tail[4:8], uint32(len(footer)+4))
	copy(tail[8:], snapshotMagic)
	sw.write(tail[:])
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}
