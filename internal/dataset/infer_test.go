package dataset

import (
	"strings"
	"testing"
)

const inferCSV = `worker,city,gender,age,rating,tests_passed
alice,Paris,F,34,4.5,12
bob,Lyon,M,29,3.9,7
carol,Paris,F,51,4.9,30
dave,Nice,M,43,2.1,3
erin,Lyon,F,38,4.0,15
`

func TestInferCSVHappyPath(t *testing.T) {
	ds, err := InferCSV(strings.NewReader(inferCSV), InferOptions{
		Protected: []string{"gender", "city", "age"},
		Observed:  []string{"rating", "tests_passed"},
		IDColumn:  "worker",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 5 {
		t.Fatalf("N = %d", ds.N())
	}
	if ds.ID(0) != "alice" {
		t.Fatalf("id = %q", ds.ID(0))
	}
	s := ds.Schema()
	// gender → categorical {F, M}; city → categorical; age → numeric.
	g := s.Protected[s.ProtectedIndex("gender")]
	if g.Kind != Categorical || len(g.Values) != 2 || g.Values[0] != "F" {
		t.Fatalf("gender attr = %+v", g)
	}
	city := s.Protected[s.ProtectedIndex("city")]
	if city.Kind != Categorical || len(city.Values) != 3 {
		t.Fatalf("city attr = %+v", city)
	}
	age := s.Protected[s.ProtectedIndex("age")]
	if age.Kind != Numeric || age.Min != 29 || age.Max != 51 || age.Buckets != 5 {
		t.Fatalf("age attr = %+v", age)
	}
	// Observed ranges come from the data.
	rating := s.Observed[s.ObservedIndex("rating")]
	if rating.Min != 2.1 || rating.Max != 4.9 {
		t.Fatalf("rating attr = %+v", rating)
	}
	if v := ds.Observed(s.ObservedIndex("tests_passed"), 2); v != 30 {
		t.Fatalf("carol tests_passed = %v", v)
	}
}

func TestInferCSVSynthesizedIDs(t *testing.T) {
	ds, err := InferCSV(strings.NewReader(inferCSV), InferOptions{
		Protected: []string{"gender"},
		Observed:  []string{"rating"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.ID(0) != "row000000" {
		t.Fatalf("synthesized id = %q", ds.ID(0))
	}
}

func TestInferCSVErrors(t *testing.T) {
	opts := InferOptions{Protected: []string{"gender"}, Observed: []string{"rating"}}
	cases := []struct {
		name string
		csv  string
		opts InferOptions
	}{
		{"no protected", inferCSV, InferOptions{Observed: []string{"rating"}}},
		{"no observed", inferCSV, InferOptions{Protected: []string{"gender"}}},
		{"missing column", inferCSV, InferOptions{Protected: []string{"nope"}, Observed: []string{"rating"}}},
		{"missing id column", inferCSV, InferOptions{Protected: []string{"gender"}, Observed: []string{"rating"}, IDColumn: "nope"}},
		{"empty file", "", opts},
		{"header only", "worker,city,gender,age,rating,tests_passed\n", opts},
		{"categorical observed", inferCSV, InferOptions{Protected: []string{"gender"}, Observed: []string{"city"}}},
	}
	for _, c := range cases {
		if _, err := InferCSV(strings.NewReader(c.csv), c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestInferCSVCategoryCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("name,score\n")
	for i := 0; i < 100; i++ {
		b.WriteString(strings.Repeat("x", i+1) + ",1\n")
	}
	_, err := InferCSV(strings.NewReader(b.String()), InferOptions{
		Protected:     []string{"name"},
		Observed:      []string{"score"},
		MaxCategories: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "distinct") {
		t.Fatalf("high-cardinality column accepted: %v", err)
	}
}

func TestInferCSVConstantNumericColumn(t *testing.T) {
	csv := "g,x,s\nA,5,1\nB,5,2\n"
	ds, err := InferCSV(strings.NewReader(csv), InferOptions{
		Protected: []string{"g", "x"},
		Observed:  []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Schema().Protected[ds.Schema().ProtectedIndex("x")]
	if !(x.Max > x.Min) {
		t.Fatalf("constant column produced empty range: %+v", x)
	}
}

func TestInferThenAudit(t *testing.T) {
	// The inferred dataset must flow straight into the partitioning
	// machinery: infer, then split on an inferred categorical attribute.
	ds, err := InferCSV(strings.NewReader(inferCSV), InferOptions{
		Protected: []string{"gender", "city"},
		Observed:  []string{"rating"},
		IDColumn:  "worker",
	})
	if err != nil {
		t.Fatal(err)
	}
	gi := ds.Schema().ProtectedIndex("gender")
	counts := map[int]int{}
	for i := 0; i < ds.N(); i++ {
		counts[ds.Code(gi, i)]++
	}
	if counts[0] != 3 || counts[1] != 2 { // F=3, M=2
		t.Fatalf("gender counts = %v", counts)
	}
}
