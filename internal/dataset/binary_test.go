package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"fairrank/internal/rng"
)

func randomDataset(t *testing.T, n int, seed uint64) *Dataset {
	t.Helper()
	r := rng.New(seed)
	b := NewBuilder(testSchema())
	genders := []string{"Male", "Female"}
	countries := []string{"America", "India", "Other"}
	for i := 0; i < n; i++ {
		b.Add("w", map[string]any{
			"Gender":      rng.Pick(r, genders),
			"Country":     rng.Pick(r, countries),
			"YearOfBirth": r.IntRange(1950, 2009),
		}, map[string]any{
			"LanguageTest": r.FloatRange(25, 100),
			"ApprovalRate": r.FloatRange(25, 100),
		})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := randomDataset(t, 137, 1)
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() {
		t.Fatalf("N = %d", back.N())
	}
	for i := 0; i < ds.N(); i++ {
		if back.ID(i) != ds.ID(i) {
			t.Fatalf("id %d mismatch", i)
		}
		for a := range ds.Schema().Protected {
			if back.Code(a, i) != ds.Code(a, i) {
				t.Fatalf("code %d/%d mismatch", a, i)
			}
			ra, rb := ds.RawProtected(a, i), back.RawProtected(a, i)
			if ra != rb && !(ra != ra && rb != rb) { // NaN-safe compare
				t.Fatalf("raw %d/%d mismatch: %v vs %v", a, i, ra, rb)
			}
		}
		for a := range ds.Schema().Observed {
			if back.Observed(a, i) != ds.Observed(a, i) {
				t.Fatalf("observed %d/%d mismatch", a, i)
			}
		}
	}
	// Schema survives.
	if back.Schema().Protected[0].Name != "Gender" || back.Schema().Protected[0].Values[1] != "Female" {
		t.Fatal("schema did not round-trip")
	}
}

func TestBinaryDetectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTMAGIC rest")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadBinary(strings.NewReader("")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestBinaryDetectsTruncation(t *testing.T) {
	ds := randomDataset(t, 50, 2)
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) - 5, len(full) / 2, 12} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d not detected: %v", cut, err)
		}
	}
}

func TestBinaryDetectsBitFlips(t *testing.T) {
	ds := randomDataset(t, 50, 3)
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip a byte in the middle of the payload (past magic+schema).
	for _, pos := range []int{len(full) / 2, len(full) - 10} {
		corrupted := append([]byte(nil), full...)
		corrupted[pos] ^= 0xFF
		if _, err := ReadBinary(bytes.NewReader(corrupted)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at %d not detected: %v", pos, err)
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		ds := randomDataset(&testing.T{}, n, seed)
		var buf bytes.Buffer
		if err := ds.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil || back.N() != n {
			return false
		}
		for i := 0; i < n; i++ {
			for a := range ds.Schema().Protected {
				if back.Code(a, i) != ds.Code(a, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
