//go:build !unix

package dataset

import (
	"fmt"
	"os"
)

// mapFile reads the whole file into memory on platforms without mmap. The
// Dataset behaves identically to a mapped one; it just pays the full heap
// cost up front.
func mapFile(path string) (data []byte, closer func() error, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("%w: empty file", ErrCorrupt)
	}
	return data, func() error { return nil }, nil
}
