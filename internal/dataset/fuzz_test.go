package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary ensures arbitrary bytes never panic the snapshot reader
// and that a valid snapshot embedded in the corpus still round-trips.
func FuzzReadBinary(f *testing.F) {
	ds, err := NewBuilder(testSchema()).
		Add("w1", map[string]any{"Gender": "Male", "Country": "India", "YearOfBirth": 1984},
			map[string]any{"LanguageTest": 80.0, "ApprovalRate": 55.0}).
		Build()
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := ds.WriteBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("FRNKDS1\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage that is long enough to not be magic"))
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must be a coherent dataset.
		if back.N() <= 0 {
			t.Fatal("parsed dataset with non-positive N")
		}
		if err := back.Schema().Validate(); err != nil {
			t.Fatalf("parsed dataset with invalid schema: %v", err)
		}
	})
}

// FuzzReadCSV ensures arbitrary CSV input never panics the reader.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\nw,Male,India,1984,80,55\n")
	f.Add("id,Gender\n")
	f.Add("")
	f.Add("id,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\nw,Alien,India,1984,80,55\n")
	schema := testSchema()
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), schema)
		if err != nil {
			return
		}
		if ds.N() <= 0 {
			t.Fatal("parsed dataset with non-positive N")
		}
	})
}
