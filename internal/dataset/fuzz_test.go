package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadBinary ensures arbitrary bytes never panic the snapshot reader
// and that a valid snapshot embedded in the corpus still round-trips.
func FuzzReadBinary(f *testing.F) {
	ds, err := NewBuilder(testSchema()).
		Add("w1", map[string]any{"Gender": "Male", "Country": "India", "YearOfBirth": 1984},
			map[string]any{"LanguageTest": 80.0, "ApprovalRate": 55.0}).
		Build()
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := ds.WriteBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("FRNKDS1\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage that is long enough to not be magic"))
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must be a coherent dataset.
		if back.N() <= 0 {
			t.Fatal("parsed dataset with non-positive N")
		}
		if err := back.Schema().Validate(); err != nil {
			t.Fatalf("parsed dataset with invalid schema: %v", err)
		}
	})
}

// FuzzSnapshotDecode ensures arbitrary bytes never panic the columnar
// snapshot reader: every rejection must be ErrCorrupt, and anything that
// parses must be a coherent dataset that survives a full re-serialize /
// re-parse cycle. Seeds cover the documented failure classes — truncated
// headers, corrupted checksums, overlapping block tables — plus a valid
// snapshot; the same seeds are committed under testdata/fuzz/ (see
// TestSnapshotFuzzCorpusCommitted) so plain `go test` replays them.
func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range snapshotFuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt rejection: %v", err)
			}
			return
		}
		if ds.N() <= 0 {
			t.Fatal("parsed dataset with non-positive N")
		}
		if err := ds.Schema().Validate(); err != nil {
			t.Fatalf("parsed dataset with invalid schema: %v", err)
		}
		var buf bytes.Buffer
		if err := ds.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if back.N() != ds.N() {
			t.Fatalf("round-trip N = %d, want %d", back.N(), ds.N())
		}
	})
}

// snapshotFuzzSeeds builds the seed inputs shared by the fuzz target and
// the committed corpus, keyed by a filename-safe name: one valid snapshot
// plus every corruption from snapshotCorruptions. The seeds are fully
// deterministic (fixed builder input, canonical writer), which is what lets
// TestSnapshotFuzzCorpusCommitted diff them against testdata.
func snapshotFuzzSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	ds, err := NewBuilder(testSchema()).
		Add("w1", map[string]any{"Gender": "Male", "Country": "India", "YearOfBirth": 1984},
			map[string]any{"LanguageTest": 80.0, "ApprovalRate": 55.0}).
		Add("w2", map[string]any{"Gender": "Female", "Country": "America", "YearOfBirth": 1999},
			map[string]any{"LanguageTest": 90.0, "ApprovalRate": 70.0}).
		Build()
	if err != nil {
		tb.Fatal(err)
	}
	var valid bytes.Buffer
	if err := ds.WriteSnapshot(&valid); err != nil {
		tb.Fatal(err)
	}
	seeds := map[string][]byte{"valid": valid.Bytes()}
	for name, data := range snapshotCorruptions(valid.Bytes()) {
		seeds[strings.ReplaceAll(name, " ", "-")] = data
	}
	return seeds
}

// TestSnapshotFuzzCorpusCommitted pins the seed corpus under
// testdata/fuzz/FuzzSnapshotDecode to the seeds the fuzz target uses, so
// plain `go test` replays the documented failure classes. Regenerate with
// UPDATE_FUZZ_CORPUS=1.
func TestSnapshotFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	seeds := snapshotFuzzSeeds(t)
	if os.Getenv("UPDATE_FUZZ_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, data := range seeds {
		path := filepath.Join(dir, "seed-"+name)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus entry missing (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if string(got) != want {
			t.Errorf("corpus entry %s is stale (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}

// FuzzReadCSV ensures arbitrary CSV input never panics the reader.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\nw,Male,India,1984,80,55\n")
	f.Add("id,Gender\n")
	f.Add("")
	f.Add("id,Gender,Country,YearOfBirth,LanguageTest,ApprovalRate\nw,Alien,India,1984,80,55\n")
	schema := testSchema()
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), schema)
		if err != nil {
			return
		}
		if ds.N() <= 0 {
			t.Fatal("parsed dataset with non-positive N")
		}
	})
}
