package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Dataset is an immutable, columnar store of workers conforming to a
// Schema. Protected attribute values are stored as small integer codes
// (category index or numeric bucket index) so partitioning is a pure
// integer scan; the raw numeric values of protected attributes are kept as
// well for inspection and export.
type Dataset struct {
	schema *Schema
	n      int
	ids    []string
	// codes[a][i] is worker i's partitioning code for protected attribute a.
	codes [][]uint16
	// rawProtected[a][i] is worker i's raw numeric value for protected
	// attribute a (NaN for categorical attributes).
	rawProtected [][]float64
	// observed[a][i] is worker i's value for observed attribute a.
	observed [][]float64
}

// Builder incrementally assembles a Dataset.
type Builder struct {
	ds  *Dataset
	err error
}

// NewBuilder returns a Builder for the given schema. The schema is
// validated eagerly; an invalid schema poisons the builder and surfaces
// from Build.
func NewBuilder(schema *Schema) *Builder {
	b := &Builder{}
	if err := schema.Validate(); err != nil {
		b.err = err
		return b
	}
	s := schema.Clone()
	b.ds = &Dataset{
		schema:       s,
		codes:        make([][]uint16, len(s.Protected)),
		rawProtected: make([][]float64, len(s.Protected)),
		observed:     make([][]float64, len(s.Observed)),
	}
	return b
}

// Add appends one worker. protected maps protected attribute names to a
// string (categorical) or float64/int (numeric); observed maps observed
// attribute names to float64/int values. Every schema attribute must be
// present. The first error sticks and is reported by Build.
func (b *Builder) Add(id string, protected map[string]any, observed map[string]any) *Builder {
	if b.err != nil {
		return b
	}
	ds := b.ds
	for a, attr := range ds.schema.Protected {
		v, ok := protected[attr.Name]
		if !ok {
			b.err = fmt.Errorf("dataset: worker %q missing protected attribute %q", id, attr.Name)
			return b
		}
		code, raw, err := encodeProtected(attr, v)
		if err != nil {
			b.err = fmt.Errorf("dataset: worker %q: %w", id, err)
			return b
		}
		ds.codes[a] = append(ds.codes[a], code)
		ds.rawProtected[a] = append(ds.rawProtected[a], raw)
	}
	for a, attr := range ds.schema.Observed {
		v, ok := observed[attr.Name]
		if !ok {
			b.err = fmt.Errorf("dataset: worker %q missing observed attribute %q", id, attr.Name)
			return b
		}
		f, err := toFloat(v)
		if err != nil {
			b.err = fmt.Errorf("dataset: worker %q attribute %q: %w", id, attr.Name, err)
			return b
		}
		ds.observed[a] = append(ds.observed[a], f)
	}
	ds.ids = append(ds.ids, id)
	ds.n++
	return b
}

func encodeProtected(attr Attribute, v any) (code uint16, raw float64, err error) {
	switch attr.Kind {
	case Categorical:
		s, ok := v.(string)
		if !ok {
			return 0, 0, fmt.Errorf("attribute %q wants a string, got %T", attr.Name, v)
		}
		i := attr.CategoryIndex(s)
		if i < 0 {
			return 0, 0, fmt.Errorf("attribute %q has no value %q", attr.Name, s)
		}
		return uint16(i), math.NaN(), nil
	case Numeric:
		f, err := toFloat(v)
		if err != nil {
			return 0, 0, fmt.Errorf("attribute %q: %w", attr.Name, err)
		}
		if f < attr.Min || f > attr.Max {
			return 0, 0, fmt.Errorf("attribute %q value %g outside [%g,%g]", attr.Name, f, attr.Min, attr.Max)
		}
		return uint16(attr.BucketIndex(f)), f, nil
	}
	return 0, 0, fmt.Errorf("attribute %q has unknown kind", attr.Name)
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, errors.New("value is NaN or infinite")
		}
		return x, nil
	case float32:
		return toFloat(float64(x))
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("want a number, got %T", v)
	}
}

// Build finalizes the dataset or reports the first accumulated error.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.ds.n == 0 {
		return nil, errors.New("dataset: no workers added")
	}
	return b.ds, nil
}

// N returns the number of workers.
func (d *Dataset) N() int { return d.n }

// Schema returns the dataset's schema. Callers must not mutate it.
func (d *Dataset) Schema() *Schema { return d.schema }

// ID returns worker i's identifier.
func (d *Dataset) ID(i int) string { return d.ids[i] }

// Code returns worker i's partitioning code for protected attribute a
// (by index into Schema().Protected).
func (d *Dataset) Code(a, i int) int { return int(d.codes[a][i]) }

// RawProtected returns worker i's raw numeric value for protected
// attribute a; NaN for categorical attributes.
func (d *Dataset) RawProtected(a, i int) float64 { return d.rawProtected[a][i] }

// Observed returns worker i's value for observed attribute a (by index
// into Schema().Observed).
func (d *Dataset) Observed(a, i int) float64 { return d.observed[a][i] }

// ObservedColumn returns the full column of observed attribute a. The
// returned slice is shared; callers must not mutate it.
func (d *Dataset) ObservedColumn(a int) []float64 { return d.observed[a] }

// ProtectedLabel returns the human-readable partitioning value of worker i
// on protected attribute a.
func (d *Dataset) ProtectedLabel(a, i int) string {
	return d.schema.Protected[a].ValueLabel(d.Code(a, i))
}

// AllIndices returns 0..N-1, the root "partition" containing everyone.
func (d *Dataset) AllIndices() []int {
	idx := make([]int, d.n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Concat returns a new Dataset holding the workers of a followed by the
// workers of b. The two datasets must have structurally identical schemas
// (same attributes, kinds, value lists and ranges); this is how cohorts
// from different sources or time windows are federated for a joint audit.
func Concat(a, b *Dataset) (*Dataset, error) {
	if a == nil || b == nil {
		return nil, errors.New("dataset: concat of nil dataset")
	}
	if err := sameSchema(a.schema, b.schema); err != nil {
		return nil, err
	}
	out := &Dataset{
		schema:       a.schema.Clone(),
		n:            a.n + b.n,
		ids:          make([]string, 0, a.n+b.n),
		codes:        make([][]uint16, len(a.codes)),
		rawProtected: make([][]float64, len(a.rawProtected)),
		observed:     make([][]float64, len(a.observed)),
	}
	out.ids = append(append(out.ids, a.ids...), b.ids...)
	for i := range a.codes {
		out.codes[i] = append(append([]uint16{}, a.codes[i]...), b.codes[i]...)
		out.rawProtected[i] = append(append([]float64{}, a.rawProtected[i]...), b.rawProtected[i]...)
	}
	for i := range a.observed {
		out.observed[i] = append(append([]float64{}, a.observed[i]...), b.observed[i]...)
	}
	return out, nil
}

// sameSchema checks structural equality of two schemas.
func sameSchema(a, b *Schema) error {
	if len(a.Protected) != len(b.Protected) || len(a.Observed) != len(b.Observed) {
		return errors.New("dataset: schemas differ in attribute counts")
	}
	check := func(x, y Attribute) error {
		if x.Name != y.Name || x.Kind != y.Kind || x.Min != y.Min || x.Max != y.Max || x.Buckets != y.Buckets {
			return fmt.Errorf("dataset: attribute %q differs between schemas", x.Name)
		}
		if len(x.Values) != len(y.Values) {
			return fmt.Errorf("dataset: attribute %q differs in values", x.Name)
		}
		for i := range x.Values {
			if x.Values[i] != y.Values[i] {
				return fmt.Errorf("dataset: attribute %q differs in values", x.Name)
			}
		}
		return nil
	}
	for i := range a.Protected {
		if err := check(a.Protected[i], b.Protected[i]); err != nil {
			return err
		}
	}
	for i := range a.Observed {
		if err := check(a.Observed[i], b.Observed[i]); err != nil {
			return err
		}
	}
	return nil
}

// Subset returns a new Dataset containing only the workers at the given
// row indices, in that order. The schema is shared structurally (cloned);
// duplicate indices are allowed and produce duplicate workers.
func (d *Dataset) Subset(indices []int) (*Dataset, error) {
	if len(indices) == 0 {
		return nil, errors.New("dataset: empty subset")
	}
	out := &Dataset{
		schema:       d.schema.Clone(),
		n:            len(indices),
		ids:          make([]string, len(indices)),
		codes:        make([][]uint16, len(d.codes)),
		rawProtected: make([][]float64, len(d.rawProtected)),
		observed:     make([][]float64, len(d.observed)),
	}
	for a := range d.codes {
		out.codes[a] = make([]uint16, len(indices))
		out.rawProtected[a] = make([]float64, len(indices))
	}
	for a := range d.observed {
		out.observed[a] = make([]float64, len(indices))
	}
	for k, i := range indices {
		if i < 0 || i >= d.n {
			return nil, fmt.Errorf("dataset: subset index %d out of range", i)
		}
		out.ids[k] = d.ids[i]
		for a := range d.codes {
			out.codes[a][k] = d.codes[a][i]
			out.rawProtected[a][k] = d.rawProtected[a][i]
		}
		for a := range d.observed {
			out.observed[a][k] = d.observed[a][i]
		}
	}
	return out, nil
}
