package dataset

import (
	"errors"
	"fmt"
	"math"
)

var (
	errSourceNil = errors.New("dataset: nil source")
	errNoWorkers = errors.New("dataset: no workers added")
)

// Dataset is an immutable, columnar store of workers conforming to a
// Schema. Protected attribute values are stored as small integer codes
// (category index or numeric bucket index) so partitioning is a pure
// integer scan; the raw numeric values of protected attributes are kept as
// well for inspection and export.
//
// The columns live in a Source: owned heap slices for datasets built in
// process (Builder, the CSV/JSON/binary decoders), or zero-copy views over
// an mmap'd columnar snapshot for datasets opened with OpenSnapshot. The
// column views are cached here once, so the per-row accessors and the
// column accessors (CodeColumn, ObservedColumn) cost the same for both
// backings — the engine scans mapped blocks exactly as it scans heap
// slices.
type Dataset struct {
	schema *Schema
	n      int
	// src owns the column storage; Close releases it.
	src Source
	// codes[a][i] is worker i's partitioning code for protected attribute a.
	codes [][]uint16
	// rawProtected[a][i] is worker i's raw numeric value for protected
	// attribute a (NaN for categorical attributes).
	rawProtected [][]float64
	// observed[a][i] is worker i's value for observed attribute a.
	observed [][]float64
}

// Builder incrementally assembles an in-memory Dataset.
type Builder struct {
	schema *Schema
	src    *memSource
	err    error
}

// NewBuilder returns a Builder for the given schema. The schema is
// validated eagerly; an invalid schema poisons the builder and surfaces
// from Build.
func NewBuilder(schema *Schema) *Builder {
	b := &Builder{}
	if err := schema.Validate(); err != nil {
		b.err = err
		return b
	}
	s := schema.Clone()
	b.schema = s
	b.src = &memSource{
		schema:       s,
		codes:        make([][]uint16, len(s.Protected)),
		rawProtected: make([][]float64, len(s.Protected)),
		observed:     make([][]float64, len(s.Observed)),
	}
	return b
}

// Add appends one worker. protected maps protected attribute names to a
// string (categorical) or float64/int (numeric); observed maps observed
// attribute names to float64/int values. Every schema attribute must be
// present. The first error sticks and is reported by Build.
func (b *Builder) Add(id string, protected map[string]any, observed map[string]any) *Builder {
	if b.err != nil {
		return b
	}
	src := b.src
	for a, attr := range b.schema.Protected {
		v, ok := protected[attr.Name]
		if !ok {
			b.err = fmt.Errorf("dataset: worker %q missing protected attribute %q", id, attr.Name)
			return b
		}
		code, raw, err := encodeProtected(attr, v)
		if err != nil {
			b.err = fmt.Errorf("dataset: worker %q: %w", id, err)
			return b
		}
		src.codes[a] = append(src.codes[a], code)
		src.rawProtected[a] = append(src.rawProtected[a], raw)
	}
	for a, attr := range b.schema.Observed {
		v, ok := observed[attr.Name]
		if !ok {
			b.err = fmt.Errorf("dataset: worker %q missing observed attribute %q", id, attr.Name)
			return b
		}
		f, err := toFloat(v)
		if err != nil {
			b.err = fmt.Errorf("dataset: worker %q attribute %q: %w", id, attr.Name, err)
			return b
		}
		src.observed[a] = append(src.observed[a], f)
	}
	src.ids = append(src.ids, id)
	src.n++
	return b
}

func encodeProtected(attr Attribute, v any) (code uint16, raw float64, err error) {
	switch attr.Kind {
	case Categorical:
		s, ok := v.(string)
		if !ok {
			return 0, 0, fmt.Errorf("attribute %q wants a string, got %T", attr.Name, v)
		}
		i := attr.CategoryIndex(s)
		if i < 0 {
			return 0, 0, fmt.Errorf("attribute %q has no value %q", attr.Name, s)
		}
		return uint16(i), math.NaN(), nil
	case Numeric:
		f, err := toFloat(v)
		if err != nil {
			return 0, 0, fmt.Errorf("attribute %q: %w", attr.Name, err)
		}
		if f < attr.Min || f > attr.Max {
			return 0, 0, fmt.Errorf("attribute %q value %g outside [%g,%g]", attr.Name, f, attr.Min, attr.Max)
		}
		return uint16(attr.BucketIndex(f)), f, nil
	}
	return 0, 0, fmt.Errorf("attribute %q has unknown kind", attr.Name)
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, errors.New("value is NaN or infinite")
		}
		return x, nil
	case float32:
		return toFloat(float64(x))
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("want a number, got %T", v)
	}
}

// Build finalizes the dataset or reports the first accumulated error.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	return FromSource(b.src)
}

// N returns the number of workers.
func (d *Dataset) N() int { return d.n }

// Schema returns the dataset's schema. Callers must not mutate it.
func (d *Dataset) Schema() *Schema { return d.schema }

// Source returns the dataset's backing source.
func (d *Dataset) Source() Source { return d.src }

// Close releases the dataset's backing storage. For snapshot-backed
// datasets this unmaps the snapshot — every column view (including slices
// previously returned by CodeColumn/ObservedColumn) is invalid afterwards.
// For in-memory datasets Close is a no-op. Close is idempotent.
func (d *Dataset) Close() error { return d.src.Close() }

// ID returns worker i's identifier.
func (d *Dataset) ID(i int) string { return d.src.ID(i) }

// Code returns worker i's partitioning code for protected attribute a
// (by index into Schema().Protected).
func (d *Dataset) Code(a, i int) int { return int(d.codes[a][i]) }

// CodeColumn returns the full partitioning-code column of protected
// attribute a. The returned slice is a live view of the backing source
// (mapped bytes for snapshot datasets); callers must not mutate it and
// must not use it after Close. Scans should prefer one CodeColumn call
// plus slice indexing over per-row Code calls.
func (d *Dataset) CodeColumn(a int) []uint16 { return d.codes[a] }

// RawProtected returns worker i's raw numeric value for protected
// attribute a; NaN for categorical attributes.
func (d *Dataset) RawProtected(a, i int) float64 { return d.rawProtected[a][i] }

// RawProtectedColumn returns the full raw-value column of protected
// attribute a, under the same sharing rules as CodeColumn.
func (d *Dataset) RawProtectedColumn(a int) []float64 { return d.rawProtected[a] }

// Observed returns worker i's value for observed attribute a (by index
// into Schema().Observed).
func (d *Dataset) Observed(a, i int) float64 { return d.observed[a][i] }

// ObservedColumn returns the full column of observed attribute a, under
// the same sharing rules as CodeColumn: a live, immutable view of the
// backing source, valid until Close.
func (d *Dataset) ObservedColumn(a int) []float64 { return d.observed[a] }

// ProtectedLabel returns the human-readable partitioning value of worker i
// on protected attribute a.
func (d *Dataset) ProtectedLabel(a, i int) string {
	return d.schema.Protected[a].ValueLabel(d.Code(a, i))
}

// AllIndices returns 0..N-1, the root "partition" containing everyone.
func (d *Dataset) AllIndices() []int {
	idx := make([]int, d.n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Concat returns a new Dataset holding the workers of a followed by the
// workers of b. The two datasets must have structurally identical schemas
// (same attributes, kinds, value lists and ranges); this is how cohorts
// from different sources or time windows are federated for a joint audit.
//
// Concat is copy-on-write over the inputs' Sources: it reads their column
// views and materializes a fully owned in-memory result. The result shares
// no storage with either input — closing a snapshot-backed input
// afterwards does not invalidate it, and it stays valid (and owned)
// regardless of where the inputs' columns lived.
func Concat(a, b *Dataset) (*Dataset, error) {
	if a == nil || b == nil {
		return nil, errors.New("dataset: concat of nil dataset")
	}
	if err := sameSchema(a.schema, b.schema); err != nil {
		return nil, err
	}
	n := a.n + b.n
	src := &memSource{
		schema:       a.schema.Clone(),
		n:            n,
		ids:          make([]string, 0, n),
		codes:        make([][]uint16, len(a.codes)),
		rawProtected: make([][]float64, len(a.rawProtected)),
		observed:     make([][]float64, len(a.observed)),
	}
	for i := 0; i < a.n; i++ {
		src.ids = append(src.ids, a.ID(i))
	}
	for i := 0; i < b.n; i++ {
		src.ids = append(src.ids, b.ID(i))
	}
	for i := range a.codes {
		src.codes[i] = append(append(make([]uint16, 0, n), a.codes[i]...), b.codes[i]...)
		src.rawProtected[i] = append(append(make([]float64, 0, n), a.rawProtected[i]...), b.rawProtected[i]...)
	}
	for i := range a.observed {
		src.observed[i] = append(append(make([]float64, 0, n), a.observed[i]...), b.observed[i]...)
	}
	return FromSource(src)
}

// sameSchema checks structural equality of two schemas.
func sameSchema(a, b *Schema) error {
	if len(a.Protected) != len(b.Protected) || len(a.Observed) != len(b.Observed) {
		return errors.New("dataset: schemas differ in attribute counts")
	}
	check := func(x, y Attribute) error {
		if x.Name != y.Name || x.Kind != y.Kind || x.Min != y.Min || x.Max != y.Max || x.Buckets != y.Buckets {
			return fmt.Errorf("dataset: attribute %q differs between schemas", x.Name)
		}
		if len(x.Values) != len(y.Values) {
			return fmt.Errorf("dataset: attribute %q differs in values", x.Name)
		}
		for i := range x.Values {
			if x.Values[i] != y.Values[i] {
				return fmt.Errorf("dataset: attribute %q differs in values", x.Name)
			}
		}
		return nil
	}
	for i := range a.Protected {
		if err := check(a.Protected[i], b.Protected[i]); err != nil {
			return err
		}
	}
	for i := range a.Observed {
		if err := check(a.Observed[i], b.Observed[i]); err != nil {
			return err
		}
	}
	return nil
}

// Subset returns a new Dataset containing only the workers at the given
// row indices, in that order. The schema is shared structurally (cloned);
// duplicate indices are allowed and produce duplicate workers.
//
// Like Concat, Subset is copy-on-write over the input's Source: the
// selected rows are gathered from the column views into fully owned
// slices, so the result survives a Close of a snapshot-backed input and
// never aliases mapped memory.
func (d *Dataset) Subset(indices []int) (*Dataset, error) {
	if len(indices) == 0 {
		return nil, errors.New("dataset: empty subset")
	}
	src := &memSource{
		schema:       d.schema.Clone(),
		n:            len(indices),
		ids:          make([]string, len(indices)),
		codes:        make([][]uint16, len(d.codes)),
		rawProtected: make([][]float64, len(d.rawProtected)),
		observed:     make([][]float64, len(d.observed)),
	}
	for a := range d.codes {
		src.codes[a] = make([]uint16, len(indices))
		src.rawProtected[a] = make([]float64, len(indices))
	}
	for a := range d.observed {
		src.observed[a] = make([]float64, len(indices))
	}
	for k, i := range indices {
		if i < 0 || i >= d.n {
			return nil, fmt.Errorf("dataset: subset index %d out of range", i)
		}
		src.ids[k] = d.ID(i)
		for a := range d.codes {
			src.codes[a][k] = d.codes[a][i]
			src.rawProtected[a][k] = d.rawProtected[a][i]
		}
		for a := range d.observed {
			src.observed[a][k] = d.observed[a][i]
		}
	}
	return FromSource(src)
}
