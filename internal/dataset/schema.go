// Package dataset models the individuals of the paper: workers with
// protected attributes (inherent properties such as gender, country, year
// of birth) and observed attributes (skills such as language-test score and
// approval rate). Data is stored columnar so the partitioning algorithms
// can scan an attribute for thousands of workers without pointer chasing.
//
// Protected attributes may be categorical or numeric. Numeric protected
// attributes (e.g. Year of Birth ∈ [1950, 2009]) are discretized into a
// small number of buckets for partitioning, mirroring the paper's
// exhaustive experiment in which "each attribute had only a maximum of 5
// values".
package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes categorical from numeric attributes.
type Kind int

const (
	// Categorical attributes take one of an enumerated set of values.
	Categorical Kind = iota
	// Numeric attributes take a value in [Min, Max] and are bucketized
	// into Buckets equal-width ranges when used for partitioning.
	Numeric
)

// String returns "categorical" or "numeric".
func (k Kind) String() string {
	if k == Numeric {
		return "numeric"
	}
	return "categorical"
}

// Attribute describes one worker attribute.
type Attribute struct {
	// Name is the attribute's unique name within its schema.
	Name string
	// Kind is Categorical or Numeric.
	Kind Kind
	// Values enumerates the categorical values. Ignored for Numeric.
	Values []string
	// Min and Max bound a Numeric attribute's value range (inclusive).
	Min, Max float64
	// Buckets is the number of equal-width ranges a Numeric protected
	// attribute is split into when partitioning. Ignored for Categorical.
	Buckets int
}

// Cat is shorthand for a categorical attribute.
func Cat(name string, values ...string) Attribute {
	return Attribute{Name: name, Kind: Categorical, Values: values}
}

// Num is shorthand for a numeric attribute bucketized into buckets ranges.
func Num(name string, min, max float64, buckets int) Attribute {
	return Attribute{Name: name, Kind: Numeric, Min: min, Max: max, Buckets: buckets}
}

// Cardinality returns the number of partitioning values the attribute has:
// the number of categorical values, or the bucket count for numeric ones.
func (a Attribute) Cardinality() int {
	if a.Kind == Numeric {
		return a.Buckets
	}
	return len(a.Values)
}

// ValueLabel returns a human-readable label for partitioning value i: the
// categorical value itself, or the numeric bucket's range.
func (a Attribute) ValueLabel(i int) string {
	if a.Kind == Categorical {
		if i < 0 || i >= len(a.Values) {
			return fmt.Sprintf("%s(?%d)", a.Name, i)
		}
		return a.Values[i]
	}
	lo, hi := a.BucketBounds(i)
	return fmt.Sprintf("[%g,%g)", lo, hi)
}

// BucketBounds returns the value range of numeric bucket i.
func (a Attribute) BucketBounds(i int) (lo, hi float64) {
	w := (a.Max - a.Min) / float64(a.Buckets)
	return a.Min + float64(i)*w, a.Min + float64(i+1)*w
}

// BucketIndex maps a numeric value onto its bucket, clamping out-of-range
// values to the first/last bucket.
func (a Attribute) BucketIndex(v float64) int {
	if a.Buckets <= 0 {
		return 0
	}
	w := (a.Max - a.Min) / float64(a.Buckets)
	i := int(math.Floor((v - a.Min) / w))
	if i < 0 {
		return 0
	}
	if i >= a.Buckets {
		return a.Buckets - 1
	}
	return i
}

// CategoryIndex returns the index of the categorical value, or -1 if it is
// not one of the attribute's values.
func (a Attribute) CategoryIndex(value string) int {
	for i, v := range a.Values {
		if v == value {
			return i
		}
	}
	return -1
}

// Validate checks the attribute definition for internal consistency.
func (a Attribute) Validate() error {
	if a.Name == "" {
		return errors.New("dataset: attribute with empty name")
	}
	switch a.Kind {
	case Categorical:
		if len(a.Values) == 0 {
			return fmt.Errorf("dataset: categorical attribute %q has no values", a.Name)
		}
		seen := map[string]bool{}
		for _, v := range a.Values {
			if v == "" {
				return fmt.Errorf("dataset: attribute %q has an empty value", a.Name)
			}
			if seen[v] {
				return fmt.Errorf("dataset: attribute %q has duplicate value %q", a.Name, v)
			}
			seen[v] = true
		}
	case Numeric:
		if !(a.Max > a.Min) {
			return fmt.Errorf("dataset: numeric attribute %q has empty range [%g,%g]", a.Name, a.Min, a.Max)
		}
		if a.Buckets < 1 {
			return fmt.Errorf("dataset: numeric attribute %q needs at least one bucket", a.Name)
		}
	default:
		return fmt.Errorf("dataset: attribute %q has unknown kind %d", a.Name, a.Kind)
	}
	return nil
}

// Schema describes a worker population: which attributes are protected
// (used for partitioning) and which are observed (used for scoring).
// Observed attributes must be numeric.
type Schema struct {
	Protected []Attribute
	Observed  []Attribute
}

// Validate checks the schema for consistency: non-empty attribute sets,
// valid attributes, unique names, and numeric observed attributes.
func (s *Schema) Validate() error {
	if s == nil {
		return errors.New("dataset: nil schema")
	}
	if len(s.Protected) == 0 {
		return errors.New("dataset: schema has no protected attributes")
	}
	if len(s.Observed) == 0 {
		return errors.New("dataset: schema has no observed attributes")
	}
	names := map[string]bool{}
	for _, a := range append(append([]Attribute{}, s.Protected...), s.Observed...) {
		if err := a.Validate(); err != nil {
			return err
		}
		if names[a.Name] {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, a := range s.Observed {
		if a.Kind != Numeric {
			return fmt.Errorf("dataset: observed attribute %q must be numeric", a.Name)
		}
	}
	return nil
}

// ProtectedIndex returns the position of the named protected attribute, or
// -1 when absent.
func (s *Schema) ProtectedIndex(name string) int {
	for i, a := range s.Protected {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// ObservedIndex returns the position of the named observed attribute, or -1
// when absent.
func (s *Schema) ObservedIndex(name string) int {
	for i, a := range s.Observed {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Protected: make([]Attribute, len(s.Protected)),
		Observed:  make([]Attribute, len(s.Observed)),
	}
	copy(c.Protected, s.Protected)
	copy(c.Observed, s.Observed)
	for i := range c.Protected {
		c.Protected[i].Values = append([]string(nil), s.Protected[i].Values...)
	}
	for i := range c.Observed {
		c.Observed[i].Values = append([]string(nil), s.Observed[i].Values...)
	}
	return c
}
