package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV serializes the dataset as CSV: a header row of
// id, <protected...>, <observed...>, then one row per worker. Categorical
// values are written as their labels; numeric protected attributes as their
// raw values.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id"}
	for _, a := range d.schema.Protected {
		header = append(header, a.Name)
	}
	for _, a := range d.schema.Observed {
		header = append(header, a.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	row := make([]string, len(header))
	for i := 0; i < d.n; i++ {
		row[0] = d.ID(i)
		col := 1
		for a, attr := range d.schema.Protected {
			if attr.Kind == Categorical {
				row[col] = attr.Values[d.Code(a, i)]
			} else {
				row[col] = strconv.FormatFloat(d.rawProtected[a][i], 'g', -1, 64)
			}
			col++
		}
		for a := range d.schema.Observed {
			row[col] = strconv.FormatFloat(d.observed[a][i], 'g', -1, 64)
			col++
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or hand-authored in the
// same layout) against the given schema. Column order must match the
// schema: id, protected attributes, observed attributes.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	want := 1 + len(schema.Protected) + len(schema.Observed)
	if len(header) != want {
		return nil, fmt.Errorf("dataset: csv has %d columns, schema wants %d", len(header), want)
	}
	if header[0] != "id" {
		return nil, fmt.Errorf("dataset: first csv column is %q, want \"id\"", header[0])
	}
	for i, a := range schema.Protected {
		if header[1+i] != a.Name {
			return nil, fmt.Errorf("dataset: csv column %d is %q, want protected %q", 1+i, header[1+i], a.Name)
		}
	}
	off := 1 + len(schema.Protected)
	for i, a := range schema.Observed {
		if header[off+i] != a.Name {
			return nil, fmt.Errorf("dataset: csv column %d is %q, want observed %q", off+i, header[off+i], a.Name)
		}
	}

	b := NewBuilder(schema)
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line+1, err)
		}
		line++
		prot := map[string]any{}
		for i, a := range schema.Protected {
			cell := row[1+i]
			if a.Kind == Categorical {
				prot[a.Name] = cell
			} else {
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: csv line %d, attribute %q: %w", line, a.Name, err)
				}
				prot[a.Name] = f
			}
		}
		obs := map[string]any{}
		for i, a := range schema.Observed {
			f, err := strconv.ParseFloat(row[off+i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d, attribute %q: %w", line, a.Name, err)
			}
			obs[a.Name] = f
		}
		b.Add(row[0], prot, obs)
	}
	return b.Build()
}

// jsonWorker is the JSON wire form of one worker.
type jsonWorker struct {
	ID        string             `json:"id"`
	Protected map[string]any     `json:"protected"`
	Observed  map[string]float64 `json:"observed"`
}

// WriteJSON serializes the dataset as a JSON array of worker objects.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	workers := make([]jsonWorker, d.n)
	for i := 0; i < d.n; i++ {
		jw := jsonWorker{
			ID:        d.ID(i),
			Protected: map[string]any{},
			Observed:  map[string]float64{},
		}
		for a, attr := range d.schema.Protected {
			if attr.Kind == Categorical {
				jw.Protected[attr.Name] = attr.Values[d.Code(a, i)]
			} else {
				jw.Protected[attr.Name] = d.rawProtected[a][i]
			}
		}
		for a, attr := range d.schema.Observed {
			jw.Observed[attr.Name] = d.observed[a][i]
		}
		workers[i] = jw
	}
	return enc.Encode(workers)
}

// ReadJSON parses a dataset written by WriteJSON against the given schema.
func ReadJSON(r io.Reader, schema *Schema) (*Dataset, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	var workers []jsonWorker
	if err := json.NewDecoder(r).Decode(&workers); err != nil {
		return nil, fmt.Errorf("dataset: decode json: %w", err)
	}
	b := NewBuilder(schema)
	for _, jw := range workers {
		obs := map[string]any{}
		for k, v := range jw.Observed {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("dataset: worker %q observed %q is NaN", jw.ID, k)
			}
			obs[k] = v
		}
		b.Add(jw.ID, jw.Protected, obs)
	}
	return b.Build()
}
