package dataset

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"unsafe"
)

// snapSource is the file-backed Source: its columns are typed views over
// the byte region of a columnar snapshot — for OpenSnapshot, the mmap'd
// file itself. Aside from the id-offset table's n+1 uint32s (viewed, not
// copied, on little-endian hosts), opening a snapshot allocates only the
// schema and the slice headers: the engine then scans the kernel's page
// cache directly.
type snapSource struct {
	schema       *Schema
	n            int
	idOff        []uint32
	idBytes      []byte
	codes        [][]uint16
	rawProtected [][]float64
	observed     [][]float64

	// closeOnce guards closer: unmapping twice is fatal, and Dataset.Close
	// is documented idempotent.
	closeOnce sync.Once
	closer    func() error
}

func (s *snapSource) NumWorkers() int { return s.n }
func (s *snapSource) Schema() *Schema { return s.schema }
func (s *snapSource) ID(i int) string {
	return string(s.idBytes[s.idOff[i]:s.idOff[i+1]])
}
func (s *snapSource) CodeColumn(a int) []uint16          { return s.codes[a] }
func (s *snapSource) RawProtectedColumn(a int) []float64 { return s.rawProtected[a] }
func (s *snapSource) ObservedColumn(a int) []float64     { return s.observed[a] }

func (s *snapSource) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.closer != nil {
			err = s.closer()
		}
	})
	return err
}

// corrupt wraps a decode failure in ErrCorrupt.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// u16view returns data as a []uint16. On little-endian hosts with a
// 2-aligned base this is a zero-copy reinterpretation; otherwise the values
// are decoded into a fresh slice (correctness fallback — mmap bases are
// page-aligned and the writer 8-aligns blocks, so file-backed opens always
// take the view path on little-endian hardware).
func u16view(data []byte) []uint16 {
	n := len(data) / 2
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%2 == 0 {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&data[0])), n)
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(data[2*i:])
	}
	return out
}

func u32view(data []byte) []uint32 {
	n := len(data) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&data[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	return out
}

func f64view(data []byte) []float64 {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&data[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out
}

// ReadSnapshot decodes a columnar snapshot held in memory, returning a
// zero-copy Dataset view over data. The caller must keep data immutable and
// alive for the Dataset's lifetime (Close does not release it). All
// structural invariants and every block checksum are verified here — a nil
// error means the views are safe for the engine to index without further
// bounds checks. Decode failures return ErrCorrupt (wrapped); malformed
// input never panics.
func ReadSnapshot(data []byte) (*Dataset, error) {
	src, err := newSnapSource(data, nil)
	if err != nil {
		return nil, err
	}
	return FromSource(src)
}

func newSnapSource(data []byte, closer func() error) (*snapSource, error) {
	const headerLen = 16
	if len(data) < headerLen+snapFooterFixedLen+snapTrailerLen {
		return nil, corrupt("snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, corrupt("bad magic %q", data[:len(snapshotMagic)])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != snapshotVersion {
		return nil, corrupt("unsupported snapshot version %d", v)
	}
	tail := data[len(data)-snapTrailerLen:]
	if string(tail[4:]) != snapshotMagic {
		return nil, corrupt("bad tail magic %q", tail[4:])
	}
	footerLen := binary.LittleEndian.Uint32(tail[:4])
	if footerLen < snapFooterFixedLen || uint64(footerLen) > uint64(len(data)-headerLen-snapTrailerLen) {
		return nil, corrupt("absurd footer length %d", footerLen)
	}
	// footer = fixed part + block table + its own CRC; blocks live in
	// [headerLen, blocksEnd).
	blocksEnd := len(data) - snapTrailerLen - int(footerLen)
	footer := data[blocksEnd : len(data)-snapTrailerLen]
	body, sum := footer[:len(footer)-4], binary.LittleEndian.Uint32(footer[len(footer)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, corrupt("footer checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	n64 := binary.LittleEndian.Uint64(body[0:8])
	if n64 == 0 || n64 > snapMaxWorkers {
		return nil, corrupt("absurd worker count %d", n64)
	}
	n := int(n64)
	blockCount := binary.LittleEndian.Uint32(body[8:12])
	if uint64(len(body)) != 16+uint64(blockCount)*snapFooterEntryLen {
		return nil, corrupt("footer length %d does not match %d blocks", footerLen, blockCount)
	}

	// Block table: blocks must be 8-aligned, in file order, non-overlapping,
	// and confined to the region between header and footer. In-order
	// non-overlap is exactly what the sequential writer produces; requiring
	// it closes the aliasing attacks (two "columns" sharing bytes, a block
	// overlapping the footer) a hand-forged table could mount.
	blocks := make([]snapBlock, blockCount)
	prevEnd := uint64(headerLen)
	for i := range blocks {
		e := body[16+snapFooterEntryLen*i:]
		b := snapBlock{
			off: binary.LittleEndian.Uint64(e[0:8]),
			len: binary.LittleEndian.Uint64(e[8:16]),
			crc: binary.LittleEndian.Uint32(e[16:20]),
		}
		if b.off%8 != 0 {
			return nil, corrupt("block %d misaligned at offset %d", i, b.off)
		}
		if b.off < prevEnd || b.len > uint64(blocksEnd) || b.off > uint64(blocksEnd)-b.len {
			return nil, corrupt("block %d [%d,+%d) overlaps or escapes", i, b.off, b.len)
		}
		prevEnd = b.off + b.len
		blocks[i] = b
	}
	region := func(i int) ([]byte, error) {
		b := blocks[i]
		r := data[b.off : b.off+b.len]
		if got := crc32.ChecksumIEEE(r); got != b.crc {
			return nil, corrupt("block %d checksum mismatch (stored %08x, computed %08x)", i, b.crc, got)
		}
		return r, nil
	}

	if blocks[0].len > snapMaxSchemaLen {
		return nil, corrupt("absurd schema length %d", blocks[0].len)
	}
	schemaJSON, err := region(0)
	if err != nil {
		return nil, err
	}
	var bs binarySchema
	if err := json.Unmarshal(schemaJSON, &bs); err != nil {
		return nil, corrupt("schema json: %v", err)
	}
	schema := &Schema{Protected: bs.Protected, Observed: bs.Observed}
	if err := schema.Validate(); err != nil {
		return nil, corrupt("%v", err)
	}
	if want := snapshotBlockCount(schema); int(blockCount) != want {
		return nil, corrupt("schema wants %d blocks, snapshot has %d", want, blockCount)
	}

	src := &snapSource{
		schema:       schema,
		n:            n,
		codes:        make([][]uint16, len(schema.Protected)),
		rawProtected: make([][]float64, len(schema.Protected)),
		observed:     make([][]float64, len(schema.Observed)),
		closer:       closer,
	}

	sized := func(i int, want uint64, what string) ([]byte, error) {
		if blocks[i].len != want {
			return nil, corrupt("%s block is %d bytes, want %d", what, blocks[i].len, want)
		}
		return region(i)
	}
	offRaw, err := sized(1, 4*uint64(n+1), "id offset")
	if err != nil {
		return nil, err
	}
	src.idOff = u32view(offRaw)
	if src.idOff[0] != 0 {
		return nil, corrupt("id offsets start at %d", src.idOff[0])
	}
	for i := 0; i < n; i++ {
		if src.idOff[i+1] < src.idOff[i] {
			return nil, corrupt("id offsets not monotone at %d", i)
		}
	}
	src.idBytes, err = sized(2, uint64(src.idOff[n]), "id bytes")
	if err != nil {
		return nil, err
	}

	for a, attr := range schema.Protected {
		raw, err := sized(3+2*a, 2*uint64(n), "codes")
		if err != nil {
			return nil, err
		}
		codes := u16view(raw)
		card := attr.Cardinality()
		for _, c := range codes {
			if int(c) >= card {
				return nil, corrupt("code %d out of range for %s", c, attr.Name)
			}
		}
		src.codes[a] = codes
		fraw, err := sized(4+2*a, 8*uint64(n), "raw values")
		if err != nil {
			return nil, err
		}
		src.rawProtected[a] = f64view(fraw)
	}
	for a := range schema.Observed {
		raw, err := sized(3+2*len(schema.Protected)+a, 8*uint64(n), "observed values")
		if err != nil {
			return nil, err
		}
		src.observed[a] = f64view(raw)
	}
	return src, nil
}

// OpenSnapshot maps the snapshot file at path and returns a Dataset whose
// columns are zero-copy views of the mapping — opening a multi-gigabyte
// snapshot costs pages, not heap. The Dataset owns the mapping: Close
// unmaps it and invalidates every view. On platforms without mmap the file
// is read into memory instead; behavior is identical, only the residency
// guarantee is weaker.
func OpenSnapshot(path string) (*Dataset, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open snapshot %s: %w", path, err)
	}
	src, err := newSnapSource(data, closer)
	if err != nil {
		closer()
		return nil, fmt.Errorf("dataset: open snapshot %s: %w", path, err)
	}
	ds, err := FromSource(src)
	if err != nil {
		src.Close()
		return nil, fmt.Errorf("dataset: open snapshot %s: %w", path, err)
	}
	return ds, nil
}
