//go:build unix

package dataset

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the file at path read-only and returns the mapping plus a
// closer that unmaps it. The file descriptor is closed before returning —
// the mapping keeps the pages alive on its own.
func mapFile(path string) (data []byte, closer func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 {
		return nil, nil, fmt.Errorf("%w: empty file", ErrCorrupt)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("snapshot too large to map (%d bytes)", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
