package dataset

// Source is the backing storage of a Dataset's columns. A Dataset is a
// thin, schema-aware view over a Source; the Source decides where the
// column blocks actually live — owned heap slices (memSource, what Builder
// and the stream decoders produce) or mmap'd regions of a columnar
// snapshot file (snapSource, what OpenSnapshot produces).
//
// Column methods return the full column for one attribute index. The
// returned slices are live views: callers must treat them as immutable,
// and for file-backed sources they are only valid until Close. Dataset
// caches the column views once at construction, so per-row accessors never
// pay an interface dispatch on the hot scan paths.
type Source interface {
	// NumWorkers returns the number of rows in every column.
	NumWorkers() int
	// Schema describes the columns. Callers must not mutate it.
	Schema() *Schema
	// ID returns worker i's identifier. File-backed sources decode it
	// lazily from the mapped id block; the returned string is owned by the
	// caller.
	ID(i int) string
	// CodeColumn returns protected attribute a's partitioning-code column.
	CodeColumn(a int) []uint16
	// RawProtectedColumn returns protected attribute a's raw numeric
	// column (NaN entries for categorical attributes).
	RawProtectedColumn(a int) []float64
	// ObservedColumn returns observed attribute a's value column.
	ObservedColumn(a int) []float64
	// Close releases the source's backing storage. Views obtained from a
	// file-backed source are invalid after Close; closing an in-memory
	// source is a no-op. Close is idempotent.
	Close() error
}

// memSource is the owned-slice Source: every column is a heap slice this
// process owns. Builder, the row decoders (CSV/JSON/legacy binary) and the
// copy-on-write operations (Concat, Subset) all produce memSources.
type memSource struct {
	schema       *Schema
	n            int
	ids          []string
	codes        [][]uint16
	rawProtected [][]float64
	observed     [][]float64
}

func (m *memSource) NumWorkers() int                    { return m.n }
func (m *memSource) Schema() *Schema                    { return m.schema }
func (m *memSource) ID(i int) string                    { return m.ids[i] }
func (m *memSource) CodeColumn(a int) []uint16          { return m.codes[a] }
func (m *memSource) RawProtectedColumn(a int) []float64 { return m.rawProtected[a] }
func (m *memSource) ObservedColumn(a int) []float64     { return m.observed[a] }
func (m *memSource) Close() error                       { return nil }

// FromSource wraps a Source in a Dataset, caching every column view once
// so the per-row accessors (Code, Observed, ...) index plain slices. The
// Dataset takes ownership of the Source: Dataset.Close closes it, and for
// file-backed sources no Dataset method may be called after Close.
func FromSource(src Source) (*Dataset, error) {
	if src == nil {
		return nil, errSourceNil
	}
	schema := src.Schema()
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if src.NumWorkers() == 0 {
		return nil, errNoWorkers
	}
	d := &Dataset{
		schema:       schema,
		n:            src.NumWorkers(),
		src:          src,
		codes:        make([][]uint16, len(schema.Protected)),
		rawProtected: make([][]float64, len(schema.Protected)),
		observed:     make([][]float64, len(schema.Observed)),
	}
	for a := range schema.Protected {
		d.codes[a] = src.CodeColumn(a)
		d.rawProtected[a] = src.RawProtectedColumn(a)
	}
	for a := range schema.Observed {
		d.observed[a] = src.ObservedColumn(a)
	}
	return d, nil
}
