package dataset

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildMany builds a dataset with n workers covering every protected value
// combination and a spread of observed values, including exact-boundary and
// fractional floats so round-trips must be bit-exact.
func buildMany(t testing.TB, n int) *Dataset {
	t.Helper()
	b := NewBuilder(testSchema())
	genders := []string{"Male", "Female"}
	countries := []string{"America", "India", "Other"}
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("worker-%04d", i),
			map[string]any{
				"Gender":      genders[i%2],
				"Country":     countries[i%3],
				"YearOfBirth": 1950 + float64(i%60) + 0.25,
			},
			map[string]any{
				"LanguageTest": 25 + 75*float64(i)/float64(n),
				"ApprovalRate": 100 - 75*float64(i%7)/7.0,
			})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// assertSameDataset checks that two datasets are bit-identical: same
// schema, ids, codes, raw and observed values (NaN-aware on raws).
func assertSameDataset(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N = %d, want %d", got.N(), want.N())
	}
	if err := sameSchema(want.Schema(), got.Schema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.N(); i++ {
		if got.ID(i) != want.ID(i) {
			t.Fatalf("ID(%d) = %q, want %q", i, got.ID(i), want.ID(i))
		}
	}
	for a := range want.Schema().Protected {
		wc, gc := want.CodeColumn(a), got.CodeColumn(a)
		wr, gr := want.RawProtectedColumn(a), got.RawProtectedColumn(a)
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("code[%d][%d] = %d, want %d", a, i, gc[i], wc[i])
			}
			if math.Float64bits(gr[i]) != math.Float64bits(wr[i]) {
				t.Fatalf("raw[%d][%d] = %v, want %v", a, i, gr[i], wr[i])
			}
		}
	}
	for a := range want.Schema().Observed {
		wo, go_ := want.ObservedColumn(a), got.ObservedColumn(a)
		for i := range wo {
			if math.Float64bits(go_[i]) != math.Float64bits(wo[i]) {
				t.Fatalf("observed[%d][%d] = %v, want %v", a, i, go_[i], wo[i])
			}
		}
	}
}

func TestSnapshotRoundTripInMemory(t *testing.T) {
	ds := buildMany(t, 101)
	var buf bytes.Buffer
	if err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, ds, back)
}

func TestSnapshotRoundTripMmap(t *testing.T) {
	ds := buildMany(t, 257)
	path := filepath.Join(t.TempDir(), "ds.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, ds, back)
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	if err := back.Close(); err != nil {
		t.Fatal(err) // Close is idempotent
	}
}

// TestSnapshotReserialize proves a mapped dataset can write itself back out
// (the server's adopt path) byte-identically.
func TestSnapshotReserialize(t *testing.T) {
	ds := buildMany(t, 64)
	var first bytes.Buffer
	if err := ds.WriteSnapshot(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(first.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.WriteSnapshot(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("re-serialized snapshot differs from original")
	}
}

// TestSnapshotUnalignedBase forces the copy fallback: the snapshot is
// decoded from a deliberately misaligned byte slice, which must still
// produce identical values.
func TestSnapshotUnalignedBase(t *testing.T) {
	ds := buildMany(t, 33)
	var buf bytes.Buffer
	if err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, buf.Len()+1)
	copy(shifted[1:], buf.Bytes())
	back, err := ReadSnapshot(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	assertSameDataset(t, ds, back)
}

// TestSnapshotCOWSurvivesClose: Subset and Concat over a snapshot-backed
// dataset own their storage — they stay valid after the snapshot unmaps.
func TestSnapshotCOWSurvivesClose(t *testing.T) {
	ds := buildMany(t, 40)
	path := filepath.Join(t.TempDir(), "ds.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	mapped, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := mapped.Subset([]int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Concat(mapped, mapped)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	// Touch every column of the derived datasets: would fault if they
	// aliased the unmapped region.
	if sub.N() != 3 || sub.ID(0) != ds.ID(3) {
		t.Fatal("subset wrong after close")
	}
	for a := range sub.Schema().Protected {
		_ = sub.CodeColumn(a)[2]
		_ = sub.RawProtectedColumn(a)[2]
	}
	for a := range sub.Schema().Observed {
		_ = sub.ObservedColumn(a)[2]
	}
	if cat.N() != 2*ds.N() || cat.ID(ds.N()) != ds.ID(0) {
		t.Fatal("concat wrong after close")
	}
	for a := range cat.Schema().Observed {
		col := cat.ObservedColumn(a)
		if math.Float64bits(col[0]) != math.Float64bits(col[ds.N()]) {
			t.Fatal("concat halves differ")
		}
	}
}

// corruptions maps a name to a mutation of a valid snapshot; every mutated
// snapshot must fail to decode with ErrCorrupt.
func snapshotCorruptions(valid []byte) map[string][]byte {
	flip := func(off int) []byte {
		c := append([]byte(nil), valid...)
		c[off] ^= 0xff
		return c
	}
	out := map[string][]byte{
		"empty":            {},
		"magic only":       []byte(snapshotMagic),
		"truncated header": valid[:10],
		"truncated body":   valid[:len(valid)/2],
		"missing trailer":  valid[:len(valid)-snapTrailerLen],
		"bad head magic":   flip(0),
		"bad tail magic":   flip(len(valid) - 1),
		"bad version":      flip(8),
		"flip data byte":   flip(20), // inside the schema block → block CRC
	}
	// Oversized footer length claim.
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[len(huge)-snapTrailerLen:], uint32(len(huge)))
	out["absurd footer len"] = huge
	// Overlapping blocks: rewrite block 1's offset to block 0's, refreshing
	// the footer CRC so only the overlap check can object.
	overlap := append([]byte(nil), valid...)
	fl := binary.LittleEndian.Uint32(overlap[len(overlap)-snapTrailerLen:])
	fStart := len(overlap) - snapTrailerLen - int(fl)
	e0 := fStart + 16
	e1 := e0 + snapFooterEntryLen
	copy(overlap[e1:e1+8], overlap[e0:e0+8])
	body := overlap[fStart : len(overlap)-snapTrailerLen-4]
	binary.LittleEndian.PutUint32(overlap[len(overlap)-snapTrailerLen-4:], crc32.ChecksumIEEE(body))
	out["overlapping blocks"] = overlap
	// Zero worker count, footer CRC refreshed likewise.
	zero := append([]byte(nil), valid...)
	fStartZ := len(zero) - snapTrailerLen - int(fl)
	binary.LittleEndian.PutUint64(zero[fStartZ:fStartZ+8], 0)
	bodyZ := zero[fStartZ : len(zero)-snapTrailerLen-4]
	binary.LittleEndian.PutUint32(zero[len(zero)-snapTrailerLen-4:], crc32.ChecksumIEEE(bodyZ))
	out["zero workers"] = zero
	return out
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	ds := buildMany(t, 16)
	var buf bytes.Buffer
	if err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for name, data := range snapshotCorruptions(buf.Bytes()) {
		if _, err := ReadSnapshot(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestOpenSnapshotMissingFile(t *testing.T) {
	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("want error for missing file")
	}
}
