package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// InferOptions controls schema inference for arbitrary CSV data.
type InferOptions struct {
	// Protected names the columns to treat as protected attributes.
	Protected []string
	// Observed names the columns to treat as observed (skill) attributes;
	// they must be numeric.
	Observed []string
	// IDColumn names the worker-ID column; empty synthesizes row numbers.
	IDColumn string
	// Buckets is the bucket count for numeric protected attributes
	// (default 5, the paper's "maximum of 5 values").
	Buckets int
	// MaxCategories caps the distinct values of a categorical column
	// (default 64); more distinct values is an error, catching columns
	// that are really free text or identifiers.
	MaxCategories int
}

// InferCSV loads a CSV with a header row and builds both a Schema and a
// Dataset from it, inferring each attribute's kind from its values: a
// column whose every value parses as a number is numeric (range from the
// data), anything else is categorical (values from the data). This makes
// the auditor usable on real exported platform data without hand-writing a
// schema.
func InferCSV(r io.Reader, opts InferOptions) (*Dataset, error) {
	if len(opts.Protected) == 0 {
		return nil, errors.New("dataset: infer needs at least one protected column")
	}
	if len(opts.Observed) == 0 {
		return nil, errors.New("dataset: infer needs at least one observed column")
	}
	if opts.Buckets <= 0 {
		opts.Buckets = 5
	}
	if opts.MaxCategories <= 0 {
		opts.MaxCategories = 64
	}

	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, name := range append(append([]string{}, opts.Protected...), opts.Observed...) {
		if _, ok := col[name]; !ok {
			return nil, fmt.Errorf("dataset: csv has no column %q", name)
		}
	}
	idCol := -1
	if opts.IDColumn != "" {
		c, ok := col[opts.IDColumn]
		if !ok {
			return nil, fmt.Errorf("dataset: csv has no id column %q", opts.IDColumn)
		}
		idCol = c
	}

	var rows [][]string
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, errors.New("dataset: csv has no data rows")
	}

	schema := &Schema{}
	for _, name := range opts.Protected {
		attr, err := inferColumn(name, rows, col[name], opts)
		if err != nil {
			return nil, err
		}
		schema.Protected = append(schema.Protected, attr)
	}
	for _, name := range opts.Observed {
		attr, err := inferColumn(name, rows, col[name], opts)
		if err != nil {
			return nil, err
		}
		if attr.Kind != Numeric {
			return nil, fmt.Errorf("dataset: observed column %q is not numeric", name)
		}
		schema.Observed = append(schema.Observed, attr)
	}

	b := NewBuilder(schema)
	for i, row := range rows {
		id := fmt.Sprintf("row%06d", i)
		if idCol >= 0 {
			id = row[idCol]
		}
		prot := map[string]any{}
		for k, name := range opts.Protected {
			cell := row[col[name]]
			if schema.Protected[k].Kind == Categorical {
				prot[name] = cell
			} else {
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", i+2, name, err)
				}
				prot[name] = f
			}
		}
		obs := map[string]any{}
		for _, name := range opts.Observed {
			f, err := strconv.ParseFloat(row[col[name]], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %q: %w", i+2, name, err)
			}
			obs[name] = f
		}
		b.Add(id, prot, obs)
	}
	return b.Build()
}

// inferColumn decides a column's kind and value domain from its data.
func inferColumn(name string, rows [][]string, c int, opts InferOptions) (Attribute, error) {
	numeric := true
	min, max := 0.0, 0.0
	distinct := map[string]bool{}
	for i, row := range rows {
		if c >= len(row) {
			return Attribute{}, fmt.Errorf("dataset: row %d is short (no column %q)", i+2, name)
		}
		cell := row[c]
		if f, err := strconv.ParseFloat(cell, 64); err == nil && numeric {
			if i == 0 || f < min {
				min = f
			}
			if i == 0 || f > max {
				max = f
			}
		} else {
			numeric = false
		}
		distinct[cell] = true
		if !numeric && len(distinct) > opts.MaxCategories {
			return Attribute{}, fmt.Errorf(
				"dataset: column %q has more than %d distinct values; is it really an attribute?",
				name, opts.MaxCategories)
		}
	}
	if numeric {
		if !(max > min) {
			// Constant numeric column: widen so the range is valid.
			max = min + 1
		}
		return Num(name, min, max, opts.Buckets), nil
	}
	values := make([]string, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	sort.Strings(values)
	return Cat(name, values...), nil
}
