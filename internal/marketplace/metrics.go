package marketplace

import (
	"errors"
	"math"
)

// NDCG computes the normalized discounted cumulative gain of a ranking
// against per-worker relevance values (e.g. the original scores, when
// measuring how much a repaired ranking sacrifices utility). The ranking's
// gain is discounted by position; the ideal ranking orders workers by
// relevance. Returns a value in [0,1]; 1 means the ranking is relevance-
// optimal. An all-zero relevance column yields NDCG 1 (nothing to gain).
func NDCG(relevance []float64, ranked []RankedWorker) (float64, error) {
	if len(ranked) == 0 {
		return 0, errors.New("marketplace: empty ranking")
	}
	dcg := 0.0
	for _, rw := range ranked {
		if rw.Worker < 0 || rw.Worker >= len(relevance) {
			return 0, errors.New("marketplace: ranked worker out of range")
		}
		dcg += relevance[rw.Worker] * PositionBias(rw.Rank)
	}
	// Ideal: the len(ranked) highest relevance values in order.
	top := topK(relevance, len(ranked))
	idcg := 0.0
	for i, rel := range top {
		idcg += rel * PositionBias(i+1)
	}
	if idcg == 0 {
		return 1, nil
	}
	return dcg / idcg, nil
}

// topK returns the k largest values of xs in descending order.
func topK(xs []float64, k int) []float64 {
	if k > len(xs) {
		k = len(xs)
	}
	// Simple selection via a copy + partial sort; populations are small
	// enough that O(n log n) is irrelevant here.
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sortDescending(cp)
	return cp[:k]
}

func sortDescending(xs []float64) {
	// insertion-free: use sort.Float64s then reverse would allocate less
	// thought; keep explicit for clarity.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TopKOverlap returns the fraction of workers shared by the top-k prefixes
// of two rankings (Jaccard on the top-k sets). 1 means identical top-k
// membership; 0 means disjoint.
func TopKOverlap(a, b []RankedWorker, k int) (float64, error) {
	if k <= 0 {
		return 0, errors.New("marketplace: k must be positive")
	}
	if len(a) < k || len(b) < k {
		return 0, errors.New("marketplace: rankings shorter than k")
	}
	inA := map[int]bool{}
	for _, rw := range a[:k] {
		inA[rw.Worker] = true
	}
	shared := 0
	for _, rw := range b[:k] {
		if inA[rw.Worker] {
			shared++
		}
	}
	return float64(shared) / float64(2*k-shared), nil
}

// KendallTau computes the Kendall rank-correlation coefficient between two
// rankings of the same worker set: +1 for identical order, -1 for reversed,
// ~0 for unrelated. Workers present in only one ranking are ignored.
func KendallTau(a, b []RankedWorker) (float64, error) {
	posA := map[int]int{}
	for _, rw := range a {
		posA[rw.Worker] = rw.Rank
	}
	type pair struct{ ra, rb int }
	var common []pair
	for _, rw := range b {
		if ra, ok := posA[rw.Worker]; ok {
			common = append(common, pair{ra, rw.Rank})
		}
	}
	n := len(common)
	if n < 2 {
		return 0, errors.New("marketplace: need at least two common workers")
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := common[i].ra - common[j].ra
			y := common[i].rb - common[j].rb
			switch {
			case x*y > 0:
				concordant++
			case x*y < 0:
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	if total == 0 {
		return 0, nil
	}
	tau := float64(concordant-discordant) / float64(total)
	if math.IsNaN(tau) {
		return 0, errors.New("marketplace: degenerate rankings")
	}
	return tau, nil
}
