package marketplace

import (
	"errors"
	"fmt"

	"fairrank/internal/rng"
	"fairrank/internal/scoring"
	"fairrank/internal/stats"
)

// AssignmentPolicy decides which worker gets an arriving task, given the
// current ranking of candidates.
type AssignmentPolicy int

const (
	// PolicyTopRanked always assigns the highest-scored candidate — the
	// utility-maximal policy, and the one that concentrates all income on
	// the top of the ranking.
	PolicyTopRanked AssignmentPolicy = iota
	// PolicyExposureWeighted assigns randomly with probability
	// proportional to position bias — the click-model behavior of
	// real requesters browsing a result page.
	PolicyExposureWeighted
	// PolicyRoundRobin rotates assignments through the top-k, the
	// simplest income-equalizing intervention.
	PolicyRoundRobin
)

// String names the policy.
func (p AssignmentPolicy) String() string {
	switch p {
	case PolicyTopRanked:
		return "top-ranked"
	case PolicyExposureWeighted:
		return "exposure-weighted"
	case PolicyRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// IncomeReport summarizes a long-run assignment simulation.
type IncomeReport struct {
	// Policy is the simulated assignment policy.
	Policy AssignmentPolicy
	// Rounds is the number of tasks assigned.
	Rounds int
	// Gini is the Gini coefficient of per-worker income across the whole
	// population (workers never assigned earn 0).
	Gini float64
	// GroupIncome maps each value of the audited attribute to its
	// members' mean income.
	GroupIncome map[string]float64
	// Income is the per-worker income column, indexed like the dataset.
	Income []float64
}

// SimulateIncome runs `rounds` task arrivals: each task ranks the
// population under f, the policy picks an assignee from the top k, and the
// assignee earns one unit. It reports the resulting income distribution and
// its per-group means over protected attribute attr — turning a ranking
// disparity into the long-run economic disparity the paper's motivation
// describes.
func (m *Marketplace) SimulateIncome(f scoring.Func, attr, k, rounds int, policy AssignmentPolicy, r *rng.RNG) (IncomeReport, error) {
	rep := IncomeReport{Policy: policy, GroupIncome: map[string]float64{}}
	if rounds <= 0 {
		return rep, errors.New("marketplace: rounds must be positive")
	}
	if attr < 0 || attr >= len(m.workers.Schema().Protected) {
		return rep, fmt.Errorf("marketplace: protected attribute %d out of range", attr)
	}
	ranked := RankBy(m.workers, f, k)
	if len(ranked) == 0 {
		return rep, errors.New("marketplace: empty ranking")
	}

	income := make([]float64, m.workers.N())
	weights := make([]float64, len(ranked))
	totalW := 0.0
	for i, rw := range ranked {
		weights[i] = PositionBias(rw.Rank)
		totalW += weights[i]
	}
	for round := 0; round < rounds; round++ {
		var pick int
		switch policy {
		case PolicyTopRanked:
			pick = 0
		case PolicyRoundRobin:
			pick = round % len(ranked)
		case PolicyExposureWeighted:
			x := r.Float64() * totalW
			pick = len(ranked) - 1
			for i, w := range weights {
				x -= w
				if x < 0 {
					pick = i
					break
				}
			}
		default:
			return rep, fmt.Errorf("marketplace: unknown policy %v", policy)
		}
		income[ranked[pick].Worker]++
	}

	gini, err := stats.Gini(income)
	if err != nil {
		return rep, err
	}
	def := m.workers.Schema().Protected[attr]
	sums := make([]float64, def.Cardinality())
	counts := make([]float64, def.Cardinality())
	for i := 0; i < m.workers.N(); i++ {
		c := m.workers.Code(attr, i)
		sums[c] += income[i]
		counts[c]++
	}
	for v := range sums {
		if counts[v] > 0 {
			rep.GroupIncome[def.ValueLabel(v)] = sums[v] / counts[v]
		}
	}
	rep.Rounds = rounds
	rep.Gini = gini
	rep.Income = income
	return rep, nil
}
