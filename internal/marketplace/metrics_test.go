package marketplace

import (
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

func scoreIdentity() scoring.Func {
	return scoring.ScoreFunc{FuncName: "id", Fn: func(ds *dataset.Dataset, i int) float64 {
		return ds.Observed(0, i)
	}}
}

func TestNDCGPerfectRanking(t *testing.T) {
	ds, _ := simulate.PaperWorkers(100, 1)
	f, _ := scoring.NewLinear("f", map[string]float64{"LanguageTest": 1})
	relevance := scoring.Scores(ds, f)
	ranked := RankBy(ds, f, 0)
	ndcg, err := NDCG(relevance, ranked)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ndcg-1) > 1e-12 {
		t.Fatalf("self-ranking NDCG = %v, want 1", ndcg)
	}
}

func TestNDCGWorseRanking(t *testing.T) {
	ds, _ := simulate.PaperWorkers(200, 2)
	byLang, _ := scoring.NewLinear("lang", map[string]float64{"LanguageTest": 1})
	byAppr, _ := scoring.NewLinear("appr", map[string]float64{"ApprovalRate": 1})
	relevance := scoring.Scores(ds, byLang)
	good := RankBy(ds, byLang, 50)
	bad := RankBy(ds, byAppr, 50) // ranks by an uncorrelated attribute
	ng, err := NDCG(relevance, good)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NDCG(relevance, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !(nb < ng) {
		t.Fatalf("uncorrelated ranking NDCG %v not below optimal %v", nb, ng)
	}
}

func TestNDCGErrors(t *testing.T) {
	if _, err := NDCG([]float64{1}, nil); err == nil {
		t.Error("empty ranking accepted")
	}
	if _, err := NDCG([]float64{1}, []RankedWorker{{Worker: 5, Rank: 1}}); err == nil {
		t.Error("out-of-range worker accepted")
	}
}

func TestNDCGZeroRelevance(t *testing.T) {
	rel := []float64{0, 0, 0}
	ranked := []RankedWorker{{Worker: 0, Rank: 1}, {Worker: 2, Rank: 2}}
	ndcg, err := NDCG(rel, ranked)
	if err != nil || ndcg != 1 {
		t.Fatalf("zero-relevance NDCG = %v, %v", ndcg, err)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []RankedWorker{{Worker: 1, Rank: 1}, {Worker: 2, Rank: 2}, {Worker: 3, Rank: 3}}
	b := []RankedWorker{{Worker: 2, Rank: 1}, {Worker: 1, Rank: 2}, {Worker: 9, Rank: 3}}
	// top-2 sets: {1,2} vs {2,1} → identical.
	o, err := TopKOverlap(a, b, 2)
	if err != nil || o != 1 {
		t.Fatalf("overlap = %v, %v", o, err)
	}
	// top-3 sets share 2 of 4 distinct → jaccard = 2/4.
	o, err = TopKOverlap(a, b, 3)
	if err != nil || math.Abs(o-0.5) > 1e-12 {
		t.Fatalf("overlap = %v, %v", o, err)
	}
	if _, err := TopKOverlap(a, b, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopKOverlap(a, b, 5); err == nil {
		t.Error("k beyond length accepted")
	}
}

func TestKendallTau(t *testing.T) {
	a := []RankedWorker{{Worker: 1, Rank: 1}, {Worker: 2, Rank: 2}, {Worker: 3, Rank: 3}}
	same := []RankedWorker{{Worker: 1, Rank: 1}, {Worker: 2, Rank: 2}, {Worker: 3, Rank: 3}}
	rev := []RankedWorker{{Worker: 3, Rank: 1}, {Worker: 2, Rank: 2}, {Worker: 1, Rank: 3}}
	tau, err := KendallTau(a, same)
	if err != nil || tau != 1 {
		t.Fatalf("identical tau = %v, %v", tau, err)
	}
	tau, err = KendallTau(a, rev)
	if err != nil || tau != -1 {
		t.Fatalf("reversed tau = %v, %v", tau, err)
	}
	if _, err := KendallTau(a, []RankedWorker{{Worker: 99, Rank: 1}}); err == nil {
		t.Error("no common workers accepted")
	}
}

func TestKendallTauIgnoresNonCommon(t *testing.T) {
	a := []RankedWorker{{Worker: 1, Rank: 1}, {Worker: 2, Rank: 2}, {Worker: 7, Rank: 3}}
	b := []RankedWorker{{Worker: 2, Rank: 1}, {Worker: 1, Rank: 2}, {Worker: 8, Rank: 3}}
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tau != -1 { // only workers 1,2 are common, and they are swapped
		t.Fatalf("tau = %v, want -1", tau)
	}
}

func TestRepairTradeoffMetrics(t *testing.T) {
	// Full repair changes the ranking (utility cost) but the identity
	// relevance NDCG stays well above a random shuffle.
	ds, _ := simulate.PaperWorkers(300, 4)
	f := scoreIdentity()
	orig := RankBy(ds, f, 50)
	// A "repaired" scoring that compresses scores toward the median:
	compressed := scoring.ScoreFunc{FuncName: "comp", Fn: func(ds *dataset.Dataset, i int) float64 {
		return 0.5 + (ds.Observed(0, i)/100-0.5)*0.1
	}}
	rep := RankBy(ds, compressed, 50)
	overlap, err := TopKOverlap(orig, rep, 50)
	if err != nil {
		t.Fatal(err)
	}
	if overlap < 0.9 {
		t.Fatalf("monotone transform changed top-k membership: %v", overlap)
	}
	tau, err := KendallTau(orig, rep)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.99 {
		t.Fatalf("monotone transform changed order: tau = %v", tau)
	}
}
