package marketplace

import (
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

func newMarket(t *testing.T, n int, seed uint64) *Marketplace {
	t.Helper()
	ds, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil population accepted")
	}
}

func TestPostTaskValidation(t *testing.T) {
	m := newMarket(t, 50, 1)
	good := Task{ID: "t1", Title: "web gig", Weights: map[string]float64{"LanguageTest": 0.7, "ApprovalRate": 0.3}}
	if err := m.PostTask(good); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	if err := m.PostTask(good); err == nil {
		t.Error("duplicate task accepted")
	}
	if err := m.PostTask(Task{ID: "", Weights: good.Weights}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := m.PostTask(Task{ID: "t2", Weights: map[string]float64{}}); err == nil {
		t.Error("empty weights accepted")
	}
	if err := m.PostTask(Task{ID: "t3", Weights: map[string]float64{"Charisma": 1}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if got := len(m.Tasks()); got != 1 {
		t.Fatalf("%d tasks registered, want 1", got)
	}
}

func TestScoringFunc(t *testing.T) {
	m := newMarket(t, 50, 2)
	m.PostTask(Task{ID: "t1", Weights: map[string]float64{"LanguageTest": 1}})
	f, err := m.ScoringFunc("t1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "t1" {
		t.Errorf("func name = %q", f.Name())
	}
	if _, err := m.ScoringFunc("missing"); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRankOrderingAndTopK(t *testing.T) {
	m := newMarket(t, 200, 3)
	m.PostTask(Task{ID: "t1", Weights: map[string]float64{"LanguageTest": 0.5, "ApprovalRate": 0.5}})
	ranked, err := m.Rank("t1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 200 {
		t.Fatalf("full ranking has %d entries", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("ranking not descending at %d", i)
		}
		if ranked[i].Rank != i+1 {
			t.Fatalf("rank %d mislabeled as %d", i+1, ranked[i].Rank)
		}
	}
	top10, _ := m.Rank("t1", 10)
	if len(top10) != 10 {
		t.Fatalf("top-10 has %d entries", len(top10))
	}
	for i := range top10 {
		if top10[i] != ranked[i] {
			t.Fatalf("top-10 disagrees with full ranking at %d", i)
		}
	}
	if _, err := m.Rank("missing", 5); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRankDeterministicTiebreak(t *testing.T) {
	ds, _ := simulate.PaperWorkers(50, 4)
	constant := scoring.ScoreFunc{
		FuncName: "const",
		Fn:       func(_ *dataset.Dataset, _ int) float64 { return 0.5 },
	}
	ranked := RankBy(ds, constant, 0)
	for i := range ranked {
		if ranked[i].Worker != i {
			t.Fatalf("tie not broken by worker index at %d: %d", i, ranked[i].Worker)
		}
	}
}

func TestRankQuery(t *testing.T) {
	m := newMarket(t, 400, 13)
	m.PostTask(Task{ID: "t1", Weights: map[string]float64{"LanguageTest": 1}})
	ranked, err := m.RankQuery("t1", "Gender = 'Female' AND YearsExperience >= 5", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 10 {
		t.Fatalf("%d results", len(ranked))
	}
	ds := m.Workers()
	gender := ds.Schema().ProtectedIndex("Gender")
	exp := ds.Schema().ProtectedIndex("YearsExperience")
	for _, rw := range ranked {
		if ds.Code(gender, rw.Worker) != 1 {
			t.Fatal("non-female in filtered ranking")
		}
		if ds.RawProtected(exp, rw.Worker) < 5 {
			t.Fatal("under-experienced worker in filtered ranking")
		}
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("filtered ranking not descending")
		}
	}
	// Error paths.
	if _, err := m.RankQuery("missing", "Gender = 'Male'", 5); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := m.RankQuery("t1", "][", 5); err == nil {
		t.Error("malformed query accepted")
	}
	if _, err := m.RankQuery("t1", "Charisma = 5", 5); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := m.RankQuery("t1", "LanguageTest > 1000", 5); err == nil {
		t.Error("empty result set accepted")
	}
}

func TestPositionBias(t *testing.T) {
	if PositionBias(1) != 1 {
		t.Errorf("rank 1 bias = %v", PositionBias(1))
	}
	if got := PositionBias(3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("rank 3 bias = %v, want 0.5", got)
	}
	if PositionBias(0) != 0 || PositionBias(-1) != 0 {
		t.Error("invalid rank should have zero bias")
	}
	if PositionBias(2) <= PositionBias(3) {
		t.Error("bias must decrease with rank")
	}
}

func TestGroupExposureBiasedRanking(t *testing.T) {
	// Rank by a gender-biased function: male exposure must dominate.
	ds, _ := simulate.PaperWorkers(400, 5)
	f6, err := scoring.NewRuleFunc("f6", 5, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ranked := RankBy(ds, f6, 50)
	gender := ds.Schema().ProtectedIndex("Gender")
	exp, err := GroupExposure(ds, gender, ranked)
	if err != nil {
		t.Fatal(err)
	}
	if exp["Male"] <= exp["Female"] {
		t.Fatalf("male exposure %v not above female %v", exp["Male"], exp["Female"])
	}
	if d := ExposureDisparity(exp); !(d > 2) && !math.IsInf(d, 1) {
		t.Fatalf("disparity = %v, want large", d)
	}
	if _, err := GroupExposure(ds, 99, ranked); err == nil {
		t.Error("out-of-range attribute accepted")
	}
}

func TestExposureDisparityEdgeCases(t *testing.T) {
	if d := ExposureDisparity(map[string]float64{"a": 1}); d != 1 {
		t.Errorf("single group disparity = %v", d)
	}
	if d := ExposureDisparity(map[string]float64{"a": 0, "b": 0}); d != 1 {
		t.Errorf("all-zero disparity = %v", d)
	}
	if d := ExposureDisparity(map[string]float64{"a": 0, "b": 1}); !math.IsInf(d, 1) {
		t.Errorf("zero-vs-positive disparity = %v", d)
	}
	if d := ExposureDisparity(map[string]float64{"a": 1, "b": 2}); d != 2 {
		t.Errorf("disparity = %v, want 2", d)
	}
}

func TestSimulateHiringBiased(t *testing.T) {
	m := newMarket(t, 400, 6)
	m.PostTask(Task{ID: "t1", Weights: map[string]float64{"LanguageTest": 1}})
	gender := m.Workers().Schema().ProtectedIndex("Gender")
	stats, err := m.SimulateHiring("t1", gender, 50, 2000, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 2000 {
		t.Fatalf("rounds = %d", stats.Rounds)
	}
	total := 0
	for _, c := range stats.HiresByGroup {
		total += c
	}
	if total != 2000 {
		t.Fatalf("hires sum to %d", total)
	}
}

func TestSimulateHiringValidation(t *testing.T) {
	m := newMarket(t, 50, 8)
	m.PostTask(Task{ID: "t1", Weights: map[string]float64{"LanguageTest": 1}})
	if _, err := m.SimulateHiring("t1", 0, 10, 0, rng.New(1)); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := m.SimulateHiring("t1", 99, 10, 10, rng.New(1)); err == nil {
		t.Error("bad attribute accepted")
	}
	if _, err := m.SimulateHiring("missing", 0, 10, 10, rng.New(1)); err == nil {
		t.Error("unknown task accepted")
	}
}
