package marketplace_test

import (
	"fmt"

	"fairrank/internal/marketplace"
	"fairrank/internal/simulate"
)

// The platform's basic loop: post a task, get the ranked result page.
func ExampleMarketplace_Rank() {
	workers, _ := simulate.PaperWorkers(500, 42)
	m, _ := marketplace.New(workers)
	_ = m.PostTask(marketplace.Task{
		ID:      "web-gig",
		Title:   "help with HTML and CSS",
		Weights: map[string]float64{"LanguageTest": 0.7, "ApprovalRate": 0.3},
	})
	top, _ := m.Rank("web-gig", 3)
	for _, rw := range top {
		fmt.Printf("#%d score %.2f\n", rw.Rank, rw.Score)
	}
	// Output:
	// #1 score 0.95
	// #2 score 0.95
	// #3 score 0.93
}

func ExamplePositionBias() {
	fmt.Printf("%.2f %.2f %.2f\n",
		marketplace.PositionBias(1), marketplace.PositionBias(3), marketplace.PositionBias(7))
	// Output: 1.00 0.50 0.33
}
