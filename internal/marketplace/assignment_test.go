package marketplace

import (
	"math"
	"testing"

	"fairrank/internal/rng"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

func incomeSetup(t *testing.T) (*Marketplace, scoring.Func, int) {
	t.Helper()
	ds, err := simulate.PaperWorkers(300, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := scoring.NewRuleFunc("f6", 8, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, f6, ds.Schema().ProtectedIndex("Gender")
}

func TestSimulateIncomeValidation(t *testing.T) {
	m, f, gender := incomeSetup(t)
	if _, err := m.SimulateIncome(f, gender, 10, 0, PolicyTopRanked, rng.New(1)); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := m.SimulateIncome(f, 99, 10, 10, PolicyTopRanked, rng.New(1)); err == nil {
		t.Error("bad attribute accepted")
	}
	if _, err := m.SimulateIncome(f, gender, 10, 10, AssignmentPolicy(99), rng.New(1)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestTopRankedConcentratesIncome(t *testing.T) {
	m, f, gender := incomeSetup(t)
	rep, err := m.SimulateIncome(f, gender, 50, 1000, PolicyTopRanked, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// One worker earns everything: Gini near its maximum (n-1)/n.
	if rep.Gini < 0.99 {
		t.Fatalf("top-ranked Gini = %v, want ~1", rep.Gini)
	}
	total := 0.0
	for _, inc := range rep.Income {
		total += inc
	}
	if total != 1000 {
		t.Fatalf("income sums to %v", total)
	}
}

func TestRoundRobinEqualizesWithinTopK(t *testing.T) {
	m, f, gender := incomeSetup(t)
	top, err := m.SimulateIncome(f, gender, 50, 5000, PolicyTopRanked, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := m.SimulateIncome(f, gender, 50, 5000, PolicyRoundRobin, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := m.SimulateIncome(f, gender, 50, 5000, PolicyExposureWeighted, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !(rr.Gini < exp.Gini && exp.Gini < top.Gini) {
		t.Fatalf("Gini ordering violated: rr=%v exp=%v top=%v", rr.Gini, exp.Gini, top.Gini)
	}
}

func TestBiasedRankingSkewsGroupIncome(t *testing.T) {
	// Under f6, the entire top-50 is male, so female mean income is 0 for
	// every policy that assigns within the top-k.
	m, f, gender := incomeSetup(t)
	for _, policy := range []AssignmentPolicy{PolicyTopRanked, PolicyRoundRobin, PolicyExposureWeighted} {
		rep, err := m.SimulateIncome(f, gender, 50, 2000, policy, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		if rep.GroupIncome["Female"] != 0 {
			t.Fatalf("%v: female income %v despite all-male top-50", policy, rep.GroupIncome["Female"])
		}
		if rep.GroupIncome["Male"] <= 0 {
			t.Fatalf("%v: male income %v", policy, rep.GroupIncome["Male"])
		}
	}
}

func TestFairRankingEqualizesGroupIncome(t *testing.T) {
	// Under a fair function at full k, group mean incomes are close under
	// the exposure-weighted policy.
	ds, _ := simulate.PaperWorkers(300, 9)
	m, _ := New(ds)
	fair, _ := scoring.NewLinear("fair", map[string]float64{"LanguageTest": 0.5, "ApprovalRate": 0.5})
	gender := ds.Schema().ProtectedIndex("Gender")
	rep, err := m.SimulateIncome(fair, gender, 0, 30000, PolicyExposureWeighted, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	male, female := rep.GroupIncome["Male"], rep.GroupIncome["Female"]
	if male == 0 || female == 0 {
		t.Fatalf("degenerate incomes: %v / %v", male, female)
	}
	ratio := male / female
	if math.Abs(ratio-1) > 0.25 {
		t.Fatalf("fair-function income ratio = %v", ratio)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyTopRanked.String() != "top-ranked" ||
		PolicyExposureWeighted.String() != "exposure-weighted" ||
		PolicyRoundRobin.String() != "round-robin" {
		t.Error("policy names wrong")
	}
	if AssignmentPolicy(42).String() != "policy(42)" {
		t.Error("unknown policy name wrong")
	}
}
