// Package marketplace simulates the online job marketplace the paper
// studies: a platform holding a worker population and tasks, where "a
// person who needs to hire someone for a job can formulate a query and is
// shown a ranked list of people". It provides the ranking engine whose
// scoring functions fairrank audits, plus exposure metrics (in the spirit
// of Singh & Joachims' fairness-of-exposure, cited by the paper) and a
// hiring simulation that turns ranking disparity into outcome disparity.
package marketplace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fairrank/internal/dataset"
	"fairrank/internal/query"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
)

// Task is a job posted on the platform. Its weights over observed worker
// attributes define the task-qualification scoring function used to rank
// candidates (Definition 1 of the paper).
type Task struct {
	// ID uniquely identifies the task on the platform.
	ID string
	// Title is a human-readable description, e.g. "help with HTML/CSS".
	Title string
	// Weights maps observed attribute names to their importance for the
	// task. A weight of zero means the attribute is irrelevant.
	Weights map[string]float64
}

// Marketplace is a simulated platform: a worker population plus tasks.
type Marketplace struct {
	workers *dataset.Dataset
	tasks   map[string]Task
	order   []string // task IDs in insertion order
}

// New creates a marketplace over the given worker population.
func New(workers *dataset.Dataset) (*Marketplace, error) {
	if workers == nil || workers.N() == 0 {
		return nil, errors.New("marketplace: empty worker population")
	}
	return &Marketplace{workers: workers, tasks: map[string]Task{}}, nil
}

// Workers returns the worker population.
func (m *Marketplace) Workers() *dataset.Dataset { return m.workers }

// Tasks returns the posted tasks in insertion order.
func (m *Marketplace) Tasks() []Task {
	out := make([]Task, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.tasks[id])
	}
	return out
}

// PostTask validates and registers a task.
func (m *Marketplace) PostTask(t Task) error {
	if t.ID == "" {
		return errors.New("marketplace: task with empty ID")
	}
	if _, dup := m.tasks[t.ID]; dup {
		return fmt.Errorf("marketplace: duplicate task %q", t.ID)
	}
	f, err := scoring.NewLinear(t.ID, t.Weights)
	if err != nil {
		return fmt.Errorf("marketplace: task %q: %w", t.ID, err)
	}
	if err := f.Validate(m.workers.Schema()); err != nil {
		return fmt.Errorf("marketplace: task %q: %w", t.ID, err)
	}
	m.tasks[t.ID] = t
	m.order = append(m.order, t.ID)
	return nil
}

// ScoringFunc returns the task's qualification function — the object the
// fairness audit runs on.
func (m *Marketplace) ScoringFunc(taskID string) (scoring.Func, error) {
	t, ok := m.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("marketplace: unknown task %q", taskID)
	}
	return scoring.NewLinear(t.ID, t.Weights)
}

// RankedWorker is one entry of a ranking.
type RankedWorker struct {
	// Worker is the row index into the population dataset.
	Worker int
	// Score is the task-qualification score.
	Score float64
	// Rank is the 1-based position in the ranking.
	Rank int
}

// Rank scores every worker for the task and returns the top k (all workers
// when k <= 0), ordered by descending score with worker index as the
// deterministic tiebreak.
func (m *Marketplace) Rank(taskID string, k int) ([]RankedWorker, error) {
	f, err := m.ScoringFunc(taskID)
	if err != nil {
		return nil, err
	}
	return RankBy(m.workers, f, k), nil
}

// RankQuery scores only the workers matching the requester's query
// expression (e.g. "YearsExperience >= 5 AND Country = 'America'") and
// returns the top k of them — the paper's full interaction: "a person who
// needs to hire someone for a job can formulate a query and is shown a
// ranked list of people". Ranks are positions within the filtered result
// page; Worker indices refer to the full population dataset.
func (m *Marketplace) RankQuery(taskID, queryText string, k int) ([]RankedWorker, error) {
	f, err := m.ScoringFunc(taskID)
	if err != nil {
		return nil, err
	}
	expr, err := query.Parse(queryText)
	if err != nil {
		return nil, err
	}
	q, err := query.Compile(expr, m.workers.Schema())
	if err != nil {
		return nil, err
	}
	matched := q.Filter(m.workers)
	if len(matched) == 0 {
		return nil, fmt.Errorf("marketplace: no workers match %s", q)
	}
	ranked := make([]RankedWorker, len(matched))
	for j, i := range matched {
		ranked[j] = RankedWorker{Worker: i, Score: f.Score(m.workers, i)}
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].Score != ranked[b].Score {
			return ranked[a].Score > ranked[b].Score
		}
		return ranked[a].Worker < ranked[b].Worker
	})
	if k > 0 && k < len(ranked) {
		ranked = ranked[:k]
	}
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	return ranked, nil
}

// RankBy ranks the workers of any dataset under any scoring function; it is
// the core of the platform's result page.
func RankBy(ds *dataset.Dataset, f scoring.Func, k int) []RankedWorker {
	ranked := make([]RankedWorker, ds.N())
	for i := range ranked {
		ranked[i] = RankedWorker{Worker: i, Score: f.Score(ds, i)}
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].Score != ranked[b].Score {
			return ranked[a].Score > ranked[b].Score
		}
		return ranked[a].Worker < ranked[b].Worker
	})
	if k > 0 && k < len(ranked) {
		ranked = ranked[:k]
	}
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	return ranked
}

// PositionBias returns the standard logarithmic position-bias weight of a
// 1-based rank: 1 / log2(rank + 1). Rank 1 gets weight 1.
func PositionBias(rank int) float64 {
	if rank < 1 {
		return 0
	}
	return 1 / math.Log2(float64(rank)+1)
}

// GroupExposure computes, per value of protected attribute attr, the mean
// position-bias exposure the ranking gives that group's members who appear
// in it; members outside the ranking contribute zero exposure. Groups with
// no members in the dataset are omitted.
func GroupExposure(ds *dataset.Dataset, attr int, ranked []RankedWorker) (map[string]float64, error) {
	if attr < 0 || attr >= len(ds.Schema().Protected) {
		return nil, fmt.Errorf("marketplace: protected attribute %d out of range", attr)
	}
	def := ds.Schema().Protected[attr]
	sums := make([]float64, def.Cardinality())
	counts := make([]float64, def.Cardinality())
	for i := 0; i < ds.N(); i++ {
		counts[ds.Code(attr, i)]++
	}
	for _, rw := range ranked {
		sums[ds.Code(attr, rw.Worker)] += PositionBias(rw.Rank)
	}
	out := map[string]float64{}
	for v := range sums {
		if counts[v] == 0 {
			continue
		}
		out[def.ValueLabel(v)] = sums[v] / counts[v]
	}
	return out, nil
}

// ExposureDisparity summarizes a group-exposure map as the ratio between
// the most and least exposed groups (1 means perfectly equal exposure).
// It returns +Inf when some group has zero exposure and another does not,
// and 1 when the map has fewer than two groups.
func ExposureDisparity(exposure map[string]float64) float64 {
	if len(exposure) < 2 {
		return 1
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, e := range exposure {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if max == 0 {
		return 1
	}
	if min == 0 {
		return math.Inf(1)
	}
	return max / min
}

// HiringStats summarizes a hiring simulation.
type HiringStats struct {
	// Rounds is the number of hiring decisions simulated.
	Rounds int
	// HiresByGroup counts hires per value of the audited attribute.
	HiresByGroup map[string]int
}

// SimulateHiring simulates `rounds` independent employers issuing the task
// query, examining the top-k ranking, and hiring one candidate with
// probability proportional to position bias — the standard click-model
// assumption. It reports hires per group of protected attribute attr.
func (m *Marketplace) SimulateHiring(taskID string, attr, k, rounds int, r *rng.RNG) (HiringStats, error) {
	stats := HiringStats{HiresByGroup: map[string]int{}}
	if rounds <= 0 {
		return stats, errors.New("marketplace: rounds must be positive")
	}
	if attr < 0 || attr >= len(m.workers.Schema().Protected) {
		return stats, fmt.Errorf("marketplace: protected attribute %d out of range", attr)
	}
	ranked, err := m.Rank(taskID, k)
	if err != nil {
		return stats, err
	}
	if len(ranked) == 0 {
		return stats, errors.New("marketplace: empty ranking")
	}
	weights := make([]float64, len(ranked))
	total := 0.0
	for i, rw := range ranked {
		weights[i] = PositionBias(rw.Rank)
		total += weights[i]
	}
	def := m.workers.Schema().Protected[attr]
	for round := 0; round < rounds; round++ {
		x := r.Float64() * total
		pick := len(ranked) - 1
		for i, w := range weights {
			x -= w
			if x < 0 {
				pick = i
				break
			}
		}
		worker := ranked[pick].Worker
		stats.HiresByGroup[def.ValueLabel(m.workers.Code(attr, worker))]++
	}
	stats.Rounds = rounds
	return stats, nil
}
