// Package repair implements score repair — the paper's stated future work
// of "repairing bias in the context of ranking in online job marketplaces".
//
// Given the most unfair partitioning found by the audit, Repair aligns each
// partition's score distribution with the global score distribution by
// quantile matching (the mechanism behind disparate-impact removal à la
// Feldman et al.): each worker's score is moved toward the global score at
// the worker's within-partition quantile. The Amount parameter trades
// fairness against score fidelity: 0 leaves scores untouched, 1 fully
// equalizes distributions. Within-partition ranking is preserved, so the
// relative ordering of comparable workers never changes.
package repair

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fairrank/internal/emd"
	"fairrank/internal/histogram"
	"fairrank/internal/partition"
)

// Scores applies quantile-matching repair. scores holds one score in [0,1]
// per worker; pt must be a full disjoint partitioning of exactly those
// workers. amount in [0,1] interpolates between the original (0) and fully
// repaired (1) scores. The returned slice is new; the input is not mutated.
func Scores(scores []float64, pt *partition.Partitioning, amount float64) ([]float64, error) {
	if len(scores) == 0 {
		return nil, errors.New("repair: no scores")
	}
	if pt == nil || len(pt.Parts) == 0 {
		return nil, errors.New("repair: empty partitioning")
	}
	if amount < 0 || amount > 1 || math.IsNaN(amount) {
		return nil, fmt.Errorf("repair: amount %v outside [0,1]", amount)
	}
	covered := 0
	for _, p := range pt.Parts {
		for _, i := range p.Indices {
			if i < 0 || i >= len(scores) {
				return nil, fmt.Errorf("repair: partition index %d out of range", i)
			}
			covered++
		}
	}
	if covered != len(scores) {
		return nil, fmt.Errorf("repair: partitioning covers %d of %d workers", covered, len(scores))
	}

	global := make([]float64, len(scores))
	copy(global, scores)
	sort.Float64s(global)

	out := make([]float64, len(scores))
	copy(out, scores)
	for _, p := range pt.Parts {
		members := make([]int, len(p.Indices))
		copy(members, p.Indices)
		// Sort members by original score (worker index as tiebreak) to
		// obtain within-partition ranks.
		sort.Slice(members, func(a, b int) bool {
			if scores[members[a]] != scores[members[b]] {
				return scores[members[a]] < scores[members[b]]
			}
			return members[a] < members[b]
		})
		k := len(members)
		for r, w := range members {
			q := (float64(r) + 0.5) / float64(k)
			target := quantile(global, q)
			out[w] = (1-amount)*scores[w] + amount*target
		}
	}
	return out, nil
}

// quantile interpolates the q-quantile of an already sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Unfairness measures the average pairwise EMD between the partitions'
// score histograms for an arbitrary score column — used to compare
// before/after repair without rebuilding a scoring function.
func Unfairness(scores []float64, pt *partition.Partitioning, bins int) (float64, error) {
	if pt == nil || len(pt.Parts) == 0 {
		return 0, errors.New("repair: empty partitioning")
	}
	if bins <= 0 {
		bins = 10
	}
	hs := make([]*histogram.Histogram, len(pt.Parts))
	for k, p := range pt.Parts {
		h := histogram.MustNew(bins, 0, 1)
		for _, i := range p.Indices {
			if i < 0 || i >= len(scores) {
				return 0, fmt.Errorf("repair: partition index %d out of range", i)
			}
			h.Add(scores[i])
		}
		hs[k] = h
	}
	return emd.AveragePairwise(hs, emd.GroundScore)
}
