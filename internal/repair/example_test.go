package repair_test

import (
	"fmt"

	"fairrank/internal/partition"
	"fairrank/internal/repair"
)

// Full repair equalizes two groups' score distributions while preserving
// the within-group ordering.
func ExampleScores() {
	// Group A scores high, group B scores low.
	scores := []float64{0.9, 0.8, 0.95, 0.1, 0.2, 0.05}
	pt := &partition.Partitioning{Parts: []*partition.Partition{
		{Indices: []int{0, 1, 2}},
		{Indices: []int{3, 4, 5}},
	}}
	before, _ := repair.Unfairness(scores, pt, 10)
	repaired, _ := repair.Scores(scores, pt, 1)
	after, _ := repair.Unfairness(repaired, pt, 10)
	fmt.Printf("before %.2f after %.2f\n", before, after)
	// Within group A, worker 2 (0.95) still outranks worker 0 (0.9).
	fmt.Println(repaired[2] > repaired[0])
	// Output:
	// before 0.77 after 0.00
	// true
}
