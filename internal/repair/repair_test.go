package repair

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fairrank/internal/core"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// biasedSetup builds a gender-biased scored population and the gender
// partitioning.
func biasedSetup(t *testing.T, n int, seed uint64) ([]float64, *partition.Partitioning) {
	t.Helper()
	ds, err := simulate.PaperWorkers(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := scoring.NewRuleFunc("f6", seed, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := scoring.Scores(ds, f6)
	gender := ds.Schema().ProtectedIndex("Gender")
	parts := partition.Split(ds, partition.Root(ds), gender)
	return scores, &partition.Partitioning{Parts: parts}
}

func TestValidation(t *testing.T) {
	scores, pt := biasedSetup(t, 50, 1)
	if _, err := Scores(nil, pt, 1); err == nil {
		t.Error("empty scores accepted")
	}
	if _, err := Scores(scores, nil, 1); err == nil {
		t.Error("nil partitioning accepted")
	}
	if _, err := Scores(scores, &partition.Partitioning{}, 1); err == nil {
		t.Error("empty partitioning accepted")
	}
	if _, err := Scores(scores, pt, -0.1); err == nil {
		t.Error("negative amount accepted")
	}
	if _, err := Scores(scores, pt, 1.1); err == nil {
		t.Error("amount > 1 accepted")
	}
	if _, err := Scores(scores, pt, math.NaN()); err == nil {
		t.Error("NaN amount accepted")
	}
	short := &partition.Partitioning{Parts: []*partition.Partition{{Indices: []int{0, 1}}}}
	if _, err := Scores(scores, short, 1); err == nil {
		t.Error("incomplete partitioning accepted")
	}
	oob := &partition.Partitioning{Parts: []*partition.Partition{{Indices: []int{9999}}}}
	if _, err := Scores(scores, oob, 1); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestAmountZeroIsIdentity(t *testing.T) {
	scores, pt := biasedSetup(t, 100, 2)
	out, err := Scores(scores, pt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if out[i] != scores[i] {
			t.Fatalf("amount=0 changed score %d: %v -> %v", i, scores[i], out[i])
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	scores, pt := biasedSetup(t, 100, 3)
	orig := append([]float64(nil), scores...)
	if _, err := Scores(scores, pt, 1); err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if scores[i] != orig[i] {
			t.Fatal("input scores mutated")
		}
	}
}

func TestFullRepairRemovesGenderGap(t *testing.T) {
	scores, pt := biasedSetup(t, 500, 4)
	before, err := Unfairness(scores, pt, 10)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := Scores(scores, pt, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Unfairness(repaired, pt, 10)
	if err != nil {
		t.Fatal(err)
	}
	if before < 0.7 {
		t.Fatalf("before = %v; bias setup broken", before)
	}
	if after > 0.05 {
		t.Fatalf("after = %v; full repair did not equalize distributions", after)
	}
}

func TestPartialRepairMonotone(t *testing.T) {
	scores, pt := biasedSetup(t, 300, 5)
	prev := math.Inf(1)
	for _, amount := range []float64{0, 0.25, 0.5, 0.75, 1} {
		repaired, err := Scores(scores, pt, amount)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Unfairness(repaired, pt, 10)
		if err != nil {
			t.Fatal(err)
		}
		if u > prev+0.02 { // allow tiny binning noise
			t.Fatalf("unfairness increased at amount=%v: %v -> %v", amount, prev, u)
		}
		prev = u
	}
}

// Property: repair preserves the within-partition ranking of workers.
func TestWithinPartitionOrderPreservedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(100)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = r.Float64()
		}
		// Random 3-way partitioning.
		parts := make([]*partition.Partition, 3)
		for k := range parts {
			parts[k] = &partition.Partition{}
		}
		for i := range scores {
			k := r.Intn(3)
			parts[k].Indices = append(parts[k].Indices, i)
		}
		var nonEmpty []*partition.Partition
		for _, p := range parts {
			if len(p.Indices) > 0 {
				nonEmpty = append(nonEmpty, p)
			}
		}
		pt := &partition.Partitioning{Parts: nonEmpty}
		repaired, err := Scores(scores, pt, 1)
		if err != nil {
			return false
		}
		for _, p := range nonEmpty {
			idx := append([]int(nil), p.Indices...)
			sort.Slice(idx, func(a, b int) bool {
				if scores[idx[a]] != scores[idx[b]] {
					return scores[idx[a]] < scores[idx[b]]
				}
				return idx[a] < idx[b]
			})
			for j := 1; j < len(idx); j++ {
				if repaired[idx[j]] < repaired[idx[j-1]]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: repaired scores stay in [0,1] when inputs do.
func TestRepairStaysInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		scores, pt := func() ([]float64, *partition.Partitioning) {
			r := rng.New(seed)
			n := 10 + r.Intn(50)
			scores := make([]float64, n)
			for i := range scores {
				scores[i] = r.Float64()
			}
			half := n / 2
			pt := &partition.Partitioning{Parts: []*partition.Partition{
				{Indices: seq(0, half)}, {Indices: seq(half, n)},
			}}
			return scores, pt
		}()
		for _, amount := range []float64{0.3, 1} {
			out, err := Scores(scores, pt, amount)
			if err != nil {
				return false
			}
			for _, v := range out {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestUnfairnessHelperMatchesEvaluator(t *testing.T) {
	// repair.Unfairness on the identity score column must match
	// core.Evaluator's measurement of the same partitioning.
	ds, err := simulate.PaperWorkers(200, 6)
	if err != nil {
		t.Fatal(err)
	}
	funcs, _ := simulate.RandomFunctions()
	e, err := core.NewEvaluator(ds, funcs[0], core.Config{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	gender := ds.Schema().ProtectedIndex("Gender")
	pt := &partition.Partitioning{Parts: partition.Split(ds, partition.Root(ds), gender)}
	want := e.Unfairness(pt)
	got, err := Unfairness(e.Scores(), pt, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("repair.Unfairness %v != evaluator %v", got, want)
	}
}

func TestUnfairnessValidation(t *testing.T) {
	if _, err := Unfairness([]float64{1}, nil, 10); err == nil {
		t.Error("nil partitioning accepted")
	}
	oob := &partition.Partitioning{Parts: []*partition.Partition{{Indices: []int{5}}}}
	if _, err := Unfairness([]float64{0.5}, oob, 10); err == nil {
		t.Error("out-of-range index accepted")
	}
	// bins <= 0 falls back to 10 rather than erroring.
	pt := &partition.Partitioning{Parts: []*partition.Partition{{Indices: []int{0}}}}
	if _, err := Unfairness([]float64{0.5}, pt, 0); err != nil {
		t.Errorf("bins=0 fallback failed: %v", err)
	}
}
