package repair

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// Property tests over testkit-generated populations and partitionings.

// Repair with amount 0 is the identity, bit for bit.
func TestRepairZeroAmountIsIdentity(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 150))
		if err != nil {
			t.Fatal(err)
		}
		pt := g.Partitioning(ds)
		scores := g.Scores(ds.N())
		out, err := Scores(scores, pt, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range scores {
			if out[i] != scores[i] {
				t.Fatalf("seed %d: amount=0 changed score %d: %v -> %v", seed, i, scores[i], out[i])
			}
		}
	}
}

// Repair never increases unfairness, at any amount: quantile matching pulls
// every partition toward the same global distribution, so the average
// pairwise EMD can only shrink (verified over 500 seeds before pinning;
// tolerance covers binning noise only).
func TestRepairNeverIncreasesUnfairness(t *testing.T) {
	for seed := uint64(1); seed <= 150; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 150))
		if err != nil {
			t.Fatal(err)
		}
		pt := g.Partitioning(ds)
		scores := g.Scores(ds.N())
		bins := g.R.IntRange(1, 20)
		amount := g.R.Float64()

		before, err := Unfairness(scores, pt, bins)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		repaired, err := Scores(scores, pt, amount)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after, err := Unfairness(repaired, pt, bins)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if after > before+testkit.Tol {
			t.Fatalf("seed %d: repair increased unfairness %v -> %v (amount=%v bins=%d)",
				seed, before, after, amount, bins)
		}
	}
}

// Repair preserves within-partition ranking: if a scored below b inside the
// same partition, it stays at or below b after repair, for any amount.
func TestRepairPreservesWithinPartitionRank(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 120))
		if err != nil {
			t.Fatal(err)
		}
		pt := g.Partitioning(ds)
		scores := g.Scores(ds.N())
		out, err := Scores(scores, pt, g.R.Float64())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range pt.Parts {
			for _, a := range p.Indices {
				for _, b := range p.Indices {
					if scores[a] < scores[b] && out[a] > out[b]+testkit.Tol {
						t.Fatalf("seed %d: rank inverted within partition: %v<%v but %v>%v",
							seed, scores[a], scores[b], out[a], out[b])
					}
				}
			}
		}
	}
}

// Repaired scores stay finite and inside [0,1]: convex combinations of
// in-range scores and in-range global quantiles cannot escape the range.
func TestRepairStaysInRange(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 150))
		if err != nil {
			t.Fatal(err)
		}
		pt := g.Partitioning(ds)
		scores := g.Scores(ds.N())
		out, err := Scores(scores, pt, g.R.Float64())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, v := range out {
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("seed %d: repaired score %d out of range: %v", seed, i, v)
			}
		}
	}
}

// repair.Unfairness is itself one of the audited fast paths: it must match
// the testkit oracle's naive pipeline on the same parts.
func TestRepairUnfairnessMatchesOracle(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 60; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(2, 150))
		if err != nil {
			t.Fatal(err)
		}
		pt := g.Partitioning(ds)
		scores := g.Scores(ds.N())
		bins := g.R.IntRange(1, 20)
		got, err := Unfairness(scores, pt, bins)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := o.Unfairness(scores, testkit.IndexParts(pt), bins)
		if math.Abs(got-want) > testkit.Tol {
			t.Fatalf("seed %d: Unfairness = %v, oracle %v", seed, got, want)
		}
	}
}
